"""Global Helmholtz / Poisson solvers on a FunctionSpace.

The two workhorse solves of the splitting scheme (paper stages 5 and 7):

    (nabla^2 - lam) u = -f      (weak form: L + lam M)

with Dirichlet conditions on tagged boundary parts and natural
(zero-flux Neumann) conditions elsewhere — the paper's outflow/side
treatment for the bluff-body runs.  Two backends:

* :class:`HelmholtzDirect` — banded Cholesky, factored once (NekTar's
  serial and NekTar-F path),
* :class:`HelmholtzCG` — diagonally preconditioned conjugate gradient
  (NekTar-ALE's path).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..assembly.condensation import CondensedOperator
from ..assembly.global_system import AssembledOperator, project_dirichlet
from ..assembly.space import FunctionSpace
from ..linalg.cg import pcg, pcg_block

__all__ = ["HelmholtzDirect", "HelmholtzCG", "solve_poisson"]

ScalarFn = Callable[[float, float], float]


def _sample(space: FunctionSpace, fn: ScalarFn | np.ndarray) -> np.ndarray:
    if callable(fn):
        xq, yq = space.coords()
        vec = np.vectorize(fn, otypes=[np.float64])
        return vec(xq, yq)
    arr = np.asarray(fn, dtype=np.float64)
    if arr.shape != (space.nelem, space.nq):
        raise ValueError("field array must be (nelem, nq)")
    return arr


class _HelmholtzBase:
    """Shared setup: elemental matrices + Dirichlet bookkeeping."""

    def __init__(
        self,
        space: FunctionSpace,
        lam: float = 0.0,
        dirichlet_tags: tuple[str, ...] = (),
    ):
        self.space = space
        self.lam = float(lam)
        self.dirichlet_tags = tuple(dirichlet_tags)
        self.elem_mats = space.elemental_matrices("helmholtz", self.lam)
        if self.dirichlet_tags:
            self.dirichlet_dofs, _ = project_dirichlet(
                space, self.dirichlet_tags, lambda x, y: 0.0
            )
        else:
            self.dirichlet_dofs = np.array([], dtype=np.int64)
        if self.lam == 0.0 and self.dirichlet_dofs.size == 0:
            raise ValueError(
                "pure-Neumann Poisson problem is singular; fix a Dirichlet "
                "part or use lam > 0"
            )

    def rhs_for(self, f: ScalarFn | np.ndarray) -> np.ndarray:
        """Assembled load vector of the forcing (weak form of -lap u + lam u = f)."""
        return self.space.load_vector(_sample(self.space, f))

    def bc_values(self, g: ScalarFn | None) -> np.ndarray | None:
        if not self.dirichlet_dofs.size:
            return None
        if g is None:
            return np.zeros(self.dirichlet_dofs.size)
        dofs, vals = project_dirichlet(self.space, self.dirichlet_tags, g)
        assert np.array_equal(dofs, self.dirichlet_dofs)
        return vals


class HelmholtzDirect(_HelmholtzBase):
    """Direct backend: static condensation + banded boundary solve
    (NekTar's structure; Figure 10).  Set ``condense=False`` for the
    plain full-banded factorisation."""

    def __init__(self, space, lam=0.0, dirichlet_tags=(), condense=True):
        super().__init__(space, lam, dirichlet_tags)
        cls = CondensedOperator if condense else AssembledOperator
        self.op = cls(space, self.elem_mats, self.dirichlet_dofs)

    def solve(
        self, f: ScalarFn | np.ndarray, g: ScalarFn | None = None
    ) -> np.ndarray:
        """Solve (L + lam M) u = (f, phi) with u = g on the Dirichlet part."""
        return self.op.solve(self.rhs_for(f), self.bc_values(g))

    def solve_rhs(
        self, rhs: np.ndarray, dirichlet_values: np.ndarray | None = None
    ) -> np.ndarray:
        """Solve with a pre-assembled global load vector (NS inner loop).

        ``rhs`` may be a single (ndof,) vector or a row-stacked
        (nrhs, ndof) block — the operator layer runs stacked blocks
        through the batched condense / blocked banded sweep, charging
        exactly nrhs single-RHS solves.
        """
        return self.op.solve(rhs, dirichlet_values)


class HelmholtzCG(_HelmholtzBase):
    """Jacobi-preconditioned CG backend (the NekTar-ALE solver)."""

    def __init__(self, space, lam=0.0, dirichlet_tags=(), tol=1e-10, maxiter=None):
        super().__init__(space, lam, dirichlet_tags)
        self.tol = tol
        self.maxiter = maxiter
        self.a_full = space.assemble(self.elem_mats)
        mask = np.ones(space.ndof, dtype=bool)
        mask[self.dirichlet_dofs] = False
        self.free = np.nonzero(mask)[0]
        self.a_uu = self.a_full[np.ix_(self.free, self.free)].tocsr()
        self.a_uk = self.a_full[np.ix_(self.free, self.dirichlet_dofs)].tocsr()
        self.diag = np.asarray(self.a_uu.diagonal())
        self.last_iterations = 0

    def solve(self, f, g=None) -> np.ndarray:
        return self.solve_rhs(self.rhs_for(f), self.bc_values(g))

    def solve_rhs(self, rhs, dirichlet_values=None) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 2:
            return self._solve_rhs_many(rhs, dirichlet_values)
        if self.dirichlet_dofs.size:
            if dirichlet_values is None:
                dirichlet_values = np.zeros(self.dirichlet_dofs.size)
            b = rhs[self.free] - self.a_uk @ dirichlet_values
        else:
            b = rhs[self.free]
        res = pcg(
            lambda v: self.a_uu @ v,
            b,
            self.diag,
            tol=self.tol,
            maxiter=self.maxiter,
        )
        if not res.converged:
            raise RuntimeError(
                f"CG failed to converge: residual {res.residual:.3e} "
                f"after {res.iterations} iterations"
            )
        self.last_iterations = res.iterations
        u = np.zeros(self.space.ndof)
        u[self.free] = res.x
        if self.dirichlet_dofs.size:
            u[self.dirichlet_dofs] = dirichlet_values
        return u

    def _solve_rhs_many(self, rhs: np.ndarray, dirichlet_values) -> np.ndarray:
        """Row-stacked multi-RHS path: one block-Jacobi-PCG sweep whose
        per-column iterates and charges match ``nrhs`` solo solves."""
        nrhs = rhs.shape[0]
        dv = None
        if self.dirichlet_dofs.size:
            nd = self.dirichlet_dofs.size
            if dirichlet_values is None:
                dv = np.zeros((nrhs, nd))
            else:
                dv = np.asarray(dirichlet_values, dtype=np.float64)
                if dv.ndim == 1:
                    dv = np.broadcast_to(dv, (nrhs, nd))
                if dv.shape != (nrhs, nd):
                    raise ValueError("dirichlet_values shape mismatch")
            b = rhs[:, self.free] - (self.a_uk @ dv.T).T
        else:
            b = rhs[:, self.free]
        results = pcg_block(
            lambda v: self.a_uu @ v,
            b,
            self.diag,
            tol=self.tol,
            maxiter=self.maxiter,
        )
        bad = [res for res in results if not res.converged]
        if bad:
            raise RuntimeError(
                f"CG failed to converge: residual {bad[0].residual:.3e} "
                f"after {bad[0].iterations} iterations"
            )
        self.last_iterations = max(res.iterations for res in results)
        u = np.zeros((nrhs, self.space.ndof))
        u[:, self.free] = np.stack([res.x for res in results])
        if dv is not None:
            u[:, self.dirichlet_dofs] = dv
        return u


def solve_poisson(
    space: FunctionSpace,
    f: ScalarFn | np.ndarray,
    dirichlet_tags: tuple[str, ...],
    g: ScalarFn | None = None,
    backend: str = "direct",
) -> np.ndarray:
    """One-shot Poisson solve: -lap u = f, u = g on tagged boundaries."""
    cls = {"direct": HelmholtzDirect, "cg": HelmholtzCG}.get(backend)
    if cls is None:
        raise ValueError(f"unknown backend {backend!r}")
    return cls(space, 0.0, tuple(dirichlet_tags)).solve(f, g)
