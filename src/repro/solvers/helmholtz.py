"""Global Helmholtz / Poisson solvers on a FunctionSpace.

The two workhorse solves of the splitting scheme (paper stages 5 and 7):

    (nabla^2 - lam) u = -f      (weak form: L + lam M)

with Dirichlet conditions on tagged boundary parts and natural
(zero-flux Neumann) conditions elsewhere — the paper's outflow/side
treatment for the bluff-body runs.  Two backends:

* :class:`HelmholtzDirect` — banded Cholesky, factored once (NekTar's
  serial and NekTar-F path),
* :class:`HelmholtzCG` — diagonally preconditioned conjugate gradient
  (NekTar-ALE's path).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..assembly.condensation import CondensedOperator
from ..assembly.global_system import AssembledOperator, project_dirichlet
from ..assembly.space import FunctionSpace
from ..linalg.cg import pcg, pcg_block
from ..linalg.counters import charge

__all__ = ["HelmholtzDirect", "HelmholtzCG", "solve_poisson"]

ScalarFn = Callable[[float, float], float]


def _sample(space: FunctionSpace, fn: ScalarFn | np.ndarray) -> np.ndarray:
    if callable(fn):
        xq, yq = space.coords()
        vec = np.vectorize(fn, otypes=[np.float64])
        return vec(xq, yq)
    arr = np.asarray(fn, dtype=np.float64)
    if arr.shape != (space.nelem, space.nq):
        raise ValueError("field array must be (nelem, nq)")
    return arr


class _HelmholtzBase:
    """Shared setup: elemental matrices + Dirichlet bookkeeping."""

    def __init__(
        self,
        space: FunctionSpace,
        lam: float = 0.0,
        dirichlet_tags: tuple[str, ...] = (),
    ):
        self.space = space
        self.lam = float(lam)
        self.dirichlet_tags = tuple(dirichlet_tags)
        self._elem_mats: list[np.ndarray] | None = None
        if self.dirichlet_tags:
            self.dirichlet_dofs, _ = project_dirichlet(
                space, self.dirichlet_tags, lambda x, y: 0.0
            )
        else:
            self.dirichlet_dofs = np.array([], dtype=np.int64)
        if self.lam == 0.0 and self.dirichlet_dofs.size == 0:
            raise ValueError(
                "pure-Neumann Poisson problem is singular; fix a Dirichlet "
                "part or use lam > 0"
            )

    @property
    def elem_mats(self) -> list[np.ndarray]:
        """Tabulated elemental matrices, built on first access only —
        the matrix-free CG backend never touches them."""
        if self._elem_mats is None:
            self._elem_mats = self.space.elemental_matrices("helmholtz", self.lam)
        return self._elem_mats

    def rhs_for(self, f: ScalarFn | np.ndarray) -> np.ndarray:
        """Assembled load vector of the forcing (weak form of -lap u + lam u = f)."""
        return self.space.load_vector(_sample(self.space, f))

    def bc_values(self, g: ScalarFn | None) -> np.ndarray | None:
        if not self.dirichlet_dofs.size:
            return None
        if g is None:
            return np.zeros(self.dirichlet_dofs.size)
        dofs, vals = project_dirichlet(self.space, self.dirichlet_tags, g)
        assert np.array_equal(dofs, self.dirichlet_dofs)
        return vals


class HelmholtzDirect(_HelmholtzBase):
    """Direct backend: static condensation + banded boundary solve
    (NekTar's structure; Figure 10).  Set ``condense=False`` for the
    plain full-banded factorisation."""

    def __init__(self, space, lam=0.0, dirichlet_tags=(), condense=True):
        super().__init__(space, lam, dirichlet_tags)
        cls = CondensedOperator if condense else AssembledOperator
        self.op = cls(space, self.elem_mats, self.dirichlet_dofs)

    def solve(
        self, f: ScalarFn | np.ndarray, g: ScalarFn | None = None
    ) -> np.ndarray:
        """Solve (L + lam M) u = (f, phi) with u = g on the Dirichlet part."""
        return self.op.solve(self.rhs_for(f), self.bc_values(g))

    def solve_rhs(
        self, rhs: np.ndarray, dirichlet_values: np.ndarray | None = None
    ) -> np.ndarray:
        """Solve with a pre-assembled global load vector (NS inner loop).

        ``rhs`` may be a single (ndof,) vector or a row-stacked
        (nrhs, ndof) block — the operator layer runs stacked blocks
        through the batched condense / blocked banded sweep, charging
        exactly nrhs single-RHS solves.
        """
        return self.op.solve(rhs, dirichlet_values)


class HelmholtzCG(_HelmholtzBase):
    """Jacobi-preconditioned CG backend (the NekTar-ALE solver).

    ``matrix_free`` selects how the CG matvec runs:

    * ``False`` — assemble the global sparse operator once and apply it
      as a counted CSR spmv (the original path; kept as the oracle),
    * ``True`` — never assemble anything: each matvec is the
      sum-factorised elemental apply of
      :meth:`FunctionSpace.operator_apply` (O(P^3) per quad element)
      and the Jacobi diagonal comes from
      :meth:`FunctionSpace.operator_diagonal`.

    The default (``None``) follows ``space.sumfact``, so all-quad
    meshes go matrix-free automatically.  Both paths produce the same
    solutions to solver tolerance; their ledger profiles differ
    ("spmv" vs the sum-factorised "dgemm"/"mfree-metric" charges).
    """

    def __init__(
        self,
        space,
        lam=0.0,
        dirichlet_tags=(),
        tol=1e-10,
        maxiter=None,
        matrix_free: bool | None = None,
    ):
        super().__init__(space, lam, dirichlet_tags)
        self.tol = tol
        self.maxiter = maxiter
        if matrix_free is None:
            matrix_free = space.sumfact
        self.matrix_free = bool(matrix_free)
        mask = np.ones(space.ndof, dtype=bool)
        mask[self.dirichlet_dofs] = False
        self.free = np.nonzero(mask)[0]
        if self.matrix_free:
            self.a_full = self.a_uu = self.a_uk = None
            self.diag = space.operator_diagonal("helmholtz", self.lam)[self.free]
        else:
            self.a_full = space.assemble(self.elem_mats)
            self.a_uu = self.a_full[np.ix_(self.free, self.free)].tocsr()
            self.a_uk = self.a_full[
                np.ix_(self.free, self.dirichlet_dofs)
            ].tocsr()
            self.diag = np.asarray(self.a_uu.diagonal())
        self.last_iterations = 0

    def _apply_free(self, v: np.ndarray) -> np.ndarray:
        """A_uu @ v for one vector or a row-stacked block of them.

        Matrix-free: zero-extend the free dofs into a full coefficient
        vector, run the global sum-factorised apply, restrict back.
        (Dirichlet columns vanish because the extension is zero there.)
        Dense: counted CSR spmv, charged like AssembledOperator.
        """
        if self.matrix_free:
            full = np.zeros(v.shape[:-1] + (self.space.ndof,))
            full[..., self.free] = v
            return self.space.operator_apply("helmholtz", full, self.lam)[
                ..., self.free
            ]
        charge(
            2.0 * self.a_uu.nnz,
            12.0 * self.a_uu.nnz + 16.0 * v.shape[-1],
            "spmv",
        )
        return self.a_uu @ v

    def _lift(self, rhs_free: np.ndarray, dv: np.ndarray) -> np.ndarray:
        """rhs_free - A_uk @ dv: move known Dirichlet values to the RHS.

        ``rhs_free``/``dv`` may carry one leading block axis.  The
        matrix-free form extends the boundary values by zero and takes
        the free rows of one global apply.
        """
        if self.matrix_free:
            ext = np.zeros(dv.shape[:-1] + (self.space.ndof,))
            ext[..., self.dirichlet_dofs] = dv
            lift = self.space.operator_apply("helmholtz", ext, self.lam)[
                ..., self.free
            ]
            return rhs_free - lift
        nrhs = dv.shape[0] if dv.ndim == 2 else 1
        charge(
            nrhs * 2.0 * self.a_uk.nnz,
            nrhs * 12.0 * self.a_uk.nnz,
            "dirichlet-lift",
        )
        if dv.ndim == 2:
            return rhs_free - (self.a_uk @ dv.T).T
        return rhs_free - self.a_uk @ dv

    def solve(self, f, g=None) -> np.ndarray:
        return self.solve_rhs(self.rhs_for(f), self.bc_values(g))

    def solve_rhs(self, rhs, dirichlet_values=None) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 2:
            return self._solve_rhs_many(rhs, dirichlet_values)
        if self.dirichlet_dofs.size:
            if dirichlet_values is None:
                dirichlet_values = np.zeros(self.dirichlet_dofs.size)
            b = self._lift(rhs[self.free], np.asarray(dirichlet_values))
        else:
            b = rhs[self.free]
        res = pcg(
            self._apply_free,
            b,
            self.diag,
            tol=self.tol,
            maxiter=self.maxiter,
        )
        if not res.converged:
            raise RuntimeError(
                f"CG failed to converge: residual {res.residual:.3e} "
                f"after {res.iterations} iterations"
            )
        self.last_iterations = res.iterations
        u = np.zeros(self.space.ndof)
        u[self.free] = res.x
        if self.dirichlet_dofs.size:
            u[self.dirichlet_dofs] = dirichlet_values
        return u

    def _solve_rhs_many(self, rhs: np.ndarray, dirichlet_values) -> np.ndarray:
        """Row-stacked multi-RHS path: one block-Jacobi-PCG sweep whose
        per-column iterates and charges match ``nrhs`` solo solves; the
        matrix-free backend applies the whole block per iteration in a
        single batched elemental sweep."""
        nrhs = rhs.shape[0]
        dv = None
        if self.dirichlet_dofs.size:
            nd = self.dirichlet_dofs.size
            if dirichlet_values is None:
                dv = np.zeros((nrhs, nd))
            else:
                dv = np.asarray(dirichlet_values, dtype=np.float64)
                if dv.ndim == 1:
                    dv = np.broadcast_to(dv, (nrhs, nd))
                if dv.shape != (nrhs, nd):
                    raise ValueError("dirichlet_values shape mismatch")
            b = self._lift(rhs[:, self.free], dv)
        else:
            b = rhs[:, self.free]
        results = pcg_block(
            self._apply_free,
            b,
            self.diag,
            tol=self.tol,
            maxiter=self.maxiter,
            apply_block=self._apply_free if self.matrix_free else None,
        )
        bad = [res for res in results if not res.converged]
        if bad:
            raise RuntimeError(
                f"CG failed to converge: residual {bad[0].residual:.3e} "
                f"after {bad[0].iterations} iterations"
            )
        self.last_iterations = max(res.iterations for res in results)
        u = np.zeros((nrhs, self.space.ndof))
        u[:, self.free] = np.stack([res.x for res in results])
        if dv is not None:
            u[:, self.dirichlet_dofs] = dv
        return u


def solve_poisson(
    space: FunctionSpace,
    f: ScalarFn | np.ndarray,
    dirichlet_tags: tuple[str, ...],
    g: ScalarFn | None = None,
    backend: str = "direct",
) -> np.ndarray:
    """One-shot Poisson solve: -lap u = f, u = g on tagged boundaries."""
    cls = {"direct": HelmholtzDirect, "cg": HelmholtzCG}.get(backend)
    if cls is None:
        raise ValueError(f"unknown backend {backend!r}")
    return cls(space, 0.0, tuple(dirichlet_tags)).solve(f, g)
