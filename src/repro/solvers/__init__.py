"""Global solvers: direct banded and PCG Helmholtz/Poisson."""

from .helmholtz import HelmholtzCG, HelmholtzDirect, solve_poisson

__all__ = ["HelmholtzDirect", "HelmholtzCG", "solve_poisson"]
