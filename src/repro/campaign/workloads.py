"""Campaign workload shapes: small parameterized virtual-cluster programs.

Each workload is a factory ``make(params, machine, cache) -> rank_fn``.
The factory runs on the campaign worker thread *before* the virtual
cluster starts: that is where host-side setup lives, including the
shared :class:`~repro.campaign.cache.OperatorCache` lookups (doing the
cache handshake outside the cluster keeps blocking host locks out of
the cooperative rank scheduler).  The returned ``rank_fn`` runs inside
the cluster and must return a small, JSON-able, deterministic check
value — the engine records rank 0's return in the ledger ``values``.

Charge neutrality: a cache hit hands back an already-built host object,
but the *virtual* setup cost is charged analytically from the problem
size (:func:`helmholtz_setup_flops`), identically on hit and miss.
Ledger values therefore never depend on cache state, worker count, or
resume history.

Every workload calls ``comm.mark_step`` once per logical step, so a
``crash`` fault plan with ``at_step`` fires inside any of them.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..assembly.space import FunctionSpace
from ..mesh.generators import rectangle_quads
from ..solvers.helmholtz import HelmholtzDirect
from .cache import OperatorCache

__all__ = [
    "WORKLOADS",
    "helmholtz_setup_flops",
    "helmholtz_solve_flops",
    "round_sig",
]

HELMHOLTZ_STEPS = 3


def round_sig(x: float, digits: int = 6) -> float:
    """Round to significant digits: the cross-platform check-value form.

    Solution norms from dense factorizations may differ in the last
    couple of bits across BLAS builds; 6 significant digits is far
    inside the stability of these tiny systems while still catching any
    real numerical change.
    """
    if x == 0.0 or not np.isfinite(x):
        return float(x)
    from math import floor, log10

    return float(round(x, digits - 1 - floor(log10(abs(x)))))


def _ring(params: dict[str, Any], machine: str, cache: OperatorCache):
    rounds = int(params.get("rounds", 3))
    ndoubles = int(params.get("ndoubles", 128))

    def rank_fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        buf = np.full(ndoubles, float(comm.rank))
        acc = 0.0
        for _ in range(rounds):
            comm.mark_step()
            comm.send(right, buf, tag=7)
            # Guarded recv: campaign matrices are fault-bearing, so a
            # dropped message must surface as a priced retransmit or a
            # typed failure, never a hang.
            buf = comm.recv(left, tag=7, timeout=5.0, retries=2)
            acc += float(buf[0])
        return acc

    return rank_fn


def _alltoall(params: dict[str, Any], machine: str, cache: OperatorCache):
    ndoubles_list = [int(n) for n in params.get("ndoubles", [64])]
    compute_s = float(params.get("compute_s", 0.0))

    def rank_fn(comm):
        checks = []
        for n in ndoubles_list:
            comm.mark_step()
            if compute_s:
                comm.compute(compute_s)
            chunk = np.full(n, float(comm.rank))
            out = comm.alltoall([chunk] * comm.size)
            checks.append(float(sum(c[0] for c in out)))
        comm.barrier()
        return checks

    return rank_fn


def helmholtz_setup_flops(ndof: int) -> float:
    """Analytic virtual cost of assembling + factoring the operator.

    A coarse banded-Cholesky count (``~ n * b^2`` with the bandwidth
    folded into a constant): what matters is that it is a pure function
    of the problem size, charged identically on cache hit and miss.
    """
    return 40.0 * float(ndof) ** 2


def helmholtz_solve_flops(ndof: int) -> float:
    """Analytic virtual cost of one back-substitution sweep."""
    return 60.0 * float(ndof)


def _helmholtz(params: dict[str, Any], machine: str, cache: OperatorCache):
    nx = int(params.get("nx", 2))
    ny = int(params.get("ny", 2))
    order = int(params.get("order", 4))
    lam = float(params.get("lam", 1.0))
    key = ("helmholtz", nx, ny, order, lam, machine)

    def build():
        mesh = rectangle_quads(nx, ny, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
        space = FunctionSpace(mesh, order)
        solver = HelmholtzDirect(space, lam=lam, dirichlet_tags=("left",))
        # Factor once here (first solve would otherwise do it lazily):
        # the cached object is ready-to-solve for every sharing job.
        u = solver.solve(lambda x, y: np.sin(x) * np.cos(y))
        return space, solver, round_sig(float(np.linalg.norm(u)))

    space, _solver, norm = cache.get_or_build(key, build)
    ndof = space.ndof

    def rank_fn(comm):
        # Virtual setup charge: analytic, cache-state independent.
        comm.compute_flops(helmholtz_setup_flops(ndof))
        total = 0.0
        for _ in range(HELMHOLTZ_STEPS):
            comm.mark_step()
            comm.compute_flops(helmholtz_solve_flops(ndof))
            total = comm.allreduce(norm)
        return {"norm_sum": round_sig(total), "ndof": ndof}

    return rank_fn


#: name -> factory(params, machine, cache) -> rank_fn
WORKLOADS: dict[str, Callable[[dict[str, Any], str, OperatorCache], Any]] = {
    "ring": _ring,
    "alltoall": _alltoall,
    "helmholtz": _helmholtz,
}
