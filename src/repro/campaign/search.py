"""Campaign search: cheapest catalog configuration meeting a makespan.

The campaign records every job's event graph; this module answers the
paper's Section 5 question — what is the cheapest hardware that is
still fast enough? — **without re-running anything**.  Each catalog
candidate (a machine + fabric pair with a 1999 per-processor price) is
priced against the recorded graphs by counterfactual re-weighting:
:func:`~repro.obs.critpath.swap_network` re-prices every communication
edge under the candidate's fabric, and its ``cpu_scale`` scales the
compute edges by the ratio of the recorded machine's application rate
to the candidate's.

The result reproduces the paper's cost ordering: Ethernet nodes are
cheaper but slower, Myrinet costs ~$1.8k/node more and buys its keep
back in makespan, supercomputer nodes are faster still at an order of
magnitude the price.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..apps.cost_of_ownership import PRICES_1999
from ..machines.catalog import MACHINES, NETWORKS
from ..obs.critpath import EventGraph, swap_network
from ..obs.runlog import RunLedger

__all__ = ["CATALOG_CANDIDATES", "load_graphs", "search_catalog"]

#: Catalog candidates: machine + fabric + 1999 per-processor price.
CATALOG_CANDIDATES: tuple[dict[str, Any], ...] = (
    {
        "name": "roadrunner-ethernet",
        "machine": "RoadRunner",
        "network": "RoadRunner, eth-internode",
        "price_per_proc": PRICES_1999["RoadRunner-eth"],
    },
    {
        "name": "roadrunner-myrinet",
        "machine": "RoadRunner",
        "network": "RoadRunner, myr-internode",
        "price_per_proc": PRICES_1999["RoadRunner-myr"],
    },
    {
        "name": "sp2-silver",
        "machine": "SP2-Silver",
        "network": "SP2-Silver, internode",
        "price_per_proc": PRICES_1999["SP2-Silver"],
    },
    {
        "name": "t3e",
        "machine": "T3E",
        "network": "T3E",
        "price_per_proc": PRICES_1999["T3E"],
    },
)


def load_graphs(
    ledger: RunLedger, artifacts_dir: str | Path, bench: str = "campaign"
) -> list[dict[str, Any]]:
    """Pair each completed job's latest ledger record with its graph.

    Returns ``[{"config": ..., "fingerprint": ..., "graph": EventGraph}]``
    for every fingerprint whose latest record is ``ok`` and whose graph
    artifact exists on disk.
    """
    artifacts = Path(artifacts_dir)
    latest: dict[str, dict[str, Any]] = {}
    for rec in ledger.records(bench=bench):
        latest[rec["fingerprint"]] = rec
    out = []
    for fp, rec in latest.items():
        if rec.get("status", "ok") != "ok":
            continue
        path = artifacts / f"graph-{fp}.json"
        if not path.exists():
            continue
        with path.open() as fh:
            graph = EventGraph.from_dict(json.load(fh))
        out.append(
            {"fingerprint": fp, "config": rec.get("config", {}), "graph": graph}
        )
    out.sort(key=lambda e: e["fingerprint"])
    return out


def _cpu_scale(recorded_machine: str, candidate_machine: str) -> float:
    """Compute-edge scale factor for a machine swap.

    Virtual compute time scales inversely with the sustained
    application rate: a candidate twice as fast halves every cpu edge.
    """
    ref = MACHINES[recorded_machine].cpu.app_mflops
    cand = MACHINES[candidate_machine].cpu.app_mflops
    return ref / cand


def search_catalog(
    entries: list[dict[str, Any]],
    target_makespan: float,
    candidates: tuple[dict[str, Any], ...] = CATALOG_CANDIDATES,
) -> dict[str, Any]:
    """Price every candidate against the recorded graphs.

    ``entries`` is :func:`load_graphs` output.  For each candidate the
    campaign's predicted makespan is the **sum** over jobs (the
    serialized cost of the campaign's work under that hardware), and
    its price is per-processor price times the largest job's processor
    count.  Returns all candidates ranked cheapest-first, each with its
    prediction and verdict, plus the cheapest one meeting the target.
    """
    if not entries:
        raise ValueError("no recorded graphs to search over")
    ranked = []
    for cand in sorted(candidates, key=lambda c: c["price_per_proc"]):
        new_net = NETWORKS[cand["network"]]
        total = 0.0
        nprocs = 0
        for entry in entries:
            cfg = entry["config"]
            scale = _cpu_scale(cfg["machine"], cand["machine"])
            total += swap_network(entry["graph"], new_net, cpu_scale=scale)
            nprocs = max(nprocs, int(cfg.get("nprocs", 1)))
        price = cand["price_per_proc"] * max(1, nprocs)
        ranked.append(
            {
                "name": cand["name"],
                "machine": cand["machine"],
                "network": cand["network"],
                "price_per_proc": cand["price_per_proc"],
                "price_total": price,
                "predicted_makespan": total,
                "meets_target": bool(total <= target_makespan),
            }
        )
    meeting = [c for c in ranked if c["meets_target"]]
    cheapest = min(meeting, key=lambda c: c["price_total"]) if meeting else None
    return {
        "target_makespan": target_makespan,
        "jobs": len(entries),
        "candidates": ranked,
        "cheapest": cheapest,
        "feasible": bool(meeting),
    }
