"""Declarative job matrices and their expansion to job queues.

A campaign matrix names catalog entries, never model objects — it is
plain JSON, so it can live in a file, ride in a ledger record's
``config``, and fingerprint stably::

    {
      "nprocs": 4,
      "machines": ["RoadRunner", "SP2-Silver"],
      "networks": ["RoadRunner, eth-internode", "RoadRunner, myr-internode"],
      "fault_plans": ["none", "loss"],
      "workloads": [
        {"workload": "ring", "rounds": 3, "ndoubles": 128},
        {"workload": "alltoall", "ndoubles": [64], "compute_s": 0.0002},
        {"workload": "helmholtz", "nx": 2, "ny": 2, "order": 4, "lam": 1.0}
      ]
    }

Machines and networks cross freely — "the SP2's CPU on RoadRunner's
Ethernet" is exactly the kind of counterfactual hardware the campaign
exists to price.  Fault plans come from a small named catalog so a
matrix stays declarative (a ``FaultPlan`` holds callables-adjacent
state that does not belong in JSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..machines.catalog import MACHINES, NETWORKS
from ..obs.runlog import config_fingerprint
from ..parallel.faults import CrashSpec, FaultPlan

__all__ = ["JobSpec", "FAULT_PLANS", "expand_matrix", "smoke_matrix"]

SEED = 1999  # SC99

#: Named fault plans a matrix may reference.  ``crash`` plants an
#: uncaught :class:`RankFailure` mid-run — the campaign records the job
#: as failed, and a resumed campaign re-runs it (the resume test's
#: planted failure).
FAULT_PLANS: dict[str, FaultPlan | None] = {
    "none": None,
    "loss": FaultPlan(seed=SEED, loss_rate=0.05),
    "storm": FaultPlan(
        seed=SEED,
        loss_rate=0.05,
        stragglers={1: 1.5},
        degraded_links={(0, 1): 2.0},
    ),
    "crash": FaultPlan(seed=SEED, crashes=(CrashSpec(rank=1, at_step=2),)),
}


@dataclass
class JobSpec:
    """One fully resolved campaign job (a single virtual-cluster run)."""

    machine: str
    network: str
    fault_plan: str
    workload: str
    nprocs: int
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.machine not in MACHINES:
            raise ValueError(f"unknown machine {self.machine!r}")
        if self.network not in NETWORKS:
            raise ValueError(f"unknown network {self.network!r}")
        if self.fault_plan not in FAULT_PLANS:
            raise ValueError(
                f"unknown fault plan {self.fault_plan!r}; "
                f"known: {sorted(FAULT_PLANS)}"
            )
        if self.nprocs < 1:
            raise ValueError(f"bad nprocs {self.nprocs}")

    @property
    def job_id(self) -> str:
        """Human-readable queue label (not the resume key)."""
        return (
            f"{self.workload}/{self.machine}/{self.network}/"
            f"{self.fault_plan}/p{self.nprocs}"
        )

    def config(self) -> dict[str, Any]:
        """The fingerprinted configuration (the ledger resume key)."""
        return {
            "campaign_schema": 1,
            "machine": self.machine,
            "network": self.network,
            "fault_plan": self.fault_plan,
            "workload": self.workload,
            "nprocs": self.nprocs,
            "params": dict(self.params),
        }

    @property
    def fingerprint(self) -> str:
        return config_fingerprint(self.config())


def expand_matrix(matrix: dict[str, Any]) -> list[JobSpec]:
    """Expand a declarative matrix to its cross-product job list.

    Order is deterministic (machine-major, then network, fault plan,
    workload in listed order), so a resumed campaign walks the same
    queue and skip decisions are reproducible.
    """
    try:
        machines = list(matrix["machines"])
        networks = list(matrix["networks"])
        fault_plans = list(matrix["fault_plans"])
        workloads = list(matrix["workloads"])
    except KeyError as exc:
        raise ValueError(f"matrix is missing required key {exc}") from None
    nprocs = int(matrix.get("nprocs", 4))
    jobs: list[JobSpec] = []
    for machine in machines:
        for network in networks:
            for plan in fault_plans:
                for shape in workloads:
                    params = dict(shape)
                    workload = params.pop("workload")
                    jobs.append(
                        JobSpec(
                            machine=machine,
                            network=network,
                            fault_plan=plan,
                            workload=workload,
                            nprocs=nprocs,
                            params=params,
                        )
                    )
    fps = [j.fingerprint for j in jobs]
    if len(fps) != len(set(fps)):
        raise ValueError("matrix expands to duplicate job configurations")
    return jobs


def smoke_matrix() -> dict[str, Any]:
    """The CI smoke matrix: 2 machines x 2 networks x 2 plans x 3 shapes.

    24 jobs, each small enough that the whole campaign runs in seconds.
    The helmholtz shape repeats its ``(mesh, order, lam, machine)``
    cache key across the 4 network/fault combinations per machine, so
    the operator cache hit rate is provably positive.
    """
    return {
        "nprocs": 4,
        "machines": ["RoadRunner", "SP2-Silver"],
        "networks": [
            "RoadRunner, eth-internode",
            "RoadRunner, myr-internode",
        ],
        "fault_plans": ["none", "loss"],
        "workloads": [
            {"workload": "ring", "rounds": 3, "ndoubles": 128},
            {"workload": "alltoall", "ndoubles": [64], "compute_s": 2e-4},
            {"workload": "helmholtz", "nx": 2, "ny": 2, "order": 4, "lam": 1.0},
        ],
    }
