"""Single-flight operator/factorization cache shared across campaign jobs.

Many jobs in a campaign differ only in network or fault plan: their
host-side setup work (function spaces, banded Cholesky factorizations)
is identical.  The cache shares those objects across concurrent workers
with single-flight semantics — the first job to ask for a key builds
it while later askers block on a per-key event and then reuse the
built object, so K jobs sharing a key cost exactly one build (1 miss,
K-1 hits) no matter how the worker pool interleaves them.

The cache is **charge-neutral by construction**: it holds host-side
Python objects only, never virtual-clock state.  A job's virtual setup
cost is charged analytically (identical on hit or miss, see
:mod:`repro.campaign.workloads`), so ledger values are byte-equivalent
whatever the hit order — the property the resume test asserts.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

__all__ = ["OperatorCache"]


class OperatorCache:
    """Thread-safe single-flight build cache with hit/miss accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._done: dict[Hashable, Any] = {}
        self._building: dict[Hashable, threading.Event] = {}
        self._failed: dict[Hashable, BaseException] = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the cached object for ``key``, building it at most once.

        Waiters that arrive while another thread builds count as hits:
        they reuse the built object without doing the work.  A failed
        build poisons the key — every waiter and later asker sees the
        original exception rather than silently rebuilding.
        """
        while True:
            with self._lock:
                if key in self._done:
                    self.hits += 1
                    return self._done[key]
                if key in self._failed:
                    raise self._failed[key]
                event = self._building.get(key)
                if event is None:
                    self._building[key] = threading.Event()
                    self.misses += 1
                    break
            event.wait()
        try:
            obj = build()
        except BaseException as exc:
            with self._lock:
                self._failed[key] = exc
                self._building.pop(key).set()
            raise
        with self._lock:
            self._done[key] = obj
            self._building.pop(key).set()
        return obj

    def stats(self) -> dict[str, float]:
        """Hit/miss counters plus derived hit rate (JSON-able)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._done),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }
