"""Thin bench clients: shared plumbing for every bench entry point.

``solve_bench`` / ``resilience_bench`` / ``scaling_bench`` used to each
carry their own copy of the run-write-ledger-print choreography; the
campaign engine makes them thin clients of one shared path so every
bench records to the same ledger with the same conventions:

* :func:`write_results` — results JSON to disk (sorted, trailing
  newline, the committed-baseline form);
* :func:`record_to_ledger` — append to the persistent run ledger and
  announce the fingerprint;
* :func:`bench_client` — the whole choreography for a ``main()`` that
  must keep returning the results dict (the tier-1 tests call bench
  mains directly and consume the dict);
* :func:`run_cli` — wrap any such ``main`` into an int-returning
  process entry point with the shared exit-code convention
  (:mod:`repro.util.cli`): acceptance-gate failures exit 1, usage
  errors exit 2.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Callable

from ..obs.runlog import append_bench_record
from ..util.cli import EXIT_GATE, EXIT_OK, usage_error

__all__ = ["write_results", "record_to_ledger", "bench_client", "run_cli"]


def write_results(results: dict[str, Any], out_path: str | Path) -> None:
    """Write a bench results dict in the committed-baseline JSON form."""
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def record_to_ledger(
    ledger_path: str | Path, bench: str, results: dict[str, Any]
) -> dict[str, Any]:
    """Append one bench result to the run ledger; prints the fingerprint."""
    rec = append_bench_record(ledger_path, bench, results)
    print(f"ledger: appended {rec['fingerprint']} -> {ledger_path}")
    return rec


def bench_client(
    bench: str,
    results: dict[str, Any],
    out_path: str | Path,
    ledger_path: str | Path | None = None,
    summary: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """The standard bench epilogue: write, record, summarize, return."""
    write_results(results, out_path)
    if ledger_path:
        record_to_ledger(ledger_path, bench, results)
    if summary is not None:
        summary(results)
    return results


def run_cli(main: Callable[..., Any], argv: Any = None) -> int:
    """Run a dict-returning bench ``main`` as a process entry point.

    Maps outcomes onto the shared exit-code convention: a clean run is
    0, an :class:`AssertionError` (every bench's acceptance-gate
    failure) is 1, and unreadable/unwritable inputs are usage errors
    (2).  ``argparse`` already exits 2 on bad flags, so the three codes
    are consistent however the run dies.
    """
    try:
        main(argv)
    except AssertionError as exc:
        print(f"gate failure: {exc}", file=sys.stderr)
        return EXIT_GATE
    except OSError as exc:
        return usage_error(str(exc))
    return EXIT_OK
