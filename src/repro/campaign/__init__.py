"""Scenario campaign engine: the full cross-product as a resumable service.

The paper answered "fact or fiction?" one cluster at a time; the
campaign engine answers it for a whole catalog at once.  A declarative
job matrix (machine x network x fault plan x workload shape) expands to
a job queue; a bounded worker pool runs each job as its own virtual
cluster; every outcome lands in the persistent run ledger
(:mod:`repro.obs.runlog`), which doubles as the resume store — a
restarted campaign skips fingerprints whose latest record is ``ok`` and
re-runs only pending/failed jobs.  Host-side operator factorizations
are shared across jobs through a single-flight cache keyed by
``(mesh, order, lambda, machine)``, and each job's recorded event graph
feeds ``campaign search``: counterfactual re-pricing over the machine
catalog without re-running anything.
"""

from .cache import OperatorCache
from .engine import CampaignEngine, campaign_report
from .matrix import FAULT_PLANS, JobSpec, expand_matrix, smoke_matrix
from .search import CATALOG_CANDIDATES, search_catalog
from .workloads import WORKLOADS

__all__ = [
    "OperatorCache",
    "CampaignEngine",
    "campaign_report",
    "JobSpec",
    "FAULT_PLANS",
    "expand_matrix",
    "smoke_matrix",
    "CATALOG_CANDIDATES",
    "search_catalog",
    "WORKLOADS",
]
