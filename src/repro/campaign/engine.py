"""The campaign engine: bounded worker pool + ledger-backed resume.

One campaign = one expanded job matrix run to completion against one
run ledger.  The engine is deliberately stateless between runs — the
ledger *is* the state:

* **resume contract** — before running, the engine asks the ledger for
  the set of fingerprints whose latest record is ``ok`` and skips those
  jobs; failed and never-recorded jobs run.  Killing a campaign at any
  point and restarting it therefore does no duplicate work and ends
  with the same deterministic values as an uninterrupted run;
* **concurrency contract** — each job is its own
  :class:`~repro.parallel.simmpi.VirtualCluster` (no shared virtual
  state), job values are derived from cluster state only (never the
  process-global metrics registry, which concurrent jobs would
  cross-talk through), and ledger appends are single atomic writes;
* **attribution** — every job records its event graph; the engine
  aggregates per-job ``analyze()`` summaries across the campaign
  (:func:`~repro.obs.critpath.aggregate_analyses`) and can persist the
  graphs for ``campaign search``.

Host wall-clock (queue time, per-job elapsed) rides in ``timings``
where the drift detector merely warns; everything gated is virtual.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from ..machines.catalog import MACHINES, NETWORKS
from ..obs.critpath import CritPathRecorder, aggregate_analyses, analyze
from ..obs.runlog import RunLedger
from ..parallel.simmpi import VirtualCluster
from .cache import OperatorCache
from .matrix import FAULT_PLANS, JobSpec, expand_matrix
from .workloads import WORKLOADS

__all__ = ["CampaignEngine", "campaign_report"]

BENCH = "campaign"


class CampaignEngine:
    """Run an expanded job matrix as a resumable service."""

    def __init__(
        self,
        ledger: RunLedger | str | Path,
        matrix: dict[str, Any],
        workers: int = 4,
        bench: str = BENCH,
        artifacts_dir: str | Path | None = None,
    ):
        self.ledger = ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
        self.matrix = matrix
        self.jobs = expand_matrix(matrix)
        self.workers = max(1, int(workers))
        self.bench = bench
        self.artifacts_dir = Path(artifacts_dir) if artifacts_dir else None
        self.cache = OperatorCache()

    # -- single job ----------------------------------------------------------

    def _run_job(self, job: JobSpec) -> dict[str, Any]:
        """One virtual-cluster run; returns the job's ledger payload."""
        machine = MACHINES[job.machine]
        network = NETWORKS[job.network]
        plan = FAULT_PLANS[job.fault_plan]
        rank_fn = WORKLOADS[job.workload](job.params, job.machine, self.cache)
        recorder = CritPathRecorder()
        cluster = VirtualCluster(
            job.nprocs,
            network=network,
            cpu=machine.cpu,
            faults=plan,
            critpath=recorder,
        )
        t0 = time.perf_counter()
        results = cluster.run(rank_fn)
        elapsed = time.perf_counter() - t0
        summary = analyze(recorder.graph)
        return {
            "values": {
                "check": results[0],
                "wall_virtual": cluster.max_wall,
                "cpu_virtual": cluster.max_cpu,
                "bytes_sent": sum(st.sent_bytes for st in cluster.ranks),
                "messages": sum(st.messages for st in cluster.ranks),
            },
            "timings": {"elapsed_s": elapsed},
            "critpath": summary,
            "graph": recorder.graph.to_dict(),
        }

    def _graph_path(self, job: JobSpec) -> Path:
        assert self.artifacts_dir is not None
        return self.artifacts_dir / f"graph-{job.fingerprint}.json"

    # -- the campaign --------------------------------------------------------

    def run(self, stop_after: int | None = None) -> dict[str, Any]:
        """Run every job not yet completed in the ledger.

        ``stop_after`` aborts the campaign after that many job records
        have been appended (the resume test's host-level kill): workers
        that have not started yet stop picking up jobs, so the ledger
        is left mid-queue exactly as a killed process would leave it.
        """
        completed = self.ledger.completed(bench=self.bench)
        skipped = [j for j in self.jobs if j.fingerprint in completed]
        queue = [j for j in self.jobs if j.fingerprint not in completed]
        recorded = 0
        lock = threading.Lock()
        abort = threading.Event()
        outcomes: dict[str, str] = {}
        analyses: dict[str, dict[str, Any]] = {}

        def worker(job: JobSpec) -> None:
            nonlocal recorded
            if abort.is_set():
                return
            try:
                payload = self._run_job(job)
            except Exception as exc:
                with lock:
                    if abort.is_set():
                        return
                    self.ledger.append(
                        self.bench,
                        job.config(),
                        values={},
                        timings={},
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    outcomes[job.job_id] = "failed"
                    recorded += 1
                    if stop_after is not None and recorded >= stop_after:
                        abort.set()
                return
            if self.artifacts_dir is not None:
                self.artifacts_dir.mkdir(parents=True, exist_ok=True)
                with self._graph_path(job).open("w") as fh:
                    json.dump(payload["graph"], fh, sort_keys=True)
            with lock:
                if abort.is_set():
                    return
                self.ledger.append(
                    self.bench,
                    job.config(),
                    values=payload["values"],
                    timings=payload["timings"],
                    critpath=payload["critpath"],
                )
                outcomes[job.job_id] = "ok"
                analyses[job.job_id] = payload["critpath"]
                recorded += 1
                if stop_after is not None and recorded >= stop_after:
                    abort.set()

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            list(pool.map(worker, queue))
        failed = sorted(k for k, v in outcomes.items() if v == "failed")
        return {
            "config": {"matrix": self.matrix, "bench": self.bench},
            "jobs": len(self.jobs),
            "skipped": len(skipped),
            "ran": len(outcomes),
            "failed": failed,
            "aborted": abort.is_set(),
            "cache": self.cache.stats(),
            "aggregate": aggregate_analyses(analyses),
            "campaign_elapsed_s": time.perf_counter() - t0,
        }


def campaign_report(
    ledger: RunLedger, matrix: dict[str, Any], bench: str = BENCH
) -> dict[str, Any]:
    """Resume-invariant campaign report from the ledger's latest records.

    Built purely from each job's **latest** ledger record, so a campaign
    that was killed and resumed three times reports byte-identically to
    one uninterrupted run — this is the report the regression gate and
    the committed smoke baseline consume.  Host timings and the cache
    hit pattern are intentionally absent: they are run-shaped, not
    configuration-shaped.
    """
    jobs = expand_matrix(matrix)
    latest: dict[str, dict[str, Any]] = {}
    for rec in ledger.records(bench=bench):
        latest[rec["fingerprint"]] = rec
    per_job: dict[str, Any] = {}
    analyses: dict[str, dict[str, Any]] = {}
    missing: list[str] = []
    failed: list[str] = []
    for job in jobs:
        rec = latest.get(job.fingerprint)
        if rec is None:
            missing.append(job.job_id)
            continue
        if rec.get("status", "ok") != "ok":
            failed.append(job.job_id)
            continue
        per_job[job.job_id] = dict(rec.get("values", {}))
        if rec.get("critpath"):
            analyses[job.job_id] = rec["critpath"]
    return {
        "config": {"matrix": matrix, "bench": bench},
        "jobs": {
            "total": len(jobs),
            "completed": len(per_job),
            "failed": sorted(failed),
            "missing": sorted(missing),
        },
        "per_job": per_job,
        "aggregate": aggregate_analyses(analyses),
    }
