"""Communication-protocol checker (REPRO010–REPRO013).

Static AST/dataflow analysis over every ``send``/``recv``/``sendrecv``/
collective call site on a *comm-like* receiver — a name ``comm``, a
parameter annotated ``VirtualComm``, or an attribute chain ending in
``.comm``.  Four rules, each the static face of a finalize-time verifier
finding (:mod:`repro.analysis.vocab` maps both sides to one code):

``tag-pairing`` (REPRO010)
    Constant send tags and recv tags are paired across the whole
    analyzed corpus; a send tag with no matching recv anywhere (or vice
    versa) is the static shape of the verifier's *unmatched send*.
    ``sendrecv`` contributes both directions.  Non-constant tags are
    skipped — the checker only reports what it can prove.

``rank-conditional-collective`` (REPRO011)
    A collective issued under a conditional whose test reads a rank
    (``if comm.rank == 0: comm.barrier()``) is a static deadlock: ranks
    that skip the branch never arrive, which the runtime verifier
    reports as an incomplete collective or a collective-order mismatch.

``unguarded-recv`` (REPRO012)
    In a *fault-bearing* module (one that imports the fault-injection
    machinery or passes a fault plan), a blocking ``recv`` with no
    ``timeout=`` and no enclosing ``try`` that catches ``RecvTimeout``/
    ``RankFailure`` turns a dropped message into a hang.

``uncounted-payload`` (REPRO013)
    A send whose payload expression performs raw numpy compute inline
    (``comm.send(dst, a @ b, tag=3)``) produces bytes that were never
    charge-counted; compute the payload through counted kernels first,
    then send the result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .vocab import RULES

__all__ = ["CommSite", "check_ctx", "pair_sites"]

P2P_SENDS = {"send"}
P2P_RECVS = {"recv"}
COLLECTIVES = {
    "barrier",
    "alltoall",
    "allreduce",
    "bcast",
    "gather",
    "allgather",
    "scatter",
    "reduce",
}
_GUARD_EXCEPTIONS = {
    "RecvTimeout",
    "RankFailure",
    "TimeoutError",
    "Exception",
    "BaseException",
}


@dataclass(frozen=True)
class CommSite:
    """One p2p call site, as far as it can be resolved statically."""

    path: str
    line: int
    col: int
    op: str  # "send" | "recv"
    tag: int | None  # constant tag, or None when not statically known


def _terminal_attr(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _annotated_comm_params(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for a in list(node.args.posonlyargs) + list(node.args.args) + list(
                node.args.kwonlyargs
            ):
                if a.annotation is not None and "VirtualComm" in ast.unparse(
                    a.annotation
                ):
                    names.add(a.arg)
    return names


def _contains_rank_read(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
    return False


def _constant_int(node: ast.expr | None) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _payload_computes_inline(node: ast.expr, table) -> str | None:
    """Description of raw compute inside a payload expression, or None."""
    from .linter import _classify_call  # shared call taxonomy

    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.MatMult):
            return "'@' (matrix multiply)"
        if isinstance(sub, ast.Call):
            dotted = table.resolve(sub.func)
            if dotted is None:
                continue
            kinds = _classify_call(dotted)
            if "compute" in kinds or "rawnp" in kinds:
                return f"{dotted}()"
    return None


def _module_is_fault_bearing(ctx) -> bool:
    """True when the file imports the fault machinery or passes a fault
    plan — the code paths where messages can be lost or delayed."""
    assert ctx.tree is not None and ctx.table is not None
    if any(
        v.startswith("repro.parallel.faults.") for v in ctx.table.objects.values()
    ):
        return True
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = [a.name for a in node.names]
            mod = getattr(node, "module", "") or ""
            if "faults" in names or mod.endswith("faults"):
                return True
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg in ("faults", "fault_plan"):
                    return True
    return False


class _Scanner(ast.NodeVisitor):
    """One pass over a file: collects p2p sites and per-file findings."""

    def __init__(self, ctx, comm_params: set[str], fault_bearing: bool):
        self.ctx = ctx
        self.comm_params = comm_params
        self.fault_bearing = fault_bearing
        self.rank_depth = 0
        self.guard_depth = 0
        self.sites: list[CommSite] = []
        # (line, col, rule, message)
        self.findings: list[tuple[int, int, str, str]] = []

    # -- scope management ---------------------------------------------

    def _visit_body(self, stmts) -> None:
        for s in stmts:
            self.visit(s)

    def visit_FunctionDef(self, node):
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node):
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        # A nested def is not executed where it appears: its body starts
        # from a clean conditional/guard context.
        saved = (self.rank_depth, self.guard_depth)
        self.rank_depth = self.guard_depth = 0
        self._visit_body(node.body)
        self.rank_depth, self.guard_depth = saved

    def visit_If(self, node):
        self.visit(node.test)
        rank = _contains_rank_read(node.test)
        self.rank_depth += 1 if rank else 0
        self._visit_body(node.body)
        self._visit_body(node.orelse)
        self.rank_depth -= 1 if rank else 0

    def visit_While(self, node):
        self.visit(node.test)
        rank = _contains_rank_read(node.test)
        self.rank_depth += 1 if rank else 0
        self._visit_body(node.body)
        self._visit_body(node.orelse)
        self.rank_depth -= 1 if rank else 0

    def visit_IfExp(self, node):
        self.visit(node.test)
        rank = _contains_rank_read(node.test)
        self.rank_depth += 1 if rank else 0
        self.visit(node.body)
        self.visit(node.orelse)
        self.rank_depth -= 1 if rank else 0

    def visit_Try(self, node):
        guards = False
        for h in node.handlers:
            types = []
            if h.type is None:
                guards = True
            elif isinstance(h.type, ast.Tuple):
                types = [_terminal_attr(t) for t in h.type.elts]
            else:
                types = [_terminal_attr(h.type)]
            if any(t in _GUARD_EXCEPTIONS for t in types):
                guards = True
        self.guard_depth += 1 if guards else 0
        self._visit_body(node.body)
        self.guard_depth -= 1 if guards else 0
        for h in node.handlers:
            self._visit_body(h.body)
        self._visit_body(node.orelse)
        self._visit_body(node.finalbody)

    # -- call sites ----------------------------------------------------

    def _is_comm_base(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "comm" or node.id in self.comm_params
        if isinstance(node, ast.Attribute):
            return node.attr == "comm"
        return False

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute) and self._is_comm_base(func.value):
            op = func.attr
            if op in P2P_SENDS:
                self._record_send(node)
            elif op in P2P_RECVS:
                self._record_recv(node)
            elif op == "sendrecv":
                self._record_sendrecv(node)
            elif op in COLLECTIVES:
                self._check_collective(node, op)
        self.generic_visit(node)

    def _tag_of(self, node: ast.Call, pos: int) -> tuple[int | None, bool]:
        """(constant tag, statically-known) — default tag is 0."""
        expr = _keyword(node, "tag")
        if expr is None and len(node.args) > pos:
            expr = node.args[pos]
        if expr is None:
            return 0, True
        value = _constant_int(expr)
        return value, value is not None

    def _record_send(self, node: ast.Call) -> None:
        tag, known = self._tag_of(node, pos=2)
        self.sites.append(
            CommSite(self.ctx.path, node.lineno, node.col_offset, "send", tag if known else None)
        )
        payload = _keyword(node, "obj")
        if payload is None and len(node.args) > 1:
            payload = node.args[1]
        if payload is not None:
            desc = _payload_computes_inline(payload, self.ctx.table)
            if desc is not None:
                self.findings.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "uncounted-payload",
                        f"send payload computes {desc} inline, so its flops and "
                        "bytes are never charge-counted; compute through counted "
                        "kernels first, then send the result",
                    )
                )

    def _record_recv(self, node: ast.Call) -> None:
        tag, known = self._tag_of(node, pos=1)
        self.sites.append(
            CommSite(self.ctx.path, node.lineno, node.col_offset, "recv", tag if known else None)
        )
        if (
            self.fault_bearing
            and _keyword(node, "timeout") is None
            and self.guard_depth == 0
        ):
            self.findings.append(
                (
                    node.lineno,
                    node.col_offset,
                    "unguarded-recv",
                    "blocking recv in a fault-bearing module has no timeout= and "
                    "no enclosing try that catches RecvTimeout/RankFailure: a "
                    "dropped message becomes a hang instead of a recoverable fault",
                )
            )

    def _record_sendrecv(self, node: ast.Call) -> None:
        tag, known = self._tag_of(node, pos=3)
        resolved = tag if known else None
        for op in ("send", "recv"):
            self.sites.append(
                CommSite(self.ctx.path, node.lineno, node.col_offset, op, resolved)
            )

    def _check_collective(self, node: ast.Call, op: str) -> None:
        if self.rank_depth > 0:
            self.findings.append(
                (
                    node.lineno,
                    node.col_offset,
                    "rank-conditional-collective",
                    f"collective {op}() under a rank-dependent conditional: ranks "
                    "that skip the branch never arrive, which is a deadlock the "
                    "runtime verifier reports as an incomplete collective",
                )
            )


def check_ctx(ctx, select):
    """Per-file protocol rules; returns ``(diags, p2p_sites)``.

    ``ctx`` is a :class:`repro.analysis.linter._FileContext`; the tag
    pairing over the returned sites happens corpus-wide in
    :func:`pair_sites`.
    """
    from .linter import Diagnostic

    assert ctx.tree is not None

    def on(rule: str) -> bool:
        if select is not None:
            return rule in select
        return ctx.pkg is not None

    scanner = _Scanner(
        ctx,
        comm_params=_annotated_comm_params(ctx.tree),
        fault_bearing=_module_is_fault_bearing(ctx),
    )
    scanner.visit(ctx.tree)
    diags = []
    for line, col, rule, message in scanner.findings:
        if not on(rule):
            continue
        if ctx.covered(rule, line):
            continue
        diags.append(
            Diagnostic(ctx.path, line, col, RULES[rule][0], rule, message)
        )
    sites = scanner.sites if (select is None or "tag-pairing" in select) else []
    if select is None and ctx.pkg is None:
        sites = []
    return diags, sites


def pair_sites(sites, ctx_by_path):
    """Corpus-wide tag pairing (REPRO010).

    Every constant send tag must have at least one recv with the same
    tag somewhere in the corpus, and vice versa.  This is deliberately
    corpus-level, not per-file: the NekTar-F pairwise exchange sends in
    one module what a peer receives via the same module on another
    rank, so the proof obligation is global.
    """
    from .linter import Diagnostic

    code = RULES["tag-pairing"][0]
    send_tags = {s.tag for s in sites if s.op == "send" and s.tag is not None}
    recv_tags = {s.tag for s in sites if s.op == "recv" and s.tag is not None}
    diags = []
    for site in sites:
        if site.tag is None:
            continue
        if site.op == "send" and site.tag not in recv_tags:
            msg = (
                f"send with tag={site.tag} has no recv with a matching tag "
                "anywhere in the analyzed corpus — the runtime face of this "
                "is an unmatched send at finalize"
            )
        elif site.op == "recv" and site.tag not in send_tags:
            msg = (
                f"recv with tag={site.tag} has no send with a matching tag "
                "anywhere in the analyzed corpus — this recv can never be "
                "satisfied and will deadlock or time out"
            )
        else:
            continue
        ctx = ctx_by_path.get(site.path)
        if ctx is not None and ctx.covered("tag-pairing", site.line):
            continue
        diags.append(
            Diagnostic(site.path, site.line, site.col, code, "tag-pairing", msg)
        )
    return diags
