"""One diagnostic vocabulary for static and runtime communication checks.

The protocol checker (:mod:`repro.analysis.protocol`) and the
finalize-time communication verifier
(:meth:`repro.parallel.simmpi.VirtualCluster.verify_communication`)
look for the same defect classes from two sides: the checker proves
their *shape* absent from the source, the verifier catches the
*instance* a run actually produced.  Both sides tag their findings with
the codes defined here, so a CI failure and a lint finding about the
same defect read as one diagnostic.

This module is import-free on purpose: :mod:`repro.parallel.simmpi`
imports it without pulling the AST machinery in, and the analysis side
imports it without touching the simulator.
"""

from __future__ import annotations

__all__ = [
    "RULES",
    "RUNTIME_CODES",
    "WAIVER_CODE",
    "code_for",
    "name_for",
]

#: Diagnostic code for meta-problems: malformed/unknown/stale waivers
#: and syntax errors — problems with the analysis inputs themselves.
WAIVER_CODE = "REPRO000"

#: rule name -> (code, one-line summary).  REPRO001-003 are the PR-1
#: invariant rules; REPRO004-006 the determinism sanitizer; REPRO010-013
#: the communication-protocol checker.
RULES: dict[str, tuple[str, str]] = {
    "accounting": (
        "REPRO001",
        "hot-path kernels must charge the ambient OpCounter",
    ),
    "virtual-time": (
        "REPRO002",
        "virtual-time rank code must not touch real clocks or raw threads",
    ),
    "raw-numpy": (
        "REPRO003",
        "hot paths must use the counted repro.linalg.blas kernels",
    ),
    "unseeded-rng": (
        "REPRO004",
        "random draws must come from an explicitly seeded generator",
    ),
    "wall-clock": (
        "REPRO005",
        "priced numeric code must not read host clocks",
    ),
    "unordered-iteration": (
        "REPRO006",
        "rank-keyed dicts and sets must be iterated in sorted order",
    ),
    "tag-pairing": (
        "REPRO010",
        "every send tag needs a matching recv tag at the paired endpoint",
    ),
    "rank-conditional-collective": (
        "REPRO011",
        "collectives must not sit under rank-dependent conditionals",
    ),
    "unguarded-recv": (
        "REPRO012",
        "recv in fault-bearing code needs a timeout/retry guard",
    ),
    "uncounted-payload": (
        "REPRO013",
        "message payloads must be computed through counted kernels first",
    ),
}

#: Runtime verifier finding kind -> diagnostic code.  The finalize-time
#: verifier appends these codes to its problem strings so runtime
#: failures cite the same vocabulary as the static checker:
#:
#: * an ``unmatched_send`` at finalize is the runtime instance of a
#:   statically mispaired endpoint (REPRO010);
#: * a ``deadlock``, ``collective_order`` mismatch or ``incomplete
#:   collective`` is the runtime shape REPRO011 bans statically;
#: * a ``recv_timeout`` is what REPRO012's missing guard turns into;
#: * a ``byte_conservation`` failure means some payload's bytes were
#:   never accounted end-to-end — the runtime face of REPRO013;
#: * a ``race`` from the vector-clock sanitizer is the runtime twin of
#:   REPRO006's unordered-iteration hazard: cross-rank state touched
#:   without a happens-before edge;
#: * a ``scheduler_stall`` is runtime-only (no static twin): the host
#:   scheduler found no runnable rank yet the virtual-semantics
#:   classifier declined to call it a communication deadlock — a broken
#:   engine invariant (lost wakeup, defeated classifier), surfaced as a
#:   typed :class:`repro.parallel.scheduler.SchedulerDeadlock` instead
#:   of a hang.
RUNTIME_CODES: dict[str, str] = {
    "unmatched_send": "REPRO010",
    "deadlock": "REPRO011",
    "collective_order": "REPRO011",
    "incomplete_collective": "REPRO011",
    "recv_timeout": "REPRO012",
    "byte_conservation": "REPRO013",
    "race": "REPRO006",
    "scheduler_stall": "REPRO014",
}

_CODE_TO_NAME = {code: name for name, (code, _) in RULES.items()}


def code_for(rule: str) -> str:
    """Diagnostic code of a rule name (``'tag-pairing'`` -> ``'REPRO010'``)."""
    return RULES[rule][0]


def name_for(token: str) -> str | None:
    """Normalise a waiver token (rule name or REPROxxx code) to a rule
    name, or None if it names no known rule."""
    if token in RULES:
        return token
    return _CODE_TO_NAME.get(token)
