"""CLI for the static-analysis suite: ``python -m repro.analysis [paths...]``.

Exits 0 when every checked file is clean (or every finding is covered
by the baseline), 1 when any unbaselined diagnostic is emitted, 2 on
usage errors — including a ``--select``/waiver token that names no
known rule.  Default path is ``src`` when run from the repository root,
falling back to the installed ``repro`` package tree.

``--format json`` emits one object per diagnostic; ``--format sarif``
emits a SARIF 2.1.0 log suitable for code-scanning upload.
``--baseline FILE`` suppresses findings whose fingerprint is recorded
in the committed baseline (and reports baseline entries that no longer
fire, so the baseline only ever shrinks); ``--write-baseline`` rewrites
the file from the current findings.  ``--select RULE[,RULE...]``
restricts the run to the named rules and forces them in scope on every
file — the seed audit runs ``--select REPRO004 tests benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .linter import Diagnostic, RULES, lint_paths
from .vocab import WAIVER_CODE

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _default_paths() -> list[str]:
    if Path("src/repro").is_dir():
        return ["src"]
    return [str(Path(__file__).resolve().parents[1])]


def _to_json(diags: list[Diagnostic]) -> str:
    return json.dumps(
        [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "code": d.code,
                "rule": d.rule,
                "message": d.message,
            }
            for d in diags
        ],
        indent=2,
    )


def _to_sarif(diags: list[Diagnostic]) -> str:
    rules = [
        {
            "id": code,
            "name": rule,
            "shortDescription": {"text": summary},
        }
        for rule, (code, summary) in sorted(RULES.items(), key=lambda kv: kv[1][0])
    ]
    rules.insert(
        0,
        {
            "id": WAIVER_CODE,
            "name": "meta",
            "shortDescription": {
                "text": "malformed, unknown or stale waivers and syntax errors"
            },
        },
    )
    results = [
        {
            "ruleId": d.code,
            "level": "error",
            "message": {"text": f"[{d.rule}] {d.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            "startColumn": max(d.col, 0) + 1,
                        },
                    }
                }
            ],
        }
        for d in diags
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


def _load_baseline(path: Path) -> list[str]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError("baseline must be an object with a 'findings' list")
    return list(data["findings"])


def _write_baseline(path: Path, diags: list[Diagnostic]) -> None:
    payload = {
        "comment": (
            "Fingerprints of accepted pre-existing findings; new findings "
            "fail the build.  Regenerate with --write-baseline."
        ),
        "findings": sorted({d.fingerprint() for d in diags}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static-analysis suite: accounting/virtual-time/raw-numpy "
        "invariants, determinism sanitizer (REPRO004-006) and "
        "communication-protocol checker (REPRO010-013).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ or the installed package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names/codes to run, forced in scope on "
        "every file (audit mode; disables stale-waiver detection)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON findings baseline; recorded findings are suppressed, "
        "stale baseline entries are reported",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(f"{WAIVER_CODE}  {'meta':<26} malformed/unknown/stale waivers, syntax errors")
        for rule, (code, summary) in sorted(RULES.items(), key=lambda kv: kv[1][0]):
            print(f"{code}  {rule:<26} {summary}")
        return 0

    select = None
    if args.select:
        select = [t.strip() for t in args.select.split(",") if t.strip()]

    paths = args.paths or _default_paths()
    for p in paths:
        if not Path(p).exists():
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2

    try:
        diags = lint_paths(paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        _write_baseline(Path(args.baseline), diags)
        print(f"wrote {len(diags)} finding(s) to {args.baseline}", file=sys.stderr)
        return 0

    stale_baseline: list[str] = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: no such baseline: {args.baseline}", file=sys.stderr)
            return 2
        try:
            accepted = _load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"error: bad baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        fired = {d.fingerprint() for d in diags}
        stale_baseline = sorted(f for f in accepted if f not in fired)
        diags = [d for d in diags if d.fingerprint() not in set(accepted)]

    if args.format == "json":
        print(_to_json(diags))
    elif args.format == "sarif":
        print(_to_sarif(diags))
    else:
        for d in diags:
            print(d.format())

    failed = False
    if diags:
        print(f"{len(diags)} problem(s) found", file=sys.stderr)
        failed = True
    for fp in stale_baseline:
        print(f"stale baseline entry (no longer fires): {fp}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
