"""CLI for the invariant linter: ``python -m repro.analysis [paths...]``.

Exits 0 when every checked file is clean, 1 when any diagnostic is
emitted, 2 on usage errors.  Default path is ``src`` when run from the
repository root, falling back to the installed ``repro`` package tree.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .linter import RULES, lint_paths


def _default_paths() -> list[str]:
    if Path("src/repro").is_dir():
        return ["src"]
    return [str(Path(__file__).resolve().parents[1])]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check repo-specific invariants (accounting, "
        "virtual-time purity, counted-BLAS usage).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ or the installed package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, (code, summary) in sorted(RULES.items(), key=lambda kv: kv[1][0]):
            print(f"{code}  {rule:<14} {summary}")
        return 0

    paths = args.paths or _default_paths()
    for p in paths:
        if not Path(p).exists():
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2

    diags = lint_paths(paths)
    for d in diags:
        print(d.format())
    if diags:
        print(f"{len(diags)} problem(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
