"""Static invariant checks for the reproduction codebase.

The cost tables (Tables 1-3) are priced from two invariants the rest of
the code enforces only by convention:

* **accounting** — every hot-path kernel in the spectral/assembly/BLAS
  substrate must charge the ambient :class:`~repro.linalg.counters.OpCounter`;
* **virtual-time** — rank code running on the simulated cluster must not
  touch real wall clocks or raw threads: the virtual clocks of
  :mod:`repro.parallel.simmpi` are the only sanctioned time source;
* **raw-numpy** — solver hot paths must route linear algebra through the
  counted :mod:`repro.linalg.blas` kernels, not raw ``np.dot`` / ``@``.

:mod:`repro.analysis.linter` machine-checks all three with a small
AST-based linter (stdlib only); ``python -m repro.analysis src`` runs it
from the command line, and the tier-1 suite runs it over the whole tree.
"""

from .linter import (
    RULES,
    Diagnostic,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "lint_file",
    "lint_paths",
    "lint_source",
]
