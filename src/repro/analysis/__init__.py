"""Static-analysis suite for the reproduction codebase.

The cost tables (Tables 1-3) are priced from invariants the rest of the
code enforces only by convention, and the golden tests depend on runs
being bitwise-reproducible.  Three engines machine-check both (stdlib
only, AST-based):

* the **invariant linter** (:mod:`repro.analysis.linter`) — REPRO001
  accounting, REPRO002 virtual-time purity, REPRO003 counted-BLAS
  usage;
* the **determinism sanitizer** — static rules REPRO004 (unseeded
  RNG), REPRO005 (host-clock reads in priced code) and REPRO006
  (unordered iteration over rank-keyed collections), with a runtime
  race-detector twin in :mod:`repro.parallel.sanitizer` driven by
  ``VirtualCluster(sanitize=True)``;
* the **communication-protocol checker**
  (:mod:`repro.analysis.protocol`) — REPRO010 tag pairing, REPRO011
  rank-conditional collectives, REPRO012 unguarded recv in
  fault-bearing code, REPRO013 uncounted payloads — sharing one
  diagnostic vocabulary (:mod:`repro.analysis.vocab`) with the
  finalize-time communication verifier so static findings and runtime
  failures cite the same codes.

``python -m repro.analysis src`` runs everything from the command line
(``--format json|sarif``, ``--baseline``, ``--select``), and the tier-1
suite runs it over the whole tree.
"""

from .linter import (
    RULES,
    Diagnostic,
    lint_file,
    lint_files,
    lint_paths,
    lint_source,
)
from .vocab import RUNTIME_CODES, WAIVER_CODE, code_for, name_for

__all__ = [
    "RULES",
    "RUNTIME_CODES",
    "WAIVER_CODE",
    "Diagnostic",
    "code_for",
    "name_for",
    "lint_file",
    "lint_files",
    "lint_paths",
    "lint_source",
]
