"""AST-based invariant linter (stdlib only).

Six repo-specific rules, each scoped to the packages where its
invariant is load-bearing, plus the communication-protocol rules of
:mod:`repro.analysis.protocol` which run through the same driver:

``accounting`` (REPRO001)
    In ``linalg/``, ``spectral/``, ``assembly/`` and ``fourier/``, any
    function that evaluates a numpy compute primitive (``np.dot``,
    ``@``, ``np.einsum``, ``np.linalg.solve`` ...) must also charge the
    ambient :class:`~repro.linalg.counters.OpCounter` — by calling
    ``charge()`` or one of the counted :mod:`repro.linalg.blas` kernels
    — so the work it does shows up in the priced cost tables.

``virtual-time`` (REPRO002)
    In ``ns/`` and ``parallel/``, and in any *rank function* (first
    parameter named ``comm`` or annotated ``VirtualComm``) anywhere in
    the tree, real wall-clock primitives (``time.time``,
    ``time.perf_counter``, ``datetime.now`` ...) and raw ``threading``
    primitives are forbidden: virtual-time code must read the rank's
    virtual clocks.

``raw-numpy`` (REPRO003)
    In ``ns/`` and ``parallel/`` and in rank functions, raw numpy
    linear algebra (``np.dot``, ``np.matmul``, ``np.einsum``, the ``@``
    operator) sidesteps the counted BLAS substrate and is flagged.

``unseeded-rng`` (REPRO004)
    Anywhere under ``repro``, draws from the process-global RNGs
    (``np.random.rand``, ``random.random`` ...) and unseeded generator
    constructions (``np.random.default_rng()`` with no argument) are
    forbidden: every random number that can reach a priced quantity or
    a golden trajectory must come from an explicitly seeded generator.

``wall-clock`` (REPRO005)
    In the deterministic numeric core (``linalg/``, ``spectral/``,
    ``assembly/``, ``fourier/``, ``solvers/``, ``machines/``,
    ``mesh/``, ``io/``), host-clock reads are forbidden outright —
    priced numbers must be pure functions of their inputs.  (``ns/``
    and ``parallel/`` are covered by the stricter ``virtual-time``
    rule; ``util/`` hosts the sanctioned ``StageTimer``.)

``unordered-iteration`` (REPRO006)
    In ``ns/``, ``parallel/`` and ``fourier/`` and in rank functions,
    iterating a set, or a dict that dataflow shows is keyed by rank
    (``d[comm.rank] = ...``, ``d.setdefault(peer, ...)``), without a
    ``sorted()`` wrapper is flagged: arrival order of per-rank entries
    depends on host thread scheduling, so unordered iteration is a
    bitwise-determinism hazard.

Waivers
-------
A violation that is intentional is silenced with a waiver comment that
must carry a reason::

    x = a @ b  # repro: waive[raw-numpy] complex-valued; charged explicitly

The comment may sit on any line of the flagged *statement* (including
the closing line of a wrapped call), the line above the statement, or
on (or above) the enclosing ``def`` — including above its decorators.
Rules may be named by name or by code (``waive[REPRO003]``).  A whole
file opts out of one rule with::

    # repro: waive-file[virtual-time] virtual-time substrate implementation

A waiver with an unknown rule name or an empty reason is itself a
diagnostic (REPRO000), and so is a *stale* waiver — one that no longer
suppresses anything — so waivers stay auditable and get cleaned up.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .vocab import RULES, WAIVER_CODE, name_for

__all__ = [
    "RULES",
    "Diagnostic",
    "lint_source",
    "lint_file",
    "lint_files",
    "lint_paths",
]

ACCOUNTING_PACKAGES = {"linalg", "spectral", "assembly", "fourier"}
VIRTUAL_TIME_PACKAGES = {"ns", "parallel"}
RAW_NUMPY_PACKAGES = {"ns", "parallel"}
# Deterministic numeric core: host-clock reads banned outright.
DETERMINISM_PACKAGES = {
    "linalg",
    "spectral",
    "assembly",
    "fourier",
    "solvers",
    "machines",
    "mesh",
    "io",
}
# Rank-keyed collections must be iterated in sorted order here.
ORDERED_ITERATION_PACKAGES = {"ns", "parallel", "fourier"}

# numpy compute primitives that represent priced floating-point work.
_NUMPY_COMPUTE = {"dot", "vdot", "matmul", "einsum", "tensordot"}
_NUMPY_LINALG = {
    "solve",
    "inv",
    "cholesky",
    "lstsq",
    "pinv",
    "eig",
    "eigh",
    "eigvals",
    "eigvalsh",
    "svd",
    "qr",
    "matrix_power",
}
_SCIPY_LINALG = {
    "solve",
    "cholesky",
    "cho_factor",
    "cho_solve",
    "cholesky_banded",
    "cho_solve_banded",
    "solve_banded",
    "solveh_banded",
    "lu_factor",
    "lu_solve",
    "eigh_tridiagonal",
}
_CLOCK_CALLS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "monotonic",
    "monotonic_ns",
    "thread_time",
    "thread_time_ns",
    "clock",
    "sleep",
}
_DATETIME_CALLS = {"now", "utcnow", "today"}
_THREADING_NAMES = {
    "Thread",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Timer",
    "local",
}
# Draws on the process-global numpy RNG (hidden, unseeded-by-default
# shared state).  np.random.seed is included: seeding the global RNG is
# still global state — the repo convention is a local default_rng(seed).
_NP_RANDOM_DRAWS = {
    "rand",
    "randn",
    "random",
    "randint",
    "random_integers",
    "random_sample",
    "ranf",
    "sample",
    "uniform",
    "normal",
    "standard_normal",
    "choice",
    "shuffle",
    "permutation",
    "bytes",
    "beta",
    "binomial",
    "exponential",
    "gamma",
    "poisson",
    "seed",
}
_PY_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "gauss",
    "normalvariate",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "betavariate",
    "expovariate",
    "triangular",
    "vonmisesvariate",
    "getrandbits",
    "seed",
}
# Generator constructors that are fine *with* a seed argument but are
# unseeded (OS-entropy) when called bare.
_SEEDABLE_CTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}
# Includes the batched (stacked) kernels: they charge identical flops and
# bytes to the per-element calls they replace, so they are counted
# substrate for the accounting and raw-numpy rules alike.
_BLAS_KERNELS = {
    "dcopy",
    "daxpy",
    "daxpy_batched",
    "ddot",
    "ddot_batched",
    "dscal",
    "dscal_batched",
    "dnrm2",
    "dgemv",
    "dgemv_batched",
    "dgemm",
    "dgemm_batched",
    "dtrsm_batched",
    "dvmul",
    "dvmul_batched",
    "dvadd",
    "dsvtvp",
}
# Counted non-blas kernels: the z-direction real FFT pair charges the
# ambient counter itself (split rfft/irfft pricing), so calling it is
# charging compute just like a blas call.
_FOURIER_KERNELS = {"fft_z", "ifft_z"}

# Names that (by this repo's conventions) hold a rank index.
_RANKISH_NAMES = {
    "rank",
    "src",
    "dst",
    "dest",
    "source",
    "peer",
    "partner",
    "me",
    "dead",
    "root",
}
# Iterating inside these calls is order-insensitive (or re-ordered).
_ORDER_INSENSITIVE_WRAPPERS = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*waive(?P<file>-file)?\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One linter finding, formatted ``path:line:col: CODE [rule] msg``."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Line-insensitive identity used by the findings baseline."""
        return f"{self.path}::{self.code}::{self.rule}::{self.message}"


@dataclass
class _WaiverEntry:
    line: int
    col: int
    rules: set[str]
    raw: str
    is_file: bool
    used: set[str] = field(default_factory=set)


@dataclass
class _Waivers:
    entries: list[_WaiverEntry] = field(default_factory=list)
    problems: list[tuple[int, int, str]] = field(default_factory=list)

    def __post_init__(self):
        self._by_line: dict[int, list[_WaiverEntry]] = {}
        self._file_entries: list[_WaiverEntry] = []

    def add(self, entry: _WaiverEntry) -> None:
        self.entries.append(entry)
        if entry.is_file:
            self._file_entries.append(entry)
        else:
            self._by_line.setdefault(entry.line, []).append(entry)

    def covers(self, rule: str, lines) -> bool:
        """True iff a waiver for ``rule`` sits on one of ``lines`` (or is
        file-wide).  Every matching waiver is credited as used, so two
        waivers that both cover one finding don't read as stale."""
        hit = False
        for e in self._file_entries:
            if rule in e.rules:
                e.used.add(rule)
                hit = True
        for ln in lines:
            for e in self._by_line.get(ln, ()):
                if rule in e.rules:
                    e.used.add(rule)
                    hit = True
        return hit

    def stale(self) -> list[_WaiverEntry]:
        return [e for e in self.entries if not e.used]


def _parse_waivers(source: str) -> _Waivers:
    w = _Waivers()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (t.start[0], t.start[1], t.string)
            for t in tokens
            if t.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for line, col, text in comments:
        m = _WAIVER_RE.search(text)
        if m is None:
            continue
        tokens_ = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        names = {name_for(t) for t in tokens_}
        unknown = sorted(t for t in tokens_ if name_for(t) is None)
        names.discard(None)
        if unknown or not tokens_:
            w.problems.append(
                (line, col, f"waiver names unknown rule(s): {unknown or '(none)'}")
            )
        if not m.group("reason").strip():
            w.problems.append((line, col, "waiver must carry a reason"))
            continue
        if names:
            w.add(
                _WaiverEntry(
                    line=line,
                    col=col,
                    rules=set(names),
                    raw=m.group("rules").strip(),
                    is_file=bool(m.group("file")),
                )
            )
    return w


def _repro_package(path: str) -> str | None:
    """Sub-package under ``repro`` that a file belongs to, or None."""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return parts[i + 1] if parts[i + 1].endswith(".py") is False else ""
    return None


class _ImportTable:
    """Maps local names to canonical dotted modules/objects."""

    def __init__(self, tree: ast.AST):
        self.modules: dict[str, str] = {}  # alias -> canonical module
        self.objects: dict[str, str] = {}  # name -> canonical dotted object
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.modules[name] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                self._import_from(node)

    def _import_from(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            name = alias.asname or alias.name
            if mod in ("time", "threading", "datetime", "numpy", "random"):
                self.objects[name] = f"{mod}.{alias.name}"
            elif mod == "numpy.linalg":
                self.objects[name] = f"numpy.linalg.{alias.name}"
            elif mod == "numpy.random":
                self.objects[name] = f"numpy.random.{alias.name}"
            elif mod in ("scipy.linalg", "scipy"):
                self.objects[name] = f"scipy.linalg.{alias.name}"
            elif mod.endswith("faults") and alias.name in (
                "FaultPlan",
                "CrashSpec",
                "RankFailure",
                "RecvTimeout",
            ):
                self.objects[name] = f"repro.parallel.faults.{alias.name}"
            elif alias.name == "blas" and (mod.endswith("linalg") or mod == ""):
                # from ..linalg import blas / from . import blas
                self.modules[name] = "repro.linalg.blas"
            elif mod.endswith("linalg.blas") or mod == "blas":
                if alias.name in _BLAS_KERNELS:
                    self.objects[name] = f"repro.linalg.blas.{alias.name}"
            elif alias.name == "charge" and (
                mod.endswith("counters") or mod.endswith("linalg")
            ):
                self.objects[name] = "repro.linalg.counters.charge"
            elif alias.name in _BLAS_KERNELS and mod.endswith("linalg"):
                self.objects[name] = f"repro.linalg.blas.{alias.name}"
            elif alias.name in _FOURIER_KERNELS and (
                mod.endswith("transforms") or mod.endswith("fourier")
            ):
                self.objects[name] = f"repro.fourier.transforms.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an attribute/name chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head in self.modules:
            return ".".join([self.modules[head], *parts])
        if head in self.objects:
            return ".".join([self.objects[head], *parts])
        return ".".join([head, *parts])


@dataclass
class _Finding:
    line: int
    col: int
    desc: str
    kind: str  # "compute" | "clock" | "thread" | "rawnp" | "rng"


def _classify_call(dotted: str) -> list[str]:
    """Trigger kinds of one resolved call name."""
    parts = dotted.split(".")
    kinds: list[str] = []
    if parts[0] == "numpy":
        rest = parts[1:]
        if len(rest) == 1 and rest[0] in _NUMPY_COMPUTE:
            kinds += ["compute", "rawnp"]
        elif len(rest) == 2 and rest[0] == "linalg" and rest[1] in _NUMPY_LINALG:
            kinds.append("compute")
        elif len(rest) == 2 and rest[0] == "random" and rest[1] in _NP_RANDOM_DRAWS:
            kinds.append("rng")
        elif len(rest) >= 1 and rest[0] == "fft":
            kinds.append("compute")
    elif parts[0] == "scipy" and len(parts) >= 3 and parts[1] == "linalg":
        if parts[2] in _SCIPY_LINALG:
            kinds.append("compute")
    elif parts[0] == "time" and len(parts) == 2 and parts[1] in _CLOCK_CALLS:
        kinds.append("clock")
    elif parts[0] == "datetime":
        if parts[-1] in _DATETIME_CALLS:
            kinds.append("clock")
    elif parts[0] == "threading" and len(parts) == 2 and parts[1] in _THREADING_NAMES:
        kinds.append("thread")
    elif parts[0] == "random" and len(parts) == 2 and parts[1] in _PY_RANDOM_DRAWS:
        kinds.append("rng")
    return kinds


def _is_charging_call(node: ast.Call, table: _ImportTable) -> bool:
    func = node.func
    # Convention: a helper named charge* / _charge* IS a charging wrapper.
    if isinstance(func, ast.Attribute) and func.attr.lstrip("_").startswith("charge"):
        return True
    dotted = table.resolve(func)
    if dotted is None:
        return False
    last = dotted.rsplit(".", 1)[-1]
    if last.lstrip("_").startswith("charge"):
        return True
    if dotted.startswith("repro.linalg.blas."):
        return True
    if (
        dotted.startswith("repro.fourier.transforms.")
        and dotted.rsplit(".", 1)[-1] in _FOURIER_KERNELS
    ):
        return True
    return False


@dataclass
class _FunctionReport:
    name: str
    def_line: int
    rank_ctx: bool
    charges: bool = False
    findings: list[_Finding] = field(default_factory=list)


def _is_rank_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = list(fn.args.posonlyargs) + list(fn.args.args)
    if args and args[0].arg in ("self", "cls"):
        args = args[1:]
    if args and args[0].arg == "comm":
        return True
    for a in args:
        if a.annotation is not None and "VirtualComm" in ast.unparse(a.annotation):
            return True
    return False


def _own_nodes(fn: ast.AST):
    """Descendants of ``fn`` that are not inside a nested def."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _analyze_function(
    fn: ast.AST, name: str, def_line: int, rank_ctx: bool, table: _ImportTable
) -> _FunctionReport:
    rep = _FunctionReport(name=name, def_line=def_line, rank_ctx=rank_ctx)
    for node in _own_nodes(fn):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            rep.findings.append(
                _Finding(node.lineno, node.col_offset, "'@' (matrix multiply)", "compute")
            )
            rep.findings.append(
                _Finding(node.lineno, node.col_offset, "'@' (matrix multiply)", "rawnp")
            )
        elif isinstance(node, ast.Call):
            if _is_charging_call(node, table):
                rep.charges = True
                continue
            dotted = table.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _SEEDABLE_CTORS and not node.args and not node.keywords:
                rep.findings.append(
                    _Finding(
                        node.lineno,
                        node.col_offset,
                        f"{dotted}() without a seed",
                        "rng",
                    )
                )
                continue
            for kind in _classify_call(dotted):
                rep.findings.append(
                    _Finding(node.lineno, node.col_offset, f"{dotted}()", kind)
                )
    return rep


def _collect_functions(
    tree: ast.Module, table: _ImportTable
) -> list[_FunctionReport]:
    reports: list[_FunctionReport] = []

    def visit(node: ast.AST, rank_ctx: bool, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx = rank_ctx or _is_rank_function(child)
                qual = f"{prefix}{child.name}"
                reports.append(
                    _analyze_function(child, qual, child.lineno, ctx, table)
                )
                visit(child, ctx, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, rank_ctx, f"{prefix}{child.name}.")

    visit(tree, False, "")
    # Module-level statements form a pseudo-function (e.g. a module-level
    # wall-clock call in a solver module is still a violation).
    module_body = ast.Module(
        body=[
            stmt
            for stmt in tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ],
        type_ignores=[],
    )
    reports.append(_analyze_function(module_body, "<module>", 1, False, table))
    return reports


# ------------------------------------------------------- REPRO006 dataflow


def _terminal_name(node: ast.expr) -> str | None:
    """Last identifier of a name/attribute chain (``cl._crashed`` ->
    ``_crashed``), or None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _expr_is_rankish(node: ast.expr, rankish_locals: set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
        if isinstance(sub, ast.Name) and (
            sub.id in _RANKISH_NAMES or sub.id in rankish_locals
        ):
            return True
    return False


def _rank_keyed_names(tree: ast.Module) -> set[str]:
    """Identifiers of dicts that dataflow shows are keyed by rank.

    A container is rank-keyed when it is subscript-assigned (or
    ``setdefault``-ed) with a key expression that mentions a rank —
    ``d[comm.rank] = v``, ``d.setdefault(partner, []).append(x)``, or a
    key variable itself assigned from a rank expression.  Tracking is by
    terminal identifier (``self.pair_plan`` and ``pair_plan`` share one
    entry): per-rank entries land in these containers in arrival order,
    which is host-scheduling dependent, so iteration must be sorted.
    """
    rankish_locals: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name) and _expr_is_rankish(node.value, set()):
                rankish_locals.add(tgt.id)
    keyed: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                if isinstance(tgt, ast.Subscript) and _expr_is_rankish(
                    tgt.slice, rankish_locals
                ):
                    name = _terminal_name(tgt.value)
                    if name is not None:
                        keyed.add(name)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setdefault"
                and node.args
                and _expr_is_rankish(node.args[0], rankish_locals)
            ):
                name = _terminal_name(func.value)
                if name is not None:
                    keyed.add(name)
    return keyed


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _classify_iteration(node: ast.expr, rank_keyed: set[str]) -> str | None:
    """What a loop over ``node`` iterates, if hazardous."""
    if _is_set_expr(node):
        return "a set (implementation-defined order)"
    name = _terminal_name(node)
    if name in rank_keyed:
        return f"rank-keyed dict '{name}' (arrival order)"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
    ):
        base = _terminal_name(node.func.value)
        if base in rank_keyed:
            return f"rank-keyed dict '{base}.{node.func.attr}()' (arrival order)"
    return None


def _iteration_findings(tree: ast.Module) -> list[_Finding]:
    rank_keyed = _rank_keyed_names(tree)
    findings: list[_Finding] = []
    exempt_comps: set[int] = set()
    for node in ast.walk(tree):
        # sum(... for ... in s) / sorted({...}) etc. are order-insensitive.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE_WRAPPERS
        ):
            for arg in node.args:
                if isinstance(
                    arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
                ):
                    exempt_comps.add(id(arg))
    for node in ast.walk(tree):
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            if id(node) in exempt_comps:
                continue
            iters.extend(g.iter for g in node.generators)
        for it in iters:
            desc = _classify_iteration(it, rank_keyed)
            if desc is not None:
                findings.append(
                    _Finding(it.lineno, it.col_offset, desc, "iter")
                )
    return findings


# ------------------------------------------------------------ file context


class _FileContext:
    """Parsed state of one file shared by every rule pass."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.pkg = _repro_package(path)
        self.waivers = _parse_waivers(source)
        self.tree: ast.Module | None = None
        self.syntax_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.syntax_error = exc
            self.table = None
            self._stmts: list[tuple[int, int]] = []
            self._defs: list[tuple[int, int, int, int]] = []
            return
        self.table = _ImportTable(self.tree)
        self._stmts = [
            (node.lineno, node.end_lineno or node.lineno)
            for node in ast.walk(self.tree)
            if isinstance(node, ast.stmt)
        ]
        # (span_start incl. decorators, header_end, body_start, body_end)
        self._defs = []
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dec_start = min(
                    [d.lineno for d in node.decorator_list], default=node.lineno
                )
                body_start = node.body[0].lineno
                self._defs.append(
                    (dec_start, body_start - 1, node.lineno, node.end_lineno or node.lineno)
                )

    def waiver_lines(self, line: int) -> set[int]:
        """Lines on which a waiver comment covers a finding at ``line``:
        the innermost enclosing statement's extent plus the line above
        it, and the enclosing def's decorator/header block plus the line
        above that."""
        lines = {line, line - 1}
        best: tuple[int, int] | None = None
        for s, e in self._stmts:
            if s <= line <= e and (best is None or (e - s) < (best[1] - best[0])):
                best = (s, e)
        if best is not None:
            lines.update(range(best[0] - 1, best[1] + 1))
        innermost: tuple[int, int, int, int] | None = None
        for dec_start, header_end, def_line, end in self._defs:
            if dec_start <= line <= end and (
                innermost is None or dec_start >= innermost[0]
            ):
                innermost = (dec_start, header_end, def_line, end)
        if innermost is not None:
            lines.update(range(innermost[0] - 1, innermost[1] + 1))
        return lines

    def covered(self, rule: str, line: int) -> bool:
        return self.waivers.covers(rule, self.waiver_lines(line))


# ------------------------------------------------------------- rule driver


def _diag(ctx: _FileContext, line: int, col: int, rule: str, message: str) -> Diagnostic:
    return Diagnostic(ctx.path, line, col, RULES[rule][0], rule, message)


def _lint_ctx(ctx: _FileContext, select: set[str] | None) -> list[Diagnostic]:
    """Per-file rules (the protocol rules run in :mod:`.protocol`)."""
    diags: list[Diagnostic] = []
    for line, col, msg in ctx.waivers.problems:
        diags.append(Diagnostic(ctx.path, line, col, WAIVER_CODE, "waiver", msg))
    if ctx.syntax_error is not None:
        exc = ctx.syntax_error
        diags.append(
            Diagnostic(
                ctx.path, exc.lineno or 1, exc.offset or 0, WAIVER_CODE, "syntax", str(exc.msg)
            )
        )
        return diags
    assert ctx.tree is not None and ctx.table is not None
    pkg = ctx.pkg

    def on(rule: str, natural: bool) -> bool:
        if select is not None:
            # A selected rule is forced onto every analyzed file (audits
            # over tests/ and benchmarks/ ride on this).
            return rule in select
        return natural

    reports = _collect_functions(ctx.tree, ctx.table)

    in_acct = pkg in ACCOUNTING_PACKAGES
    in_vtime = pkg in VIRTUAL_TIME_PACKAGES
    in_rawnp = pkg in RAW_NUMPY_PACKAGES
    in_det = pkg in DETERMINISM_PACKAGES
    in_repro = pkg is not None

    for rep in reports:
        computes = [f for f in rep.findings if f.kind == "compute"]
        if on("accounting", in_acct) and computes and not rep.charges:
            first = min(computes, key=lambda f: (f.line, f.col))
            if not ctx.covered("accounting", first.line):
                diags.append(
                    _diag(
                        ctx,
                        first.line,
                        first.col,
                        "accounting",
                        f"function '{rep.name}' computes with {first.desc} but never "
                        "charges the ambient OpCounter (call charge() or a counted "
                        "repro.linalg.blas kernel, or add "
                        "'# repro: waive[accounting] <reason>')",
                    )
                )
        for f in rep.findings:
            if f.kind == "clock":
                if on("virtual-time", in_vtime or rep.rank_ctx) and (
                    in_vtime or rep.rank_ctx or select is not None
                ):
                    if not ctx.covered("virtual-time", f.line):
                        diags.append(
                            _diag(
                                ctx,
                                f.line,
                                f.col,
                                "virtual-time",
                                f"real wall-clock primitive {f.desc} in virtual-time "
                                f"code (function '{rep.name}'): use the rank's virtual "
                                "clocks (comm.wall / comm.cpu_time) or simmpi primitives",
                            )
                        )
                elif on("wall-clock", in_det):
                    if not ctx.covered("wall-clock", f.line):
                        diags.append(
                            _diag(
                                ctx,
                                f.line,
                                f.col,
                                "wall-clock",
                                f"host-clock read {f.desc} in deterministic numeric "
                                f"code (function '{rep.name}'): priced quantities must "
                                "be pure functions of their inputs",
                            )
                        )
            elif f.kind == "thread":
                if on("virtual-time", in_vtime or rep.rank_ctx):
                    if not ctx.covered("virtual-time", f.line):
                        diags.append(
                            _diag(
                                ctx,
                                f.line,
                                f.col,
                                "virtual-time",
                                f"raw threading primitive {f.desc} in virtual-time "
                                f"code (function '{rep.name}'): use the rank's virtual "
                                "clocks (comm.wall / comm.cpu_time) or simmpi primitives",
                            )
                        )
            elif f.kind == "rawnp":
                if on("raw-numpy", in_rawnp or rep.rank_ctx):
                    if not ctx.covered("raw-numpy", f.line):
                        diags.append(
                            _diag(
                                ctx,
                                f.line,
                                f.col,
                                "raw-numpy",
                                f"raw numpy linear algebra {f.desc} in hot path "
                                f"(function '{rep.name}') sidesteps the counted "
                                "repro.linalg.blas kernels",
                            )
                        )
            elif f.kind == "rng":
                if on("unseeded-rng", in_repro):
                    if not ctx.covered("unseeded-rng", f.line):
                        diags.append(
                            _diag(
                                ctx,
                                f.line,
                                f.col,
                                "unseeded-rng",
                                f"unseeded random draw {f.desc} in "
                                f"function '{rep.name}': use a seeded "
                                "np.random.default_rng(seed) so runs replay "
                                "bit-for-bit",
                            )
                        )

    in_order = pkg in ORDERED_ITERATION_PACKAGES
    rank_fn_spans = [
        (d, e)
        for (d, _h, _dl, e), node_rank in zip(ctx._defs, _def_rank_flags(ctx.tree))
        if node_rank
    ]
    for f in _iteration_findings(ctx.tree):
        natural = in_order or any(s <= f.line <= e for s, e in rank_fn_spans)
        if not on("unordered-iteration", natural):
            continue
        if ctx.covered("unordered-iteration", f.line):
            continue
        diags.append(
            _diag(
                ctx,
                f.line,
                f.col,
                "unordered-iteration",
                f"iteration over {f.desc} is not wrapped in sorted(): "
                "per-rank arrival order depends on host thread scheduling, "
                "which breaks bitwise determinism",
            )
        )
    return diags


def _def_rank_flags(tree: ast.Module) -> list[bool]:
    """Rank-context flag per def, in ``ast.walk`` order (matches the
    construction order of ``_FileContext._defs``)."""
    flags = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            flags.append(_is_rank_function(node))
    return flags


def _normalize_select(select) -> set[str] | None:
    if select is None:
        return None
    names: set[str] = set()
    for token in select:
        name = name_for(token)
        if name is None:
            raise ValueError(f"unknown rule: {token}")
        names.add(name)
    return names


def _run(ctxs: list[_FileContext], select: set[str] | None) -> list[Diagnostic]:
    from . import protocol  # late import: protocol imports this module

    diags: list[Diagnostic] = []
    sites: list[protocol.CommSite] = []
    ctx_by_path: dict[str, _FileContext] = {}
    for ctx in ctxs:
        ctx_by_path[ctx.path] = ctx
        diags.extend(_lint_ctx(ctx, select))
        if ctx.tree is not None:
            file_diags, file_sites = protocol.check_ctx(ctx, select)
            diags.extend(file_diags)
            sites.extend(file_sites)
    if select is None or "tag-pairing" in select:
        diags.extend(protocol.pair_sites(sites, ctx_by_path))
    if select is None:
        # Stale-waiver detection needs the full rule set to have run.
        for ctx in ctxs:
            for e in ctx.waivers.stale():
                diags.append(
                    Diagnostic(
                        ctx.path,
                        e.line,
                        e.col,
                        WAIVER_CODE,
                        "waiver",
                        f"stale waiver: waive{'-file' if e.is_file else ''}"
                        f"[{e.raw}] no longer suppresses anything — remove it",
                    )
                )
    diags.sort()
    return diags


def lint_source(source: str, path: str, select=None) -> list[Diagnostic]:
    """Lint one file's source text; ``path`` determines the rule scope.

    ``select`` restricts the run to the given rule names/codes and
    forces them in scope on every file (audit mode).  Tag pairing
    (REPRO010) is resolved within the single file.
    """
    return _run([_FileContext(path, source)], _normalize_select(select))


def lint_file(path: str | Path, select=None) -> list[Diagnostic]:
    p = Path(path)
    return lint_files([p], select)


def lint_files(files, select=None) -> list[Diagnostic]:
    """Lint the given files as one corpus (tag pairing spans them all)."""
    ctxs = [
        _FileContext(str(p), Path(p).read_text(encoding="utf-8")) for p in files
    ]
    return _run(ctxs, _normalize_select(select))


def _iter_python_files(paths):
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(
                    part in ("__pycache__",) or part.endswith(".egg-info")
                    for part in f.parts
                ):
                    continue
                yield f
        elif p.suffix == ".py":
            yield p


def lint_paths(paths, select=None) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    return lint_files(list(_iter_python_files(paths)), select)
