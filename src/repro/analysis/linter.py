"""AST-based invariant linter (stdlib only).

Three repo-specific rules, each scoped to the packages where its
invariant is load-bearing:

``accounting`` (REPRO001)
    In ``linalg/``, ``spectral/``, ``assembly/`` and ``fourier/``, any
    function that evaluates a numpy compute primitive (``np.dot``,
    ``@``, ``np.einsum``, ``np.linalg.solve`` ...) must also charge the
    ambient :class:`~repro.linalg.counters.OpCounter` — by calling
    ``charge()`` or one of the counted :mod:`repro.linalg.blas` kernels
    — so the work it does shows up in the priced cost tables.

``virtual-time`` (REPRO002)
    In ``ns/`` and ``parallel/``, and in any *rank function* (first
    parameter named ``comm`` or annotated ``VirtualComm``) anywhere in
    the tree, real wall-clock primitives (``time.time``,
    ``time.perf_counter``, ``datetime.now`` ...) and raw ``threading``
    primitives are forbidden: virtual-time code must read the rank's
    virtual clocks.  The sanctioned abstractions
    (:class:`~repro.util.timing.StageTimer` for real host
    instrumentation, :mod:`repro.parallel.simmpi` for virtual time) are
    not flagged — only the raw primitives are.

``raw-numpy`` (REPRO003)
    In ``ns/`` and ``parallel/`` and in rank functions, raw numpy
    linear algebra (``np.dot``, ``np.matmul``, ``np.einsum``, the ``@``
    operator) sidesteps the counted BLAS substrate and is flagged.

Waivers
-------
A violation that is intentional is silenced with a waiver comment that
must carry a reason::

    x = a @ b  # repro: waive[raw-numpy] complex-valued; charged explicitly

The comment may sit on the flagged line, the line above it, or on (or
above) the enclosing ``def`` line.  A whole file opts out of one rule
with::

    # repro: waive-file[virtual-time] virtual-time substrate implementation

A waiver with an unknown rule name or an empty reason is itself a
diagnostic (REPRO000), so waivers stay auditable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RULES", "Diagnostic", "lint_source", "lint_file", "lint_paths"]

# rule name -> (code, one-line summary)
RULES: dict[str, tuple[str, str]] = {
    "accounting": (
        "REPRO001",
        "hot-path kernels must charge the ambient OpCounter",
    ),
    "virtual-time": (
        "REPRO002",
        "virtual-time rank code must not touch real clocks or raw threads",
    ),
    "raw-numpy": (
        "REPRO003",
        "hot paths must use the counted repro.linalg.blas kernels",
    ),
}
_WAIVER_CODE = "REPRO000"

ACCOUNTING_PACKAGES = {"linalg", "spectral", "assembly", "fourier"}
VIRTUAL_TIME_PACKAGES = {"ns", "parallel"}
RAW_NUMPY_PACKAGES = {"ns", "parallel"}

# numpy compute primitives that represent priced floating-point work.
_NUMPY_COMPUTE = {"dot", "vdot", "matmul", "einsum", "tensordot"}
_NUMPY_LINALG = {
    "solve",
    "inv",
    "cholesky",
    "lstsq",
    "pinv",
    "eig",
    "eigh",
    "eigvals",
    "eigvalsh",
    "svd",
    "qr",
    "matrix_power",
}
_SCIPY_LINALG = {
    "solve",
    "cholesky",
    "cho_factor",
    "cho_solve",
    "cholesky_banded",
    "cho_solve_banded",
    "solve_banded",
    "solveh_banded",
    "lu_factor",
    "lu_solve",
    "eigh_tridiagonal",
}
_CLOCK_CALLS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "monotonic",
    "monotonic_ns",
    "thread_time",
    "thread_time_ns",
    "clock",
    "sleep",
}
_DATETIME_CALLS = {"now", "utcnow", "today"}
_THREADING_NAMES = {
    "Thread",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Timer",
    "local",
}
# Includes the batched (stacked) kernels: they charge identical flops and
# bytes to the per-element calls they replace, so they are counted
# substrate for the accounting and raw-numpy rules alike.
_BLAS_KERNELS = {
    "dcopy",
    "daxpy",
    "daxpy_batched",
    "ddot",
    "ddot_batched",
    "dscal",
    "dscal_batched",
    "dnrm2",
    "dgemv",
    "dgemv_batched",
    "dgemm",
    "dgemm_batched",
    "dtrsm_batched",
    "dvmul",
    "dvmul_batched",
    "dvadd",
    "dsvtvp",
}

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*waive(?P<file>-file)?\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One linter finding, formatted ``path:line:col: CODE [rule] msg``."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.rule}] {self.message}"


@dataclass
class _Waivers:
    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)
    problems: list[tuple[int, int, str]] = field(default_factory=list)

    def covers(self, rule: str, line: int, def_line: int | None = None) -> bool:
        if rule in self.file_rules:
            return True
        lines = [line, line - 1]
        if def_line is not None:
            lines += [def_line, def_line - 1]
        return any(rule in self.line_rules.get(ln, ()) for ln in lines)


def _parse_waivers(source: str) -> _Waivers:
    w = _Waivers()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (t.start[0], t.start[1], t.string)
            for t in tokens
            if t.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for line, col, text in comments:
        m = _WAIVER_RE.search(text)
        if m is None:
            continue
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        unknown = rules - set(RULES)
        if unknown or not rules:
            w.problems.append(
                (line, col, f"waiver names unknown rule(s): {sorted(unknown) or '(none)'}")
            )
            rules &= set(RULES)
        if not m.group("reason").strip():
            w.problems.append((line, col, "waiver must carry a reason"))
            continue
        if m.group("file"):
            w.file_rules |= rules
        else:
            w.line_rules.setdefault(line, set()).update(rules)
    return w


def _repro_package(path: str) -> str | None:
    """Sub-package under ``repro`` that a file belongs to, or None."""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return parts[i + 1] if parts[i + 1].endswith(".py") is False else ""
    return None


class _ImportTable:
    """Maps local names to canonical dotted modules/objects."""

    def __init__(self, tree: ast.AST):
        self.modules: dict[str, str] = {}  # alias -> canonical module
        self.objects: dict[str, str] = {}  # name -> canonical dotted object
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.modules[name] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                self._import_from(node)

    def _import_from(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            name = alias.asname or alias.name
            if mod in ("time", "threading", "datetime", "numpy"):
                self.objects[name] = f"{mod}.{alias.name}"
            elif mod == "numpy.linalg":
                self.objects[name] = f"numpy.linalg.{alias.name}"
            elif mod in ("scipy.linalg", "scipy"):
                self.objects[name] = f"scipy.linalg.{alias.name}"
            elif alias.name == "blas" and (mod.endswith("linalg") or mod == ""):
                # from ..linalg import blas / from . import blas
                self.modules[name] = "repro.linalg.blas"
            elif mod.endswith("linalg.blas") or mod == "blas":
                if alias.name in _BLAS_KERNELS:
                    self.objects[name] = f"repro.linalg.blas.{alias.name}"
            elif alias.name == "charge" and (
                mod.endswith("counters") or mod.endswith("linalg")
            ):
                self.objects[name] = "repro.linalg.counters.charge"
            elif alias.name in _BLAS_KERNELS and mod.endswith("linalg"):
                self.objects[name] = f"repro.linalg.blas.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an attribute/name chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head in self.modules:
            return ".".join([self.modules[head], *parts])
        if head in self.objects:
            return ".".join([self.objects[head], *parts])
        return ".".join([head, *parts])


@dataclass
class _Finding:
    line: int
    col: int
    desc: str
    kind: str  # "compute" | "clock" | "thread" | "rawnp"


def _classify_call(dotted: str) -> list[str]:
    """Trigger kinds of one resolved call name."""
    parts = dotted.split(".")
    kinds: list[str] = []
    if parts[0] == "numpy":
        rest = parts[1:]
        if len(rest) == 1 and rest[0] in _NUMPY_COMPUTE:
            kinds += ["compute", "rawnp"]
        elif len(rest) == 2 and rest[0] == "linalg" and rest[1] in _NUMPY_LINALG:
            kinds.append("compute")
        elif len(rest) >= 1 and rest[0] == "fft":
            kinds.append("compute")
    elif parts[0] == "scipy" and len(parts) >= 3 and parts[1] == "linalg":
        if parts[2] in _SCIPY_LINALG:
            kinds.append("compute")
    elif parts[0] == "time" and len(parts) == 2 and parts[1] in _CLOCK_CALLS:
        kinds.append("clock")
    elif parts[0] == "datetime":
        if parts[-1] in _DATETIME_CALLS:
            kinds.append("clock")
    elif parts[0] == "threading" and len(parts) == 2 and parts[1] in _THREADING_NAMES:
        kinds.append("thread")
    return kinds


def _is_charging_call(node: ast.Call, table: _ImportTable) -> bool:
    func = node.func
    # Convention: a helper named charge* / _charge* IS a charging wrapper.
    if isinstance(func, ast.Attribute) and func.attr.lstrip("_").startswith("charge"):
        return True
    dotted = table.resolve(func)
    if dotted is None:
        return False
    last = dotted.rsplit(".", 1)[-1]
    if last.lstrip("_").startswith("charge"):
        return True
    if dotted.startswith("repro.linalg.blas."):
        return True
    return False


@dataclass
class _FunctionReport:
    name: str
    def_line: int
    rank_ctx: bool
    charges: bool = False
    findings: list[_Finding] = field(default_factory=list)


def _is_rank_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = list(fn.args.posonlyargs) + list(fn.args.args)
    if args and args[0].arg in ("self", "cls"):
        args = args[1:]
    if args and args[0].arg == "comm":
        return True
    for a in args:
        if a.annotation is not None and "VirtualComm" in ast.unparse(a.annotation):
            return True
    return False


def _own_nodes(fn: ast.AST):
    """Descendants of ``fn`` that are not inside a nested def."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _numpy_aliases(table: _ImportTable) -> set[str]:
    return {k for k, v in table.modules.items() if v == "numpy"}


def _analyze_function(
    fn: ast.AST, name: str, def_line: int, rank_ctx: bool, table: _ImportTable
) -> _FunctionReport:
    rep = _FunctionReport(name=name, def_line=def_line, rank_ctx=rank_ctx)
    for node in _own_nodes(fn):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            rep.findings.append(
                _Finding(node.lineno, node.col_offset, "'@' (matrix multiply)", "compute")
            )
            rep.findings.append(
                _Finding(node.lineno, node.col_offset, "'@' (matrix multiply)", "rawnp")
            )
        elif isinstance(node, ast.Call):
            if _is_charging_call(node, table):
                rep.charges = True
                continue
            dotted = table.resolve(node.func)
            if dotted is None:
                continue
            for kind in _classify_call(dotted):
                rep.findings.append(
                    _Finding(node.lineno, node.col_offset, f"{dotted}()", kind)
                )
    return rep


def _collect_functions(
    tree: ast.Module, table: _ImportTable
) -> list[_FunctionReport]:
    reports: list[_FunctionReport] = []

    def visit(node: ast.AST, rank_ctx: bool, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx = rank_ctx or _is_rank_function(child)
                qual = f"{prefix}{child.name}"
                reports.append(
                    _analyze_function(child, qual, child.lineno, ctx, table)
                )
                visit(child, ctx, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, rank_ctx, f"{prefix}{child.name}.")

    visit(tree, False, "")
    # Module-level statements form a pseudo-function (e.g. a module-level
    # wall-clock call in a solver module is still a violation).
    module_body = ast.Module(
        body=[
            stmt
            for stmt in tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ],
        type_ignores=[],
    )
    reports.append(_analyze_function(module_body, "<module>", 1, False, table))
    return reports


def lint_source(source: str, path: str) -> list[Diagnostic]:
    """Lint one file's source text; ``path`` determines the rule scope."""
    diags: list[Diagnostic] = []
    waivers = _parse_waivers(source)
    for line, col, msg in waivers.problems:
        diags.append(Diagnostic(path, line, col, _WAIVER_CODE, "waiver", msg))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        diags.append(
            Diagnostic(
                path, exc.lineno or 1, exc.offset or 0, _WAIVER_CODE, "syntax", str(exc.msg)
            )
        )
        return diags
    pkg = _repro_package(path)
    table = _ImportTable(tree)
    reports = _collect_functions(tree, table)

    in_acct = pkg in ACCOUNTING_PACKAGES
    in_vtime = pkg in VIRTUAL_TIME_PACKAGES
    in_rawnp = pkg in RAW_NUMPY_PACKAGES

    for rep in reports:
        computes = [f for f in rep.findings if f.kind == "compute"]
        if in_acct and computes and not rep.charges:
            first = min(computes, key=lambda f: (f.line, f.col))
            if not waivers.covers("accounting", first.line, rep.def_line):
                diags.append(
                    Diagnostic(
                        path,
                        first.line,
                        first.col,
                        RULES["accounting"][0],
                        "accounting",
                        f"function '{rep.name}' computes with {first.desc} but never "
                        "charges the ambient OpCounter (call charge() or a counted "
                        "repro.linalg.blas kernel, or add "
                        "'# repro: waive[accounting] <reason>')",
                    )
                )
        if in_vtime or rep.rank_ctx:
            for f in rep.findings:
                if f.kind not in ("clock", "thread"):
                    continue
                if waivers.covers("virtual-time", f.line, rep.def_line):
                    continue
                what = (
                    "real wall-clock primitive"
                    if f.kind == "clock"
                    else "raw threading primitive"
                )
                diags.append(
                    Diagnostic(
                        path,
                        f.line,
                        f.col,
                        RULES["virtual-time"][0],
                        "virtual-time",
                        f"{what} {f.desc} in virtual-time code "
                        f"(function '{rep.name}'): use the rank's virtual clocks "
                        "(comm.wall / comm.cpu_time) or simmpi primitives",
                    )
                )
        if in_rawnp or rep.rank_ctx:
            for f in rep.findings:
                if f.kind != "rawnp":
                    continue
                if waivers.covers("raw-numpy", f.line, rep.def_line):
                    continue
                diags.append(
                    Diagnostic(
                        path,
                        f.line,
                        f.col,
                        RULES["raw-numpy"][0],
                        "raw-numpy",
                        f"raw numpy linear algebra {f.desc} in hot path "
                        f"(function '{rep.name}') sidesteps the counted "
                        "repro.linalg.blas kernels",
                    )
                )
    diags.sort()
    return diags


def lint_file(path: str | Path) -> list[Diagnostic]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def _iter_python_files(paths: list[str | Path]):
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(
                    part in ("__pycache__",) or part.endswith(".egg-info")
                    for part in f.parts
                ):
                    continue
                yield f
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: list[str | Path]) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    diags: list[Diagnostic] = []
    for f in _iter_python_files(paths):
        diags.extend(lint_file(f))
    diags.sort()
    return diags
