"""Operation accounting for the BLAS substrate.

Every kernel in :mod:`repro.linalg.blas` reports the floating-point
operations it performed and the bytes it moved to the ambient
:class:`OpCounter` (if one is active).  The application-level cost models
(Tables 1-3) are built on these counts: a *real* reduced-size run is
instrumented, and the per-stage flop/byte totals are then priced on each
simulated machine by :mod:`repro.machines.cpu`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

_tls = threading.local()

SamplerFn = Callable[[float, float, str], None]


@dataclass(frozen=True)
class OpSnapshot:
    """Immutable copy of an :class:`OpCounter`'s state at one instant.

    Produced by :meth:`OpCounter.snapshot` and :meth:`OpCounter.delta`;
    the accessor helpers replace the ad-hoc dict building the bench
    harnesses used to copy-paste.
    """

    flops: float
    bytes: float
    calls: int
    by_label: dict[str, tuple[float, float, int]]

    def totals(self) -> tuple[float, float]:
        """(flops, bytes) — the whole-run charge pair."""
        return (self.flops, self.bytes)

    def label_charges(self, with_calls: bool = False) -> dict:
        """Per-label charges: ``{label: (flops, bytes[, calls])}``.

        ``with_calls=False`` (the default) drops call counts — the
        comparison the multi-RHS benches need, since a blocked path
        legitimately makes fewer (bigger) calls for the same work.
        """
        if with_calls:
            return dict(self.by_label)
        return {k: (v[0], v[1]) for k, v in self.by_label.items()}


@dataclass
class OpCounter:
    """Accumulates flops and memory traffic, optionally per label.

    Use as a context manager; counters nest (an inner counter also feeds
    its parent, so a stage counter and a whole-run counter can be active
    simultaneously).
    """

    flops: float = 0.0
    bytes: float = 0.0
    calls: int = 0
    by_label: dict[str, tuple[float, float, int]] = field(default_factory=dict)
    _parent: "OpCounter | None" = None
    _saved: list["OpCounter | None"] = field(default_factory=list)

    def charge(self, flops: float, nbytes: float, label: str = "") -> None:
        # Iterative parent walk with a cycle guard: re-entering the same
        # counter must charge each ancestor exactly once, never recurse.
        node: OpCounter | None = self
        seen: set[int] = set()
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            node.flops += flops
            node.bytes += nbytes
            node.calls += 1
            if label:
                f, b, c = node.by_label.get(label, (0.0, 0.0, 0))
                node.by_label[label] = (f + flops, b + nbytes, c + 1)
            node = node._parent

    def snapshot(self) -> OpSnapshot:
        """Immutable copy of the current totals and per-label charges."""
        return OpSnapshot(
            flops=self.flops,
            bytes=self.bytes,
            calls=self.calls,
            by_label=dict(self.by_label),
        )

    def delta(self, since: OpSnapshot) -> OpSnapshot:
        """Charges accumulated after ``since`` (an earlier snapshot).

        Labels whose charges did not change are dropped, so the result
        reads like a fresh counter covering just the interval.
        """
        by_label: dict[str, tuple[float, float, int]] = {}
        for label, (f, b, c) in self.by_label.items():
            f0, b0, c0 = since.by_label.get(label, (0.0, 0.0, 0))
            if (f, b, c) != (f0, b0, c0):
                by_label[label] = (f - f0, b - b0, c - c0)
        return OpSnapshot(
            flops=self.flops - since.flops,
            bytes=self.bytes - since.bytes,
            calls=self.calls - since.calls,
            by_label=by_label,
        )

    def __enter__(self) -> "OpCounter":
        prev = getattr(_tls, "active", None)
        self._saved.append(prev)
        if prev is not self:  # re-entry must not make a counter its own parent
            self._parent = prev
        _tls.active = self
        return self

    def __exit__(self, *exc) -> None:
        prev = self._saved.pop() if self._saved else None
        _tls.active = prev
        if not self._saved:
            self._parent = None


def active_counter() -> OpCounter | None:
    """The innermost active counter on this thread, or None."""
    return getattr(_tls, "active", None)


def set_kernel_sampler(sampler: SamplerFn | None) -> None:
    """Install a read-only observer of module-level :func:`charge` calls.

    Used by :mod:`repro.obs.tracer` to sample BLAS kernel charges onto
    rank timelines.  The sampler sees ``(flops, nbytes, label)`` after
    the counter has been charged and must not charge anything itself —
    tracing enabled vs disabled leaves every OpCounter byte-identical
    (property-tested).  Thread-local, like the active counter.
    """
    _tls.sampler = sampler


def charge(flops: float, nbytes: float, label: str = "") -> None:
    """Charge ops to the active counter (no-op when none is active)."""
    counter = active_counter()
    if counter is not None:
        counter.charge(flops, nbytes, label)
    sampler = getattr(_tls, "sampler", None)
    if sampler is not None:
        sampler(flops, nbytes, label)
