"""Operation accounting for the BLAS substrate.

Every kernel in :mod:`repro.linalg.blas` reports the floating-point
operations it performed and the bytes it moved to the ambient
:class:`OpCounter` (if one is active).  The application-level cost models
(Tables 1-3) are built on these counts: a *real* reduced-size run is
instrumented, and the per-stage flop/byte totals are then priced on each
simulated machine by :mod:`repro.machines.cpu`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

_tls = threading.local()


@dataclass
class OpCounter:
    """Accumulates flops and memory traffic, optionally per label.

    Use as a context manager; counters nest (an inner counter also feeds
    its parent, so a stage counter and a whole-run counter can be active
    simultaneously).
    """

    flops: float = 0.0
    bytes: float = 0.0
    calls: int = 0
    by_label: dict[str, tuple[float, float, int]] = field(default_factory=dict)
    _parent: "OpCounter | None" = None

    def charge(self, flops: float, nbytes: float, label: str = "") -> None:
        self.flops += flops
        self.bytes += nbytes
        self.calls += 1
        if label:
            f, b, c = self.by_label.get(label, (0.0, 0.0, 0))
            self.by_label[label] = (f + flops, b + nbytes, c + 1)
        if self._parent is not None:
            self._parent.charge(flops, nbytes, label)

    def __enter__(self) -> "OpCounter":
        self._parent = getattr(_tls, "active", None)
        _tls.active = self
        return self

    def __exit__(self, *exc) -> None:
        _tls.active = self._parent
        self._parent = None


def active_counter() -> OpCounter | None:
    """The innermost active counter on this thread, or None."""
    return getattr(_tls, "active", None)


def charge(flops: float, nbytes: float, label: str = "") -> None:
    """Charge ops to the active counter (no-op when none is active)."""
    counter = active_counter()
    if counter is not None:
        counter.charge(flops, nbytes, label)
