"""Operation accounting for the BLAS substrate.

Every kernel in :mod:`repro.linalg.blas` reports the floating-point
operations it performed and the bytes it moved to the ambient
:class:`OpCounter` (if one is active).  The application-level cost models
(Tables 1-3) are built on these counts: a *real* reduced-size run is
instrumented, and the per-stage flop/byte totals are then priced on each
simulated machine by :mod:`repro.machines.cpu`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

_tls = threading.local()


@dataclass
class OpCounter:
    """Accumulates flops and memory traffic, optionally per label.

    Use as a context manager; counters nest (an inner counter also feeds
    its parent, so a stage counter and a whole-run counter can be active
    simultaneously).
    """

    flops: float = 0.0
    bytes: float = 0.0
    calls: int = 0
    by_label: dict[str, tuple[float, float, int]] = field(default_factory=dict)
    _parent: "OpCounter | None" = None
    _saved: list["OpCounter | None"] = field(default_factory=list)

    def charge(self, flops: float, nbytes: float, label: str = "") -> None:
        # Iterative parent walk with a cycle guard: re-entering the same
        # counter must charge each ancestor exactly once, never recurse.
        node: OpCounter | None = self
        seen: set[int] = set()
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            node.flops += flops
            node.bytes += nbytes
            node.calls += 1
            if label:
                f, b, c = node.by_label.get(label, (0.0, 0.0, 0))
                node.by_label[label] = (f + flops, b + nbytes, c + 1)
            node = node._parent

    def __enter__(self) -> "OpCounter":
        prev = getattr(_tls, "active", None)
        self._saved.append(prev)
        if prev is not self:  # re-entry must not make a counter its own parent
            self._parent = prev
        _tls.active = self
        return self

    def __exit__(self, *exc) -> None:
        prev = self._saved.pop() if self._saved else None
        _tls.active = prev
        if not self._saved:
            self._parent = None


def active_counter() -> OpCounter | None:
    """The innermost active counter on this thread, or None."""
    return getattr(_tls, "active", None)


def charge(flops: float, nbytes: float, label: str = "") -> None:
    """Charge ops to the active counter (no-op when none is active)."""
    counter = active_counter()
    if counter is not None:
        counter.charge(flops, nbytes, label)
