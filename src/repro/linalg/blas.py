"""BLAS substrate: the kernels the paper benchmarks and the DNS code uses.

"BLAS routines account for most of the work in the codes presented"
(Section 3.1).  We provide the five routines the paper times — ``dcopy``,
``daxpy``, ``ddot``, ``dgemv``, ``dgemm`` — plus the handful of others the
solver needs, as thin numpy wrappers that (a) follow BLAS calling
semantics closely enough to be drop-in, and (b) report exact flop and
byte counts to :mod:`repro.linalg.counters` so application stages can be
priced on the simulated machines.

Traffic accounting convention (used consistently by the CPU model):
every operand element read or written counts 8 bytes once per kernel
call; cache reuse *within* a call is the CPU model's business, reuse
*across* calls is ignored (an upper bound on traffic, matching the
paper's "as seen by the user" stance).
"""

from __future__ import annotations

import numpy as np

from .counters import charge

__all__ = [
    "dcopy",
    "daxpy",
    "daxpy_batched",
    "ddot",
    "ddot_batched",
    "dscal",
    "dscal_batched",
    "dnrm2",
    "dgemv",
    "dgemv_batched",
    "dgemm",
    "dgemm_batched",
    "dtrsm_batched",
    "dvmul",
    "dvmul_batched",
    "dvadd",
    "dsvtvp",
    "flop_count",
    "byte_count",
]


def _as1d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D vector, got shape {x.shape}")
    return x


def dcopy(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """y[:] = x.  Returns y.  (0 flops, 16 bytes/element.)"""
    x, y = _as1d(x), _as1d(y)
    if x.shape != y.shape:
        raise ValueError("dcopy: shape mismatch")
    np.copyto(y, x)
    charge(0.0, 16.0 * x.size, "dcopy")
    return y


def daxpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """y += alpha * x, in place.  (2 flops and 24 bytes per element.)"""
    x, y = _as1d(x), _as1d(y)
    if x.shape != y.shape:
        raise ValueError("daxpy: shape mismatch")
    # In-place multiply-add: one temporary-free path per the numpy guide.
    y += alpha * x
    charge(2.0 * x.size, 24.0 * x.size, "daxpy")
    return y


def ddot(x: np.ndarray, y: np.ndarray) -> float:
    """Inner product x . y.  (2 flops and 16 bytes per element.)"""
    x, y = _as1d(x), _as1d(y)
    if x.shape != y.shape:
        raise ValueError("ddot: shape mismatch")
    charge(2.0 * x.size, 16.0 * x.size, "ddot")
    return float(np.dot(x, y))


def dscal(alpha: float, x: np.ndarray) -> np.ndarray:
    """x *= alpha, in place.  (1 flop, 16 bytes per element.)"""
    x = _as1d(x)
    x *= alpha
    charge(1.0 * x.size, 16.0 * x.size, "dscal")
    return x


def dnrm2(x: np.ndarray) -> float:
    """Euclidean norm.  (2 flops per element plus one sqrt.)"""
    x = _as1d(x)
    charge(2.0 * x.size + 1, 8.0 * x.size, "dnrm2")
    return float(np.linalg.norm(x))


def dgemv(
    alpha: float,
    a: np.ndarray,
    x: np.ndarray,
    beta: float,
    y: np.ndarray,
    trans: bool = False,
) -> np.ndarray:
    """y = alpha * op(A) x + beta * y, in place.  op(A) = A or A^T.

    (2*m*n flops; traffic dominated by the matrix, 8*m*n bytes.)
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("dgemv: A must be 2-D")
    x, y = _as1d(x), _as1d(y)
    op = a.T if trans else a
    m, n = op.shape
    if x.size != n or y.size != m:
        raise ValueError("dgemv: dimension mismatch")
    if beta == 0.0:
        y[:] = alpha * (op @ x)
    else:
        y *= beta
        y += alpha * (op @ x)
    charge(2.0 * m * n, 8.0 * (m * n + n + 2 * m), "dgemv")
    return y


def dgemm(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray,
    transa: bool = False,
    transb: bool = False,
) -> np.ndarray:
    """C = alpha * op(A) op(B) + beta * C, in place.  (2*m*n*k flops.)"""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    opa = a.T if transa else a
    opb = b.T if transb else b
    if opa.ndim != 2 or opb.ndim != 2 or c.ndim != 2:
        raise ValueError("dgemm: operands must be 2-D")
    m, k = opa.shape
    k2, n = opb.shape
    if k != k2 or c.shape != (m, n):
        raise ValueError("dgemm: dimension mismatch")
    if beta == 0.0:
        np.matmul(opa, opb, out=c)
        if alpha != 1.0:
            c *= alpha
    else:
        c *= beta
        c += alpha * (opa @ opb)
    charge(2.0 * m * n * k, 8.0 * (m * k + k * n + 2 * m * n), "dgemm")
    return c


def dvmul(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """z = x * y elementwise (the NekTar ``dvmul`` vector kernel)."""
    x, y, z = _as1d(x), _as1d(y), _as1d(z)
    np.multiply(x, y, out=z)
    charge(1.0 * x.size, 24.0 * x.size, "dvmul")
    return z


def dvadd(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """z = x + y elementwise."""
    x, y, z = _as1d(x), _as1d(y), _as1d(z)
    np.add(x, y, out=z)
    charge(1.0 * x.size, 24.0 * x.size, "dvadd")
    return z


def dsvtvp(alpha: float, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """z = alpha * x + y (scalar times vector plus vector)."""
    x, y, z = _as1d(x), _as1d(y), _as1d(z)
    np.multiply(x, alpha, out=z)
    z += y
    charge(2.0 * x.size, 24.0 * x.size, "dsvtvp")
    return z


# --- batched (stacked) kernels ----------------------------------------------
#
# One call performs nb independent small-operand operations laid out
# contiguously in memory — the classic "group same-shape elements and make
# one level-3 call" blocking lever.  Accounting is *identical by
# construction* to nb separate calls of the per-element kernel: each call
# charges nb times the per-item flop/byte formula under the per-element
# kernel's label, so OpCounter flop/byte totals (overall and per label) are
# bit-for-bit the same on both execution paths.  Only the call *count*
# differs (1 per batch instead of nb), which is exactly the interpreter
# overhead the batching removes.


def _op2d(a: np.ndarray, trans: bool) -> np.ndarray:
    """op(A) for a 2-D (shared) or stacked (..., m, n) operand."""
    if a.ndim < 2:
        raise ValueError("batched kernel: matrix operand must be >= 2-D")
    return np.swapaxes(a, -1, -2) if trans else a


def _check_stack_batch(op: np.ndarray, lead: tuple, kernel: str) -> None:
    """A stacked matrix operand's batch dims must be a *suffix* of the
    vector operand's batch dims: extra leading dims (e.g. stacked RHS
    columns sharing the per-element matrices) broadcast over the stack."""
    ob = op.shape[:-2]
    if len(ob) > len(lead) or lead[len(lead) - len(ob) :] != ob:
        raise ValueError(f"{kernel}: batch-shape mismatch")


# repro: waive[accounting] substrate of dgemv_batched, which charges it
def _stacked_matvec(op: np.ndarray, x: np.ndarray) -> np.ndarray:
    """matmul of a (g..., m, n) stack against (..., g..., n) vectors.

    With exactly one extra leading dim the RHS axis is moved last so the
    whole batch is one stacked (m, n) x (n, R) gemm per item — the
    multi-RHS fast path — instead of R strided gemv sweeps.
    """
    if x.ndim == op.ndim:
        return np.moveaxis(np.matmul(op, np.moveaxis(x, 0, -1)), -1, 0)
    return np.matmul(op, x[..., None])[..., 0]


def dgemv_batched(
    alpha: float,
    a: np.ndarray,
    x: np.ndarray,
    beta: float,
    y: np.ndarray,
    trans: bool = False,
) -> np.ndarray:
    """Stacked dgemv: y[i] = alpha * op(A[i]) x[i] + beta * y[i], in place.

    ``a`` is either a single shared (m, n) matrix or a (..., m, n) stack
    whose batch dims are a suffix of the batch dims of ``x``/``y`` (extra
    leading dims — stacked RHS — broadcast over the matrix stack); ``x``
    is (..., n) and ``y`` is (..., m) with identical leading batch dims.
    Charges exactly nb per-element ``dgemv`` calls' flops/bytes.
    """
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if y.dtype != np.float64:
        raise ValueError("dgemv_batched: y must be float64")
    op = _op2d(a, trans)
    m, n = op.shape[-2:]
    if x.shape[-1] != n or y.shape[-1] != m or x.shape[:-1] != y.shape[:-1]:
        raise ValueError("dgemv_batched: dimension mismatch")
    if op.ndim > 2:
        _check_stack_batch(op, x.shape[:-1], "dgemv_batched")
    nb = int(np.prod(x.shape[:-1], dtype=np.int64))
    if op.ndim == 2:
        # Shared matrix: the whole batch is one tall gemm, X @ op(A)^T.
        res = np.matmul(x, np.swapaxes(op, -1, -2))
    else:
        res = _stacked_matvec(op, x)
    if beta == 0.0:
        y[...] = alpha * res if alpha != 1.0 else res
    else:
        y *= beta
        y += alpha * res
    charge(nb * 2.0 * m * n, nb * 8.0 * (m * n + n + 2 * m), "dgemv")
    return y


def dtrsm_batched(
    tinv: np.ndarray,
    b: np.ndarray,
    trans: bool = False,
    label: str = "dtrsm",
) -> np.ndarray:
    """Stacked triangular solve T x = b, one sweep per item-RHS.

    ``tinv`` holds the *precomputed inverses* of the (well-conditioned,
    small) triangular factors — a shared (n, n) matrix or a (..., n, n)
    stack whose batch dims are a suffix of ``b``'s — so the sweep is
    performed as a Level-3 multiply.  Charges the classic ``dtrsm``
    count per item-RHS: n^2 flops and the triangle's 4*n^2 bytes (two
    sweeps together therefore price one full ``cho_solve``).  ``label``
    lets callers charge under an algorithm-level label (e.g. the static
    condensation's "sc-chol").
    """
    tinv = np.asarray(tinv, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    op = _op2d(tinv, trans)
    m, n = op.shape[-2:]
    if m != n:
        raise ValueError("dtrsm_batched: factor must be square")
    if b.shape[-1] != n:
        raise ValueError("dtrsm_batched: dimension mismatch")
    if op.ndim > 2:
        _check_stack_batch(op, b.shape[:-1], "dtrsm_batched")
    nb = int(np.prod(b.shape[:-1], dtype=np.int64))
    if op.ndim == 2:
        out = np.matmul(b, np.swapaxes(op, -1, -2))
    else:
        out = _stacked_matvec(op, b)
    charge(nb * 1.0 * n * n, nb * 4.0 * n * n, label)
    return out


def dgemm_batched(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray,
    transa: bool = False,
    transb: bool = False,
) -> np.ndarray:
    """Stacked dgemm: C[i] = alpha * op(A[i]) op(B[i]) + beta * C[i].

    ``a``/``b`` may each be a shared 2-D matrix or a (..., m, k) /
    (..., k, n) stack; ``c`` is the full (..., m, n) stack.  Charges
    exactly nb per-element ``dgemm`` calls' flops/bytes.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if c.dtype != np.float64:
        raise ValueError("dgemm_batched: C must be float64")
    opa = _op2d(a, transa)
    opb = _op2d(b, transb)
    if c.ndim < 2:
        raise ValueError("dgemm_batched: C must be >= 2-D")
    m, k = opa.shape[-2:]
    k2, n = opb.shape[-2:]
    if k != k2 or c.shape[-2:] != (m, n):
        raise ValueError("dgemm_batched: dimension mismatch")
    lead = c.shape[:-2]
    for stack in (opa, opb):
        if stack.ndim > 2 and stack.shape[:-2] != lead:
            raise ValueError("dgemm_batched: batch-shape mismatch")
    nb = int(np.prod(lead, dtype=np.int64))
    # np.matmul's stacked path degrades on transposed views; a contiguous
    # copy of a small chunk is cheaper than the strided inner loops.
    if opa.ndim > 2 and not opa.flags.c_contiguous:
        opa = np.ascontiguousarray(opa)
    if opb.ndim > 2 and not opb.flags.c_contiguous:
        opb = np.ascontiguousarray(opb)
    if beta == 0.0:
        np.matmul(opa, opb, out=c)
        if alpha != 1.0:
            c *= alpha
    else:
        c *= beta
        c += alpha * np.matmul(opa, opb)
    charge(nb * 2.0 * m * n * k, nb * 8.0 * (m * k + k * n + 2 * m * n), "dgemm")
    return c


def daxpy_batched(alpha: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Row-wise daxpy: y[i] += alpha[i] * x[i], in place, over (nb, n)
    slabs.  Row i is bitwise the per-row ``daxpy`` (no reassociation),
    and the charge is exactly nb per-row calls'."""
    alpha = np.asarray(alpha, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if y.dtype != np.float64:
        raise ValueError("daxpy_batched: y must be float64")
    if x.ndim != 2 or x.shape != y.shape or alpha.shape != (x.shape[0],):
        raise ValueError("daxpy_batched: shape mismatch")
    y += alpha[:, None] * x
    charge(x.shape[0] * 2.0 * x.shape[1], x.shape[0] * 24.0 * x.shape[1], "daxpy")
    return y


def dscal_batched(alpha: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Row-wise dscal: x[i] *= alpha[i], in place, over a (nb, n) slab."""
    alpha = np.asarray(alpha, dtype=np.float64)
    if x.dtype != np.float64:
        raise ValueError("dscal_batched: x must be float64")
    if x.ndim != 2 or alpha.shape != (x.shape[0],):
        raise ValueError("dscal_batched: shape mismatch")
    x *= alpha[:, None]
    charge(x.shape[0] * 1.0 * x.shape[1], x.shape[0] * 16.0 * x.shape[1], "dscal")
    return x


def dvmul_batched(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Row-wise dvmul: z[i] = x * y[i] (``x`` shared 1-D or a matching
    (nb, n) slab), in place into z."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if z.dtype != np.float64:
        raise ValueError("dvmul_batched: z must be float64")
    if y.ndim != 2 or z.shape != y.shape or x.shape not in (y.shape, y.shape[1:]):
        raise ValueError("dvmul_batched: shape mismatch")
    np.multiply(x, y, out=z)
    charge(y.shape[0] * 1.0 * y.shape[1], y.shape[0] * 24.0 * y.shape[1], "dvmul")
    return z


def ddot_batched(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Row-wise inner products: out[...] = x[...] . y[...] over the last
    axis.  Charges exactly nb per-element ``ddot`` calls' flops/bytes."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim < 1:
        raise ValueError("ddot_batched: shape mismatch")
    nb = int(np.prod(x.shape[:-1], dtype=np.int64))
    out = np.einsum("...n,...n->...", x, y)
    charge(nb * 2.0 * x.shape[-1], nb * 16.0 * x.shape[-1], "ddot")
    return out


# --- analytic op-count helpers (used by cost-model drivers) -----------------

_FLOPS = {
    "dcopy": lambda n: 0.0,
    "daxpy": lambda n: 2.0 * n,
    "ddot": lambda n: 2.0 * n,
    "dscal": lambda n: 1.0 * n,
    "dgemv": lambda n: 2.0 * n * n,
    "dgemm": lambda n: 2.0 * n * n * n,
}

_BYTES = {
    "dcopy": lambda n: 16.0 * n,
    "daxpy": lambda n: 24.0 * n,
    "ddot": lambda n: 16.0 * n,
    "dscal": lambda n: 16.0 * n,
    "dgemv": lambda n: 8.0 * (n * n + 3.0 * n),
    "dgemm": lambda n: 8.0 * (4.0 * n * n),
}


def flop_count(routine: str, n: int) -> float:
    """Flops for one call of ``routine`` on size-n operands (square for L2/L3)."""
    try:
        return _FLOPS[routine](n)
    except KeyError:
        raise ValueError(f"unknown BLAS routine {routine!r}") from None


def byte_count(routine: str, n: int) -> float:
    """Unique bytes touched by one call of ``routine`` on size-n operands."""
    try:
        return _BYTES[routine](n)
    except KeyError:
        raise ValueError(f"unknown BLAS routine {routine!r}") from None
