"""Symmetric banded direct solver (the paper's LAPACK ``dpbtrf/dpbtrs``).

Section 4.1: "Solution of the Laplacian ... A direct solver (LAPACK),
utilising the symmetric and banded nature of the matrix, is used."
The global Helmholtz/Poisson matrices assembled with boundary-first
ordering are symmetric positive definite and banded (Figure 10); this
module wraps scipy's banded Cholesky with (a) a dense<->banded layout
converter, (b) exact factor/solve flop counts charged to the active
:class:`~repro.linalg.counters.OpCounter`, so solve stages can be priced
on the simulated machines.

Multi-RHS solves go through a *blocked* triangular sweep
(:meth:`BandedSPDSolver.solve_many`): LAPACK's ``dpbtrs`` back-solves
each RHS with Level-2 ``dtbsv`` sweeps, so its cost is strictly linear
in the RHS count; repacking the Cholesky factor into dense
diagonal/sub-diagonal block slabs turns the sweep into Level-3
``dtrsm``/``dgemm`` calls that amortise the factor traffic over all
stacked RHS — the paper's Level-3-over-Level-2 argument (Figs 1-6)
applied to the solver itself.  The charge is the classic ``dpbtrs``
count either way: blocking is a pure wall-clock optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla
from scipy.linalg import get_lapack_funcs

from ..obs import metrics
from .counters import charge

__all__ = ["bandwidth", "to_banded", "BandedSPDSolver"]

# Row-block size of the blocked triangular sweep, and the system sizes
# below which the plain LAPACK path stays faster (slab packing only pays
# off once the bandwidth is large enough for Level-3 arithmetic).
_BLOCK_M = 64
_MIN_BLOCKED_KD = 128
_MIN_BLOCKED_N = 4 * _BLOCK_M


def bandwidth(a: np.ndarray, tol: float = 0.0) -> int:
    """Half-bandwidth of a symmetric matrix: max |i-j| with |a_ij| > tol."""
    a = np.asarray(a)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("bandwidth: matrix must be square")
    rows, cols = np.nonzero(np.abs(a) > tol)
    if rows.size == 0:
        return 0
    return int(np.max(np.abs(rows - cols)))


def to_banded(a: np.ndarray, kd: int) -> np.ndarray:
    """Pack the upper triangle of symmetric ``a`` into LAPACK banded storage.

    Returns the (kd+1, n) array expected by ``scipy.linalg.cholesky_banded``
    (upper form: ab[kd + i - j, j] = a[i, j] for max(0, j-kd) <= i <= j).
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    ab = np.zeros((kd + 1, n))
    for j in range(n):
        i0 = max(0, j - kd)
        ab[kd - (j - i0) : kd + 1, j] = a[i0 : j + 1, j]
    return ab


@dataclass
class BandedSPDSolver:
    """Cholesky factorisation of a symmetric positive definite banded matrix.

    The factorisation is done once (matrix setup, outside the timestep
    loop, exactly as in NekTar); each :meth:`solve` is two banded
    triangular solves costing ~4*n*kd flops.
    """

    n: int
    kd: int
    _cb: np.ndarray = None  # type: ignore[assignment]
    _blocks: list | None = field(default=None, repr=False)

    @classmethod
    def from_dense(cls, a: np.ndarray, kd: int | None = None) -> "BandedSPDSolver":
        a = np.asarray(a, dtype=np.float64)
        n = a.shape[0]
        if kd is None:
            kd = bandwidth(a, tol=1e-14 * max(1.0, float(np.abs(a).max())))
        self = cls(n=n, kd=kd)
        ab = to_banded(a, kd)
        self._cb = sla.cholesky_banded(ab, lower=False, check_finite=False)
        # ~n*kd^2 flops for banded Cholesky (kd << n regime).
        charge(float(n) * kd * kd, 8.0 * (kd + 1) * n, "dpbtrf")
        return self

    @classmethod
    def from_banded(cls, ab: np.ndarray) -> "BandedSPDSolver":
        ab = np.asarray(ab, dtype=np.float64)
        kd, n = ab.shape[0] - 1, ab.shape[1]
        self = cls(n=n, kd=kd)
        self._cb = sla.cholesky_banded(ab, lower=False, check_finite=False)
        charge(float(n) * kd * kd, 8.0 * (kd + 1) * n, "dpbtrf")
        return self

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b (b may be a vector or a column-stacked matrix)."""
        if self._cb is None:
            raise RuntimeError("solver not factorised")
        b = np.asarray(b, dtype=np.float64)
        nrhs = 1 if b.ndim == 1 else b.shape[1]
        x = sla.cho_solve_banded((self._cb, False), b, check_finite=False)
        charge(4.0 * self.n * self.kd * nrhs, 8.0 * (self.kd + 1) * self.n * nrhs, "dpbtrs")
        return x

    def solve_many(self, bt: np.ndarray) -> np.ndarray:
        """Solve A X = B for row-stacked RHS ``bt`` of shape (nrhs, n).

        One blocked forward + backward triangular sweep over the whole
        stack; charges exactly ``nrhs`` single-RHS ``dpbtrs`` calls.
        """
        if self._cb is None:
            raise RuntimeError("solver not factorised")
        bt = np.asarray(bt, dtype=np.float64)
        if bt.ndim != 2 or bt.shape[1] != self.n:
            raise ValueError("solve_many: expected (nrhs, n) row-stacked RHS")
        nrhs = bt.shape[0]
        if (
            nrhs < 2
            or self.kd < _MIN_BLOCKED_KD
            or self.n < _MIN_BLOCKED_N
        ):
            x = sla.cho_solve_banded((self._cb, False), bt.T, check_finite=False).T
        else:
            x = self._solve_blocked(bt)
        charge(
            4.0 * self.n * self.kd * nrhs,
            8.0 * (self.kd + 1) * self.n * nrhs,
            "dpbtrs",
        )
        return x

    # -- blocked Level-3 sweep ------------------------------------------------

    def _build_blocks(self) -> None:
        """Repack the banded factor R (upper form, L = R^T) into per-block
        dense slabs DS of shape (mb + kdw, mb), column-major: DS[:mb] is
        the lower-triangular diagonal block of L, DS[mb:] the sub-diagonal
        slab coupling the block to the next kdw rows.  Built once, on the
        first multi-RHS solve (single-RHS users never pay for it)."""
        cb, m = self._cb, _BLOCK_M
        kd, n = cb.shape[0] - 1, cb.shape[1]
        s_r, s_c = cb.strides
        blocks = []
        for i0 in range(0, n, m):
            mb = min(m, n - i0)
            kdw = min(kd, n - i0 - mb)
            ds = np.zeros((mb + kdw, mb), order="F")
            sd_r, sd_c = ds.strides
            # L[j+t, j] = cb[kd-t, j+t]: each factor column is an
            # anti-diagonal of cb, read with a sheared strided view.
            dst = np.lib.stride_tricks.as_strided(
                ds, shape=(kd + 1, mb), strides=(sd_r, sd_c + sd_r)
            )
            for c in range(mb):
                j = i0 + c
                tmax = min(kd, n - 1 - j, mb + kdw - 1 - c)
                src = np.lib.stride_tricks.as_strided(
                    cb[kd:, j:], shape=(tmax + 1,), strides=(s_c - s_r,)
                )
                dst[: tmax + 1, c] = src
            blocks.append(ds)
        self._blocks = blocks

    # repro: waive[accounting] charged by solve_many as nrhs x dpbtrs
    def _solve_blocked(self, bt: np.ndarray) -> np.ndarray:
        """L L^T X = B over a row-stacked (nrhs, n) block, Level-3 per-block:
        dtrsm on the diagonal block, wide dgemm on the sub-diagonal slab."""
        if self._blocks is None:
            metrics.inc("slab_cache.misses")
            self._build_blocks()
        else:
            metrics.inc("slab_cache.hits")
        (trtrs,) = get_lapack_funcs(("trtrs",), (self._cb,))
        m = _BLOCK_M
        x = np.ascontiguousarray(bt).copy()
        nblk = len(self._blocks)
        # Forward sweep: L y = b, right-looking.
        for bi in range(nblk):
            i0 = bi * m
            ds = self._blocks[bi]
            mb = ds.shape[1]
            ybt = np.ascontiguousarray(x[:, i0 : i0 + mb])
            sol, _ = trtrs(ds[:mb], ybt.T, lower=1, trans=0)
            solt = sol.T
            x[:, i0 : i0 + mb] = solt
            s = ds[mb:]
            if s.shape[0]:
                x[:, i0 + mb : i0 + mb + s.shape[0]] -= solt @ s.T
        # Backward sweep: L^T x = y, left-looking in reverse.
        for bi in range(nblk - 1, -1, -1):
            i0 = bi * m
            ds = self._blocks[bi]
            mb = ds.shape[1]
            s = ds[mb:]
            rhst = np.ascontiguousarray(x[:, i0 : i0 + mb])
            if s.shape[0]:
                rhst -= x[:, i0 + mb : i0 + mb + s.shape[0]] @ s
            sol, _ = trtrs(ds[:mb], rhst.T, lower=1, trans=1)
            x[:, i0 : i0 + mb] = sol.T
        return x

    @property
    def solve_flops(self) -> float:
        """Flops of one single-RHS solve (for the analytic cost models)."""
        return 4.0 * self.n * self.kd
