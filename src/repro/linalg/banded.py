"""Symmetric banded direct solver (the paper's LAPACK ``dpbtrf/dpbtrs``).

Section 4.1: "Solution of the Laplacian ... A direct solver (LAPACK),
utilising the symmetric and banded nature of the matrix, is used."
The global Helmholtz/Poisson matrices assembled with boundary-first
ordering are symmetric positive definite and banded (Figure 10); this
module wraps scipy's banded Cholesky with (a) a dense<->banded layout
converter, (b) exact factor/solve flop counts charged to the active
:class:`~repro.linalg.counters.OpCounter`, so solve stages can be priced
on the simulated machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from .counters import charge

__all__ = ["bandwidth", "to_banded", "BandedSPDSolver"]


def bandwidth(a: np.ndarray, tol: float = 0.0) -> int:
    """Half-bandwidth of a symmetric matrix: max |i-j| with |a_ij| > tol."""
    a = np.asarray(a)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("bandwidth: matrix must be square")
    rows, cols = np.nonzero(np.abs(a) > tol)
    if rows.size == 0:
        return 0
    return int(np.max(np.abs(rows - cols)))


def to_banded(a: np.ndarray, kd: int) -> np.ndarray:
    """Pack the upper triangle of symmetric ``a`` into LAPACK banded storage.

    Returns the (kd+1, n) array expected by ``scipy.linalg.cholesky_banded``
    (upper form: ab[kd + i - j, j] = a[i, j] for max(0, j-kd) <= i <= j).
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    ab = np.zeros((kd + 1, n))
    for j in range(n):
        i0 = max(0, j - kd)
        ab[kd - (j - i0) : kd + 1, j] = a[i0 : j + 1, j]
    return ab


@dataclass
class BandedSPDSolver:
    """Cholesky factorisation of a symmetric positive definite banded matrix.

    The factorisation is done once (matrix setup, outside the timestep
    loop, exactly as in NekTar); each :meth:`solve` is two banded
    triangular solves costing ~4*n*kd flops.
    """

    n: int
    kd: int
    _cb: np.ndarray = None  # type: ignore[assignment]

    @classmethod
    def from_dense(cls, a: np.ndarray, kd: int | None = None) -> "BandedSPDSolver":
        a = np.asarray(a, dtype=np.float64)
        n = a.shape[0]
        if kd is None:
            kd = bandwidth(a, tol=1e-14 * max(1.0, float(np.abs(a).max())))
        self = cls(n=n, kd=kd)
        ab = to_banded(a, kd)
        self._cb = sla.cholesky_banded(ab, lower=False)
        # ~n*kd^2 flops for banded Cholesky (kd << n regime).
        charge(float(n) * kd * kd, 8.0 * (kd + 1) * n, "dpbtrf")
        return self

    @classmethod
    def from_banded(cls, ab: np.ndarray) -> "BandedSPDSolver":
        ab = np.asarray(ab, dtype=np.float64)
        kd, n = ab.shape[0] - 1, ab.shape[1]
        self = cls(n=n, kd=kd)
        self._cb = sla.cholesky_banded(ab, lower=False)
        charge(float(n) * kd * kd, 8.0 * (kd + 1) * n, "dpbtrf")
        return self

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b (b may be a vector or a column-stacked matrix)."""
        if self._cb is None:
            raise RuntimeError("solver not factorised")
        b = np.asarray(b, dtype=np.float64)
        nrhs = 1 if b.ndim == 1 else b.shape[1]
        x = sla.cho_solve_banded((self._cb, False), b)
        charge(4.0 * self.n * self.kd * nrhs, 8.0 * (self.kd + 1) * self.n * nrhs, "dpbtrs")
        return x

    @property
    def solve_flops(self) -> float:
        """Flops of one single-RHS solve (for the analytic cost models)."""
        return 4.0 * self.n * self.kd
