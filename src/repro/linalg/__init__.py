"""BLAS/LAPACK-level substrate: counted kernels, banded Cholesky, PCG."""

from .banded import BandedSPDSolver, bandwidth, to_banded
from .blas import (
    daxpy,
    dcopy,
    ddot,
    dgemm,
    dgemv,
    dnrm2,
    dscal,
    dsvtvp,
    dvadd,
    dvmul,
)
from .cg import CGResult, pcg
from .counters import OpCounter, active_counter, charge

__all__ = [
    "BandedSPDSolver",
    "bandwidth",
    "to_banded",
    "dcopy",
    "daxpy",
    "ddot",
    "dscal",
    "dnrm2",
    "dgemv",
    "dgemm",
    "dvmul",
    "dvadd",
    "dsvtvp",
    "CGResult",
    "pcg",
    "OpCounter",
    "active_counter",
    "charge",
]
