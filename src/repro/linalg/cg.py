"""Diagonally preconditioned conjugate gradient.

Section 4.2.2: "a diagonally preconditioned conjugate gradient iterative
solver is predominantly used" in NekTar-ALE.  This CG is written against
an abstract operator so the same code runs (a) serially on an assembled
matrix, and (b) in parallel where the operator is element-local matvec
plus a gather-scatter assembly exchange and the dot products are
all-reduced (see :mod:`repro.ns.nektar_ale`).

All vector work goes through :mod:`repro.linalg.blas` so iterations are
fully op-counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import metrics
from ..obs import tracer as obs
from . import blas

__all__ = ["CGResult", "pcg", "pcg_block"]

DotFn = Callable[[np.ndarray, np.ndarray], float]


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


def _observe(res: CGResult) -> CGResult:
    """Report one finished solve to the observability layer.

    Pure observation — charges nothing, so metrics/tracing on vs off
    leaves the OpCounter accounting byte-identical.
    """
    metrics.inc("pcg.solves")
    metrics.observe("pcg.iterations", res.iterations)
    metrics.set_gauge("pcg.last_residual", res.residual)
    if not res.converged:
        metrics.inc("pcg.unconverged")
    obs.instant(
        "pcg",
        "pcg",
        iterations=res.iterations,
        residual=float(res.residual),
        converged=res.converged,
    )
    return res


def pcg(
    apply_a: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    diag: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1.0e-10,
    maxiter: int | None = None,
    dot: DotFn | None = None,
) -> CGResult:
    """Solve A x = b with Jacobi-preconditioned CG.

    Parameters
    ----------
    apply_a:
        The operator; must return a new array (or a buffer it owns).
    diag:
        The (assembled) diagonal of A for the Jacobi preconditioner.
    dot:
        Inner product; defaults to :func:`repro.linalg.blas.ddot`.  A
        parallel caller passes a dot that all-reduces, which is the only
        communication CG needs besides the matvec.
    """
    b = np.asarray(b, dtype=np.float64)
    diag = np.asarray(diag, dtype=np.float64)
    if np.any(diag <= 0.0):
        raise ValueError("pcg: preconditioner diagonal must be positive (SPD A)")
    n = b.size
    if maxiter is None:
        maxiter = 10 * n + 100
    if dot is None:
        dot = blas.ddot

    inv_diag = 1.0 / diag
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    r = b - apply_a(x) if x0 is not None else b.copy()
    z = np.empty(n)
    blas.dvmul(inv_diag, r, z)
    p = z.copy()
    rz = dot(r, z)

    bnorm = blas.dnrm2(b)
    if bnorm == 0.0:
        return _observe(CGResult(np.zeros(n), 0, 0.0, True))

    resid = blas.dnrm2(r) / bnorm
    for it in range(1, maxiter + 1):
        if resid <= tol:
            return _observe(CGResult(x, it - 1, resid, True))
        ap = apply_a(p)
        pap = dot(p, ap)
        if pap <= 0.0:
            raise np.linalg.LinAlgError("pcg: operator not positive definite")
        alpha = rz / pap
        blas.daxpy(alpha, p, x)
        blas.daxpy(-alpha, ap, r)
        blas.dvmul(inv_diag, r, z)
        rz_new = dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        # p = z + beta p
        blas.dscal(beta, p)
        blas.daxpy(1.0, z, p)
        resid = blas.dnrm2(r) / bnorm

    return _observe(CGResult(x, maxiter, resid, resid <= tol))


def pcg_block(
    apply_a: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    diag: np.ndarray,
    tol: float = 1.0e-10,
    maxiter: int | None = None,
    dot: DotFn | None = None,
    apply_block: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[CGResult]:
    """Block-Jacobi-PCG over a row-stacked (nrhs, n) RHS block.

    Each row runs the *identical* iteration to :func:`pcg` — the scalar
    reductions use the same BLAS calls on contiguous row views and the
    elementwise updates are the row-wise batched kernels, so every
    column's iterates, iteration count, and OpCounter charges are
    bit-for-bit what ``nrhs`` separate :func:`pcg` calls produce.  The
    interpreter-level loop fusion (one batched daxpy/dvmul/dscal per
    iteration instead of one per column) is the whole optimisation.
    Converged columns are compacted out so they stop iterating — and
    stop being charged — at exactly the solo path's iteration count.

    ``apply_block``, when given, applies the operator to the whole
    (k, n) row block in one sweep (the matrix-free sum-factorised
    apply batches its leading axes); it must produce the same values
    and charges as k row-wise ``apply_a`` calls.
    """
    b = np.ascontiguousarray(np.asarray(b, dtype=np.float64))
    diag = np.asarray(diag, dtype=np.float64)
    if b.ndim != 2:
        raise ValueError("pcg_block: expected a (nrhs, n) RHS block")
    if np.any(diag <= 0.0):
        raise ValueError("pcg: preconditioner diagonal must be positive (SPD A)")
    nrhs, n = b.shape
    if maxiter is None:
        maxiter = 10 * n + 100
    if dot is None:
        dot = blas.ddot

    inv_diag = 1.0 / diag
    results: list[CGResult | None] = [None] * nrhs
    x = np.zeros((nrhs, n))
    r = b.copy()
    z = np.empty((nrhs, n))
    blas.dvmul_batched(inv_diag, r, z)
    p = z.copy()
    rz = np.array([dot(r[j], z[j]) for j in range(nrhs)])
    bnorm = np.array([blas.dnrm2(b[j]) for j in range(nrhs)])
    idx = np.arange(nrhs)
    for j in np.nonzero(bnorm == 0.0)[0]:
        results[j] = _observe(CGResult(np.zeros(n), 0, 0.0, True))

    def compact(keep: np.ndarray):
        nonlocal x, r, z, p, rz, bnorm, idx
        x, r, z, p = x[keep], r[keep], z[keep], p[keep]
        rz, bnorm, idx = rz[keep], bnorm[keep], idx[keep]

    active = bnorm != 0.0
    if not np.all(active):
        compact(active)
    if idx.size == 0:
        return results  # type: ignore[return-value]
    resid = np.array([blas.dnrm2(r[j]) for j in range(idx.size)]) / bnorm

    for it in range(1, maxiter + 1):
        conv = resid <= tol
        if np.any(conv):
            for j in np.nonzero(conv)[0]:
                results[idx[j]] = _observe(
                    CGResult(x[j].copy(), it - 1, resid[j], True)
                )
            compact(~conv)
            resid = resid[~conv]
            if idx.size == 0:
                return results  # type: ignore[return-value]
        if apply_block is not None:
            ap = np.ascontiguousarray(apply_block(p))
        else:
            ap = np.empty_like(p)
            for j in range(idx.size):
                ap[j] = apply_a(p[j])
        pap = np.array([dot(p[j], ap[j]) for j in range(idx.size)])
        if np.any(pap <= 0.0):
            raise np.linalg.LinAlgError("pcg: operator not positive definite")
        alpha = rz / pap
        blas.daxpy_batched(alpha, p, x)
        blas.daxpy_batched(-alpha, ap, r)
        blas.dvmul_batched(inv_diag, r, z)
        rz_new = np.array([dot(r[j], z[j]) for j in range(idx.size)])
        beta = rz_new / rz
        rz = rz_new
        # p = z + beta p, row-wise.
        blas.dscal_batched(beta, p)
        blas.daxpy_batched(np.ones(idx.size), z, p)
        resid = np.array(
            [blas.dnrm2(r[j]) for j in range(idx.size)]
        ) / bnorm

    for j in range(idx.size):
        results[idx[j]] = _observe(
            CGResult(x[j].copy(), maxiter, resid[j], bool(resid[j] <= tol))
        )
    return results  # type: ignore[return-value]
