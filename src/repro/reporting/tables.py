"""ASCII table / series emitters matching the paper's layout.

Every benchmark driver funnels its output through these helpers so the
regenerated tables read like the paper's (same row/column structure),
and figure data is emitted as aligned columns (one block per curve)
suitable for eyeballing or piping into a plotting tool.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ascii_table", "format_series", "format_percentages"]


def _fmt(x, width: int = 0) -> str:
    if isinstance(x, float):
        if x == 0:
            s = "0"
        elif abs(x) >= 1e5 or abs(x) < 1e-3:
            s = f"{x:.3g}"
        else:
            s = f"{x:.4g}"
    else:
        s = str(x)
    return s.rjust(width) if width else s


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as a boxed, right-aligned ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(
        "|" + "|".join(f" {h.rjust(w)} " for h, w in zip(headers, widths)) + "|"
    )
    out.append(sep)
    for row in srows:
        out.append(
            "|" + "|".join(f" {c.rjust(w)} " for c, w in zip(row, widths)) + "|"
        )
    out.append(sep)
    return "\n".join(out)


def format_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    xlabel: str,
    ylabel: str,
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """One column block per named curve: `x  y` pairs."""
    out = []
    if title:
        out.append(f"# {title}")
    for name, (xs, ys) in series.items():
        out.append(f"## {name}  ({xlabel} -> {ylabel})")
        pairs = list(zip(xs, ys))
        if max_rows is not None and len(pairs) > max_rows:
            stride = max(1, len(pairs) // max_rows)
            pairs = pairs[::stride]
        for x, y in pairs:
            out.append(f"{_fmt(float(x)):>14}  {_fmt(float(y)):>14}")
    return "\n".join(out)


def format_percentages(
    breakdown: dict[str, dict[str, float]], title: str | None = None
) -> str:
    """Figure 12-16 style: one column per case, one row per stage."""
    cases = list(breakdown)
    stages = sorted({s for b in breakdown.values() for s in b})
    rows = [
        [stage] + [f"{breakdown[c].get(stage, 0.0):.1f}%" for c in cases]
        for stage in stages
    ]
    return ascii_table(["stage"] + cases, rows, title=title)
