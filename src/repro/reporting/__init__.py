"""Output formatting for the benchmark harness."""

from .tables import ascii_table, format_percentages, format_series

__all__ = ["ascii_table", "format_series", "format_percentages"]
