"""Top-level entry point: ``python -m repro`` lists the reproduction
commands; ``python -m repro all`` regenerates every table and figure.
"""

from __future__ import annotations

import sys

MENU = """\
repro — "DNS of Turbulence with a PC/Linux Cluster: Fact or Fiction?" (SC '99)

Regenerate the paper's artifacts:

  python -m repro.apps.kernel_report --figure N    Figures 1-8 (N = 1..8)
  python -m repro.apps.matrix_structure            Figures 9-11
  python -m repro.apps.serial_bluff --breakdown    Table 1, Figure 12
  python -m repro.apps.nektar_f_bench --breakdown  Table 2, Figures 13-14
  python -m repro.apps.ale_bench --breakdown 16    Table 3, Figures 15-16
  python -m repro.apps.trace_report                per-rank Perfetto trace
  python -m repro.apps.trace_report --critical-path  + makespan attribution
  python -m repro.apps.perf_report --ledger RUNLOG.jsonl  run-ledger trajectories
  python -m repro all                              everything at once

Examples (real solver runs):

  python examples/quickstart.py
  python examples/cylinder_wake.py
  python examples/flapping_wing_ale.py
  python examples/spanwise_turbulence_3d.py
  python examples/cluster_comparison.py

Tests and benchmarks:

  pytest tests/
  pytest benchmarks/ --benchmark-only
"""


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "all":
        from .apps import ale_bench, nektar_f_bench, serial_bluff

        serial_bluff.main(["--breakdown"])
        print()
        nektar_f_bench.main(["--breakdown"])
        print()
        ale_bench.main(["--breakdown", "16"])
        return 0
    print(MENU)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
