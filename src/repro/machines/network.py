"""Interconnect performance models (the Figures 7-8 substrate).

Hockney-style point-to-point model with an eager/rendezvous protocol
switch, plus the two collective-relevant properties the paper's results
hinge on:

* ``full_duplex`` — whether a node can send and receive simultaneously
  (Myrinet, SP switch, crossbars: yes; Fast-Ethernet TCP stacks of the
  era: effectively no),
* ``aggregate_capacity`` — total concurrent bytes/s the fabric can
  carry; Alltoall on P processors pushes P*(P-1) messages at once, and
  a fabric whose aggregate capacity is below P x port bandwidth
  saturates — that is exactly the "ethernet saturates above 4-8
  processors" effect of Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """One network configuration (a line in Figure 7)."""

    name: str
    latency_us: float  # one-way zero-byte latency
    bandwidth: float  # asymptotic one-way bytes/s per port
    eager_threshold: int = 8192  # bytes; larger messages pay rendezvous
    rendezvous_extra_us: float = 0.0
    full_duplex: bool = True
    aggregate_capacity: float | None = None  # None = non-blocking fabric
    # CPU seconds burned per byte by the protocol stack (TCP copies and
    # checksums on the Ethernet clusters; ~0 for OS-bypass Myrinet/GM and
    # the supercomputer networks).  This is why Table 2 shows *CPU* time,
    # not just wall-clock, inflating on the Ethernet RoadRunner runs.
    cpu_overhead_per_byte: float = 0.0
    # Fraction of communication wait time that burns CPU.  Vendor MPIs
    # and MPICH-GM busy-poll (cpu ~ wall, as in the paper's nearly equal
    # CPU/wall columns on the supercomputers and Myrinet); TCP sockets
    # block in the kernel (cpu < wall on Muses and RoadRunner-ethernet).
    busy_wait_fraction: float = 0.0

    def __post_init__(self):
        if self.latency_us < 0 or self.bandwidth <= 0:
            raise ValueError("invalid latency/bandwidth")

    # -- point to point ---------------------------------------------------------

    def send_time(self, nbytes: int) -> float:
        """One-way time for a message of nbytes (NetPIPE's metric)."""
        if nbytes < 0:
            raise ValueError("negative message size")
        t = self.latency_us * 1e-6 + nbytes / self.bandwidth
        if nbytes > self.eager_threshold:
            t += self.rendezvous_extra_us * 1e-6
        return t

    def pingpong_latency_us(self, nbytes: int) -> float:
        return self.send_time(nbytes) * 1e6

    def pingpong_bandwidth(self, nbytes: int) -> float:
        """MB/s (1 MB = 1e6 bytes) seen by NetPIPE at this size."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.send_time(nbytes) / 1e6

    # -- collectives --------------------------------------------------------------

    def effective_capacity(self, nflows: int) -> float:
        """Total bytes/s the fabric sustains with nflows concurrent flows."""
        cap = nflows * self.bandwidth
        if self.aggregate_capacity is not None:
            cap = min(cap, self.aggregate_capacity)
        return cap

    def alltoall_time(self, nprocs: int, nbytes: int) -> float:
        """MPI_Alltoall: every rank sends nbytes to each other rank.

        Pairwise-exchange algorithm: P-1 rounds; each round every rank
        sends and receives one message.  On a full-duplex non-blocking
        fabric a round costs one message time; half-duplex doubles it;
        an oversubscribed fabric stretches rounds by the ratio of
        offered load to aggregate capacity.

        A single-rank Alltoall is not free: MPI still performs the
        local copy, priced as one pass through the protocol stack
        (:meth:`cpu_time_for_bytes`; zero on OS-bypass networks).
        """
        if nprocs < 2:
            return self.cpu_time_for_bytes(nbytes) if nbytes > 0 else 0.0
        rounds = nprocs - 1
        per_msg = self.send_time(nbytes)
        if not self.full_duplex:
            per_msg += nbytes / self.bandwidth  # serialised send + receive
        # Congestion stretch: P concurrent flows vs what the fabric carries.
        offered = nprocs * self.bandwidth
        stretch = max(1.0, offered / self.effective_capacity(nprocs))
        return rounds * (self.latency_us * 1e-6 + (per_msg - self.latency_us * 1e-6) * stretch)

    def alltoall_avg_bandwidth(self, nprocs: int, nbytes: int) -> float:
        """Figure 8's metric: per-process outgoing volume over time, MB/s."""
        if nbytes <= 0 or nprocs < 2:
            return 0.0
        t = self.alltoall_time(nprocs, nbytes)
        return (nprocs - 1) * nbytes / t / 1e6

    # -- reductions ------------------------------------------------------------------

    def cpu_time_for_bytes(self, nbytes: float) -> float:
        """CPU seconds the protocol stack charges for moving nbytes."""
        return self.cpu_overhead_per_byte * nbytes

    def allreduce_time(self, nprocs: int, nbytes: int) -> float:
        """Binomial-tree reduce + broadcast (2 * ceil(log2 P) hops)."""
        if nprocs < 2:
            return 0.0
        hops = 2 * math.ceil(math.log2(nprocs))
        return hops * self.send_time(nbytes)

    def barrier_time(self, nprocs: int) -> float:
        return self.allreduce_time(nprocs, 8)
