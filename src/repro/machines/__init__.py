"""Hardware substrate: CPU and network performance models, machine catalog."""

from .catalog import (
    ALLTOALL_FIGURE_NETWORKS,
    BLAS_FIGURE_MACHINES,
    CPUS,
    MACHINES,
    NETWORKS,
    PINGPONG_FIGURE_NETWORKS,
    MachineSpec,
    machine,
    network,
)
from .cpu import CPUModel, ROUTINES, routine_flops, routine_traffic, working_set
from .network import NetworkModel

__all__ = [
    "CPUModel",
    "NetworkModel",
    "MachineSpec",
    "CPUS",
    "NETWORKS",
    "MACHINES",
    "machine",
    "network",
    "ROUTINES",
    "routine_flops",
    "routine_traffic",
    "working_set",
    "BLAS_FIGURE_MACHINES",
    "PINGPONG_FIGURE_NETWORKS",
    "ALLTOALL_FIGURE_NETWORKS",
]
