"""The paper's machines (Section 2) as CPU + network model instances.

CPU parameters come from the published hardware specs (clock, cache
sizes, peak rates) with sustained bandwidths and application rates
calibrated to reproduce the *shapes* of Figures 1-6 and the ordering of
Table 1; network parameters are calibrated against Figure 7's measured
latency/bandwidth curves and the hardware peaks quoted in Section 2.
The calibration story for every number is recorded in EXPERIMENTS.md.

Naming follows the paper: machines are keyed by the label used in the
figures ("Muses", "T3E", "SP2-Silver", ...), and the twelve network
configurations by their Figure 7 legend entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cpu import CPUModel
from .network import NetworkModel

__all__ = [
    "MachineSpec",
    "CPUS",
    "NETWORKS",
    "MACHINES",
    "machine",
    "network",
    "BLAS_FIGURE_MACHINES",
    "PINGPONG_FIGURE_NETWORKS",
    "ALLTOALL_FIGURE_NETWORKS",
]

KB = 1024.0
MB = 1024.0 * 1024.0

# ---------------------------------------------------------------------------
# Processors
# ---------------------------------------------------------------------------

CPUS: dict[str, CPUModel] = {
    # Intel Pentium II 450 MHz, 16 KB L1, 512 KB half-speed L2, 100 MHz
    # SDRAM ("its fast 100MHz SDRAM memory subsystem").  Used by both
    # Muses and RoadRunner.
    "pentium-ii-450": CPUModel(
        name="Pentium II, 450MHz",
        clock_mhz=450,
        peak_mflops=450,
        cache_sizes=(16 * KB, 512 * KB),
        bandwidths=(3.6e9, 1.1e9, 0.42e9),
        overhead_us=0.15,
        dgemm_efficiency=0.75,
        dgemm_n_half=6.0,
        flop_caps={"ddot": 450, "daxpy": 300, "dgemv": 380},
        app_mflops=105.0,
        solve_mflops=140.0,
    ),
    # IBM Power2 66 MHz "Thin2": 128 KB L1, no L2, 128-bit memory bus.
    "power2-66": CPUModel(
        name="Power2, 66MHz (Thin2)",
        clock_mhz=66,
        peak_mflops=264,
        cache_sizes=(128 * KB,),
        bandwidths=(1.9e9, 1.4e9),
        overhead_us=0.45,
        dgemm_efficiency=0.85,
        flop_caps={"ddot": 264, "daxpy": 200, "dgemv": 264},
        app_mflops=59.0,
        solve_mflops=36.5,
    ),
    # IBM P2SC 160 MHz "Thin4" (Maui): Power2 core, higher clock.
    "p2sc-160": CPUModel(
        name="P2SC, 160MHz",
        clock_mhz=160,
        peak_mflops=640,
        cache_sizes=(128 * KB,),
        bandwidths=(2.6e9, 1.6e9),
        overhead_us=0.3,
        dgemm_efficiency=0.85,
        flop_caps={"ddot": 640, "daxpy": 420, "dgemv": 600},
        app_mflops=120.0,
        solve_mflops=89.0,
    ),
    # PowerPC 604e 332 MHz "Silver": 32 KB L1, slow 256 KB L2 ("the
    # performance drop for going to L2 ... for the Silver node SP").
    "ppc604e-332": CPUModel(
        name="PowerPC 604e, 332MHz (Silver)",
        clock_mhz=332,
        peak_mflops=664,
        cache_sizes=(32 * KB, 256 * KB),
        bandwidths=(2.7e9, 0.9e9, 0.33e9),
        overhead_us=0.25,
        dgemm_efficiency=0.70,
        flop_caps={"ddot": 400, "daxpy": 280, "dgemv": 420},
        app_mflops=65.0,
        solve_mflops=81.0,
    ),
    # SGI R10000 195 MHz (Onyx2): 32 KB L1, 4 MB L2.
    "r10000-195": CPUModel(
        name="R10000, 195MHz (Onyx2)",
        clock_mhz=195,
        peak_mflops=390,
        cache_sizes=(32 * KB, 4 * MB),
        bandwidths=(1.6e9, 1.1e9, 0.30e9),
        overhead_us=0.3,
        dgemm_efficiency=0.85,
        flop_caps={"ddot": 390, "daxpy": 260, "dgemv": 360},
        app_mflops=82.0,
        solve_mflops=64.0,
    ),
    # SGI R10000 250 MHz (NCSA Origin 2000).
    "r10000-250": CPUModel(
        name="R10000, 250MHz (Origin 2000)",
        clock_mhz=250,
        peak_mflops=500,
        cache_sizes=(32 * KB, 4 * MB),
        bandwidths=(2.0e9, 1.4e9, 0.35e9),
        overhead_us=0.25,
        dgemm_efficiency=0.85,
        flop_caps={"ddot": 500, "daxpy": 330, "dgemv": 460},
        app_mflops=98.0,
        solve_mflops=100.0,
    ),
    # Fujitsu AP3000 node: UltraSPARC 300 MHz, Sun LIBPERF BLAS.
    "ultrasparc-300": CPUModel(
        name="UltraSPARC, 300MHz (AP3000)",
        clock_mhz=300,
        peak_mflops=600,
        cache_sizes=(16 * KB, 1 * MB),
        bandwidths=(2.4e9, 0.8e9, 0.25e9),
        overhead_us=0.3,
        dgemm_efficiency=0.60,
        flop_caps={"ddot": 380, "daxpy": 260, "dgemv": 380},
        app_mflops=70.0,
        solve_mflops=60.0,
    ),
    # Cray T3E-900 node: Alpha 21164A 450 MHz, 8 KB L1 / 96 KB L2,
    # STREAMS hardware prefetch enabled (as in the paper's runs).
    "alpha21164-450": CPUModel(
        name="Alpha 21164A, 450MHz (T3E)",
        clock_mhz=450,
        peak_mflops=900,
        cache_sizes=(8 * KB, 96 * KB),
        bandwidths=(3.6e9, 2.2e9, 0.82e9),
        overhead_us=0.2,
        dgemm_efficiency=0.85,
        flop_caps={"ddot": 450, "daxpy": 300, "dgemv": 500},
        app_mflops=104.0,
        solve_mflops=115.0,
    ),
    # Hitachi SR8000 CPU: pseudo-vector PA-RISC derivative.
    "sr8000": CPUModel(
        name="SR8000 CPU (pseudo-vector)",
        clock_mhz=250,
        peak_mflops=1000,
        cache_sizes=(128 * KB,),
        bandwidths=(4.0e9, 3.2e9),
        overhead_us=0.5,
        dgemm_efficiency=0.9,
        app_mflops=300.0,
        solve_mflops=400.0,
    ),
}

# ---------------------------------------------------------------------------
# Networks (the twelve Figure 7 configurations)
# ---------------------------------------------------------------------------

NETWORKS: dict[str, NetworkModel] = {
    "AP3000": NetworkModel(
        "AP3000 (AP-Net)", latency_us=35, bandwidth=65e6, busy_wait_fraction=1.0
    ),
    "SP2-Thin2": NetworkModel(
        "SP2-Thin2 (TB2 adapter)", latency_us=50, bandwidth=33e6, busy_wait_fraction=1.0
    ),
    "SP2-Silver, internode": NetworkModel(
        "SP2-Silver internode (MX adapter)", latency_us=29, bandwidth=90e6, busy_wait_fraction=1.0
    ),
    "SP2-Silver, intranode": NetworkModel(
        "SP2-Silver intranode (shared memory)", latency_us=22, bandwidth=130e6, busy_wait_fraction=1.0
    ),
    "Muses, MPICH": NetworkModel(
        "Muses MPICH/TCP (Fast Ethernet, point-to-point)",
        latency_us=124,
        bandwidth=10.8e6,
        eager_threshold=16384,
        rendezvous_extra_us=120.0,
        full_duplex=False,
        cpu_overhead_per_byte=1.0 / 60e6,
        busy_wait_fraction=0.35,
    ),
    "Muses, LAM": NetworkModel(
        "Muses LAM/TCP tuned (Fast Ethernet, point-to-point)",
        latency_us=97,
        bandwidth=11.2e6,
        eager_threshold=16384,
        rendezvous_extra_us=100.0,
        full_duplex=False,
        cpu_overhead_per_byte=1.0 / 60e6,
        busy_wait_fraction=0.35,
    ),
    "Onyx2": NetworkModel(
        "Onyx2 (shared memory)", latency_us=12, bandwidth=160e6, busy_wait_fraction=1.0
    ),
    "RoadRunner, eth-intranode": NetworkModel(
        "RoadRunner Fast Ethernet intranode (TCP loopback)",
        latency_us=150,
        bandwidth=22e6,
        full_duplex=False,
        cpu_overhead_per_byte=1.0 / 45e6,
        busy_wait_fraction=0.45,
    ),
    "RoadRunner, eth-internode": NetworkModel(
        "RoadRunner Fast Ethernet internode (MPICH/TCP)",
        latency_us=280,
        bandwidth=9.5e6,
        eager_threshold=16384,
        rendezvous_extra_us=200.0,
        full_duplex=False,
        aggregate_capacity=15e6,  # oversubscribed control network
        cpu_overhead_per_byte=1.0 / 45e6,
        busy_wait_fraction=0.45,
    ),
    "RoadRunner, myr-intranode": NetworkModel(
        "RoadRunner Myrinet intranode (GM loopback)",
        latency_us=42,
        bandwidth=28e6,
        busy_wait_fraction=1.0,
    ),
    "RoadRunner, myr-internode": NetworkModel(
        "RoadRunner Myrinet internode (MPICH-GM)",
        latency_us=30,
        bandwidth=33e6,
        # 32-bit Myrinet fabric: ample for small clusters, saturating
        # towards 64-128 processors (Table 2's myrinet tail).
        aggregate_capacity=1.2e9,
        busy_wait_fraction=1.0,
    ),
    "T3E": NetworkModel(
        "T3E-900 3-D torus", latency_us=14, bandwidth=300e6, busy_wait_fraction=1.0
    ),
    "NCSA": NetworkModel(
        "Origin 2000 ccNUMA (NCSA)", latency_us=15, bandwidth=140e6, busy_wait_fraction=1.0
    ),
    "HITACHI": NetworkModel(
        "SR8000 3-D crossbar", latency_us=12, bandwidth=500e6, busy_wait_fraction=1.0
    ),
}


# ---------------------------------------------------------------------------
# Machines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec:
    """One of the paper's ten systems: node CPU plus its network(s)."""

    name: str
    cpu: CPUModel
    networks: dict[str, NetworkModel] = field(default_factory=dict)
    procs_per_node: int = 1
    max_procs: int = 1
    ram_per_node: float = 256e6  # bytes (Section 2 hardware specs)
    notes: str = ""

    @property
    def ram_per_proc(self) -> float:
        return self.ram_per_node / self.procs_per_node

    def network(self, kind: str = "default") -> NetworkModel:
        try:
            return self.networks[kind]
        except KeyError:
            raise KeyError(
                f"{self.name} has networks {sorted(self.networks)}, not {kind!r}"
            ) from None


MACHINES: dict[str, MachineSpec] = {
    "RoadRunner": MachineSpec(
        name="RoadRunner (AltaCluster, 128 x PII-450)",
        ram_per_node=512e6,
        cpu=CPUS["pentium-ii-450"],
        networks={
            "default": NETWORKS["RoadRunner, myr-internode"],
            "ethernet": NETWORKS["RoadRunner, eth-internode"],
            "ethernet-intranode": NETWORKS["RoadRunner, eth-intranode"],
            "myrinet": NETWORKS["RoadRunner, myr-internode"],
            "myrinet-intranode": NETWORKS["RoadRunner, myr-intranode"],
        },
        procs_per_node=2,
        max_procs=128,
        notes="NSF Alliance supercluster at AHPCC; Red Hat, 2.2.10 kernel",
    ),
    "Muses": MachineSpec(
        name="Muses (4 x PII-450, < $10k)",
        ram_per_node=384e6,
        cpu=CPUS["pentium-ii-450"],
        networks={
            "default": NETWORKS["Muses, LAM"],
            "mpich": NETWORKS["Muses, MPICH"],
            "lam": NETWORKS["Muses, LAM"],
        },
        procs_per_node=1,
        max_procs=4,
        notes="quad Fast Ethernet NICs, point-to-point topology",
    ),
    "SP2-Silver": MachineSpec(
        name="IBM SP, Silver (F50) nodes",
        ram_per_node=1024e6,
        cpu=CPUS["ppc604e-332"],
        networks={
            "default": NETWORKS["SP2-Silver, internode"],
            "internode": NETWORKS["SP2-Silver, internode"],
            "intranode": NETWORKS["SP2-Silver, intranode"],
        },
        procs_per_node=4,
        max_procs=96,
        notes="Brown TCASCV; SP switch, MX adapter",
    ),
    "SP2-Thin2": MachineSpec(
        name="IBM SP, Thin2 (39H) nodes",
        ram_per_node=128e6,
        cpu=CPUS["power2-66"],
        networks={"default": NETWORKS["SP2-Thin2"]},
        procs_per_node=1,
        max_procs=24,
        notes="Brown CFM; HPS with TB2 adapter",
    ),
    "P2SC": MachineSpec(
        name="IBM SP, Thin4 (397) nodes",
        ram_per_node=256e6,
        cpu=CPUS["p2sc-160"],
        networks={"default": NETWORKS["SP2-Silver, internode"]},
        procs_per_node=1,
        max_procs=211,
        notes="MHPCC; SP switch",
    ),
    "Onyx2": MachineSpec(
        name="SGI Onyx2 (8 x R10000-195)",
        ram_per_node=2048e6,
        cpu=CPUS["r10000-195"],
        networks={"default": NETWORKS["Onyx2"]},
        procs_per_node=8,
        max_procs=8,
        notes="Brown CFM; shared memory",
    ),
    "NCSA": MachineSpec(
        name="SGI Origin 2000 (NCSA)",
        ram_per_node=512e6,
        cpu=CPUS["r10000-250"],
        networks={"default": NETWORKS["NCSA"]},
        procs_per_node=2,
        max_procs=128,
        notes="195 and 250 MHz processors; ccNUMA",
    ),
    "AP3000": MachineSpec(
        name="Fujitsu AP3000 (28 x UltraSPARC-300)",
        ram_per_node=256e6,
        cpu=CPUS["ultrasparc-300"],
        networks={"default": NETWORKS["AP3000"]},
        procs_per_node=1,
        max_procs=28,
        notes="Imperial College; AP-Net",
    ),
    "T3E": MachineSpec(
        name="SGI/Cray T3E-900 (NAVO)",
        ram_per_node=256e6,
        cpu=CPUS["alpha21164-450"],
        networks={"default": NETWORKS["T3E"]},
        procs_per_node=1,
        max_procs=816,
        notes="3-D torus; STREAMS prefetch enabled",
    ),
    "HITACHI": MachineSpec(
        name="Hitachi SR8000 (U. Tokyo)",
        ram_per_node=8192e6,
        cpu=CPUS["sr8000"],
        networks={"default": NETWORKS["HITACHI"]},
        procs_per_node=8,
        max_procs=1024,
        notes="pseudo-vector CPUs; 3-D crossbar",
    ),
}

# Figure line-ups (which systems appear in which plot).
BLAS_FIGURE_MACHINES = {
    "left": ["SP2-Thin2", "SP2-Silver", "Muses", "AP3000", "Onyx2"],
    "right": ["T3E", "P2SC", "Muses"],
}

PINGPONG_FIGURE_NETWORKS = [
    "AP3000",
    "SP2-Thin2",
    "SP2-Silver, internode",
    "SP2-Silver, intranode",
    "Muses, MPICH",
    "Muses, LAM",
    "Onyx2",
    "RoadRunner, eth-intranode",
    "RoadRunner, eth-internode",
    "RoadRunner, myr-intranode",
    "RoadRunner, myr-internode",
    "T3E",
]

ALLTOALL_FIGURE_NETWORKS = [
    "AP3000",
    "T3E",
    "RoadRunner, eth-internode",
    "RoadRunner, myr-internode",
    "SP2-Silver, internode",
    "SP2-Silver, intranode",
    "SP2-Thin2",
    "NCSA",
    "Muses, LAM",
]


def machine(name: str) -> MachineSpec:
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None


def network(name: str) -> NetworkModel:
    try:
        return NETWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; known: {sorted(NETWORKS)}"
        ) from None
