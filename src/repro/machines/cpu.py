"""Single-CPU performance models (the Figures 1-6 substrate).

The paper measures vendor-BLAS throughput against working-set size on
each machine.  Those curves are determined by a handful of hardware
parameters — peak flop rate, cache sizes, per-level sustained
bandwidths, and per-call overhead — so we model each CPU as a roofline
with smooth cache transitions:

    t(call) = overhead + max(bytes_moved / B(ws), flops / F_r)

where B(ws) interpolates the per-level bandwidths in log-working-set
space and F_r is a routine-specific in-cache flop ceiling (dgemm gets a
small-n degradation term for the call/blocking overhead the paper's
Figure 6 highlights).  Parameters for the paper's machines live in
:mod:`repro.machines.catalog`, calibrated from Section 2's hardware
specs and the shapes of Figures 1-6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CPUModel", "ROUTINES", "routine_flops", "routine_traffic", "working_set"]

ROUTINES = ("dcopy", "daxpy", "ddot", "dgemv", "dgemm")


def routine_flops(routine: str, n: int) -> float:
    """Flops for one call; n = vector length or matrix dimension."""
    return {
        "dcopy": 0.0,
        "daxpy": 2.0 * n,
        "ddot": 2.0 * n,
        "dgemv": 2.0 * n * n,
        "dgemm": 2.0 * n**3,
    }[routine]


def routine_traffic(routine: str, n: int) -> float:
    """Bytes moved per call (each operand element touched once)."""
    return {
        "dcopy": 16.0 * n,
        "daxpy": 24.0 * n,
        "ddot": 16.0 * n,
        "dgemv": 8.0 * (n * n + 3.0 * n),
        "dgemm": 8.0 * 4.0 * n * n,
    }[routine]


def working_set(routine: str, n: int) -> float:
    """Resident bytes during the call (decides the cache level)."""
    return {
        "dcopy": 16.0 * n,
        "daxpy": 16.0 * n,
        "ddot": 16.0 * n,
        "dgemv": 8.0 * (n * n + 2.0 * n),
        "dgemm": 8.0 * 3.0 * n * n,
    }[routine]


@dataclass(frozen=True)
class CPUModel:
    """Roofline-with-caches model of one processor.

    cache_sizes:
        Capacities of each cache level, in bytes (L1, L2, ...).
    bandwidths:
        Sustained bandwidth (bytes/s) when the working set fits each
        level, plus one final entry for main memory; so
        len(bandwidths) == len(cache_sizes) + 1.
    flop_caps:
        Routine -> in-cache ceiling in Mflop/s (defaults to peak).
    """

    name: str
    clock_mhz: float
    peak_mflops: float
    cache_sizes: tuple[float, ...]
    bandwidths: tuple[float, ...]
    overhead_us: float = 0.2
    dgemm_efficiency: float = 0.8
    dgemm_n_half: float = 8.0
    flop_caps: dict[str, float] = field(default_factory=dict)
    # Measured application-level sustained rate (Mflop/s) for the DNS
    # stage mix, when known; None falls back to the kernel-mix estimate.
    # Table-1-style serial timings are calibrated through this knob — the
    # kernel model alone cannot see latency-bound effects like the banded
    # back-substitution's dependency chains.
    app_mflops: float | None = None
    # Sustained rate (Mflop/s) of the banded triangular solves (the
    # paper's dominant stage 5/7 work).  Recurrence-bound, so it tracks
    # clock x serial IPC rather than peak or bandwidth.
    solve_mflops: float | None = None

    def __post_init__(self):
        if len(self.bandwidths) != len(self.cache_sizes) + 1:
            raise ValueError("need one bandwidth per cache level plus memory")
        if any(b <= 0 for b in self.bandwidths) or self.peak_mflops <= 0:
            raise ValueError("rates must be positive")
        if list(self.cache_sizes) != sorted(self.cache_sizes):
            raise ValueError("cache sizes must be increasing")

    # -- memory hierarchy ---------------------------------------------------------

    def bandwidth_at(self, ws_bytes: float) -> float:
        """Sustained bandwidth for a given working set, with smooth
        (logistic in log-size) transitions at each capacity boundary."""
        if ws_bytes <= 0:
            return self.bandwidths[0]
        b = math.log(self.bandwidths[0])
        x = math.log(ws_bytes)
        for size, (hi, lo) in zip(
            self.cache_sizes, zip(self.bandwidths[:-1], self.bandwidths[1:])
        ):
            # Transition centred at the capacity, width ~ a factor of 2.
            t = 1.0 / (1.0 + math.exp(-(x - math.log(size)) / 0.35))
            b += t * (math.log(lo) - math.log(hi))
        return math.exp(b)

    def flop_ceiling(self, routine: str, n: int) -> float:
        """In-cache flop ceiling in flops/s for a routine."""
        cap = self.flop_caps.get(routine, self.peak_mflops) * 1e6
        if routine == "dgemm":
            eff = self.dgemm_efficiency * n / (n + self.dgemm_n_half)
            cap = min(cap, self.peak_mflops * 1e6 * eff)
        return cap

    # -- kernel timing ----------------------------------------------------------------

    def blas_time(self, routine: str, n: int) -> float:
        """Seconds for one BLAS call on size-n operands."""
        if routine not in ROUTINES:
            raise ValueError(f"unknown routine {routine!r}")
        if n < 1:
            raise ValueError("operand size must be >= 1")
        mem = routine_traffic(routine, n) / self.bandwidth_at(working_set(routine, n))
        flops = routine_flops(routine, n)
        ft = flops / self.flop_ceiling(routine, n) if flops else 0.0
        return self.overhead_us * 1e-6 + max(mem, ft)

    def blas_rate(self, routine: str, n: int) -> float:
        """The paper's plotted metric: MB/s for dcopy (bytes moved per
        second), Mflop/s for everything else."""
        t = self.blas_time(routine, n)
        if routine == "dcopy":
            return routine_traffic(routine, n) / t / 1e6
        return routine_flops(routine, n) / t / 1e6

    # -- application pricing ------------------------------------------------------------

    def stage_rate(self, kind: str, solver_ws_bytes: float = 2e6) -> float:
        """Sustained Mflop/s for one DNS stage *kind*:

        * 'solve'  — banded forward/back substitution (stages 5 and 7):
          min of the memory-bound dgemv rate at the solver working set
          and the recurrence-bound ``solve_mflops`` ceiling;
        * 'vector' — long-vector kernels (stages 2, 3, 4, 6): daxpy at
          the paper's ~15k-long vectors;
        * 'transform' — stage 1's small dense products: dgemm at n=10.
        """
        if kind == "solve":
            import math

            n = max(8, int(math.sqrt(solver_ws_bytes / 8.0)))
            rate = self.blas_rate("dgemv", n)
            if self.solve_mflops is not None:
                rate = min(rate, self.solve_mflops)
            return rate
        if kind == "vector":
            return self.blas_rate("daxpy", 15000)
        if kind == "transform":
            return self.blas_rate("dgemm", 10)
        raise ValueError(f"unknown stage kind {kind!r}")

    def dns_sustained_mflops(self, solver_ws_bytes: float = 256e3) -> float:
        """Sustained application rate for the DNS stage mix.

        The serial timestep is ~60% banded solves (dgemv-like streaming
        through the factor), ~25% vector kernels on long vectors, ~15%
        small dgemm (Section 4.1 / Figure 12).  The sustained rate is
        the work-weighted harmonic mean of the model's rates at those
        regimes, with the solver working set supplied by the caller
        (the factor does not fit in L1).
        """
        n_gemv = max(8, int(math.sqrt(solver_ws_bytes / 8.0)))
        r_solve = self.blas_rate("dgemv", n_gemv)
        r_vec = self.blas_rate("daxpy", 15000)  # paper: 15k-long vectors
        r_gemm = self.blas_rate("dgemm", 10)  # "most calls ... small n (10 or less)"
        weights = ((0.60, r_solve), (0.25, r_vec), (0.15, r_gemm))
        return 1.0 / sum(w / r for w, r in weights)

    def app_time(self, flops: float, solver_ws_bytes: float = 256e3) -> float:
        """Seconds to execute `flops` of DNS-mix work."""
        if flops < 0:
            raise ValueError("negative flops")
        rate = (
            self.app_mflops
            if self.app_mflops is not None
            else self.dns_sustained_mflops(solver_ws_bytes)
        )
        return flops / (rate * 1e6)
