"""Jacobi polynomials and Gauss-type quadrature.

The spectral/hp expansions of Sherwin & Karniadakis (1995) are built from
hierarchical (Jacobi) polynomial modes; the triangle's collapsed
coordinate direction needs Gauss-Jacobi rules with weight
(1-x)^alpha (1+x)^beta to absorb the Duffy Jacobian exactly.

Everything here is exact-arithmetic-testable: three-term recurrences,
the derivative identity d/dx P_n^{a,b} = (n+a+b+1)/2 P_{n-1}^{a+1,b+1},
and quadrature rules that integrate polynomials to the advertised degree.
"""

from __future__ import annotations

import numpy as np
from scipy.special import roots_jacobi

__all__ = [
    "jacobi",
    "jacobi_derivative",
    "gauss_jacobi",
    "gauss_lobatto_jacobi",
    "gauss_lobatto_legendre",
]


def jacobi(n: int, alpha: float, beta: float, x: np.ndarray) -> np.ndarray:
    """Evaluate P_n^{alpha,beta} at points x by the three-term recurrence."""
    if n < 0:
        raise ValueError("polynomial degree must be >= 0")
    if alpha <= -1 or beta <= -1:
        raise ValueError("Jacobi parameters must exceed -1")
    x = np.asarray(x, dtype=np.float64)
    p0 = np.ones_like(x)
    if n == 0:
        return p0
    p1 = 0.5 * (alpha - beta + (alpha + beta + 2.0) * x)
    if n == 1:
        return p1
    for k in range(1, n):
        a, b = alpha, beta
        a1 = 2.0 * (k + 1) * (k + a + b + 1) * (2 * k + a + b)
        a2 = (2 * k + a + b + 1) * (a * a - b * b)
        a3 = (2 * k + a + b) * (2 * k + a + b + 1) * (2 * k + a + b + 2)
        a4 = 2.0 * (k + a) * (k + b) * (2 * k + a + b + 2)
        p2 = ((a2 + a3 * x) * p1 - a4 * p0) / a1
        p0, p1 = p1, p2
    return p1


def jacobi_derivative(
    n: int, alpha: float, beta: float, x: np.ndarray, k: int = 1
) -> np.ndarray:
    """k-th derivative of P_n^{alpha,beta} at x.

    Uses d/dx P_n^{a,b} = ((n + a + b + 1) / 2) P_{n-1}^{a+1,b+1} repeatedly.
    """
    if k < 0:
        raise ValueError("derivative order must be >= 0")
    x = np.asarray(x, dtype=np.float64)
    if k == 0:
        return jacobi(n, alpha, beta, x)
    if n < k:
        return np.zeros_like(x)
    # After k derivatives: degree n-k, parameters (alpha+k, beta+k), with
    # the telescoping scale prod_{j=0}^{k-1} (n + alpha + beta + 1 + j)/2.
    scale = 1.0
    for j in range(k):
        scale *= 0.5 * (n + alpha + beta + 1 + j)
    return scale * jacobi(n - k, alpha + k, beta + k, x)


def gauss_jacobi(n: int, alpha: float = 0.0, beta: float = 0.0):
    """n-point Gauss-Jacobi rule: exact for polynomial degree <= 2n-1
    against the weight (1-x)^alpha (1+x)^beta on [-1, 1]."""
    if n < 1:
        raise ValueError("need at least one quadrature point")
    x, w = roots_jacobi(n, alpha, beta)
    return np.asarray(x, dtype=np.float64), np.asarray(w, dtype=np.float64)


# repro: waive[accounting] one-time quadrature-rule setup, not solver work
def _weights_by_moment_matching(
    x: np.ndarray, alpha: float, beta: float
) -> np.ndarray:
    """Weights making the rule with nodes x exact for degree < len(x).

    Solves the Vandermonde moment system in the Jacobi^{alpha,beta}
    orthogonal basis (well conditioned for the modest orders used here).
    Moments of P_k^{a,b} against the weight are zero except k=0.
    """
    n = x.size
    v = np.empty((n, n))
    for k in range(n):
        v[k] = jacobi(k, alpha, beta, x)
    mu0_x, mu0_w = roots_jacobi(max(1, n), alpha, beta)
    mu0 = float(np.sum(mu0_w))  # integral of the weight itself
    rhs = np.zeros(n)
    rhs[0] = mu0
    return np.linalg.solve(v, rhs)


def gauss_lobatto_jacobi(n: int, alpha: float = 0.0, beta: float = 0.0):
    """n-point Gauss-Lobatto-Jacobi rule including both endpoints.

    Exact for polynomial degree <= 2n-3 against the weight
    (1-x)^alpha (1+x)^beta.  Interior nodes are the roots of
    P_{n-2}^{alpha+1, beta+1}.
    """
    if n < 2:
        raise ValueError("Lobatto rules need at least two points")
    if n == 2:
        x = np.array([-1.0, 1.0])
    else:
        xi, _ = roots_jacobi(n - 2, alpha + 1.0, beta + 1.0)
        x = np.concatenate(([-1.0], np.sort(xi), [1.0]))
    w = _weights_by_moment_matching(x, alpha, beta)
    return x, w


def gauss_lobatto_legendre(n: int):
    """Gauss-Lobatto-Legendre rule (the alpha = beta = 0 special case)."""
    return gauss_lobatto_jacobi(n, 0.0, 0.0)
