"""3-D expansions: hexahedra, prisms and tetrahedra.

"For three dimensions with non-periodic geometries or flows,
tetrahedral, prism, hexahedral [elements] may be used (Karniadakis &
Sherwin 1999)."  The NekTar-ALE flapping-wing case (Table 3) is a
tetrahedral order-4 discretisation — 35 modes per element — and the
cost model in :mod:`repro.apps.ale_bench` is grounded in the mode and
quadrature counts implemented here.

The hexahedron carries the full *modified* (C0-able) tensor basis; the
tetrahedron and prism carry the *orthogonal* (Dubiner/Koornwinder)
collapsed-coordinate bases, whose diagonal mass matrices make local
projection exact and cheap.  Global 3-D C0 assembly is out of scope
(see DESIGN.md): the 3-D application level is represented by the real
2-D ALE solver plus these local 3-D operators and the cost model.

Reference elements:

* hex:  [-1, 1]^3
* prism: {xi1, xi3 >= -1, xi1 + xi3 <= 0, |xi2| <= 1} (tri in (1,3))
* tet:  {xi >= -1, xi1 + xi2 + xi3 <= -1}

Collapsed (Duffy) coordinates for the tet:

    a = -2 (1 + xi1)/(xi2 + xi3) - 1,
    b =  2 (1 + xi2)/(1 - xi3) - 1,
    c =  xi3,

with volume Jacobian ((1-b)/2) ((1-c)/2)^2 absorbed by Gauss-Jacobi
quadrature weights (alpha = 1 in b, alpha = 2 in c).
"""

from __future__ import annotations

import numpy as np

from ..linalg import blas
from ..linalg.counters import charge
from .basis import modified_a
from .jacobi import gauss_jacobi, jacobi

__all__ = ["HexExpansion", "PrismExpansion", "TetExpansion", "dubiner_tri"]

Array = np.ndarray


def dubiner_tri(p: int, q: int, a: Array, b: Array) -> Array:
    """Orthogonal (Dubiner) triangle mode in collapsed coordinates:
    P_p(a) ((1-b)/2)^p P_q^{2p+1,0}(b), p + q <= order."""
    return (
        jacobi(p, 0.0, 0.0, a)
        * (0.5 * (1.0 - b)) ** p
        * jacobi(q, 2.0 * p + 1.0, 0.0, b)
    )


def _dubiner_tet(p: int, q: int, r: int, a: Array, b: Array, c: Array) -> Array:
    """Orthogonal (Koornwinder) tetrahedron mode, p + q + r <= order."""
    return (
        jacobi(p, 0.0, 0.0, a)
        * (0.5 * (1.0 - b)) ** p
        * jacobi(q, 2.0 * p + 1.0, 0.0, b)
        * (0.5 * (1.0 - c)) ** (p + q)
        * jacobi(r, 2.0 * p + 2.0 * q + 2.0, 0.0, c)
    )


class _Expansion3D:
    """Shared: tabulated modes on a tensor quadrature grid."""

    def __init__(self, order: int, nq: int | None = None):
        if order < 1:
            raise ValueError("3-D expansions need order >= 1")
        self.order = order
        self.nq1d = nq if nq is not None else order + 2
        self._build()
        self._mass = None

    @property
    def nmodes(self) -> int:
        return self.phi.shape[0]

    @property
    def nq(self) -> int:
        return self.phi.shape[1]

    def mass_matrix(self) -> Array:
        if self._mass is None:
            mass = np.empty((self.nmodes, self.nmodes))
            blas.dgemm(1.0, self.phi * self.weights, self.phi, 0.0, mass, transb=True)
            self._mass = mass
        return self._mass

    def backward(self, coeffs: Array) -> Array:
        vals = np.empty(self.nq)
        return blas.dgemv(
            1.0, self.phi, np.asarray(coeffs, dtype=np.float64), 0.0, vals, trans=True
        )

    def forward(self, fvals: Array) -> Array:
        rhs = np.empty(self.nmodes)
        blas.dgemv(
            1.0, self.phi, self.weights * np.ravel(np.asarray(fvals, dtype=np.float64)),
            0.0, rhs,
        )
        n = self.nmodes
        charge(2.0 * n**3 / 3.0, 8.0 * n * n, "mass-solve")
        return np.linalg.solve(self.mass_matrix(), rhs)

    def integrate(self, fvals: Array) -> float:
        return blas.ddot(self.weights, np.ravel(np.asarray(fvals, dtype=np.float64)))

    def volume(self) -> float:
        return float(self.weights.sum())


class HexExpansion(_Expansion3D):
    """Modified (C0-able) tensor-product basis on the hexahedron:
    (P+1)^3 modes; mode (p, q, r) = psi_p(xi1) psi_q(xi2) psi_r(xi3)."""

    # repro: waive[accounting] one-time basis tabulation at construction
    def _build(self) -> None:
        P, n1 = self.order, self.nq1d
        x, w = gauss_jacobi(n1)
        b1 = np.array([modified_a(p, P, x) for p in range(P + 1)])
        # Tensor grid, xi1 fastest.
        self.points = (
            np.tile(x, n1 * n1),
            np.tile(np.repeat(x, n1), n1),
            np.repeat(x, n1 * n1),
        )
        self.weights = np.einsum("i,j,k->kji", w, w, w).ravel()
        nm = (P + 1) ** 3
        phi = np.empty((nm, n1**3))
        self.pqr = []
        m = 0
        for r in range(P + 1):
            for q in range(P + 1):
                for p in range(P + 1):
                    phi[m] = np.einsum(
                        "i,j,k->kji", b1[p], b1[q], b1[r]
                    ).ravel()
                    self.pqr.append((p, q, r))
                    m += 1
        self.phi = phi


class PrismExpansion(_Expansion3D):
    """Orthogonal basis on the prism: Dubiner triangle in (xi1, xi3) x
    Legendre in xi2; (P+1)(P+2)/2 x (P+1) modes (full tensor order)."""

    # repro: waive[accounting] one-time basis tabulation at construction
    def _build(self) -> None:
        P, n1 = self.order, self.nq1d
        xa, wa = gauss_jacobi(n1)  # a (tri direction 1) and xi2
        xc, wc = gauss_jacobi(n1, 1.0, 0.0)  # collapsed tri direction
        A = np.tile(xa, n1 * n1)
        X2 = np.tile(np.repeat(xa, n1), n1)
        C = np.repeat(xc, n1 * n1)
        self.points = (A, X2, C)
        self.weights = 0.5 * np.einsum("i,j,k->kji", wa, wa, wc).ravel()
        modes, pqr = [], []
        for r in range(P + 1):  # xi2 (Legendre)
            for p in range(P + 1):
                for q in range(P + 1 - p):
                    modes.append(
                        dubiner_tri(p, q, A, C) * jacobi(r, 0.0, 0.0, X2)
                    )
                    pqr.append((p, q, r))
        self.phi = np.array(modes)
        self.pqr = pqr


class TetExpansion(_Expansion3D):
    """Orthogonal (Koornwinder) basis on the tetrahedron:
    (P+1)(P+2)(P+3)/6 modes with p + q + r <= P; diagonal mass matrix."""

    # repro: waive[accounting] one-time basis tabulation at construction
    def _build(self) -> None:
        P, n1 = self.order, self.nq1d
        xa, wa = gauss_jacobi(n1)
        xb, wb = gauss_jacobi(n1, 1.0, 0.0)
        xc, wc = gauss_jacobi(n1, 2.0, 0.0)
        A = np.tile(xa, n1 * n1)
        B = np.tile(np.repeat(xb, n1), n1)
        C = np.repeat(xc, n1 * n1)
        self.points = (A, B, C)
        # Duffy scale: (1/2)(1/4) with (1-b), (1-c)^2 in the weights.
        self.weights = 0.125 * np.einsum("i,j,k->kji", wa, wb, wc).ravel()
        modes, pqr = [], []
        for p in range(P + 1):
            for q in range(P + 1 - p):
                for r in range(P + 1 - p - q):
                    modes.append(_dubiner_tet(p, q, r, A, B, C))
                    pqr.append((p, q, r))
        self.phi = np.array(modes)
        self.pqr = pqr

    def reference_coords(self) -> tuple[Array, Array, Array]:
        """Collapsed quadrature points mapped back to (xi1, xi2, xi3)."""
        A, B, C = self.points
        xi3 = C
        xi2 = 0.5 * (1.0 + B) * (1.0 - C) - 1.0
        xi1 = -0.5 * (1.0 + A) * (xi2 + xi3) - 1.0
        return xi1, xi2, xi3


def tet_mode_count(order: int) -> int:
    """(P+1)(P+2)(P+3)/6 — the ALE cost model's per-element size
    (35 at the paper's order 4)."""
    return (order + 1) * (order + 2) * (order + 3) // 6
