"""Modal spectral/hp expansions on the reference triangle and quadrilateral.

Implements the modified hierarchical expansions of Sherwin & Karniadakis
(1995) used by NekTar.  Modes are ordered exactly as the paper's
Figure 9: vertices first, then edge modes (per edge, ascending), then
interior modes with the q index running fastest.  At polynomial order 4
that gives 15 modes on the triangle and 25 on the quadrilateral.

Both expansions are *separable* in their natural coordinates — the
quadrilateral in (xi1, xi2), the triangle in the collapsed Duffy
coordinates (a, b) with

    a = 2 (1 + xi1)/(1 - xi2) - 1,      b = xi2,

so every mode is stored as a pair of 1-D factors, and evaluation on the
tensor quadrature grid is a pair of outer products.  The triangle's
per-mode powers of (1-b)/2 clear the Duffy denominators, keeping each
mode a polynomial of total degree <= P on the reference triangle; the
three expansions' edge traces are the *same* 1-D modified basis, which
is what makes C0 assembly across tri/quad interfaces work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..linalg import blas
from ..linalg.counters import charge
from . import basis as b1
from .jacobi import jacobi, jacobi_derivative
from .quadrature import TensorRule2D, quad_rule, tri_rule

__all__ = ["Mode", "Expansion2D", "QuadExpansion", "TriExpansion"]

Array = np.ndarray
Fn = Callable[[Array], Array]


@dataclass(frozen=True)
class Mode:
    """One separable mode: value/derivative factors plus its identity.

    kind is 'vertex', 'edge' or 'interior'; entity is the local vertex or
    edge number (-1 for interior); k is the index within the entity
    (edge-interior mode number, or the (p, q) pair for interior modes).
    """

    f: Fn
    df: Fn
    g: Fn
    dg: Fn
    kind: str
    entity: int
    k: object
    label: str


def _const_one(x: Array) -> Array:
    return np.ones_like(np.asarray(x, dtype=np.float64))


def _const_zero(x: Array) -> Array:
    return np.zeros_like(np.asarray(x, dtype=np.float64))


def _pow_h0(n: int) -> tuple[Fn, Fn]:
    """((1-x)/2)^n and its derivative."""
    if n == 0:
        return _const_one, _const_zero

    def val(x: Array) -> Array:
        return b1.h0(x) ** n

    def dval(x: Array) -> Array:
        return -0.5 * n * b1.h0(x) ** (n - 1)

    return val, dval


class Expansion2D:
    """Common machinery for the two reference-element expansions.

    Concrete subclasses supply the mode list (via ``_build_modes``), the
    quadrature rule, and the collapse map between reference coordinates
    (xi1, xi2) and the separable coordinates (a, b).
    """

    nverts: int = 0
    nedges: int = 0
    collapsed: bool = False  # True when (a, b) are Duffy coordinates

    def __init__(self, order: int, nq: int | None = None):
        if order < 2:
            raise ValueError(
                "spectral/hp expansions need order >= 2 "
                "(order 1 has no edge or interior modes)"
            )
        self.order = order
        self.nq1d = nq if nq is not None else order + 2
        self.rule: TensorRule2D = self._make_rule(self.nq1d)
        self.modes: list[Mode] = self._build_modes()
        self._tabulate()

    # -- subclass hooks ------------------------------------------------------

    def _make_rule(self, nq: int) -> TensorRule2D:
        raise NotImplementedError

    def _build_modes(self) -> list[Mode]:
        raise NotImplementedError

    def collapse(self, xi1: Array, xi2: Array) -> tuple[Array, Array]:
        """(xi1, xi2) -> separable coordinates (a, b)."""
        raise NotImplementedError

    def _ref_deriv(
        self, fa: Array, dfa: Array, gb: Array, dgb: Array, A: Array, B: Array
    ) -> tuple[Array, Array]:
        """Chain rule (a, b)-factors -> (d/dxi1, d/dxi2) at points (A, B)."""
        raise NotImplementedError

    # -- tabulation on the quadrature grid ------------------------------------

    def _tabulate(self) -> None:
        A, B = self.rule.points
        nm, nq = self.nmodes, self.rule.nq
        self.phi = np.empty((nm, nq))
        self.dphi1 = np.empty((nm, nq))
        self.dphi2 = np.empty((nm, nq))
        for m, mode in enumerate(self.modes):
            fa, dfa = mode.f(A), mode.df(A)
            gb, dgb = mode.g(B), mode.dg(B)
            self.phi[m] = fa * gb
            self.dphi1[m], self.dphi2[m] = self._ref_deriv(fa, dfa, gb, dgb, A, B)
        self.weights = self.rule.weights
        self._mass: Array | None = None

    # -- public API ------------------------------------------------------------

    @property
    def nmodes(self) -> int:
        return len(self.modes)

    @property
    def vertex_modes(self) -> list[int]:
        return [i for i, m in enumerate(self.modes) if m.kind == "vertex"]

    @property
    def interior_modes(self) -> list[int]:
        return [i for i, m in enumerate(self.modes) if m.kind == "interior"]

    @property
    def boundary_modes(self) -> list[int]:
        return [i for i, m in enumerate(self.modes) if m.kind != "interior"]

    def edge_modes(self, edge: int) -> list[int]:
        """Edge-interior mode ids of local edge ``edge``, ascending k."""
        if not 0 <= edge < self.nedges:
            raise ValueError(f"edge {edge} out of range")
        ids = [
            (m.k, i)
            for i, m in enumerate(self.modes)
            if m.kind == "edge" and m.entity == edge
        ]
        return [i for _, i in sorted(ids)]

    def mass_matrix(self) -> Array:
        """Reference-element mass matrix (exact by quadrature)."""
        if self._mass is None:
            wphi = self.phi * self.weights
            mass = np.empty((self.nmodes, self.nmodes))
            blas.dgemm(1.0, wphi, self.phi, 0.0, mass, transb=True)
            self._mass = mass
        return self._mass

    def reference_stiffness(self) -> Array:
        """Reference-element Laplacian, int grad(phi_i) . grad(phi_j).

        With boundary-first mode ordering this is the matrix whose
        structure the paper plots in Figure 10.
        """
        w = self.weights
        stiff = np.empty((self.nmodes, self.nmodes))
        blas.dgemm(1.0, self.dphi1 * w, self.dphi1, 0.0, stiff, transb=True)
        blas.dgemm(1.0, self.dphi2 * w, self.dphi2, 1.0, stiff, transb=True)
        return stiff

    def backward(self, coeffs: Array) -> Array:
        """Modal coefficients -> values at the quadrature points."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        vals = np.empty(self.rule.nq)
        return blas.dgemv(1.0, self.phi, coeffs, 0.0, vals, trans=True)

    def forward(self, fvals: Array) -> Array:
        """L2 projection: values at quadrature points -> modal coefficients."""
        fvals = np.asarray(fvals, dtype=np.float64)
        rhs = np.empty(self.nmodes)
        blas.dgemv(1.0, self.phi, self.weights * np.ravel(fvals), 0.0, rhs)
        n = self.nmodes
        charge(2.0 * n**3 / 3.0, 8.0 * n * n, "mass-solve")
        return np.linalg.solve(self.mass_matrix(), rhs)

    def integrate(self, fvals: Array) -> float:
        return self.rule.integrate(fvals)

    def eval_basis(self, xi1: Array, xi2: Array) -> Array:
        """(nmodes, npts) table of mode values at arbitrary reference points."""
        xi1 = np.atleast_1d(np.asarray(xi1, dtype=np.float64))
        xi2 = np.atleast_1d(np.asarray(xi2, dtype=np.float64))
        A, B = self.collapse(xi1, xi2)
        out = np.empty((self.nmodes, xi1.size))
        for m, mode in enumerate(self.modes):
            out[m] = mode.f(A) * mode.g(B)
        return out

    def eval_basis_full(
        self, xi1: Array, xi2: Array
    ) -> tuple[Array, Array, Array]:
        """(phi, dphi/dxi1, dphi/dxi2) tables at arbitrary reference points.

        Points must avoid the triangle's collapsed vertex (xi2 = 1),
        where the chain-rule factors blow up.
        """
        xi1 = np.atleast_1d(np.asarray(xi1, dtype=np.float64))
        xi2 = np.atleast_1d(np.asarray(xi2, dtype=np.float64))
        A, B = self.collapse(xi1, xi2)
        if self.collapsed and np.any(1.0 - B < 1e-12):
            raise ValueError("derivative evaluation at the collapsed vertex")
        n = xi1.size
        phi = np.empty((self.nmodes, n))
        d1 = np.empty((self.nmodes, n))
        d2 = np.empty((self.nmodes, n))
        for m, mode in enumerate(self.modes):
            fa, dfa = mode.f(A), mode.df(A)
            gb, dgb = mode.g(B), mode.dg(B)
            phi[m] = fa * gb
            d1[m], d2[m] = self._ref_deriv(fa, dfa, gb, dgb, A, B)
        return phi, d1, d2

    # repro: waive[accounting] point-probe diagnostic, not a solver hot path
    def eval_at(self, coeffs: Array, xi1: Array, xi2: Array) -> Array:
        """Evaluate the expansion with given coefficients at points."""
        return self.eval_basis(xi1, xi2).T @ np.asarray(coeffs, dtype=np.float64)

    def mode_labels(self) -> list[str]:
        return [m.label for m in self.modes]


class _TensorLayout:
    """Sum-factorisation data of a quad expansion (see
    :meth:`QuadExpansion.tensor_layout`)."""

    def __init__(self, exp: "QuadExpansion"):
        P, n1 = exp.order, exp.nq1d
        pts = exp.rule.rule_a.points
        from .basis import modified_a, modified_a_deriv

        self.b1 = np.array([modified_a(p, P, pts) for p in range(P + 1)])
        self.d1 = np.array([modified_a_deriv(p, P, pts) for p in range(P + 1)])
        self.pq = np.empty((exp.nmodes, 2), dtype=np.int64)
        vert_pq = {0: (0, 0), 1: (P, 0), 2: (P, P), 3: (0, P)}
        for m, mode in enumerate(exp.modes):
            if mode.kind == "vertex":
                self.pq[m] = vert_pq[mode.entity]
            elif mode.kind == "edge":
                k = mode.k + 1
                self.pq[m] = {
                    0: (k, 0),
                    1: (P, k),
                    2: (k, P),
                    3: (0, k),
                }[mode.entity]
            else:
                self.pq[m] = mode.k
        self.n1 = n1
        self.np1 = P + 1

    def to_tensor(self, coeffs: Array) -> Array:
        """Modal vector -> (P+1, P+1) tensor C[p, q]."""
        c = np.zeros((self.np1, self.np1))
        c[self.pq[:, 0], self.pq[:, 1]] = coeffs
        return c

    def to_tensor_batched(self, coeffs: Array) -> Array:
        """(..., nmodes) modal stacks -> (..., P+1, P+1) tensor stacks."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        c = np.zeros(coeffs.shape[:-1] + (self.np1, self.np1))
        c[..., self.pq[:, 0], self.pq[:, 1]] = coeffs
        return c

    def from_tensor(self, c: Array) -> Array:
        return c[self.pq[:, 0], self.pq[:, 1]]

    def from_tensor_batched(self, c: Array) -> Array:
        """(..., P+1, P+1) tensor stacks -> (..., nmodes) modal stacks."""
        return c[..., self.pq[:, 0], self.pq[:, 1]]


class QuadExpansionMixin:
    """Sum-factorised evaluation for tensor-product (quad) expansions.

    NekTar evaluates transforms and derivatives by two small dense
    contractions per element — O(P^3) instead of the O(P^4) of a
    tabulated (nmodes x nq) dgemv.  The counted dgemm substrate is used
    for both contractions, so op accounting stays exact.
    """

    def tensor_layout(self) -> _TensorLayout:
        if not hasattr(self, "_tensor_layout"):
            self._tensor_layout = _TensorLayout(self)
        return self._tensor_layout

    def _contract(self, c: Array, left: Array, right: Array) -> Array:
        """out[j, i] = sum_pq C[p, q] left[q, j] right[p, i] via two
        counted dgemm calls (c is passed as C^T).

        ``right`` tabulates the xi1 (fast, index i) direction, ``left``
        the xi2 (slow, index j) direction.
        """
        from ..linalg import blas

        tl = self.tensor_layout()
        tmp = np.zeros((tl.np1, tl.n1))
        blas.dgemm(1.0, c, right, 0.0, tmp)  # tmp[q, i]
        out = np.zeros((tl.n1, tl.n1))
        blas.dgemm(1.0, left, tmp, 0.0, out, transa=True)  # out[j, i]
        return out

    def backward_sumfact(self, coeffs: Array) -> Array:
        """Equivalent to ``phi.T @ coeffs`` in O(P^3)."""
        tl = self.tensor_layout()
        c = tl.to_tensor(np.asarray(coeffs, dtype=np.float64))
        # values[j, i] = sum_pq C[p, q] b1[p, i] b1[q, j]
        vals = self._contract(c.T, tl.b1, tl.b1)
        return vals.ravel()

    def gradient_sumfact(self, coeffs: Array) -> tuple[Array, Array]:
        """Reference (d/dxi1, d/dxi2) at quadrature points in O(P^3)."""
        tl = self.tensor_layout()
        c = tl.to_tensor(np.asarray(coeffs, dtype=np.float64))
        d1 = self._contract(c.T, tl.b1, tl.d1)  # derivative in xi1
        d2 = self._contract(c.T, tl.d1, tl.b1)  # derivative in xi2
        return d1.ravel(), d2.ravel()

    # -- adjoint (inner-product) contractions: quadrature grid -> modes ------

    def _contract_t(self, v: Array, left: Array, right: Array) -> Array:
        """Adjoint of :meth:`_contract`:
        out[p, q] = sum_ij right[p, i] left[q, j] V[j, i] via two counted
        dgemm calls.  ``right`` tabulates xi1 (fast index i), ``left``
        xi2 (slow index j), exactly as in the forward contraction."""
        from ..linalg import blas

        tl = self.tensor_layout()
        tmp = np.zeros((tl.np1, tl.n1))
        blas.dgemm(1.0, left, v, 0.0, tmp)  # tmp[q, i]
        out = np.zeros((tl.np1, tl.np1))
        blas.dgemm(1.0, right, tmp, 0.0, out, transb=True)  # out[p, q]
        return out

    _IPRODUCT_TABLES = {0: ("b1", "b1"), 1: ("d1", "b1"), 2: ("b1", "d1")}

    def _iproduct_tables(self, deriv: int) -> tuple[Array, Array]:
        """(right, left) 1-D factor tables of the basis (deriv=0) or of
        its reference derivative d/dxi1 (deriv=1) / d/dxi2 (deriv=2)."""
        tl = self.tensor_layout()
        r, lft = self._IPRODUCT_TABLES[deriv]
        return getattr(tl, r), getattr(tl, lft)

    def iproduct_sumfact(self, fvals: Array, deriv: int = 0) -> Array:
        """Inner product of weighted quadrature values against the basis
        in O(P^3): equivalent to ``phi @ fvals`` (deriv=0),
        ``dphi1 @ fvals`` (deriv=1) or ``dphi2 @ fvals`` (deriv=2);
        ``fvals`` must already carry the quadrature/metric weights."""
        tl = self.tensor_layout()
        v = np.asarray(fvals, dtype=np.float64).reshape(tl.n1, tl.n1)
        right, left = self._iproduct_tables(deriv)
        return tl.from_tensor(self._contract_t(v, left, right))

    def forward_sumfact(self, fvals: Array) -> Array:
        """L2 projection with the load inner product sum-factorised:
        same mass solve as :meth:`Expansion2D.forward`, O(P^3) rhs."""
        fvals = np.asarray(fvals, dtype=np.float64)
        rhs = self.iproduct_sumfact(self.weights * np.ravel(fvals))
        n = self.nmodes
        charge(2.0 * n**3 / 3.0, 8.0 * n * n, "mass-solve")
        return np.linalg.solve(self.mass_matrix(), rhs)

    # -- stacked (batched) variants: same contractions, whole element
    # -- groups per call, charged identically per element ------------------

    def _contract_batched(self, c: Array, left: Array, right: Array) -> Array:
        """Stacked :meth:`_contract`: ``c`` is a (..., P+1, P+1) stack of
        C^T tensors, ``left``/``right`` the shared 1-D factor tables."""
        from ..linalg import blas

        tl = self.tensor_layout()
        tmp = np.zeros(c.shape[:-2] + (tl.np1, tl.n1))
        blas.dgemm_batched(1.0, c, right, 0.0, tmp)
        out = np.zeros(c.shape[:-2] + (tl.n1, tl.n1))
        blas.dgemm_batched(1.0, left, tmp, 0.0, out, transa=True)
        return out

    def backward_sumfact_batched(self, coeffs: Array) -> Array:
        """(..., nmodes) coefficient stacks -> (..., nq) value stacks."""
        tl = self.tensor_layout()
        c = tl.to_tensor_batched(coeffs)
        vals = self._contract_batched(np.swapaxes(c, -1, -2), tl.b1, tl.b1)
        return vals.reshape(c.shape[:-2] + (tl.n1 * tl.n1,))

    def gradient_sumfact_batched(self, coeffs: Array) -> tuple[Array, Array]:
        """Stacked reference derivatives at the quadrature points."""
        tl = self.tensor_layout()
        ct = np.swapaxes(tl.to_tensor_batched(coeffs), -1, -2)
        d1 = self._contract_batched(ct, tl.b1, tl.d1)
        d2 = self._contract_batched(ct, tl.d1, tl.b1)
        flat = ct.shape[:-2] + (tl.n1 * tl.n1,)
        return d1.reshape(flat), d2.reshape(flat)

    def _contract_t_batched(self, v: Array, left: Array, right: Array) -> Array:
        """Stacked :meth:`_contract_t`: ``v`` is a (..., nq1d, nq1d)
        stack of quadrature grids, ``left``/``right`` the shared 1-D
        factor tables."""
        from ..linalg import blas

        tl = self.tensor_layout()
        tmp = np.zeros(v.shape[:-2] + (tl.np1, tl.n1))
        blas.dgemm_batched(1.0, left, v, 0.0, tmp)
        out = np.zeros(v.shape[:-2] + (tl.np1, tl.np1))
        blas.dgemm_batched(1.0, right, tmp, 0.0, out, transb=True)
        return out

    def iproduct_sumfact_batched(self, fvals: Array, deriv: int = 0) -> Array:
        """(..., nq) weighted value stacks -> (..., nmodes) inner
        products against the basis (or its reference derivatives)."""
        tl = self.tensor_layout()
        fvals = np.asarray(fvals, dtype=np.float64)
        v = fvals.reshape(fvals.shape[:-1] + (tl.n1, tl.n1))
        right, left = self._iproduct_tables(deriv)
        return tl.from_tensor_batched(self._contract_t_batched(v, left, right))


class QuadExpansion(QuadExpansionMixin, Expansion2D):
    """Tensor-product modified expansion on the reference quadrilateral.

    Local vertices: V0(-1,-1), V1(1,-1), V2(1,1), V3(-1,1).
    Local edges (with intrinsic direction): e0 = V0->V1 (+xi1 at
    xi2 = -1), e1 = V1->V2 (+xi2 at xi1 = 1), e2 = V3->V2 (+xi1 at
    xi2 = 1), e3 = V0->V3 (+xi2 at xi1 = -1).
    """

    nverts = 4
    nedges = 4

    def _make_rule(self, nq: int) -> TensorRule2D:
        return quad_rule(nq)

    def collapse(self, xi1: Array, xi2: Array) -> tuple[Array, Array]:
        return np.asarray(xi1, dtype=np.float64), np.asarray(xi2, dtype=np.float64)

    def _ref_deriv(self, fa, dfa, gb, dgb, A, B):
        return dfa * gb, fa * dgb

    def _build_modes(self) -> list[Mode]:
        P = self.order

        def bub(k: int) -> tuple[Fn, Fn]:
            return (lambda x, k=k: b1.bubble(k, x)), (
                lambda x, k=k: b1.bubble_deriv(k, x)
            )

        H0, H1 = (b1.h0, b1.dh0), (b1.h1, b1.dh1)
        modes: list[Mode] = []
        # Vertices: (p, q) in {0, P}^2.
        for v, (fa, gb) in enumerate([(H0, H0), (H1, H0), (H1, H1), (H0, H1)]):
            modes.append(
                Mode(fa[0], fa[1], gb[0], gb[1], "vertex", v, 0, f"v{v}")
            )
        # Edge modes, k = 0 .. P-2 along each edge's intrinsic direction.
        for k in range(P - 1):
            f, df = bub(k)
            modes.append(Mode(f, df, b1.h0, b1.dh0, "edge", 0, k, f"e0_{k}"))
        for k in range(P - 1):
            f, df = bub(k)
            modes.append(Mode(b1.h1, b1.dh1, f, df, "edge", 1, k, f"e1_{k}"))
        for k in range(P - 1):
            f, df = bub(k)
            modes.append(Mode(f, df, b1.h1, b1.dh1, "edge", 2, k, f"e2_{k}"))
        for k in range(P - 1):
            f, df = bub(k)
            modes.append(Mode(b1.h0, b1.dh0, f, df, "edge", 3, k, f"e3_{k}"))
        # Interior modes, q fastest (Figure 9).
        for p in range(1, P):
            fp, dfp = bub(p - 1)
            for q in range(1, P):
                gq, dgq = bub(q - 1)
                modes.append(
                    Mode(fp, dfp, gq, dgq, "interior", -1, (p, q), f"i{p}_{q}")
                )
        return modes


class TriExpansion(Expansion2D):
    """Collapsed-coordinate modified expansion on the reference triangle
    {(xi1, xi2) : xi1, xi2 >= -1, xi1 + xi2 <= 0}.

    Local vertices: V0(-1,-1), V1(1,-1), V2(-1,1) (V2 is the collapsed
    vertex).  Local edges: e0 = V0->V1 (+a at b = -1), e1 = V1->V2 (the
    hypotenuse, +b at a = 1), e2 = V0->V2 (+b at a = -1).

    Mode count: 3 + 3(P-1) + (P-1)(P-2)/2 = (P+1)(P+2)/2 = dim P_P.
    """

    nverts = 3
    nedges = 3
    collapsed = True

    def _make_rule(self, nq: int) -> TensorRule2D:
        return tri_rule(nq)

    def collapse(self, xi1: Array, xi2: Array) -> tuple[Array, Array]:
        xi1 = np.asarray(xi1, dtype=np.float64)
        xi2 = np.asarray(xi2, dtype=np.float64)
        denom = 1.0 - xi2
        a = np.where(denom > 1e-14, 2.0 * (1.0 + xi1) / np.maximum(denom, 1e-300) - 1.0, -1.0)
        return a, xi2

    def _ref_deriv(self, fa, dfa, gb, dgb, A, B):
        # d a/d xi1 = 2/(1-b);  d a/d xi2 = (1+a)/(1-b);  b = xi2.
        inv = 2.0 / (1.0 - B)
        d1 = dfa * gb * inv
        d2 = dfa * gb * 0.5 * (1.0 + A) * inv + fa * dgb
        return d1, d2

    def _build_modes(self) -> list[Mode]:
        P = self.order

        def bub(k: int) -> tuple[Fn, Fn]:
            return (lambda x, k=k: b1.bubble(k, x)), (
                lambda x, k=k: b1.bubble_deriv(k, x)
            )

        modes: list[Mode] = []
        # Vertices.  V2 is independent of a (collapsed top vertex).
        modes.append(Mode(b1.h0, b1.dh0, b1.h0, b1.dh0, "vertex", 0, 0, "v0"))
        modes.append(Mode(b1.h1, b1.dh1, b1.h0, b1.dh0, "vertex", 1, 0, "v1"))
        modes.append(
            Mode(_const_one, _const_zero, b1.h1, b1.dh1, "vertex", 2, 0, "v2")
        )
        # Edge 0 (bottom): bubble in a, cleared by ((1-b)/2)^(k+2).
        for k in range(P - 1):
            f, df = bub(k)
            g, dg = _pow_h0(k + 2)
            modes.append(Mode(f, df, g, dg, "edge", 0, k, f"e0_{k}"))
        # Edge 1 (hypotenuse): h1(a) x bubble in b.
        for k in range(P - 1):
            g, dg = bub(k)
            modes.append(Mode(b1.h1, b1.dh1, g, dg, "edge", 1, k, f"e1_{k}"))
        # Edge 2 (left): h0(a) x bubble in b.
        for k in range(P - 1):
            g, dg = bub(k)
            modes.append(Mode(b1.h0, b1.dh0, g, dg, "edge", 2, k, f"e2_{k}"))
        # Interior: p = 1..P-2, q = 1..P-1-p, q fastest.
        for p in range(1, P - 1):
            fp, dfp = bub(p - 1)
            h0p, dh0p = _pow_h0(p + 1)
            for q in range(1, P - p):
                gq, dgq = self._interior_b_factor(p, q, h0p, dh0p)
                modes.append(
                    Mode(fp, dfp, gq, dgq, "interior", -1, (p, q), f"i{p}_{q}")
                )
        return modes

    @staticmethod
    def _interior_b_factor(
        p: int, q: int, h0p: Fn, dh0p: Fn
    ) -> tuple[Fn, Fn]:
        """b-factor of interior mode (p, q):
        ((1-b)/2)^(p+1) (1+b)/2 P_{q-1}^{2p+1, 1}(b)."""
        a, bb = 2.0 * p + 1.0, 1.0

        def val(x: Array) -> Array:
            return h0p(x) * b1.h1(x) * jacobi(q - 1, a, bb, x)

        def dval(x: Array) -> Array:
            j = jacobi(q - 1, a, bb, x)
            dj = jacobi_derivative(q - 1, a, bb, x)
            return (
                dh0p(x) * b1.h1(x) * j
                + h0p(x) * 0.5 * j
                + h0p(x) * b1.h1(x) * dj
            )

        return val, dval
