"""The modified (hierarchical) 1-D expansion basis.

This is the "modified principal function" family psi~^a of Karniadakis &
Sherwin used by both the quadrilateral and triangle expansions:

    psi_0(x)  = (1 - x)/2                      (left vertex mode)
    psi_p(x)  = (1-x)/2 (1+x)/2 P_{p-1}^{1,1}(x),  0 < p < P   (bubbles)
    psi_P(x)  = (1 + x)/2                      (right vertex mode)

At low order this reduces to linear finite elements; each added p mode
enriches hierarchically without changing the existing ones (no
remeshing needed for p-refinement, as the paper stresses).
"""

from __future__ import annotations

import numpy as np

from .jacobi import jacobi, jacobi_derivative

__all__ = [
    "h0",
    "h1",
    "dh0",
    "dh1",
    "modified_a",
    "modified_a_deriv",
    "bubble",
    "bubble_deriv",
    "edge_reversal_sign",
]


def h0(x: np.ndarray) -> np.ndarray:
    """Left linear hat, (1 - x)/2."""
    return 0.5 * (1.0 - np.asarray(x, dtype=np.float64))


def h1(x: np.ndarray) -> np.ndarray:
    """Right linear hat, (1 + x)/2."""
    return 0.5 * (1.0 + np.asarray(x, dtype=np.float64))


def dh0(x: np.ndarray) -> np.ndarray:
    return np.full_like(np.asarray(x, dtype=np.float64), -0.5)


def dh1(x: np.ndarray) -> np.ndarray:
    return np.full_like(np.asarray(x, dtype=np.float64), 0.5)


def bubble(k: int, x: np.ndarray) -> np.ndarray:
    """Interior (bubble) mode k >= 0: h0 h1 P_k^{1,1}; degree k + 2."""
    if k < 0:
        raise ValueError("bubble index must be >= 0")
    x = np.asarray(x, dtype=np.float64)
    return h0(x) * h1(x) * jacobi(k, 1.0, 1.0, x)


def bubble_deriv(k: int, x: np.ndarray) -> np.ndarray:
    """d/dx of :func:`bubble` via the product rule."""
    if k < 0:
        raise ValueError("bubble index must be >= 0")
    x = np.asarray(x, dtype=np.float64)
    p = jacobi(k, 1.0, 1.0, x)
    dp = jacobi_derivative(k, 1.0, 1.0, x)
    # d/dx [h0 h1] = -x/2
    return -0.5 * x * p + h0(x) * h1(x) * dp


def modified_a(p: int, order: int, x: np.ndarray) -> np.ndarray:
    """Mode p of the order-``order`` modified basis (p = 0 .. order)."""
    _check_mode(p, order)
    if p == 0:
        return h0(x)
    if p == order:
        return h1(x)
    return bubble(p - 1, x)


def modified_a_deriv(p: int, order: int, x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`modified_a`."""
    _check_mode(p, order)
    if p == 0:
        return dh0(x)
    if p == order:
        return dh1(x)
    return bubble_deriv(p - 1, x)


def edge_reversal_sign(k: int) -> int:
    """Sign picked up by edge-interior mode k when the edge direction flips.

    The trace of edge mode k is h0 h1 P_k^{1,1}; since
    P_k^{1,1}(-x) = (-1)^k P_k^{1,1}(x) and h0 h1 is even, the mode is
    even for even k and odd for odd k.
    """
    if k < 0:
        raise ValueError("edge mode index must be >= 0")
    return 1 if k % 2 == 0 else -1


def _check_mode(p: int, order: int) -> None:
    if order < 1:
        raise ValueError("modified basis needs order >= 1")
    if not 0 <= p <= order:
        raise ValueError(f"mode {p} out of range for order {order}")
