"""Spectral substrate: Jacobi polynomials, quadrature, modal expansions."""

from .basis import (
    bubble,
    bubble_deriv,
    edge_reversal_sign,
    h0,
    h1,
    modified_a,
    modified_a_deriv,
)
from .expansions import Expansion2D, Mode, QuadExpansion, TriExpansion
from .expansions3d import (
    HexExpansion,
    PrismExpansion,
    TetExpansion,
    dubiner_tri,
    tet_mode_count,
)
from .jacobi import (
    gauss_jacobi,
    gauss_lobatto_jacobi,
    gauss_lobatto_legendre,
    jacobi,
    jacobi_derivative,
)
from .quadrature import Rule1D, TensorRule2D, quad_rule, tri_rule

__all__ = [
    "jacobi",
    "jacobi_derivative",
    "gauss_jacobi",
    "gauss_lobatto_jacobi",
    "gauss_lobatto_legendre",
    "Rule1D",
    "TensorRule2D",
    "quad_rule",
    "tri_rule",
    "h0",
    "h1",
    "bubble",
    "bubble_deriv",
    "modified_a",
    "modified_a_deriv",
    "edge_reversal_sign",
    "Mode",
    "Expansion2D",
    "QuadExpansion",
    "TriExpansion",
    "HexExpansion",
    "PrismExpansion",
    "TetExpansion",
    "dubiner_tri",
    "tet_mode_count",
]
