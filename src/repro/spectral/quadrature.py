"""Quadrature rules on the reference line, quadrilateral and triangle.

The quadrilateral uses a tensor Gauss-Legendre (or Gauss-Lobatto) grid.
The triangle is integrated in collapsed (Duffy) coordinates
(a, b) in [-1,1]^2 with

    int_T f dxi1 dxi2 = int int f(a, b) (1 - b)/2 da db,

so the b-direction uses a Gauss-Jacobi rule with alpha = 1 whose weight
function (1 - b) absorbs the Jacobian exactly (Karniadakis & Sherwin
1999, ch. 4).  Gauss (endpoint-free) rules keep the collapsed vertex
b = 1 out of every evaluation, so the chain-rule factors 1/(1-b) used by
the triangle expansion are always finite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg import blas
from .jacobi import gauss_jacobi

__all__ = ["Rule1D", "TensorRule2D", "quad_rule", "tri_rule"]


@dataclass(frozen=True)
class Rule1D:
    """Nodes and weights of a 1-D rule on [-1, 1]."""

    points: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return self.points.size

    def integrate(self, fvals: np.ndarray) -> float:
        return blas.ddot(self.weights, np.asarray(fvals, dtype=np.float64))


@dataclass(frozen=True)
class TensorRule2D:
    """Tensor rule on a 2-D reference element.

    ``rule_a`` runs in the first reference direction, ``rule_b`` in the
    second; ``scale`` multiplies the tensor weights (1/2 for the
    triangle's Duffy factor already baked into the Jacobi weight).
    Combined weights are stored flattened with the *a* index fastest,
    matching the (nq_a * nq_b) flattening used by the expansions.
    """

    rule_a: Rule1D
    rule_b: Rule1D
    scale: float = 1.0

    @property
    def nq(self) -> int:
        return self.rule_a.n * self.rule_b.n

    @property
    def weights(self) -> np.ndarray:
        wa, wb = self.rule_a.weights, self.rule_b.weights
        return self.scale * np.outer(wb, wa).ravel()

    @property
    def points(self) -> tuple[np.ndarray, np.ndarray]:
        """(a, b) coordinates of all tensor points, a-fastest flattening."""
        pa, pb = self.rule_a.points, self.rule_b.points
        A = np.tile(pa, pb.size)
        B = np.repeat(pb, pa.size)
        return A, B

    def integrate(self, fvals: np.ndarray) -> float:
        return blas.ddot(self.weights, np.ravel(np.asarray(fvals, dtype=np.float64)))


def quad_rule(nq: int) -> TensorRule2D:
    """Gauss-Legendre tensor rule on the reference quadrilateral
    [-1,1]^2, exact for degree <= 2*nq - 1 in each direction."""
    x, w = gauss_jacobi(nq, 0.0, 0.0)
    r = Rule1D(x, w)
    return TensorRule2D(r, r)


def tri_rule(nq: int) -> TensorRule2D:
    """Collapsed-coordinate rule on the reference triangle
    {(xi1, xi2): xi1, xi2 >= -1, xi1 + xi2 <= 0}.

    Gauss-Legendre in a; Gauss-Jacobi(1, 0) in b with the extra 1/2
    Duffy factor in ``scale``.  Exact for integrands polynomial of
    degree <= 2*nq - 1 in a and <= 2*nq - 2 in b (one power of b is
    spent on the Jacobian).
    """
    xa, wa = gauss_jacobi(nq, 0.0, 0.0)
    xb, wb = gauss_jacobi(nq, 1.0, 0.0)
    return TensorRule2D(Rule1D(xa, wa), Rule1D(xb, wb), scale=0.5)
