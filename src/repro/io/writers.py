"""Field output and checkpointing.

* :func:`write_vtk` — legacy-ASCII VTK unstructured-grid files of
  vertex fields (loads in ParaView/VisIt), the standard way downstream
  users inspect a wake.
* :class:`Checkpoint` — .npz save/restore of a solver state (modal
  coefficients, time, step count, mesh vertices for ALE runs), so long
  DNS campaigns — "250 hours of CPU time per processor" in the paper's
  production run — can restart.
* :class:`NekTarFCheckpoint` — per-rank .npz checkpoints of the full
  NekTar-F time-stepping state (coefficients *and* the stiffly-stable
  histories), written every ``k`` steps so a crashed parallel run can
  restart from the last complete set and continue bit-for-bit.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from ..assembly.space import FunctionSpace
from ..mesh.mesh2d import Mesh2D

__all__ = ["write_vtk", "Checkpoint", "NekTarFCheckpoint"]

_VTK_CELL = {3: 5, 4: 9}  # triangle, quad


def write_vtk(
    path: str | Path,
    mesh: Mesh2D,
    point_fields: dict[str, np.ndarray] | None = None,
    title: str = "repro field output",
) -> Path:
    """Write a legacy-ASCII VTK file of the mesh and vertex fields.

    ``point_fields`` maps field name -> per-vertex values (e.g. from
    :meth:`FunctionSpace.eval_at_vertices`).
    """
    path = Path(path)
    point_fields = dict(point_fields or {})
    nv = mesh.nvertices
    for name, vals in point_fields.items():
        vals = np.asarray(vals)
        if vals.shape != (nv,):
            raise ValueError(f"field {name!r} must have one value per vertex")
    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {nv} double",
    ]
    for x, y in mesh.vertices:
        lines.append(f"{x:.12g} {y:.12g} 0.0")
    size = sum(e.nedges + 1 for e in mesh.elements)
    lines.append(f"CELLS {mesh.nelements} {size}")
    for e in mesh.elements:
        lines.append(" ".join([str(len(e.vertices))] + [str(v) for v in e.vertices]))
    lines.append(f"CELL_TYPES {mesh.nelements}")
    for e in mesh.elements:
        lines.append(str(_VTK_CELL[len(e.vertices)]))
    if point_fields:
        lines.append(f"POINT_DATA {nv}")
        for name, vals in point_fields.items():
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{float(v):.12g}" for v in np.asarray(vals))
    path.write_text("\n".join(lines) + "\n")
    return path


class Checkpoint:
    """Save/restore solver state to a .npz archive."""

    FIELDS = ("u_hat", "v_hat", "p_hat")

    @staticmethod
    def save(path: str | Path, solver) -> Path:
        path = Path(path)
        data = {f: getattr(solver, f) for f in Checkpoint.FIELDS}
        data["t"] = np.array(solver.t)
        data["step_count"] = np.array(solver.step_count)
        data["vertices"] = solver.space.mesh.vertices
        np.savez(path, **data)
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @staticmethod
    def load(path: str | Path, solver) -> None:
        """Restore state in place; the solver must be built on a mesh
        with the same topology (vertex positions are restored for ALE)."""
        with np.load(Path(path)) as data:
            for f in Checkpoint.FIELDS:
                arr = data[f]
                if arr.shape != getattr(solver, f).shape:
                    raise ValueError(
                        f"checkpoint field {f} has shape {arr.shape}, "
                        f"solver expects {getattr(solver, f).shape}"
                    )
                setattr(solver, f, arr.copy())
            solver.t = float(data["t"])
            solver.step_count = int(data["step_count"])
            verts = data["vertices"]
            if verts.shape == solver.space.mesh.vertices.shape:
                solver.space.mesh.vertices[:] = verts


class NekTarFCheckpoint:
    """Per-rank .npz checkpoints of the full NekTar-F stepping state.

    Unlike :class:`Checkpoint` (serial, fields only), this serialises
    everything the multi-step stiffly-stable scheme needs to continue
    **bit-for-bit**: the four modal coefficient arrays plus the
    velocity, non-linear-term and vorticity histories (whose lengths
    also encode the scheme's startup ramp).  One file per rank per
    checkpointed step; a step is *restartable* only once every rank's
    file exists, so :meth:`latest_step` reports the newest complete
    set — a crash mid-write simply leaves an incomplete set that
    restart skips.
    """

    HATS = ("u_hat", "v_hat", "w_hat", "p_hat")
    HISTS = ("_hist_u", "_hist_n", "_hist_w")
    _NAME = re.compile(r"nektarf_step(\d+)_rank(\d+)\.npz$")

    @staticmethod
    def path(directory: str | Path, step: int, rank: int) -> Path:
        return Path(directory) / f"nektarf_step{step:08d}_rank{rank:04d}.npz"

    @staticmethod
    def save(directory: str | Path, solver) -> Path:
        """Write this rank's state at the solver's current step."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        data = {h: getattr(solver, h) for h in NekTarFCheckpoint.HATS}
        data["t"] = np.array(solver.t)
        data["step_count"] = np.array(solver.step_count)
        data["my_modes"] = np.asarray(solver.my_modes, dtype=np.int64)
        for name in NekTarFCheckpoint.HISTS:
            hist = getattr(solver, name)
            data[f"{name}_len"] = np.array(len(hist))
            # Deque iteration order is newest-first; each entry is a
            # component tuple of same-shape arrays, stacked for storage.
            for j, entry in enumerate(hist):
                data[f"{name}_{j}"] = np.stack(entry)
        path = NekTarFCheckpoint.path(
            directory, solver.step_count, solver.comm.rank
        )
        np.savez(path, **data)
        return path

    @staticmethod
    def load(directory: str | Path, solver, step: int | None = None) -> int:
        """Restore this rank's state in place; returns the step restored.

        ``step=None`` picks the newest complete set in ``directory``.
        """
        if step is None:
            step = NekTarFCheckpoint.latest_step(directory, solver.comm.size)
            if step is None:
                raise FileNotFoundError(
                    f"no complete {solver.comm.size}-rank checkpoint set "
                    f"in {directory}"
                )
        path = NekTarFCheckpoint.path(directory, step, solver.comm.rank)
        with np.load(path) as data:
            if data["my_modes"].tolist() != list(solver.my_modes):
                raise ValueError(
                    f"checkpoint {path.name} holds modes "
                    f"{data['my_modes'].tolist()}, solver owns "
                    f"{list(solver.my_modes)} (rank layout changed?)"
                )
            for h in NekTarFCheckpoint.HATS:
                arr = data[h]
                if arr.shape != getattr(solver, h).shape:
                    raise ValueError(
                        f"checkpoint field {h} has shape {arr.shape}, "
                        f"solver expects {getattr(solver, h).shape}"
                    )
                setattr(solver, h, arr.copy())
            for name in NekTarFCheckpoint.HISTS:
                hist = getattr(solver, name)
                hist.clear()
                for j in range(int(data[f"{name}_len"])):
                    stacked = data[f"{name}_{j}"]
                    hist.append(tuple(c.copy() for c in stacked))
            solver.t = float(data["t"])
            solver.step_count = int(data["step_count"])
        return step

    @staticmethod
    def latest_step(directory: str | Path, nranks: int) -> int | None:
        """Newest step for which all ``nranks`` rank files exist."""
        found: dict[int, set[int]] = {}
        directory = Path(directory)
        if not directory.is_dir():
            return None
        for p in directory.glob("nektarf_step*_rank*.npz"):
            m = NekTarFCheckpoint._NAME.match(p.name)
            if m:
                found.setdefault(int(m.group(1)), set()).add(int(m.group(2)))
        complete = [
            s for s, ranks in found.items() if ranks >= set(range(nranks))
        ]
        return max(complete) if complete else None


def vertex_velocity_fields(space: FunctionSpace, u_hat, v_hat) -> dict:
    """Convenience: the vertex fields most runs want to write."""
    return {
        "u": space.eval_at_vertices(u_hat),
        "v": space.eval_at_vertices(v_hat),
    }
