"""Field output and checkpointing.

* :func:`write_vtk` — legacy-ASCII VTK unstructured-grid files of
  vertex fields (loads in ParaView/VisIt), the standard way downstream
  users inspect a wake.
* :class:`Checkpoint` — .npz save/restore of a solver state (modal
  coefficients, time, step count, mesh vertices for ALE runs), so long
  DNS campaigns — "250 hours of CPU time per processor" in the paper's
  production run — can restart.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..assembly.space import FunctionSpace
from ..mesh.mesh2d import Mesh2D

__all__ = ["write_vtk", "Checkpoint"]

_VTK_CELL = {3: 5, 4: 9}  # triangle, quad


def write_vtk(
    path: str | Path,
    mesh: Mesh2D,
    point_fields: dict[str, np.ndarray] | None = None,
    title: str = "repro field output",
) -> Path:
    """Write a legacy-ASCII VTK file of the mesh and vertex fields.

    ``point_fields`` maps field name -> per-vertex values (e.g. from
    :meth:`FunctionSpace.eval_at_vertices`).
    """
    path = Path(path)
    point_fields = dict(point_fields or {})
    nv = mesh.nvertices
    for name, vals in point_fields.items():
        vals = np.asarray(vals)
        if vals.shape != (nv,):
            raise ValueError(f"field {name!r} must have one value per vertex")
    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {nv} double",
    ]
    for x, y in mesh.vertices:
        lines.append(f"{x:.12g} {y:.12g} 0.0")
    size = sum(e.nedges + 1 for e in mesh.elements)
    lines.append(f"CELLS {mesh.nelements} {size}")
    for e in mesh.elements:
        lines.append(" ".join([str(len(e.vertices))] + [str(v) for v in e.vertices]))
    lines.append(f"CELL_TYPES {mesh.nelements}")
    for e in mesh.elements:
        lines.append(str(_VTK_CELL[len(e.vertices)]))
    if point_fields:
        lines.append(f"POINT_DATA {nv}")
        for name, vals in point_fields.items():
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{float(v):.12g}" for v in np.asarray(vals))
    path.write_text("\n".join(lines) + "\n")
    return path


class Checkpoint:
    """Save/restore solver state to a .npz archive."""

    FIELDS = ("u_hat", "v_hat", "p_hat")

    @staticmethod
    def save(path: str | Path, solver) -> Path:
        path = Path(path)
        data = {f: getattr(solver, f) for f in Checkpoint.FIELDS}
        data["t"] = np.array(solver.t)
        data["step_count"] = np.array(solver.step_count)
        data["vertices"] = solver.space.mesh.vertices
        np.savez(path, **data)
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @staticmethod
    def load(path: str | Path, solver) -> None:
        """Restore state in place; the solver must be built on a mesh
        with the same topology (vertex positions are restored for ALE)."""
        with np.load(Path(path)) as data:
            for f in Checkpoint.FIELDS:
                arr = data[f]
                if arr.shape != getattr(solver, f).shape:
                    raise ValueError(
                        f"checkpoint field {f} has shape {arr.shape}, "
                        f"solver expects {getattr(solver, f).shape}"
                    )
                setattr(solver, f, arr.copy())
            solver.t = float(data["t"])
            solver.step_count = int(data["step_count"])
            verts = data["vertices"]
            if verts.shape == solver.space.mesh.vertices.shape:
                solver.space.mesh.vertices[:] = verts


def vertex_velocity_fields(space: FunctionSpace, u_hat, v_hat) -> dict:
    """Convenience: the vertex fields most runs want to write."""
    return {
        "u": space.eval_at_vertices(u_hat),
        "v": space.eval_at_vertices(v_hat),
    }
