"""Field output (legacy VTK) and solver checkpointing."""

from .writers import (
    Checkpoint,
    NekTarFCheckpoint,
    vertex_velocity_fields,
    write_vtk,
)

__all__ = [
    "write_vtk",
    "Checkpoint",
    "NekTarFCheckpoint",
    "vertex_velocity_fields",
]
