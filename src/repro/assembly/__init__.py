"""Assembly layer: dof maps, elemental operators, global systems."""

from .dofmap import DofMap
from .global_system import AssembledOperator, project_dirichlet
from .operators import (
    elemental_helmholtz,
    elemental_laplacian,
    elemental_load,
    elemental_mass,
)
from .space import FunctionSpace

__all__ = [
    "DofMap",
    "FunctionSpace",
    "AssembledOperator",
    "project_dirichlet",
    "elemental_mass",
    "elemental_laplacian",
    "elemental_helmholtz",
    "elemental_load",
]
