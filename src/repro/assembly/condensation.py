"""Static condensation: NekTar's actual solver structure.

With the hierarchical basis ordered boundary-first (Figure 10), each
elemental matrix splits into boundary/interior blocks

    A_e = [[Abb, Abi],
           [Aib, Aii]]

and the interior dofs — unique to one element — can be eliminated
exactly: the global solve reduces to the assembled *Schur complement*
S = Abb - Abi Aii^{-1} Aib on the (much smaller, much narrower-banded)
boundary system, followed by dense per-element back-substitution for
the interiors.  This is why the paper's serial profile is ~60% "matrix
inversions" rather than one giant banded sweep, and why "most of the
calls to dgemm are for small n": the per-element blocks are small
dense matrices.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from ..linalg import blas
from ..linalg.banded import BandedSPDSolver
from ..linalg.counters import charge

__all__ = ["CondensedOperator"]


class CondensedOperator:
    """Statically condensed global SPD operator.

    Same interface as :class:`~repro.assembly.global_system.AssembledOperator`
    (solve(rhs, dirichlet_values) over full global vectors), but the
    direct factorisation lives on the boundary Schur complement only.
    Dirichlet dofs must be boundary dofs (vertex/edge), which velocity
    and pressure boundary conditions always are.
    """

    def __init__(self, space, elem_mats, dirichlet_dofs=()):
        self.space = space
        dm = space.dofmap
        self.nb_glob = dm.nboundary
        self.dirichlet = np.asarray(
            sorted(set(int(d) for d in dirichlet_dofs)), dtype=np.int64
        )
        if self.dirichlet.size and self.dirichlet.max() >= self.nb_glob:
            raise ValueError("Dirichlet dofs must be boundary (vertex/edge) dofs")

        self._per_elem = []
        rows, cols, vals = [], [], []
        for e, a in enumerate(elem_mats):
            exp = dm.expansion(e)
            nb = len(exp.boundary_modes)
            if exp.boundary_modes != list(range(nb)):
                raise ValueError("expansion must order boundary modes first")
            a = np.asarray(a, dtype=np.float64)
            abb = a[:nb, :nb]
            abi = a[:nb, nb:]
            aii = a[nb:, nb:]
            ni = aii.shape[0]
            if ni:
                chol = sla.cho_factor(aii, lower=True)
                aii_inv_aib = sla.cho_solve(chol, abi.T)  # (ni, nb)
                s_e = abb - abi @ aii_inv_aib
                charge(2.0 * ni * ni * nb + ni**3 / 3.0, 8.0 * (ni + nb) ** 2, "sc-setup")
            else:
                chol = None
                aii_inv_aib = np.zeros((0, nb))
                s_e = abb
            bdofs = dm.elem_dofs[e][:nb]
            bsigns = dm.elem_signs[e][:nb]
            idofs = dm.elem_dofs[e][nb:]
            self._per_elem.append(
                {
                    "abi": abi,
                    "chol": chol,
                    "aii_inv_aib": aii_inv_aib,
                    "bdofs": bdofs,
                    "bsigns": bsigns,
                    "idofs": idofs,
                    "nb": nb,
                    "ni": ni,
                }
            )
            ss = (bsigns[:, None] * s_e) * bsigns[None, :]
            rows.append(np.repeat(bdofs, nb))
            cols.append(np.tile(bdofs, nb))
            vals.append(ss.ravel())
        s_glob = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.nb_glob, self.nb_glob),
        ).tocsr()

        mask = np.ones(self.nb_glob, dtype=bool)
        mask[self.dirichlet] = False
        self.free = np.nonzero(mask)[0]
        s_ff = s_glob[np.ix_(self.free, self.free)].tocsr()
        self.s_fk = s_glob[np.ix_(self.free, self.dirichlet)].tocsr()
        if self.free.size == 0:
            # Every boundary dof is prescribed: nothing to factor, the
            # solve is pure interior back-substitution.
            self.perm = np.zeros(0, dtype=np.int64)
            self.solver = None
            self.bandwidth = 0
            return
        self.perm = np.asarray(reverse_cuthill_mckee(s_ff, symmetric_mode=True))
        p = s_ff[np.ix_(self.perm, self.perm)].tocoo()
        kd = int(np.abs(p.row - p.col).max()) if p.nnz else 0
        ab = np.zeros((kd + 1, self.free.size))
        up = p.row <= p.col
        ab[kd + p.row[up] - p.col[up], p.col[up]] = p.data[up]
        self.solver = BandedSPDSolver.from_banded(ab)
        self.bandwidth = kd

    @property
    def ndof(self) -> int:
        return self.space.ndof

    def solve(
        self, rhs: np.ndarray, dirichlet_values: np.ndarray | None = None
    ) -> np.ndarray:
        """Solve A u = rhs (assembled global load vector)."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (self.ndof,):
            raise ValueError("rhs must cover all global dofs")
        # Condense: gb = rb - sum_e Q_e^T Abi Aii^{-1} fi.
        gb = rhs[: self.nb_glob].copy()
        fi_store = []
        for pe in self._per_elem:
            if pe["ni"] == 0:
                fi_store.append(None)
                continue
            fi = rhs[pe["idofs"]]
            fi_store.append(fi)
            tmp = sla.cho_solve(pe["chol"], fi)
            corr = np.zeros(pe["nb"])
            blas.dgemv(1.0, pe["abi"], tmp, 0.0, corr)
            charge(2.0 * pe["ni"] ** 2, 8.0 * pe["ni"] ** 2, "sc-chol")
            np.subtract.at(gb, pe["bdofs"], pe["bsigns"] * corr)
        # Boundary solve.
        if self.dirichlet.size:
            if dirichlet_values is None:
                dirichlet_values = np.zeros(self.dirichlet.size)
            dirichlet_values = np.asarray(dirichlet_values, dtype=np.float64)
            b = gb[self.free] - self.s_fk @ dirichlet_values
        else:
            b = gb[self.free]
        x = np.empty_like(b)
        if self.solver is not None:
            x[self.perm] = self.solver.solve(b[self.perm])
        u = np.zeros(self.ndof)
        u[self.free] = x
        if self.dirichlet.size:
            u[self.dirichlet] = dirichlet_values
        # Back-substitute interiors: ui = Aii^{-1} (fi - Aib ub).
        for pe, fi in zip(self._per_elem, fi_store):
            if pe["ni"] == 0:
                continue
            ub = pe["bsigns"] * u[pe["bdofs"]]
            # ui = Aii^{-1} fi - (Aii^{-1} Aib) ub, using the cached blocks.
            ui = sla.cho_solve(pe["chol"], fi)
            charge(2.0 * pe["ni"] ** 2, 8.0 * pe["ni"] ** 2, "sc-chol")
            blas.dgemv(-1.0, pe["aii_inv_aib"], ub, 1.0, ui)
            u[pe["idofs"]] = ui
        return u
