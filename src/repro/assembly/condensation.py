"""Static condensation: NekTar's actual solver structure.

With the hierarchical basis ordered boundary-first (Figure 10), each
elemental matrix splits into boundary/interior blocks

    A_e = [[Abb, Abi],
           [Aib, Aii]]

and the interior dofs — unique to one element — can be eliminated
exactly: the global solve reduces to the assembled *Schur complement*
S = Abb - Abi Aii^{-1} Aib on the (much smaller, much narrower-banded)
boundary system, followed by dense per-element back-substitution for
the interiors.  This is why the paper's serial profile is ~60% "matrix
inversions" rather than one giant banded sweep, and why "most of the
calls to dgemm are for small n": the per-element blocks are small
dense matrices.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from ..linalg import blas
from ..linalg.banded import BandedSPDSolver
from ..linalg.counters import charge

__all__ = ["CondensedOperator"]


class CondensedOperator:
    """Statically condensed global SPD operator.

    Same interface as :class:`~repro.assembly.global_system.AssembledOperator`
    (solve(rhs, dirichlet_values) over full global vectors), but the
    direct factorisation lives on the boundary Schur complement only.
    Dirichlet dofs must be boundary dofs (vertex/edge), which velocity
    and pressure boundary conditions always are.
    """

    def __init__(self, space, elem_mats, dirichlet_dofs=()):
        self.space = space
        dm = space.dofmap
        self.nb_glob = dm.nboundary
        self.dirichlet = np.asarray(
            sorted(set(int(d) for d in dirichlet_dofs)), dtype=np.int64
        )
        if self.dirichlet.size and self.dirichlet.max() >= self.nb_glob:
            raise ValueError("Dirichlet dofs must be boundary (vertex/edge) dofs")

        self.batched = bool(getattr(space, "batched", False))
        self._groups: list[dict] = []
        rows, cols, vals = [], [], []
        if self.batched:
            # Group-wise Schur assembly: sign-conjugate and scatter whole
            # element stacks at once (duplicate COO entries are summed by
            # tocsr; the grouped entry order only reassociates that sum).
            for grp, s in zip(*self._setup_batched(elem_mats)):
                nb, bdofs, bsigns = grp["nb"], grp["bdofs"], grp["bsigns"]
                ss = bsigns[:, :, None] * s * bsigns[:, None, :]
                rows.append(np.repeat(bdofs, nb, axis=1).ravel())
                cols.append(np.tile(bdofs, (1, nb)).ravel())
                vals.append(ss.ravel())
        else:
            schur = self._setup_per_element(elem_mats)
            for pe, s_e in zip(self._per_elem, schur):
                nb, bdofs, bsigns = pe["nb"], pe["bdofs"], pe["bsigns"]
                ss = (bsigns[:, None] * s_e) * bsigns[None, :]
                rows.append(np.repeat(bdofs, nb))
                cols.append(np.tile(bdofs, nb))
                vals.append(ss.ravel())
        s_glob = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.nb_glob, self.nb_glob),
        ).tocsr()

        mask = np.ones(self.nb_glob, dtype=bool)
        mask[self.dirichlet] = False
        self.free = np.nonzero(mask)[0]
        s_ff = s_glob[np.ix_(self.free, self.free)].tocsr()
        self.s_fk = s_glob[np.ix_(self.free, self.dirichlet)].tocsr()
        if self.free.size == 0:
            # Every boundary dof is prescribed: nothing to factor, the
            # solve is pure interior back-substitution.
            self.perm = np.zeros(0, dtype=np.int64)
            self.solver = None
            self.bandwidth = 0
            return
        self.perm = np.asarray(reverse_cuthill_mckee(s_ff, symmetric_mode=True))
        p = s_ff[np.ix_(self.perm, self.perm)].tocoo()
        kd = int(np.abs(p.row - p.col).max()) if p.nnz else 0
        ab = np.zeros((kd + 1, self.free.size))
        up = p.row <= p.col
        ab[kd + p.row[up] - p.col[up], p.col[up]] = p.data[up]
        self.solver = BandedSPDSolver.from_banded(ab)
        self.bandwidth = kd

    # -- pre-factorisation ----------------------------------------------------

    def _setup_per_element(self, elem_mats) -> list[np.ndarray]:
        """Reference path: one scipy Cholesky per element."""
        dm = self.space.dofmap
        self._per_elem = []
        schur = []
        for e, a in enumerate(elem_mats):
            exp = dm.expansion(e)
            nb = len(exp.boundary_modes)
            if exp.boundary_modes != list(range(nb)):
                raise ValueError("expansion must order boundary modes first")
            a = np.asarray(a, dtype=np.float64)
            abb = a[:nb, :nb]
            abi = a[:nb, nb:]
            aii = a[nb:, nb:]
            ni = aii.shape[0]
            if ni:
                chol = sla.cho_factor(aii, lower=True)
                aii_inv_aib = sla.cho_solve(chol, abi.T)  # (ni, nb)
                s_e = abb - abi @ aii_inv_aib
                charge(2.0 * ni * ni * nb + ni**3 / 3.0, 8.0 * (ni + nb) ** 2, "sc-setup")
            else:
                chol = None
                aii_inv_aib = np.zeros((0, nb))
                s_e = abb
            self._per_elem.append(
                {
                    "abi": abi,
                    "chol": chol,
                    "aii_inv_aib": aii_inv_aib,
                    "bdofs": dm.elem_dofs[e][:nb],
                    "bsigns": dm.elem_signs[e][:nb],
                    "idofs": dm.elem_dofs[e][nb:],
                    "nb": nb,
                    "ni": ni,
                }
            )
            schur.append(s_e)
        return schur

    def _setup_batched(self, elem_mats):
        """Batched path: group same-shape elements, factor the interior
        blocks with one stacked Cholesky per group, and eliminate them
        with stacked triangular solves.  Returns ``(groups, schur)`` with
        one stacked (ng, nb, nb) Schur complement per group.

        Charges per element, in element order, exactly what the
        per-element path charges (the sc-setup value is not an integer,
        so a single nb-times charge would round differently).
        """
        dm = self.space.dofmap
        nelem = len(elem_mats)
        by_exp: dict[int, list[int]] = {}
        exps: dict[int, object] = {}
        for e in range(nelem):
            exp = dm.expansion(e)
            by_exp.setdefault(id(exp), []).append(e)
            exps[id(exp)] = exp
        group_schur: list[np.ndarray] = []
        setup_charges: list[tuple[float, float] | None] = [None] * nelem
        for key, elems in by_exp.items():
            exp = exps[key]
            nb = len(exp.boundary_modes)
            if exp.boundary_modes != list(range(nb)):
                raise ValueError("expansion must order boundary modes first")
            a = np.stack([np.asarray(elem_mats[e], dtype=np.float64) for e in elems])
            abb = a[:, :nb, :nb]
            abi = a[:, :nb, nb:]
            aii = a[:, nb:, nb:]
            ni = aii.shape[-1]
            g = len(elems)
            bdofs = np.stack([dm.elem_dofs[e][:nb] for e in elems])
            bsigns = np.stack([dm.elem_signs[e][:nb] for e in elems])
            idofs = np.stack([dm.elem_dofs[e][nb:] for e in elems])
            if ni:
                low = np.linalg.cholesky(aii)  # stacked dpotrf, lower
                # Aii X = Aib, one stacked LAPACK solve (the interior
                # blocks are SPD and tiny, so the LU detour costs nothing
                # and beats a Python-level substitution sweep by far).
                aii_inv_aib = np.linalg.solve(aii, np.swapaxes(abi, -1, -2))
                s = abb - np.matmul(abi, aii_inv_aib)
                for e in elems:
                    setup_charges[e] = (
                        2.0 * ni * ni * nb + ni**3 / 3.0,
                        8.0 * (ni + nb) ** 2,
                    )
            else:
                low = None
                aii_inv_aib = np.zeros((g, 0, nb))
                s = abb
            self._groups.append(
                {
                    "low": low,
                    "linv": None,  # lazy L^{-1}, built on first multi-RHS solve
                    "abi": abi,
                    "aii_inv_aib": aii_inv_aib,
                    "bdofs": bdofs,
                    "bsigns": bsigns,
                    "idofs": idofs,
                    "nb": nb,
                    "ni": ni,
                    "ng": g,
                }
            )
            group_schur.append(s)
        for e in range(nelem):
            if setup_charges[e] is not None:
                charge(setup_charges[e][0], setup_charges[e][1], "sc-setup")
        return self._groups, group_schur

    @property
    def ndof(self) -> int:
        return self.space.ndof

    def solve(
        self, rhs: np.ndarray, dirichlet_values: np.ndarray | None = None
    ) -> np.ndarray:
        """Solve A u = rhs (assembled global load vector).

        ``rhs`` may also be a row-stacked (nrhs, ndof) block — the NS
        inner loop's multi-RHS path — solved in one batched condense /
        blocked boundary sweep / batched back-substitution, charging
        exactly nrhs column-by-column solves.  ``dirichlet_values`` then
        broadcasts: a single (nd,) vector or one row per RHS.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 2 and rhs.shape[1] == self.ndof:
            return self._solve_many(rhs, dirichlet_values)
        if rhs.shape != (self.ndof,):
            raise ValueError("rhs must cover all global dofs")
        # Condense: gb = rb - sum_e Q_e^T Abi Aii^{-1} fi.
        gb = rhs[: self.nb_glob].copy()
        fi_store: list = []
        if self.batched:
            self._condense_batched(rhs, gb, fi_store)
        else:
            for pe in self._per_elem:
                if pe["ni"] == 0:
                    fi_store.append(None)
                    continue
                fi = rhs[pe["idofs"]]
                fi_store.append(fi)
                tmp = sla.cho_solve(pe["chol"], fi)
                corr = np.zeros(pe["nb"])
                blas.dgemv(1.0, pe["abi"], tmp, 0.0, corr)
                charge(2.0 * pe["ni"] ** 2, 8.0 * pe["ni"] ** 2, "sc-chol")
                np.subtract.at(gb, pe["bdofs"], pe["bsigns"] * corr)
        # Boundary solve.
        if self.dirichlet.size:
            if dirichlet_values is None:
                dirichlet_values = np.zeros(self.dirichlet.size)
            dirichlet_values = np.asarray(dirichlet_values, dtype=np.float64)
            b = gb[self.free] - self.s_fk @ dirichlet_values
        else:
            b = gb[self.free]
        x = np.empty_like(b)
        if self.solver is not None:
            x[self.perm] = self.solver.solve(b[self.perm])
        u = np.zeros(self.ndof)
        u[self.free] = x
        if self.dirichlet.size:
            u[self.dirichlet] = dirichlet_values
        # Back-substitute interiors: ui = Aii^{-1} (fi - Aib ub).
        if self.batched:
            self._backsub_batched(u, fi_store)
            return u
        for pe, fi in zip(self._per_elem, fi_store):
            if pe["ni"] == 0:
                continue
            ub = pe["bsigns"] * u[pe["bdofs"]]
            # ui = Aii^{-1} fi - (Aii^{-1} Aib) ub, using the cached blocks.
            ui = sla.cho_solve(pe["chol"], fi)
            charge(2.0 * pe["ni"] ** 2, 8.0 * pe["ni"] ** 2, "sc-chol")
            blas.dgemv(-1.0, pe["aii_inv_aib"], ub, 1.0, ui)
            u[pe["idofs"]] = ui
        return u

    # -- multi-RHS (row-stacked) path -----------------------------------------

    def _many_dirichlet(self, nrhs: int, dirichlet_values) -> np.ndarray:
        """Broadcast prescribed values to one (nrhs, nd) row per RHS."""
        nd = self.dirichlet.size
        if dirichlet_values is None:
            return np.zeros((nrhs, nd))
        dv = np.asarray(dirichlet_values, dtype=np.float64)
        if dv.ndim == 1:
            dv = np.broadcast_to(dv, (nrhs, nd))
        if dv.shape != (nrhs, nd):
            raise ValueError("dirichlet_values shape mismatch")
        return dv

    def _solve_many(self, rhs: np.ndarray, dirichlet_values) -> np.ndarray:
        nrhs = rhs.shape[0]
        if not self.batched:
            # Per-element reference semantics: column by column.
            if self.dirichlet.size:
                dv = self._many_dirichlet(nrhs, dirichlet_values)
                return np.stack(
                    [self.solve(rhs[i], dv[i]) for i in range(nrhs)]
                )
            return np.stack([self.solve(rhs[i]) for i in range(nrhs)])
        gb = rhs[:, : self.nb_glob].copy()
        fi_store: list = []
        for grp in self._groups:
            if grp["ni"] == 0:
                fi_store.append(None)
                continue
            fi = rhs[:, grp["idofs"]]  # (nrhs, ng, ni)
            fi_store.append(fi)
            tmp = self._cho_solve_group_many(grp, fi)
            corr = np.zeros((nrhs, grp["ng"], grp["nb"]))
            blas.dgemv_batched(1.0, grp["abi"], tmp, 0.0, corr)
            gb -= (self._group_scatter(grp) @ corr.reshape(nrhs, -1).T).T
        if self.dirichlet.size:
            dv = self._many_dirichlet(nrhs, dirichlet_values)
            b = gb[:, self.free] - (self.s_fk @ dv.T).T
        else:
            dv = None
            b = gb[:, self.free]
        x = np.empty_like(b)
        if self.solver is not None:
            x[:, self.perm] = self.solver.solve_many(b[:, self.perm])
        u = np.zeros((nrhs, self.ndof))
        u[:, self.free] = x
        if dv is not None:
            u[:, self.dirichlet] = dv
        for grp, fi in zip(self._groups, fi_store):
            if grp["ni"] == 0:
                continue
            ub = grp["bsigns"] * u[:, grp["bdofs"]]
            ui = self._cho_solve_group_many(grp, fi)
            blas.dgemv_batched(-1.0, grp["aii_inv_aib"], ub, 1.0, ui)
            u[:, grp["idofs"]] = ui
        return u

    def _cho_solve_group_many(self, grp: dict, b: np.ndarray) -> np.ndarray:
        """Stacked Aii^{-1} b over elements x RHS: two triangular sweeps
        applied as Level-3 multiplies by the cached L^{-1} (the interior
        blocks are tiny and well-conditioned, so the explicit inverse
        loses nothing).  Two ``dtrsm`` charges price one cho_solve per
        item-RHS — identical to the per-column path's "sc-chol"."""
        if grp["linv"] is None:
            grp["linv"] = np.linalg.inv(grp["low"])
        y = blas.dtrsm_batched(grp["linv"], b, label="sc-chol")
        return blas.dtrsm_batched(grp["linv"], y, trans=True, label="sc-chol")

    def _group_scatter(self, grp: dict) -> sp.csr_matrix:
        """CSR gather/scatter Q_e^T of one group's boundary dofs (signs
        folded in), so the condense correction is one spmv over the whole
        stack instead of an ``np.subtract.at`` per RHS."""
        if "scatter" not in grp:
            nitems = grp["ng"] * grp["nb"]
            grp["scatter"] = sp.csr_matrix(
                (
                    grp["bsigns"].ravel().astype(np.float64),
                    (grp["bdofs"].ravel(), np.arange(nitems)),
                ),
                shape=(self.nb_glob, nitems),
            )
        return grp["scatter"]

    def _cho_solve_group(self, grp: dict, b: np.ndarray) -> np.ndarray:
        """Stacked Aii^{-1} b for one group (forward + backward sweeps of
        the stacked lower Cholesky factor), charged as the per-element
        path charges its scipy cho_solve calls."""
        low, ni = grp["low"], grp["ni"]
        y = np.empty_like(b)
        for i in range(ni):
            y[:, i] = (
                b[:, i] - np.einsum("gk,gk->g", low[:, i, :i], y[:, :i])
            ) / low[:, i, i]
        out = np.empty_like(b)
        for i in range(ni - 1, -1, -1):
            out[:, i] = (
                y[:, i] - np.einsum("gk,gk->g", low[:, i + 1 :, i], out[:, i + 1 :])
            ) / low[:, i, i]
        charge(grp["ng"] * 2.0 * ni * ni, grp["ng"] * 8.0 * ni * ni, "sc-chol")
        return out

    def _condense_batched(
        self, rhs: np.ndarray, gb: np.ndarray, fi_store: list
    ) -> None:
        """Grouped interior elimination of the condense step."""
        for grp in self._groups:
            if grp["ni"] == 0:
                fi_store.append(None)
                continue
            fi = rhs[grp["idofs"]]  # (ng, ni)
            fi_store.append(fi)
            tmp = self._cho_solve_group(grp, fi)
            corr = np.zeros((grp["ng"], grp["nb"]))
            blas.dgemv_batched(1.0, grp["abi"], tmp, 0.0, corr)
            np.subtract.at(gb, grp["bdofs"], grp["bsigns"] * corr)

    def _backsub_batched(self, u: np.ndarray, fi_store: list) -> None:
        """Grouped interior back-substitution (interior dofs are unique
        to their element, so plain assignment suffices)."""
        for grp, fi in zip(self._groups, fi_store):
            if grp["ni"] == 0:
                continue
            ub = grp["bsigns"] * u[grp["bdofs"]]
            ui = self._cho_solve_group(grp, fi)
            blas.dgemv_batched(-1.0, grp["aii_inv_aib"], ub, 1.0, ui)
            u[grp["idofs"]] = ui
