"""Global assembled operators with Dirichlet lifting and banded solves.

"The Poisson and Helmholtz-type equations are solved using direct
solves, considering the banded and symmetric nature of the Laplacian
matrices" (Section 4).  :class:`AssembledOperator` assembles the global
symmetric matrix, eliminates Dirichlet dofs by lifting, reorders the
free dofs with reverse Cuthill-McKee to minimise bandwidth, and factors
once with the banded Cholesky substrate; every subsequent ``solve`` is
two banded triangular sweeps — exactly the production structure whose
per-step cost Table 1 measures.

:func:`project_dirichlet` turns a boundary function into modal edge
coefficients (exact for polynomial traces) so inhomogeneous BCs work at
any order.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import reverse_cuthill_mckee

from ..linalg.banded import BandedSPDSolver
from ..linalg.counters import charge
from ..spectral.basis import bubble
from ..spectral.jacobi import gauss_jacobi

__all__ = ["AssembledOperator", "project_dirichlet"]


class AssembledOperator:
    """A = sum_e Q_e^T A_e Q_e, factored for repeated solves.

    Parameters
    ----------
    space:
        The :class:`~repro.assembly.space.FunctionSpace`.
    elem_mats:
        One symmetric (nmodes x nmodes) matrix per element.
    dirichlet_dofs:
        Global dofs whose values are prescribed; they are eliminated and
        their coupling lifted to the right-hand side.
    """

    def __init__(self, space, elem_mats, dirichlet_dofs=()):
        self.space = space
        self.a_full = space.assemble(elem_mats)
        ndof = space.ndof
        self.dirichlet = np.asarray(sorted(set(int(d) for d in dirichlet_dofs)), dtype=np.int64)
        if self.dirichlet.size and (
            self.dirichlet.min() < 0 or self.dirichlet.max() >= ndof
        ):
            raise ValueError("dirichlet dof out of range")
        mask = np.ones(ndof, dtype=bool)
        mask[self.dirichlet] = False
        self.free = np.nonzero(mask)[0]
        a_uu = self.a_full[np.ix_(self.free, self.free)].tocsr()
        self.a_uk = self.a_full[np.ix_(self.free, self.dirichlet)].tocsr()
        # Bandwidth-minimising reordering of the free dofs.
        self.perm = np.asarray(reverse_cuthill_mckee(a_uu, symmetric_mode=True))
        a_p = a_uu[np.ix_(self.perm, self.perm)].tocoo()
        kd = int(np.abs(a_p.row - a_p.col).max()) if a_p.nnz else 0
        nfree = self.free.size
        ab = np.zeros((kd + 1, nfree))
        up = a_p.row <= a_p.col
        ab[kd + a_p.row[up] - a_p.col[up], a_p.col[up]] = a_p.data[up]
        # Duplicate COO entries would need summing; csr->coo is canonical.
        self.solver = BandedSPDSolver.from_banded(ab)
        self.bandwidth = kd

    @property
    def ndof(self) -> int:
        return self.space.ndof

    def matvec(self, u: np.ndarray) -> np.ndarray:
        # Sparse matvec: 2 flops per stored entry, value+index+vector traffic.
        charge(2.0 * self.a_full.nnz, 12.0 * self.a_full.nnz + 16.0 * self.ndof, "spmv")
        return self.a_full @ u

    def solve(
        self,
        rhs: np.ndarray,
        dirichlet_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve A u = rhs with u fixed on the Dirichlet dofs.

        ``rhs`` is the assembled load vector over *all* dofs;
        ``dirichlet_values`` are the prescribed values in the order of
        the (sorted) dirichlet dof list.  Returns the full solution
        vector including the prescribed values.

        A row-stacked (nrhs, ndof) ``rhs`` block is solved in one
        vectorised lift / blocked banded sweep, charging exactly nrhs
        column-by-column solves; ``dirichlet_values`` then broadcasts
        (one shared (nd,) vector or one row per RHS).
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 2 and rhs.shape[1] == self.ndof:
            return self._solve_many(rhs, dirichlet_values)
        if rhs.shape != (self.ndof,):
            raise ValueError("rhs must cover all global dofs")
        if self.dirichlet.size:
            if dirichlet_values is None:
                dirichlet_values = np.zeros(self.dirichlet.size)
            dirichlet_values = np.asarray(dirichlet_values, dtype=np.float64)
            if dirichlet_values.shape != (self.dirichlet.size,):
                raise ValueError("dirichlet_values length mismatch")
            charge(2.0 * self.a_uk.nnz, 12.0 * self.a_uk.nnz, "dirichlet-lift")
            b = rhs[self.free] - self.a_uk @ dirichlet_values
        else:
            b = rhs[self.free]
        x_p = self.solver.solve(b[self.perm])
        x = np.empty_like(b)
        x[self.perm] = x_p
        u = np.zeros(self.ndof)
        u[self.free] = x
        if self.dirichlet.size:
            u[self.dirichlet] = dirichlet_values
        return u

    def _solve_many(self, rhs: np.ndarray, dirichlet_values) -> np.ndarray:
        """Row-stacked multi-RHS solve: vectorised Dirichlet lift and RCM
        permutation, one blocked banded Cholesky sweep over the block."""
        nrhs = rhs.shape[0]
        dv = None
        if self.dirichlet.size:
            if dirichlet_values is None:
                dv = np.zeros((nrhs, self.dirichlet.size))
            else:
                dv = np.asarray(dirichlet_values, dtype=np.float64)
                if dv.ndim == 1:
                    dv = np.broadcast_to(dv, (nrhs, self.dirichlet.size))
                if dv.shape != (nrhs, self.dirichlet.size):
                    raise ValueError("dirichlet_values shape mismatch")
            charge(
                nrhs * 2.0 * self.a_uk.nnz,
                nrhs * 12.0 * self.a_uk.nnz,
                "dirichlet-lift",
            )
            b = rhs[:, self.free] - (self.a_uk @ dv.T).T
        else:
            b = rhs[:, self.free]
        x = np.empty_like(b)
        x[:, self.perm] = self.solver.solve_many(b[:, self.perm])
        u = np.zeros((nrhs, self.ndof))
        u[:, self.free] = x
        if dv is not None:
            u[:, self.dirichlet] = dv
        return u


def project_dirichlet(space, tags, fn):
    """Modal boundary coefficients for u = fn(x, y) on the tagged sides.

    Returns (dofs, values): the sorted global Dirichlet dofs and the
    matching prescribed coefficients.  Vertex dofs are nodal; each
    boundary edge's interior coefficients are the 1-D L2 projection of
    (fn - linear interpolant) onto the edge bubbles, so any polynomial
    trace of degree <= order is represented exactly.
    """
    mesh, dm = space.mesh, space.dofmap
    P = space.order
    values: dict[int, float] = {}
    xg, wg = gauss_jacobi(P + 2)
    nb = P - 1
    if nb > 0:
        bub = np.array([bubble(k, xg) for k in range(nb)])
        mass_1d = (bub * wg) @ bub.T
        charge(2.0 * nb * nb * xg.size, 8.0 * (2 * nb * xg.size + nb * nb), "edge-mass")
    from .boundary import edge_physical_points

    sides = [s for t in tags for s in mesh.boundary_sides(t)]
    for ei, le in sides:
        elem = mesh.elements[ei]
        a, b = elem.edge_vertices(le)
        lo, hi = (a, b) if a < b else (b, a)
        xa, xb = mesh.vertices[lo], mesh.vertices[hi]
        ga, gb = float(fn(*xa)), float(fn(*xb))
        values[dm.vertex_dof(lo)] = ga
        values[dm.vertex_dof(hi)] = gb
        if nb == 0:
            continue
        # Canonical edge parametrisation s in [-1, 1], low -> high vertex,
        # sampled on the true (possibly curved) edge geometry.
        ex, ey = edge_physical_points(mesh, ei, le, xg)
        g = np.array([float(fn(x, y)) for x, y in zip(ex, ey)])
        lin = 0.5 * (1 - xg) * ga + 0.5 * (1 + xg) * gb
        rhs = bub @ (wg * (g - lin))
        charge(2.0 * nb * xg.size + 2.0 * nb**3 / 3.0, 8.0 * nb * (xg.size + nb), "edge-project")
        coeff = np.linalg.solve(mass_1d, rhs)
        eid = dm.elem_edge_id(ei, le)
        for k, dof in enumerate(dm.edge_dofs(eid)):
            values[int(dof)] = float(coeff[k])
    dofs = np.array(sorted(values), dtype=np.int64)
    return dofs, np.array([values[d] for d in dofs])
