"""Contiguous same-shape element batches: the stacked-operand layer.

The paper's central observation is that the DNS codes spend their time
in BLAS; our per-element hot loops issue one *tiny* counted dgemv/dgemm
per element from Python, so interpreter overhead — not kernel
throughput — dominates wall-clock.  This module groups elements by
(shape, order, quadrature) into :class:`ElementBatch` objects holding
3-D operand stacks (stacked dof maps, signs, quadrature weights and
metric factors), so the transforms, load vectors and operator setup in
:class:`~repro.assembly.space.FunctionSpace` can run as a handful of
stacked level-3 calls per field instead of one level-2 call per
element.

With uniform polynomial order the grouping key collapses to the element
kind ("tri"/"quad"), but the key is kept general so variable-order
spaces batch correctly when they arrive.  Batches preserve element
order within each group, and gather/scatter reproduce the per-element
:class:`~repro.assembly.dofmap.DofMap` semantics exactly (signed
gather, accumulating scatter with ``np.add.at``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ElementBatch", "build_batches"]


class ElementBatch:
    """One group of same-shape elements with stacked operands.

    Attributes
    ----------
    kind:
        Element kind, "tri" or "quad".
    exp:
        The shared reference expansion of every element in the batch.
    elems:
        (ng,) element indices, in mesh element order.
    dofs, signs:
        (ng, nmodes) stacked global dof numbers and C0 edge signs.
    jw:
        (ng, nq) stacked physical quadrature weights.
    dxi:
        (ng, 2, 2, nq) stacked inverse-Jacobian factors
        (``dxi[e, i, j]`` is d(xi_i)/d(x_j) on element ``elems[e]``).
    """

    def __init__(self, kind, exp, elems, dofmap, geom):
        self.kind = kind
        self.exp = exp
        self.elems = np.asarray(elems, dtype=np.int64)
        self.dofs = np.stack([dofmap.elem_dofs[e] for e in elems])
        self.signs = np.stack([dofmap.elem_signs[e] for e in elems])
        self.jw = np.stack([geom[e].jw for e in elems])
        self.dxi = np.stack([geom[e].dxi_dx for e in elems])

    @property
    def ng(self) -> int:
        """Number of elements in the batch."""
        return self.elems.size

    def gather(self, uglobal: np.ndarray) -> np.ndarray:
        """(..., ndof) global coefficients -> (..., ng, nmodes) signed
        element-local coefficients, all elements at once."""
        uglobal = np.asarray(uglobal, dtype=np.float64)
        return uglobal[..., self.dofs] * self.signs

    def scatter_add(self, ulocal: np.ndarray, uglobal: np.ndarray) -> None:
        """Accumulate (..., ng, nmodes) signed local values into the
        (..., ndof) global vector(s)."""
        lead = ulocal.shape[:-2]
        if lead:
            for idx in np.ndindex(*lead):
                np.add.at(uglobal[idx], self.dofs, self.signs * ulocal[idx])
        else:
            np.add.at(uglobal, self.dofs, self.signs * ulocal)


def build_batches(space) -> list[ElementBatch]:
    """Group a space's elements by (shape, order, quadrature).

    Batches come out in first-appearance order and keep mesh element
    order within each group, so per-element results reassembled from
    batches line up with the sequential loops they replace.
    """
    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for ei, elem in enumerate(space.mesh.elements):
        exp = space.dofmap.expansion(ei)
        key = (elem.kind, exp.order, exp.nq1d)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(ei)
    return [
        ElementBatch(
            key[0],
            space.dofmap.expansion(groups[key][0]),
            groups[key],
            space.dofmap,
            space.geom,
        )
        for key in order
    ]
