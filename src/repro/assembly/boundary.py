"""Boundary (edge) quadrature for weak boundary terms.

Needed by the splitting scheme's high-order pressure boundary condition
(Karniadakis, Israeli & Orszag 1991): the pressure-Poisson right-hand
side carries the surface integral

    oint phi [ -nu n.(curl omega)_extrap - gamma0 (u_b^{n+1} . n)/dt ]

over the velocity-Dirichlet boundary.  :class:`EdgeQuadrature` holds,
for one (element, local edge) side, the physical edge points, outward
normal, edge weights, and the element basis (values and physical
derivatives) tabulated at those points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg import blas
from ..linalg.counters import charge
from ..mesh.curved import make_element_map
from ..spectral.jacobi import gauss_jacobi

__all__ = ["EdgeQuadrature", "build_edge_quadrature"]

# Reference parametrisation of each local edge (intrinsic direction),
# and whether that direction agrees with CCW traversal of the element
# boundary (outward normal = +(t_y, -t_x) for CCW traversal).
_QUAD_PARAM = {
    0: (lambda s: (s, -np.ones_like(s)), +1),
    1: (lambda s: (np.ones_like(s), s), +1),
    2: (lambda s: (s, np.ones_like(s)), -1),
    3: (lambda s: (-np.ones_like(s), s), -1),
}
_TRI_PARAM = {
    0: (lambda s: (s, -np.ones_like(s)), +1),
    1: (lambda s: (-s, s), +1),
    2: (lambda s: (-np.ones_like(s), s), -1),
}


@dataclass
class EdgeQuadrature:
    """Quadrature data of one boundary side."""

    elem: int
    local_edge: int
    x: np.ndarray  # physical points (n,)
    y: np.ndarray
    nx: np.ndarray  # outward unit normal
    ny: np.ndarray
    jw: np.ndarray  # arc-length weights
    phi: np.ndarray  # (nmodes, n) element basis at the edge points
    dphi_x: np.ndarray  # physical derivative tables
    dphi_y: np.ndarray

    @property
    def npts(self) -> int:
        return self.x.size

    def integrate(self, fvals: np.ndarray) -> float:
        return blas.ddot(self.jw, np.asarray(fvals, dtype=np.float64))

    def load(self, fvals: np.ndarray) -> np.ndarray:
        """(f, phi_i) over this edge, local (unsigned) coefficients.

        Kept dtype-generic (the Fourier solver feeds complex modes), so
        the matvec is raw numpy with an explicit charge.
        """
        m, n = self.phi.shape
        charge(2.0 * m * n, 8.0 * (m * n + n + m), "edge-load")
        return self.phi @ (self.jw * fvals)


def build_edge_quadrature(
    space, sides: list[tuple[int, int]], nq: int | None = None
) -> list[EdgeQuadrature]:
    """Edge quadrature for the given (element, local_edge) sides."""
    out = []
    for ei, le in sides:
        elem = space.mesh.elements[ei]
        exp = space.dofmap.expansion(ei)
        n1d = nq if nq is not None else space.order + 2
        s, w = gauss_jacobi(n1d)
        table = _TRI_PARAM if elem.kind == "tri" else _QUAD_PARAM
        param, ccw_sign = table[le]
        xi1, xi2 = param(s)
        emap = make_element_map(space.mesh, ei)
        x, y = emap.x(xi1, xi2)
        # Tangent along the parameter s by the chain rule on the map.
        j = emap.jacobian(xi1, xi2)
        dxi1, dxi2 = _param_derivative(elem.kind, le)
        tx = j[:, 0, 0] * dxi1 + j[:, 0, 1] * dxi2
        ty = j[:, 1, 0] * dxi1 + j[:, 1, 1] * dxi2
        norm = np.hypot(tx, ty)
        nx = ccw_sign * ty / norm
        ny = -ccw_sign * tx / norm
        phi, d1, d2 = exp.eval_basis_full(xi1, xi2)
        # Physical derivatives at the edge points.
        det = j[:, 0, 0] * j[:, 1, 1] - j[:, 0, 1] * j[:, 1, 0]
        dxi1_dx = j[:, 1, 1] / det
        dxi1_dy = -j[:, 0, 1] / det
        dxi2_dx = -j[:, 1, 0] / det
        dxi2_dy = j[:, 0, 0] / det
        dphi_x = d1 * dxi1_dx + d2 * dxi2_dx
        dphi_y = d1 * dxi1_dy + d2 * dxi2_dy
        out.append(
            EdgeQuadrature(
                elem=ei,
                local_edge=le,
                x=x,
                y=y,
                nx=nx,
                ny=ny,
                jw=w * norm,
                phi=phi,
                dphi_x=dphi_x,
                dphi_y=dphi_y,
            )
        )
    return out


def _param_derivative(kind: str, le: int) -> tuple[float, float]:
    """d(xi1, xi2)/ds of the edge parametrisation."""
    if kind == "quad":
        return {0: (1.0, 0.0), 1: (0.0, 1.0), 2: (1.0, 0.0), 3: (0.0, 1.0)}[le]
    return {0: (1.0, 0.0), 1: (-1.0, 1.0), 2: (0.0, 1.0)}[le]


def edge_physical_points(
    mesh, elem: int, local_edge: int, s_canonical: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Physical coordinates along an element edge at canonical
    (low->high vertex id) parameter values, honouring curved geometry."""
    kind = mesh.elements[elem].kind
    table = _TRI_PARAM if kind == "tri" else _QUAD_PARAM
    param, _ = table[local_edge]
    s = np.asarray(s_canonical, dtype=np.float64)
    if mesh.edge_orientation(elem, local_edge) < 0:
        s = -s
    xi1, xi2 = param(s)
    return make_element_map(mesh, elem).x(xi1, xi2)
