"""Local-to-global degree-of-freedom maps with C0 continuity.

Global dofs are numbered vertices first, then edge-interior dofs (P-1
per mesh edge, defined along the edge's canonical low->high direction),
then element-interior dofs — the boundary/interior split of Figure 10.
C0 continuity across elements is imposed "by choosing appropriately the
edge modes" (Section 1.3): shared vertex and edge dofs get one global
number, and an element whose intrinsic edge direction opposes the
canonical one flips the sign of its odd edge modes
(:func:`repro.spectral.basis.edge_reversal_sign`).
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh2d import Mesh2D
from ..spectral.basis import edge_reversal_sign
from ..spectral.expansions import Expansion2D, QuadExpansion, TriExpansion

__all__ = ["DofMap"]


class DofMap:
    """Global C0 numbering for a mesh at uniform polynomial order.

    ``periodic`` pairs boundary tags whose sides are identified by a
    rigid translation (e.g. ``[("left", "right")]``): matched vertices
    and edges share global dofs, turning the domain into a (partially)
    periodic box — the discretisation the paper's "box codes" for
    homogeneous turbulence use.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        order: int,
        periodic: list[tuple[str, str]] | tuple = (),
    ):
        if order < 2:
            raise ValueError("dof map needs order >= 2")
        self.mesh = mesh
        self.order = order
        self.periodic = tuple(periodic)
        self.expansions: dict[str, Expansion2D] = {
            "tri": TriExpansion(order),
            "quad": QuadExpansion(order),
        }
        self._build_identifications()
        self._number()

    # -- periodic identification ------------------------------------------------

    def _build_identifications(self) -> None:
        """Union vertices across periodic tag pairs; vrep[v] is each
        vertex's representative id."""
        mesh = self.mesh
        parent = list(range(mesh.nvertices))

        def find(v):
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        # Edge identification union-find (mesh edge ids).
        eparent = list(range(mesh.nedges))

        def efind(e):
            while eparent[e] != e:
                eparent[e] = eparent[eparent[e]]
                e = eparent[e]
            return e

        for tag_a, tag_b in self.periodic:
            va = sorted(
                {
                    v
                    for ei, le in mesh.boundary_sides(tag_a)
                    for v in mesh.elements[ei].edge_vertices(le)
                }
            )
            vb = sorted(
                {
                    v
                    for ei, le in mesh.boundary_sides(tag_b)
                    for v in mesh.elements[ei].edge_vertices(le)
                }
            )
            if len(va) != len(vb):
                raise ValueError(
                    f"periodic tags {tag_a!r}/{tag_b!r} have unequal vertex counts"
                )
            ca = mesh.vertices[va]
            cb = mesh.vertices[vb]
            t = cb.mean(axis=0) - ca.mean(axis=0)
            scale = max(1.0, float(np.abs(mesh.vertices).max()))
            partner: dict[int, int] = {}
            for v, xy in zip(va, ca):
                d = np.linalg.norm(cb - (xy + t), axis=1)
                j = int(np.argmin(d))
                if d[j] > 1e-8 * scale:
                    raise ValueError(
                        f"periodic tags {tag_a!r}/{tag_b!r}: vertex {v} has "
                        "no translated partner"
                    )
                union(v, vb[j])
                partner[v] = vb[j]
            # Match the boundary edges of the pair through the vertex map.
            b_edges = {
                frozenset(mesh.elements[ei].edge_vertices(le)): mesh.elem_edges[ei][le]
                for ei, le in mesh.boundary_sides(tag_b)
            }
            for ei, le in mesh.boundary_sides(tag_a):
                a1, a2 = mesh.elements[ei].edge_vertices(le)
                key = frozenset((partner[a1], partner[a2]))
                if key not in b_edges:
                    raise ValueError(
                        f"periodic tags {tag_a!r}/{tag_b!r}: edge "
                        f"({a1}, {a2}) has no translated partner edge"
                    )
                ea = mesh.elem_edges[ei][le]
                eb = b_edges[key]
                ra, rb = efind(ea), efind(eb)
                if ra != rb:
                    eparent[max(ra, rb)] = min(ra, rb)
        self._edge_class = [efind(e) for e in range(mesh.nedges)]
        self.vrep_raw = np.array([find(v) for v in range(mesh.nvertices)])
        # Compress representatives to 0..n_classes-1.
        reps = np.unique(self.vrep_raw)
        lut = {int(r): i for i, r in enumerate(reps)}
        self.vrep = np.array([lut[int(r)] for r in self.vrep_raw], dtype=np.int64)
        self.n_vertex_dofs = reps.size

    def _edge_tables(self):
        """Edge numbering over *identified* edges.

        Distinct physical edges stay distinct unless explicitly matched
        by a periodic pair (endpoint reps alone would wrongly collapse
        parallel edges on small tori).  Canonical direction of each
        (merged) edge is low -> high in vertex-representative space —
        consistent on both faces of a periodic pair by construction.
        """
        mesh = self.mesh
        classes = sorted(set(self._edge_class))
        class_id = {c: i for i, c in enumerate(classes)}
        elem_edge_ids: list[list[int]] = []
        elem_edge_orient: list[list[int]] = []
        for ei, elem in enumerate(mesh.elements):
            ids, orients = [], []
            for le in range(elem.nedges):
                a, b = elem.edge_vertices(le)
                ra, rb = int(self.vrep[a]), int(self.vrep[b])
                if ra == rb:
                    raise ValueError(
                        "degenerate periodic identification (an edge's "
                        "endpoints are identified; use >= 2 cells per "
                        "periodic direction)"
                    )
                ids.append(class_id[self._edge_class[mesh.elem_edges[ei][le]]])
                orients.append(1 if ra < rb else -1)
            elem_edge_ids.append(ids)
            elem_edge_orient.append(orients)
        return class_id, elem_edge_ids, elem_edge_orient

    def _number(self) -> None:
        mesh, P = self.mesh, self.order
        n_edge_dofs = P - 1
        table, elem_edge_ids, elem_edge_orient = self._edge_tables()
        self._edge_ids = elem_edge_ids
        self.n_edges = len(table)
        self.vertex_offset = 0
        self.edge_offset = self.n_vertex_dofs
        self.interior_offset = self.edge_offset + n_edge_dofs * self.n_edges

        self.elem_dofs: list[np.ndarray] = []
        self.elem_signs: list[np.ndarray] = []
        int_cursor = self.interior_offset
        for ei, elem in enumerate(mesh.elements):
            exp = self.expansions[elem.kind]
            dofs = np.empty(exp.nmodes, dtype=np.int64)
            signs = np.ones(exp.nmodes)
            for v, mid in enumerate(exp.vertex_modes):
                dofs[mid] = self.vrep[elem.vertices[v]]
            for le in range(elem.nedges):
                eid = elem_edge_ids[ei][le]
                orient = elem_edge_orient[ei][le]
                base = self.edge_offset + eid * n_edge_dofs
                for k, mid in enumerate(exp.edge_modes(le)):
                    dofs[mid] = base + k
                    if orient < 0:
                        signs[mid] = edge_reversal_sign(k)
            for mid in exp.interior_modes:
                dofs[mid] = int_cursor
                int_cursor += 1
            self.elem_dofs.append(dofs)
            self.elem_signs.append(signs)
        self.ndof = int_cursor
        self.nboundary = self.interior_offset

    # -- queries -------------------------------------------------------------

    def expansion(self, elem: int) -> Expansion2D:
        return self.expansions[self.mesh.elements[elem].kind]

    def vertex_dof(self, v: int) -> int:
        """Global dof of mesh vertex v (its periodic representative)."""
        return int(self.vrep[v])

    def elem_edge_id(self, elem: int, local_edge: int) -> int:
        """Dof-map edge id of an element side (identified edges for
        periodic meshes)."""
        return self._edge_ids[elem][local_edge]

    def edge_dofs(self, eid: int) -> np.ndarray:
        """Global dofs interior to dof-map edge ``eid`` (canonical order)."""
        n = self.order - 1
        base = self.edge_offset + eid * n
        return np.arange(base, base + n, dtype=np.int64)

    def boundary_dofs(self, tags: list[str] | None = None) -> np.ndarray:
        """Global dofs (vertices + edge-interiors) on the given boundary
        tags; on the whole boundary when ``tags`` is None."""
        sides = (
            self.mesh.boundary_sides()
            if tags is None
            else [s for t in tags for s in self.mesh.boundary_sides(t)]
        )
        out: set[int] = set()
        for ei, le in sides:
            elem = self.mesh.elements[ei]
            a, b = elem.edge_vertices(le)
            out.add(self.vertex_dof(a))
            out.add(self.vertex_dof(b))
            eid = self.elem_edge_id(ei, le)
            out.update(int(d) for d in self.edge_dofs(eid))
        return np.array(sorted(out), dtype=np.int64)

    # -- gather/scatter -------------------------------------------------------

    def gather(self, elem: int, uglobal: np.ndarray) -> np.ndarray:
        """Global coefficient vector -> signed element-local coefficients."""
        return self.elem_signs[elem] * uglobal[self.elem_dofs[elem]]

    def scatter_add(self, elem: int, ulocal: np.ndarray, uglobal: np.ndarray) -> None:
        """Accumulate signed element-local values into the global vector."""
        np.add.at(uglobal, self.elem_dofs[elem], self.elem_signs[elem] * ulocal)

    def multiplicity(self) -> np.ndarray:
        """How many elements touch each global dof (1 for interiors)."""
        mult = np.zeros(self.ndof)
        for ei in range(self.mesh.nelements):
            np.add.at(mult, self.elem_dofs[ei], 1.0)
        return mult
