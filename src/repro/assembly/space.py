"""FunctionSpace: the discrete field layer of the spectral/hp method.

Bundles a mesh + uniform polynomial order with the dof map, per-element
geometric factors and physical quadrature coordinates, and provides the
field operations every application stage is built from:

* ``backward``  — modal coefficients -> quadrature values (the paper's
  stage 1, "transformation from modal to quadrature space"),
* ``forward``   — global L2 projection (a mass solve),
* ``gradient``  — physical derivatives at quadrature points,
* ``load_vector`` / ``integrate`` — weak-form right-hand sides.

Values live in an (nelem, nq) array; modal coefficients in a global
C0 vector of length ``ndof``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import blas
from ..mesh.mapping import GeomFactors
from ..mesh.mesh2d import Mesh2D
from .dofmap import DofMap
from .operators import (
    elemental_helmholtz,
    elemental_helmholtz_batched,
    elemental_laplacian,
    elemental_laplacian_batched,
    elemental_load,
    elemental_mass,
    elemental_mass_batched,
)

__all__ = ["FunctionSpace"]


class FunctionSpace:
    """H1-conforming spectral/hp space of uniform order on a 2-D mesh.

    ``sumfact`` evaluates transforms, gradients and load vectors on
    quadrilateral elements by sum-factorisation (two O(P^3) contractions
    instead of one O(P^4) tabulated dgemv) — NekTar's tensor-product
    evaluation; results are identical to machine precision.  The default
    (``None``) resolves to True on all-quad meshes and False otherwise;
    an explicit ``sumfact=True`` on a mixed mesh fast-paths the quad
    batches and falls back to the tabulated tables on the rest.

    ``batched=True`` (the default) groups same-shape elements into
    contiguous operand stacks and runs transforms, load vectors,
    operator setup and static condensation as stacked BLAS-3 calls —
    same math and identical OpCounter flop/byte charges as the
    per-element reference path (``batched=False``), minus the Python
    per-element loop overhead.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        order: int,
        sumfact: bool | None = None,
        periodic: list[tuple[str, str]] | tuple = (),
        batched: bool = True,
    ):
        self.mesh = mesh
        self.order = order
        if sumfact is None:
            sumfact = all(e.kind == "quad" for e in mesh.elements)
        self.sumfact = bool(sumfact)
        self.batched = batched
        self._batches = None
        self._op_mats: dict[tuple, np.ndarray] = {}
        self.dofmap = DofMap(mesh, order, periodic=periodic)
        from ..mesh.curved import make_element_map

        self.geom: list[GeomFactors] = []
        xq, yq = [], []
        for ei, elem in enumerate(mesh.elements):
            exp = self.dofmap.expansion(ei)
            coords = mesh.element_coords(ei)
            emap = make_element_map(mesh, ei)
            self.geom.append(GeomFactors.compute(exp, coords, emap))
            A, B = exp.rule.points
            if elem.kind == "tri":
                xi1 = 0.5 * (1.0 + A) * (1.0 - B) - 1.0
                xi2 = B
            else:
                xi1, xi2 = A, B
            x, y = emap.x(xi1, xi2)
            xq.append(x)
            yq.append(y)
        self.xq = np.array(xq)
        self.yq = np.array(yq)
        self._mass_solver = None

    # -- sizes ---------------------------------------------------------------

    @property
    def nelem(self) -> int:
        return self.mesh.nelements

    @property
    def nq(self) -> int:
        """Quadrature points per element (uniform: both reference rules
        use (order + 2)^2 points)."""
        return self.xq.shape[1]

    @property
    def ndof(self) -> int:
        return self.dofmap.ndof

    def coords(self) -> tuple[np.ndarray, np.ndarray]:
        return self.xq, self.yq

    def batches(self):
        """Same-shape element batches (built lazily; element order is
        preserved within each batch)."""
        if self._batches is None:
            from .batching import build_batches

            self._batches = build_batches(self)
        return self._batches

    # -- transforms ------------------------------------------------------------
    #
    # Every transform accepts arbitrary leading field dimensions:
    # coefficients of shape (..., ndof) map to values of shape
    # (..., nelem, nq) and vice versa, so multi-field callers (e.g. the
    # stacked real/imag mode fields of NekTar-F) go through one batched
    # sweep instead of one Python loop per field.

    def backward(self, u_hat: np.ndarray) -> np.ndarray:
        """Global modal coefficients -> values at quadrature points."""
        u_hat = np.asarray(u_hat, dtype=np.float64)
        lead = u_hat.shape[:-1]
        out = np.empty(lead + (self.nelem, self.nq))
        if self.batched:
            for b in self.batches():
                local = b.gather(u_hat)
                if self.sumfact and b.kind == "quad":
                    vals = b.exp.backward_sumfact_batched(local)
                else:
                    vals = np.empty(lead + (b.ng, self.nq))
                    blas.dgemv_batched(1.0, b.exp.phi, local, 0.0, vals, trans=True)
                out[..., b.elems, :] = vals
            return out
        if lead:
            for idx in np.ndindex(*lead):
                out[idx] = self.backward(u_hat[idx])
            return out
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            local = self.dofmap.gather(ei, u_hat)
            if self.sumfact and self.mesh.elements[ei].kind == "quad":
                out[ei] = exp.backward_sumfact(local)
            else:
                blas.dgemv(1.0, exp.phi, local, 0.0, out[ei], trans=True)
        return out

    def load_vector(self, values: np.ndarray) -> np.ndarray:
        """Assembled (f, phi_i) for f at quadrature points."""
        values = np.asarray(values, dtype=np.float64)
        lead = values.shape[:-2]
        rhs = np.zeros(lead + (self.ndof,))
        if self.batched:
            if values.shape[-2:] != (self.nelem, self.nq):
                raise ValueError("values must be given at the quadrature points")
            for b in self.batches():
                w = b.jw * values[..., b.elems, :]
                if self.sumfact and b.kind == "quad":
                    local = b.exp.iproduct_sumfact_batched(w)
                else:
                    local = np.zeros(lead + (b.ng, b.exp.nmodes))
                    blas.dgemv_batched(1.0, b.exp.phi, w, 0.0, local)
                b.scatter_add(local, rhs)
            return rhs
        if lead:
            for idx in np.ndindex(*lead):
                rhs[idx] = self.load_vector(values[idx])
            return rhs
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            if self.sumfact and self.mesh.elements[ei].kind == "quad":
                local = exp.iproduct_sumfact(self.geom[ei].jw * values[ei])
            else:
                local = elemental_load(exp, self.geom[ei], values[ei])
            self.dofmap.scatter_add(ei, local, rhs)
        return rhs

    def grad_load_vector(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        """Assembled (fx, dphi_i/dx) + (fy, dphi_i/dy).

        This is the weak pressure-Poisson right-hand side of the
        splitting scheme: with the consistent Neumann condition
        dp/dn = u_hat . n / dt, the boundary terms cancel and
        (grad p, grad phi) = (u_hat, grad phi) / dt.
        """
        fx = np.asarray(fx, dtype=np.float64)
        fy = np.asarray(fy, dtype=np.float64)
        lead = fx.shape[:-2]
        rhs = np.zeros(lead + (self.ndof,))
        if self.batched:
            if fx.shape != fy.shape or fx.shape[-2:] != (self.nelem, self.nq):
                raise ValueError("fields must be given at the quadrature points")
            for b in self.batches():
                # Adjoint of the reference-first gradient: contract the
                # metric factors into the quadrature fields, then apply
                # the shared reference-derivative tables — same two
                # dgemv charges per element as the per-element path
                # (or two pairs of O(P^3) contractions with sumfact).
                g = b.jw * fx[..., b.elems, :]
                h = b.jw * fy[..., b.elems, :]
                t1 = b.dxi[:, 0, 0] * g + b.dxi[:, 0, 1] * h
                t2 = b.dxi[:, 1, 0] * g + b.dxi[:, 1, 1] * h
                if self.sumfact and b.kind == "quad":
                    local = b.exp.iproduct_sumfact_batched(t1, deriv=1)
                    local += b.exp.iproduct_sumfact_batched(t2, deriv=2)
                else:
                    local = np.zeros(lead + (b.ng, b.exp.nmodes))
                    blas.dgemv_batched(1.0, b.exp.dphi1, t1, 0.0, local)
                    blas.dgemv_batched(1.0, b.exp.dphi2, t2, 1.0, local)
                b.scatter_add(local, rhs)
            return rhs
        if lead:
            for idx in np.ndindex(*lead):
                rhs[idx] = self.grad_load_vector(fx[idx], fy[idx])
            return rhs
        local = None
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            gf = self.geom[ei]
            if self.sumfact and self.mesh.elements[ei].kind == "quad":
                g = gf.jw * fx[ei]
                h = gf.jw * fy[ei]
                t1 = gf.dxi_dx[0, 0] * g + gf.dxi_dx[0, 1] * h
                t2 = gf.dxi_dx[1, 0] * g + gf.dxi_dx[1, 1] * h
                local = exp.iproduct_sumfact(t1, deriv=1)
                local += exp.iproduct_sumfact(t2, deriv=2)
                self.dofmap.scatter_add(ei, local, rhs)
                local = None
                continue
            dx, dy = gf.physical_gradients(exp.dphi1, exp.dphi2)
            if local is None or local.size != exp.nmodes:
                local = np.zeros(exp.nmodes)
            blas.dgemv(1.0, dx, gf.jw * fx[ei], 0.0, local)
            blas.dgemv(1.0, dy, gf.jw * fy[ei], 1.0, local)
            self.dofmap.scatter_add(ei, local, rhs)
        return rhs

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Global L2 projection: values -> modal coefficients (condensed
        mass solve, like every other direct solve in the code)."""
        from .condensation import CondensedOperator

        values = np.asarray(values, dtype=np.float64)
        if self._mass_solver is None:
            self._mass_solver = CondensedOperator(self, self.elemental_matrices("mass"))
        rhs = self.load_vector(values)
        lead = values.shape[:-2]
        if lead:
            out = np.empty(lead + (self.ndof,))
            for idx in np.ndindex(*lead):
                out[idx] = self._mass_solver.solve(rhs[idx])
            return out
        return self._mass_solver.solve(rhs)

    def gradient(self, u_hat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Physical (du/dx, du/dy) at quadrature points from modal coeffs."""
        u_hat = np.asarray(u_hat, dtype=np.float64)
        lead = u_hat.shape[:-1]
        dudx = np.empty(lead + (self.nelem, self.nq))
        dudy = np.empty(lead + (self.nelem, self.nq))
        if self.batched:
            for b in self.batches():
                local = b.gather(u_hat)
                if self.sumfact and b.kind == "quad":
                    d1, d2 = b.exp.gradient_sumfact_batched(local)
                else:
                    # Reference-first evaluation: two shared-table dgemv
                    # per element (as the per-element path charges), with
                    # the metric factors applied pointwise afterwards.
                    d1 = np.empty(lead + (b.ng, self.nq))
                    d2 = np.empty(lead + (b.ng, self.nq))
                    blas.dgemv_batched(1.0, b.exp.dphi1, local, 0.0, d1, trans=True)
                    blas.dgemv_batched(1.0, b.exp.dphi2, local, 0.0, d2, trans=True)
                dudx[..., b.elems, :] = d1 * b.dxi[:, 0, 0] + d2 * b.dxi[:, 1, 0]
                dudy[..., b.elems, :] = d1 * b.dxi[:, 0, 1] + d2 * b.dxi[:, 1, 1]
            return dudx, dudy
        if lead:
            for idx in np.ndindex(*lead):
                dudx[idx], dudy[idx] = self.gradient(u_hat[idx])
            return dudx, dudy
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            local = self.dofmap.gather(ei, u_hat)
            if self.sumfact and self.mesh.elements[ei].kind == "quad":
                d1, d2 = exp.gradient_sumfact(local)
                gf = self.geom[ei]
                dudx[ei] = d1 * gf.dxi_dx[0, 0] + d2 * gf.dxi_dx[1, 0]
                dudy[ei] = d1 * gf.dxi_dx[0, 1] + d2 * gf.dxi_dx[1, 1]
            else:
                dx, dy = self.geom[ei].physical_gradients(exp.dphi1, exp.dphi2)
                blas.dgemv(1.0, dx, local, 0.0, dudx[ei], trans=True)
                blas.dgemv(1.0, dy, local, 0.0, dudy[ei], trans=True)
        return dudx, dudy

    def gradient_of_values(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gradient of a quadrature-space field (projects first)."""
        return self.gradient(self.forward(values))

    # -- integrals ---------------------------------------------------------------

    def integrate(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if self.batched:
            total = 0.0
            for b in self.batches():
                total += float(np.sum(blas.ddot_batched(b.jw, values[b.elems])))
            return total
        return float(
            sum(blas.ddot(self.geom[ei].jw, values[ei]) for ei in range(self.nelem))
        )

    def norm_l2(self, values: np.ndarray) -> float:
        return float(np.sqrt(max(0.0, self.integrate(np.asarray(values) ** 2))))

    # -- assembly ------------------------------------------------------------------

    def elemental_matrices(self, kind: str, lam: float = 0.0) -> list[np.ndarray]:
        """Per-element operator matrices, in mesh element order.

        ``kind`` is "mass", "laplacian" or "helmholtz" (the latter takes
        the Helmholtz constant ``lam``).  With ``batched=True`` the
        matrices are built as stacked dgemm_batched calls per element
        group; either way the result is the per-element list the
        condensation and solver layers consume.
        """
        if kind not in ("mass", "laplacian", "helmholtz"):
            raise ValueError(f"unknown elemental operator kind: {kind!r}")
        if not self.batched:
            if kind == "mass":
                return [
                    elemental_mass(self.dofmap.expansion(ei), self.geom[ei])
                    for ei in range(self.nelem)
                ]
            if kind == "laplacian":
                return [
                    elemental_laplacian(self.dofmap.expansion(ei), self.geom[ei])
                    for ei in range(self.nelem)
                ]
            return [
                elemental_helmholtz(self.dofmap.expansion(ei), self.geom[ei], lam)
                for ei in range(self.nelem)
            ]
        # Chunk the stacks so the (chunk, nmodes, nq) temporaries stay
        # cache-resident: one huge stack per group is memory-bound and
        # slower than the per-element loop it replaces.  Charges are
        # integer per-element counts, so chunking sums them exactly.
        chunk = 16
        mats: list[np.ndarray] = [None] * self.nelem  # type: ignore[list-item]
        for b in self.batches():
            for start in range(0, b.ng, chunk):
                sl = slice(start, start + chunk)
                if kind == "mass":
                    stack = elemental_mass_batched(b.exp, b.jw[sl])
                elif kind == "laplacian":
                    stack = elemental_laplacian_batched(b.exp, b.jw[sl], b.dxi[sl])
                else:
                    stack = elemental_helmholtz_batched(b.exp, b.jw[sl], b.dxi[sl], lam)
                for j, ei in enumerate(b.elems[sl]):
                    mats[int(ei)] = stack[j]
        return mats

    def _dense_batch_mats(self, bi: int, kind: str, lam: float) -> np.ndarray:
        """Tabulated (ng, nmodes, nmodes) operator stack of one batch —
        the matrix-free path's fallback for non-tensor-product elements,
        built once per (batch, kind, lam) and cached."""
        key = (bi, kind, round(float(lam), 12))
        mats = self._op_mats.get(key)
        if mats is None:
            b = self.batches()[bi]
            mats = np.empty((b.ng, b.exp.nmodes, b.exp.nmodes))
            chunk = 16
            for start in range(0, b.ng, chunk):
                sl = slice(start, start + chunk)
                if kind == "mass":
                    mats[sl] = elemental_mass_batched(b.exp, b.jw[sl])
                elif kind == "laplacian":
                    mats[sl] = elemental_laplacian_batched(
                        b.exp, b.jw[sl], b.dxi[sl]
                    )
                else:
                    mats[sl] = elemental_helmholtz_batched(
                        b.exp, b.jw[sl], b.dxi[sl], lam
                    )
            self._op_mats[key] = mats
        return mats

    def operator_apply(
        self, kind: str, u: np.ndarray, lam: float = 0.0
    ) -> np.ndarray:
        """Global matrix-free operator application A @ u, where A is the
        assembled mass / laplacian / helmholtz operator (no Dirichlet
        elimination; restrict externally).

        Quad batches apply by sum-factorisation — O(P^3) per element,
        nothing assembled; other batches fall back to cached tabulated
        elemental stacks.  Leading axes of ``u`` batch through one
        sweep (the block-CG path applies whole RHS blocks at once).
        """
        from . import matrix_free

        if kind not in ("mass", "laplacian", "helmholtz"):
            raise ValueError(f"unknown elemental operator kind: {kind!r}")
        u = np.asarray(u, dtype=np.float64)
        lead = u.shape[:-1]
        out = np.zeros(lead + (self.ndof,))
        for bi, b in enumerate(self.batches()):
            local = b.gather(u)
            if self.sumfact and b.kind == "quad":
                res = matrix_free.apply_operator_batched(b, local, kind, lam)
            else:
                mats = self._dense_batch_mats(bi, kind, lam)
                res = np.zeros(lead + (b.ng, b.exp.nmodes))
                blas.dgemv_batched(1.0, mats, local, 0.0, res)
            b.scatter_add(res, out)
        return out

    def operator_diagonal(self, kind: str, lam: float = 0.0) -> np.ndarray:
        """Assembled operator diagonal (Jacobi preconditioner) without
        assembling: sum-factorised on quad batches, tabulated stacks on
        the rest."""
        from . import matrix_free

        if kind not in ("mass", "laplacian", "helmholtz"):
            raise ValueError(f"unknown elemental operator kind: {kind!r}")
        diag = np.zeros(self.ndof)
        for bi, b in enumerate(self.batches()):
            if self.sumfact and b.kind == "quad":
                d = matrix_free.diagonal_operator_batched(b, kind, lam)
            else:
                mats = self._dense_batch_mats(bi, kind, lam)
                d = np.diagonal(mats, axis1=-2, axis2=-1)
            # Signs square to one on the diagonal; pre-multiplying
            # cancels the one scatter_add applies.
            b.scatter_add(b.signs * d, diag)
        return diag

    def assemble(self, elem_mats: list[np.ndarray]) -> sp.csr_matrix:
        """Scatter elemental matrices into the global sparse operator."""
        rows, cols, vals = [], [], []
        for ei, a in enumerate(elem_mats):
            dofs = self.dofmap.elem_dofs[ei]
            signs = self.dofmap.elem_signs[ei]
            sa = (signs[:, None] * a) * signs[None, :]
            n = dofs.size
            rows.append(np.repeat(dofs, n))
            cols.append(np.tile(dofs, n))
            vals.append(sa.ravel())
        m = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.ndof, self.ndof),
        )
        return m.tocsr()

    def assembled_diagonal(self, elem_mats: list[np.ndarray]) -> np.ndarray:
        """Assembled operator diagonal (the ALE solver's Jacobi
        preconditioner) without forming the global matrix."""
        diag = np.zeros(self.ndof)
        for ei, a in enumerate(elem_mats):
            # Diagonal entries pick up signs squared (= 1); pre-multiplying
            # by the signs cancels the one scatter_add applies.
            self.dofmap.scatter_add(
                ei, self.dofmap.elem_signs[ei] * np.diag(a), diag
            )
        return diag

    def eval_at_vertices(self, u_hat: np.ndarray) -> np.ndarray:
        """Field values at mesh vertices (vertex dofs are nodal)."""
        return np.asarray(u_hat, dtype=np.float64)[: self.mesh.nvertices]
