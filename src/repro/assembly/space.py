"""FunctionSpace: the discrete field layer of the spectral/hp method.

Bundles a mesh + uniform polynomial order with the dof map, per-element
geometric factors and physical quadrature coordinates, and provides the
field operations every application stage is built from:

* ``backward``  — modal coefficients -> quadrature values (the paper's
  stage 1, "transformation from modal to quadrature space"),
* ``forward``   — global L2 projection (a mass solve),
* ``gradient``  — physical derivatives at quadrature points,
* ``load_vector`` / ``integrate`` — weak-form right-hand sides.

Values live in an (nelem, nq) array; modal coefficients in a global
C0 vector of length ``ndof``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import blas
from ..mesh.mapping import GeomFactors
from ..mesh.mesh2d import Mesh2D
from .dofmap import DofMap
from .operators import elemental_load, elemental_mass

__all__ = ["FunctionSpace"]


class FunctionSpace:
    """H1-conforming spectral/hp space of uniform order on a 2-D mesh.

    ``sumfact=True`` evaluates transforms and gradients on quadrilateral
    elements by sum-factorisation (two O(P^3) contractions instead of
    one O(P^4) tabulated dgemv) — NekTar's tensor-product evaluation;
    results are identical to machine precision.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        order: int,
        sumfact: bool = False,
        periodic: list[tuple[str, str]] | tuple = (),
    ):
        self.mesh = mesh
        self.order = order
        self.sumfact = sumfact
        self.dofmap = DofMap(mesh, order, periodic=periodic)
        from ..mesh.curved import make_element_map

        self.geom: list[GeomFactors] = []
        xq, yq = [], []
        for ei, elem in enumerate(mesh.elements):
            exp = self.dofmap.expansion(ei)
            coords = mesh.element_coords(ei)
            emap = make_element_map(mesh, ei)
            self.geom.append(GeomFactors.compute(exp, coords, emap))
            A, B = exp.rule.points
            if elem.kind == "tri":
                xi1 = 0.5 * (1.0 + A) * (1.0 - B) - 1.0
                xi2 = B
            else:
                xi1, xi2 = A, B
            x, y = emap.x(xi1, xi2)
            xq.append(x)
            yq.append(y)
        self.xq = np.array(xq)
        self.yq = np.array(yq)
        self._mass_solver = None

    # -- sizes ---------------------------------------------------------------

    @property
    def nelem(self) -> int:
        return self.mesh.nelements

    @property
    def nq(self) -> int:
        """Quadrature points per element (uniform: both reference rules
        use (order + 2)^2 points)."""
        return self.xq.shape[1]

    @property
    def ndof(self) -> int:
        return self.dofmap.ndof

    def coords(self) -> tuple[np.ndarray, np.ndarray]:
        return self.xq, self.yq

    # -- transforms ------------------------------------------------------------

    def backward(self, u_hat: np.ndarray) -> np.ndarray:
        """Global modal coefficients -> values at quadrature points."""
        out = np.empty((self.nelem, self.nq))
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            local = self.dofmap.gather(ei, u_hat)
            if self.sumfact and self.mesh.elements[ei].kind == "quad":
                out[ei] = exp.backward_sumfact(local)
            else:
                blas.dgemv(1.0, exp.phi, local, 0.0, out[ei], trans=True)
        return out

    def load_vector(self, values: np.ndarray) -> np.ndarray:
        """Assembled (f, phi_i) for f at quadrature points."""
        values = np.asarray(values, dtype=np.float64)
        rhs = np.zeros(self.ndof)
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            local = elemental_load(exp, self.geom[ei], values[ei])
            self.dofmap.scatter_add(ei, local, rhs)
        return rhs

    def grad_load_vector(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        """Assembled (fx, dphi_i/dx) + (fy, dphi_i/dy).

        This is the weak pressure-Poisson right-hand side of the
        splitting scheme: with the consistent Neumann condition
        dp/dn = u_hat . n / dt, the boundary terms cancel and
        (grad p, grad phi) = (u_hat, grad phi) / dt.
        """
        fx = np.asarray(fx, dtype=np.float64)
        fy = np.asarray(fy, dtype=np.float64)
        rhs = np.zeros(self.ndof)
        local = None
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            gf = self.geom[ei]
            dx, dy = gf.physical_gradients(exp.dphi1, exp.dphi2)
            if local is None or local.size != exp.nmodes:
                local = np.zeros(exp.nmodes)
            blas.dgemv(1.0, dx, gf.jw * fx[ei], 0.0, local)
            blas.dgemv(1.0, dy, gf.jw * fy[ei], 1.0, local)
            self.dofmap.scatter_add(ei, local, rhs)
        return rhs

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Global L2 projection: values -> modal coefficients (condensed
        mass solve, like every other direct solve in the code)."""
        from .condensation import CondensedOperator

        if self._mass_solver is None:
            mats = [
                elemental_mass(self.dofmap.expansion(ei), self.geom[ei])
                for ei in range(self.nelem)
            ]
            self._mass_solver = CondensedOperator(self, mats)
        return self._mass_solver.solve(self.load_vector(values))

    def gradient(self, u_hat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Physical (du/dx, du/dy) at quadrature points from modal coeffs."""
        dudx = np.empty((self.nelem, self.nq))
        dudy = np.empty((self.nelem, self.nq))
        for ei in range(self.nelem):
            exp = self.dofmap.expansion(ei)
            local = self.dofmap.gather(ei, u_hat)
            if self.sumfact and self.mesh.elements[ei].kind == "quad":
                d1, d2 = exp.gradient_sumfact(local)
                gf = self.geom[ei]
                dudx[ei] = d1 * gf.dxi_dx[0, 0] + d2 * gf.dxi_dx[1, 0]
                dudy[ei] = d1 * gf.dxi_dx[0, 1] + d2 * gf.dxi_dx[1, 1]
            else:
                dx, dy = self.geom[ei].physical_gradients(exp.dphi1, exp.dphi2)
                blas.dgemv(1.0, dx, local, 0.0, dudx[ei], trans=True)
                blas.dgemv(1.0, dy, local, 0.0, dudy[ei], trans=True)
        return dudx, dudy

    def gradient_of_values(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gradient of a quadrature-space field (projects first)."""
        return self.gradient(self.forward(values))

    # -- integrals ---------------------------------------------------------------

    def integrate(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        return float(
            sum(blas.ddot(self.geom[ei].jw, values[ei]) for ei in range(self.nelem))
        )

    def norm_l2(self, values: np.ndarray) -> float:
        return float(np.sqrt(max(0.0, self.integrate(np.asarray(values) ** 2))))

    # -- assembly ------------------------------------------------------------------

    def assemble(self, elem_mats: list[np.ndarray]) -> sp.csr_matrix:
        """Scatter elemental matrices into the global sparse operator."""
        rows, cols, vals = [], [], []
        for ei, a in enumerate(elem_mats):
            dofs = self.dofmap.elem_dofs[ei]
            signs = self.dofmap.elem_signs[ei]
            sa = (signs[:, None] * a) * signs[None, :]
            n = dofs.size
            rows.append(np.repeat(dofs, n))
            cols.append(np.tile(dofs, n))
            vals.append(sa.ravel())
        m = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.ndof, self.ndof),
        )
        return m.tocsr()

    def assembled_diagonal(self, elem_mats: list[np.ndarray]) -> np.ndarray:
        """Assembled operator diagonal (the ALE solver's Jacobi
        preconditioner) without forming the global matrix."""
        diag = np.zeros(self.ndof)
        for ei, a in enumerate(elem_mats):
            # Diagonal entries pick up signs squared (= 1); pre-multiplying
            # by the signs cancels the one scatter_add applies.
            self.dofmap.scatter_add(
                ei, self.dofmap.elem_signs[ei] * np.diag(a), diag
            )
        return diag

    def eval_at_vertices(self, u_hat: np.ndarray) -> np.ndarray:
        """Field values at mesh vertices (vertex dofs are nodal)."""
        return np.asarray(u_hat, dtype=np.float64)[: self.mesh.nvertices]
