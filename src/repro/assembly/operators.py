"""Elemental operators: mass, Laplacian (stiffness), Helmholtz, load.

All are dense (nmodes x nmodes) matrices built by quadrature against the
element's :class:`~repro.mesh.mapping.GeomFactors`, using the counted
dgemm substrate so operator setup shows up in the op accounting.  The
Laplacian with boundary-first mode ordering is the matrix whose
structure the paper shows in Figure 10: symmetric, with a banded
interior-interior block.
"""

from __future__ import annotations

import numpy as np

from ..linalg import blas
from ..mesh.mapping import GeomFactors
from ..spectral.expansions import Expansion2D

__all__ = [
    "elemental_mass",
    "elemental_laplacian",
    "elemental_helmholtz",
    "elemental_load",
    "elemental_mass_batched",
    "elemental_laplacian_batched",
    "elemental_helmholtz_batched",
]


def _weighted_outer(a: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.zeros((a.shape[0], b.shape[0]))
    blas.dgemm(1.0, a * w, b, 0.0, out, transb=True)
    return out


def elemental_mass(exp: Expansion2D, gf: GeomFactors) -> np.ndarray:
    """M_ij = int_elem phi_i phi_j dx."""
    return _weighted_outer(exp.phi, gf.jw, exp.phi)


def elemental_laplacian(exp: Expansion2D, gf: GeomFactors) -> np.ndarray:
    """L_ij = int_elem grad(phi_i) . grad(phi_j) dx (Figure 10)."""
    dx, dy = gf.physical_gradients(exp.dphi1, exp.dphi2)
    return _weighted_outer(dx, gf.jw, dx) + _weighted_outer(dy, gf.jw, dy)


def elemental_helmholtz(
    exp: Expansion2D, gf: GeomFactors, lam: float
) -> np.ndarray:
    """H = L + lam M, the operator of the paper's steps 5 and 7."""
    if lam < 0.0:
        raise ValueError("Helmholtz constant must be >= 0")
    h = elemental_laplacian(exp, gf)
    if lam != 0.0:
        h += lam * elemental_mass(exp, gf)
    return h


def elemental_load(exp: Expansion2D, gf: GeomFactors, fvals: np.ndarray) -> np.ndarray:
    """(f, phi_i) for f given at the element quadrature points."""
    fvals = np.ravel(np.asarray(fvals, dtype=np.float64))
    if fvals.size != gf.nq:
        raise ValueError("fvals must be given at the quadrature points")
    out = np.zeros(exp.nmodes)
    blas.dgemv(1.0, exp.phi, gf.jw * fvals, 0.0, out)
    return out


# --- stacked (batched) operator setup ----------------------------------------
#
# Same quadrature formulas over whole element groups: the per-element
# dgemm calls become one dgemm_batched per group, which charges exactly
# the per-element flop/byte totals (see repro.linalg.blas).  ``jw`` is
# the (ng, nq) stacked weights and ``dxi`` the (ng, 2, 2, nq) stacked
# inverse-Jacobian factors of an :class:`~repro.assembly.batching.ElementBatch`.
#
# The quadrature weights are applied in *split square-root* form: with
# sa = a * sqrt(w) the weighted outer product a W b^T becomes sa sb^T,
# so the Jacobian weighting rides along in the (tiny) geometric-factor
# arrays instead of costing an extra (ng, nmodes, nq) elementwise pass
# per operand — the dgemm shapes, and hence the charges, are unchanged.


def _outer_batched(a: np.ndarray, b: np.ndarray, lead: tuple) -> np.ndarray:
    """out[e] = a[e] @ b[e].T for shared or stacked a/b."""
    out = np.zeros(lead + (a.shape[-2], b.shape[-2]))
    blas.dgemm_batched(1.0, a, b, 0.0, out, transb=True)
    return out


def elemental_mass_batched(exp: Expansion2D, jw: np.ndarray) -> np.ndarray:
    """(ng, nmodes, nmodes) stacked mass matrices of one element batch."""
    sphi = exp.phi * np.sqrt(jw)[..., None, :]
    return _outer_batched(sphi, sphi, jw.shape[:-1])


def elemental_laplacian_batched(
    exp: Expansion2D, jw: np.ndarray, dxi: np.ndarray
) -> np.ndarray:
    """(ng, nmodes, nmodes) stacked stiffness matrices (Figure 10)."""
    m = dxi * np.sqrt(jw)[:, None, None, :]
    sdx = exp.dphi1 * m[:, None, 0, 0, :] + exp.dphi2 * m[:, None, 1, 0, :]
    sdy = exp.dphi1 * m[:, None, 0, 1, :] + exp.dphi2 * m[:, None, 1, 1, :]
    lead = jw.shape[:-1]
    return _outer_batched(sdx, sdx, lead) + _outer_batched(sdy, sdy, lead)


def elemental_helmholtz_batched(
    exp: Expansion2D, jw: np.ndarray, dxi: np.ndarray, lam: float
) -> np.ndarray:
    """(ng, nmodes, nmodes) stacked H = L + lam M matrices."""
    if lam < 0.0:
        raise ValueError("Helmholtz constant must be >= 0")
    h = elemental_laplacian_batched(exp, jw, dxi)
    if lam != 0.0:
        h += lam * elemental_mass_batched(exp, jw)
    return h
