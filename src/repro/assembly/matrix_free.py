"""Matrix-free sum-factorised elemental operator application.

The dense path tabulates one (nmodes x nmodes) matrix per element —
O(p^4) storage and O(p^4) flops per apply.  On tensor-product (quad)
elements the same weak operators factor through the 1-D basis tables:
evaluate to the quadrature grid (two O(p^3) contractions), multiply the
geometric factors pointwise, contract back with the adjoint tables
(two more O(p^3) contractions).  Nothing elemental is ever assembled,
so a CG solve needs no setup beyond the batch's metric factors.

All contractions run through the counted ``repro.linalg.blas`` dgemm
substrate; the pointwise metric stage is charged explicitly under the
``mfree-metric`` label (the dense oracle buries the same work inside
its tabulated matrix, so the two paths stay comparable in the ledger).

Operator diagonals (the Jacobi preconditioner) come from the same
machinery: squaring the 1-D tables elementwise turns the diagonal of
``D^T W D`` into three adjoint contractions against jw-weighted metric
products — still O(p^3), no matrix formed.
"""

from __future__ import annotations

import numpy as np

from ..linalg.counters import charge

__all__ = [
    "apply_operator_batched",
    "diagonal_operator_batched",
]

KINDS = ("mass", "laplacian", "helmholtz")


def _check_kind(kind: str) -> None:
    if kind not in KINDS:
        raise ValueError(f"unknown elemental operator kind: {kind!r}")


def _charge_metric(n: float, flops_per_point: float) -> None:
    """Pointwise metric work over n quadrature points: the stated flops
    plus streaming traffic (read the operand stacks, write the results;
    ~one read + one write of an 8-byte value per flop)."""
    charge(flops_per_point * n, 16.0 * flops_per_point * n, "mfree-metric")


def _apply_mass(b, local: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """(phi_m, scale * jw * u) per element: backward, weight, adjoint."""
    vals = b.exp.backward_sumfact_batched(local)
    # jw multiply (+ optional helmholtz-constant scale): 1-2 flops/point.
    nppf = 1.0 if scale == 1.0 else 2.0
    _charge_metric(float(vals.size), nppf)
    w = b.jw if scale == 1.0 else scale * b.jw
    return b.exp.iproduct_sumfact_batched(w * vals)


def _apply_laplacian(b, local: np.ndarray) -> np.ndarray:
    """Weak Laplacian D^T (jw G) D u: reference gradients, metric
    contraction, adjoint derivative inner products."""
    exp = b.exp
    d1, d2 = exp.gradient_sumfact_batched(local)
    g = b.dxi  # (ng, 2, 2, nq): dxi[a, b] = d xi_{a+1} / d x_{b+1}
    dx = d1 * g[:, 0, 0] + d2 * g[:, 1, 0]
    dy = d1 * g[:, 0, 1] + d2 * g[:, 1, 1]
    t1 = b.jw * (g[:, 0, 0] * dx + g[:, 0, 1] * dy)
    t2 = b.jw * (g[:, 1, 0] * dx + g[:, 1, 1] * dy)
    # dx, dy (3 flops each) + t1, t2 (4 flops each) per point.
    _charge_metric(float(d1.size), 14.0)
    out = exp.iproduct_sumfact_batched(t1, deriv=1)
    out += exp.iproduct_sumfact_batched(t2, deriv=2)
    return out


def apply_operator_batched(
    b, local: np.ndarray, kind: str, lam: float = 0.0
) -> np.ndarray:
    """Matrix-free A_e @ u over one quad :class:`ElementBatch`.

    ``local`` is a (..., ng, nmodes) signed-gathered coefficient stack;
    returns the same-shape stack of elemental operator applications,
    bit-for-bit independent of how many leading axes ride along.
    """
    _check_kind(kind)
    if kind == "mass":
        return _apply_mass(b, local)
    out = _apply_laplacian(b, local)
    if kind == "helmholtz" and lam != 0.0:
        out += _apply_mass(b, local, scale=lam)
    return out


def diagonal_operator_batched(b, kind: str, lam: float = 0.0) -> np.ndarray:
    """Per-element operator diagonals of a quad batch, (ng, nmodes),
    without forming the matrices.

    diag[(p,q)] of D^T W D splits over the squared 1-D tables:
    (d/dx phi)^2 = (d1 b1)^2 g11^2 + 2 (d1 b1)(b1 d1) g11 g21 +
    (b1 d1)^2 g21^2 — three adjoint contractions against jw-weighted
    metric products (plus one more for the mass term).
    """
    _check_kind(kind)
    exp = b.exp
    tl = exp.tensor_layout()
    shape = (b.ng, tl.n1, tl.n1)
    b2 = tl.b1 * tl.b1
    d2 = tl.d1 * tl.d1
    bd = tl.b1 * tl.d1
    g, jw = b.dxi, b.jw
    if kind == "mass":
        out = exp._contract_t_batched(jw.reshape(shape), b2, b2)
        return tl.from_tensor_batched(out)
    w_aa = jw * (g[:, 0, 0] ** 2 + g[:, 0, 1] ** 2)
    w_ab = 2.0 * jw * (g[:, 0, 0] * g[:, 1, 0] + g[:, 0, 1] * g[:, 1, 1])
    w_bb = jw * (g[:, 1, 0] ** 2 + g[:, 1, 1] ** 2)
    # Metric products: 3 weighted quadratic forms, ~12 flops per point.
    _charge_metric(float(jw.size), 12.0)
    out = exp._contract_t_batched(w_aa.reshape(shape), b2, d2)
    out += exp._contract_t_batched(w_ab.reshape(shape), bd, bd)
    out += exp._contract_t_batched(w_bb.reshape(shape), d2, b2)
    if kind == "helmholtz" and lam != 0.0:
        out += lam * exp._contract_t_batched(jw.reshape(shape), b2, b2)
    return tl.from_tensor_batched(out)
