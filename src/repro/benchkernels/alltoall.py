"""MPI_Alltoall benchmark driver (Figure 8).

The paper times a globally synchronised loop of MPI_Alltoall calls and
reports the average per-process bandwidth against message size, for 4
and 8 processors.  The model mode sweeps the collective cost models;
the simulated mode performs the paper's measurement protocol literally
on simmpi (barrier, loop of alltoalls, per-rank statistics over the
repetitions).
"""

from __future__ import annotations

import numpy as np

from ..machines.catalog import ALLTOALL_FIGURE_NETWORKS, NETWORKS
from ..parallel.simmpi import VirtualCluster

__all__ = ["message_sizes", "figure8_series", "simulated_alltoall"]


def message_sizes() -> np.ndarray:
    """1 byte to ~6.4 MB per pair, log spaced (Figure 8 abscissa)."""
    return np.unique(np.logspace(0, np.log10(6.4e6), 30).astype(int))


def figure8_series(nprocs: int, names=None) -> dict[str, tuple]:
    """Average Alltoall bandwidth curves for one processor count."""
    if nprocs < 2:
        raise ValueError("alltoall needs at least two processors")
    names = ALLTOALL_FIGURE_NETWORKS if names is None else names
    sizes = message_sizes()
    out = {}
    for name in names:
        if name == "Muses, LAM" and nprocs > 4:
            continue  # Muses has 4 nodes
        net = NETWORKS[name]
        out[name] = (
            sizes,
            np.array(
                [net.alltoall_avg_bandwidth(nprocs, int(s)) for s in sizes]
            ),
        )
    return out


def simulated_alltoall(
    network_name: str, nprocs: int, nbytes: int, reps: int = 5
) -> dict[str, float]:
    """The paper's protocol on simmpi: globally synchronise, then time a
    loop calling MPI_Alltoall; statistics over the repetitions."""
    net = NETWORKS[network_name]

    def fn(comm):
        chunks = [np.zeros(max(1, nbytes // 8)) for _ in range(comm.size)]
        comm.barrier()
        t0 = comm.wall
        times = []
        for _ in range(reps):
            t_before = comm.wall
            comm.alltoall(chunks)
            times.append(comm.wall - t_before)
        total = comm.wall - t0
        return times, total

    res = VirtualCluster(nprocs, net).run(fn)
    times = np.array([t for times, _ in res for t in times])
    mean = float(times.mean())
    return {
        "mean_seconds": mean,
        "min_seconds": float(times.min()),
        "max_seconds": float(times.max()),
        "avg_bandwidth_mb": (nprocs - 1) * nbytes / mean / 1e6,
    }
