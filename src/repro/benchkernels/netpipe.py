"""NetPIPE-style ping-pong driver (Figure 7).

"Simple unidirectional (Ping-Pong) latency and bandwidth testing is
performed with NetPIPE 2.3."  Two modes again: evaluate the network
models directly, or actually run the ping-pong on a two-rank simmpi
cluster and time it with the virtual clock (the consistency of the two
is itself a test).
"""

from __future__ import annotations

import numpy as np

from ..machines.catalog import NETWORKS, PINGPONG_FIGURE_NETWORKS
from ..parallel.simmpi import VirtualCluster

__all__ = [
    "latency_sizes",
    "bandwidth_sizes",
    "latency_series",
    "bandwidth_series",
    "simulated_pingpong",
]


def latency_sizes() -> np.ndarray:
    """Small messages, 0-600 bytes (Figure 7 left panel)."""
    return np.arange(0, 601, 40)


def bandwidth_sizes() -> np.ndarray:
    """1 byte to 64 MB, log spaced (Figure 7 right panel)."""
    return np.unique(np.logspace(0, np.log10(64 << 20), 40).astype(int))


def latency_series(names=None) -> dict[str, tuple]:
    names = PINGPONG_FIGURE_NETWORKS if names is None else names
    sizes = latency_sizes()
    return {
        name: (
            sizes,
            np.array([NETWORKS[name].pingpong_latency_us(int(s)) for s in sizes]),
        )
        for name in names
    }


def bandwidth_series(names=None) -> dict[str, tuple]:
    names = PINGPONG_FIGURE_NETWORKS if names is None else names
    sizes = bandwidth_sizes()
    return {
        name: (
            sizes,
            np.array([NETWORKS[name].pingpong_bandwidth(int(s)) for s in sizes]),
        )
        for name in names
    }


def simulated_pingpong(network_name: str, nbytes: int, reps: int = 10) -> float:
    """Run the ping-pong on simmpi; returns measured one-way seconds."""
    net = NETWORKS[network_name]

    def fn(comm):
        msg = np.zeros(max(1, nbytes // 8))
        for _ in range(reps):
            if comm.rank == 0:
                comm.send(1, msg)
                comm.recv(1)
            else:
                comm.recv(0)
                comm.send(0, msg)
        return comm.wall

    cluster = VirtualCluster(2, net)
    res = cluster.run(fn)
    return res[0] / (2 * reps)
