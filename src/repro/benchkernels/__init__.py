"""Kernel-level benchmark drivers (Figures 1-8)."""

from .alltoall import figure8_series, message_sizes, simulated_alltoall
from .blas_bench import (
    FIGURES,
    figure_series,
    host_measure,
    model_curve,
    sweep_sizes,
)
from .netpipe import (
    bandwidth_series,
    bandwidth_sizes,
    latency_series,
    latency_sizes,
    simulated_pingpong,
)

__all__ = [
    "FIGURES",
    "sweep_sizes",
    "model_curve",
    "figure_series",
    "host_measure",
    "latency_sizes",
    "bandwidth_sizes",
    "latency_series",
    "bandwidth_series",
    "simulated_pingpong",
    "message_sizes",
    "figure8_series",
    "simulated_alltoall",
]
