"""Kernel-level CPU benchmark driver (Figures 1-6).

Two modes:

* **model** — evaluate each machine's CPU model over the paper's
  working-set sweep, regenerating the multi-machine curves of
  Figures 1-6;
* **host** — actually time the :mod:`repro.linalg.blas` kernels on this
  machine (the "PC" stand-in), the measurement protocol of Section 3.1:
  repeated calls on in-cache/or-not operands, reporting MB/s or
  Mflop/s "as seen by the user".
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import blas
from ..machines.catalog import BLAS_FIGURE_MACHINES, MACHINES
from ..machines.cpu import ROUTINES, routine_flops, routine_traffic

__all__ = [
    "FIGURES",
    "sweep_sizes",
    "model_curve",
    "figure_series",
    "host_measure",
]

# Figure number -> (routine, x-axis regime).
FIGURES = {
    1: ("dcopy", "vector"),
    2: ("daxpy", "vector"),
    3: ("ddot", "vector"),
    4: ("dgemv", "matrix"),
    5: ("dgemm", "matrix"),
    6: ("dgemm", "small"),
}


def sweep_sizes(figure: int) -> np.ndarray:
    """Operand sizes n (vector length or matrix dimension) swept by each
    figure; x-axes follow the paper (bytes for 1-5, n for 6)."""
    if figure in (1, 2, 3):
        # 100 bytes .. ~8 MB vectors, log spaced.
        return np.unique(
            np.logspace(np.log10(16), np.log10(1 << 20), 40).astype(int)
        )
    if figure == 4:
        return np.arange(4, 151, 4)  # rows of 32..1200 bytes
    if figure == 5:
        return np.arange(4, 76, 3)  # rows of 32..600 bytes
    if figure == 6:
        return np.arange(2, 21)
    raise ValueError(f"no BLAS sweep for figure {figure}")


def x_axis(figure: int, n: np.ndarray) -> np.ndarray:
    """The paper's abscissa: operand bytes (8n) for figures 1-5, n for 6."""
    return n if figure == 6 else 8 * np.asarray(n)


def model_curve(machine_key: str, figure: int) -> tuple[np.ndarray, np.ndarray]:
    routine, _ = FIGURES[figure]
    cpu = MACHINES[machine_key].cpu
    n = sweep_sizes(figure)
    y = np.array([cpu.blas_rate(routine, int(k)) for k in n])
    return x_axis(figure, n), y


def figure_series(figure: int, panel: str = "left") -> dict[str, tuple]:
    """All curves of one panel of a Figure 1-6 plot."""
    if panel not in BLAS_FIGURE_MACHINES:
        raise ValueError(f"panel must be one of {sorted(BLAS_FIGURE_MACHINES)}")
    return {
        key: model_curve(key, figure) for key in BLAS_FIGURE_MACHINES[panel]
    }


def host_measure(
    routine: str, n: int, min_time: float = 0.01
) -> dict[str, float]:
    """Time the real numpy kernel on this host (Section 3.1 protocol).

    Returns the plotted metric (MB/s for dcopy, Mflop/s otherwise) plus
    raw reps/seconds.  No warm-cache compensation — "the figures
    presented correspond to the performance as seen by the user".
    """
    if routine not in ROUTINES:
        raise ValueError(f"unknown routine {routine!r}")
    rng = np.random.default_rng(0)
    if routine in ("dcopy", "daxpy", "ddot"):
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        call = {
            "dcopy": lambda: blas.dcopy(x, y),
            "daxpy": lambda: blas.daxpy(1.0001, x, y),
            "ddot": lambda: blas.ddot(x, y),
        }[routine]
    elif routine == "dgemv":
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        y = np.zeros(n)
        call = lambda: blas.dgemv(1.0, a, x, 0.0, y)  # noqa: E731
    else:
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = np.zeros((n, n))
        call = lambda: blas.dgemm(1.0, a, b, 0.0, c)  # noqa: E731

    call()  # first-touch
    reps, elapsed = 0, 0.0
    t0 = time.perf_counter()
    while elapsed < min_time:
        call()
        reps += 1
        elapsed = time.perf_counter() - t0
    per_call = elapsed / reps
    flops = routine_flops(routine, n)
    out = {
        "routine": routine,
        "n": n,
        "reps": reps,
        "seconds_per_call": per_call,
        "mflops": flops / per_call / 1e6 if flops else 0.0,
        "mb_per_s": routine_traffic(routine, n) / per_call / 1e6,
    }
    return out
