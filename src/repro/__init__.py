"""repro — spectral/hp element DNS on simulated PC/Linux clusters.

A from-scratch Python reproduction of Karamanos, Evangelinos, Boes,
Kirby & Karniadakis, "Direct Numerical Simulation of Turbulence with a
PC/Linux Cluster: Fact or Fiction?" (SC '99).

Subpackages
-----------
- :mod:`repro.linalg` — counted BLAS kernels, banded Cholesky, PCG.
- :mod:`repro.spectral` — Jacobi polynomials, quadrature, modal expansions.
- :mod:`repro.mesh` — unstructured 2-D meshes, generators, partitioner.
- :mod:`repro.assembly` — dof maps, elemental operators, global assembly.
- :mod:`repro.solvers` — global Helmholtz/Poisson solvers.
- :mod:`repro.ns` — Navier–Stokes: serial 2-D, Fourier-parallel, ALE.
- :mod:`repro.fourier` — FFT helpers and mode-to-processor mapping.
- :mod:`repro.parallel` — virtual-time MPI (simmpi), collectives, gather-scatter.
- :mod:`repro.machines` — CPU/network performance models; the paper's machines.
- :mod:`repro.benchkernels` — kernel-level drivers (Figures 1-8).
- :mod:`repro.apps` — application-level drivers (Tables 1-3, Figures 12-16).
- :mod:`repro.reporting` — table/series emitters matching the paper's layout.
"""

__version__ = "1.0.0"
