"""NekTar-F: Fourier x spectral/hp parallel Navier-Stokes solver.

The paper's Section 4.2.1 algorithm, run on simmpi: one homogeneous
(spanwise) direction is expanded in Fourier modes, distributed one
block of modes per processor; the x-y planes are the 2-D spectral/hp
discretisation.  Per timestep (stages as in Figures 13-14):

1. per-mode modal -> quadrature transforms,
2. non-linear terms: **global exchange (MPI_Alltoall) of the velocity
   components** and their derivatives to the point decomposition,
   Nxy 1-D inverse FFTs, physical-space products, FFTs, **global
   exchange back** — the communication bottleneck the paper identifies,
3. stiffly-stable weight-averaging,
4. per-mode pressure-Poisson RHS (with the high-order rotational
   pressure BC),
5. per-mode direct banded Poisson solves, lambda = k^2,
6. per-mode viscous RHS,
7. per-mode direct Helmholtz solves (3 velocity components),
   lambda = gamma0/(nu dt) + k^2.

Real and imaginary parts share the same factorised matrices, exactly as
the paper notes.  All compute is op-counted and (optionally) charged to
the simulated machine's CPU model, so a run yields Table-2-style
CPU/wall timings plus Figure 13-14 stage breakdowns.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..assembly.boundary import build_edge_quadrature
from ..assembly.condensation import CondensedOperator
from ..assembly.global_system import project_dirichlet
from ..assembly.operators import elemental_mass
from ..assembly.space import FunctionSpace
from ..fourier.mapping import transpose_to_modes, transpose_to_points
from ..fourier.pipeline import FusedFourierPipeline
from ..fourier.transforms import fft_z, ifft_z, mode_blocks, nmodes_for, wavenumbers
from ..linalg.counters import OpCounter, charge
from ..obs import metrics
from ..obs import tracer as obs
from ..parallel.simmpi import VirtualComm
from ..solvers.helmholtz import HelmholtzDirect
from ..util.timing import StageTimer
from .splitting import stiffly_stable
from .stages import STAGES

__all__ = ["NekTarF"]

# Mode amplitude BC: fn(mode_index, x, y, t) -> complex amplitude.
AmpFn = Callable[[int, float, float, float], complex]


class NekTarF:
    """One rank's share of the Fourier-parallel Navier-Stokes solver."""

    def __init__(
        self,
        comm: VirtualComm,
        space: FunctionSpace,
        nz: int,
        nu: float,
        dt: float,
        velocity_bcs: dict[str, tuple[AmpFn, AmpFn, AmpFn]],
        pressure_dirichlet: tuple[str, ...] = (),
        lz: float = 2.0 * np.pi,
        time_order: int = 2,
        charge_compute: bool = False,
        blocked_solves: bool = True,
        steady_bcs: bool | None = None,
        fused_transpose: bool = True,
    ):
        if nu <= 0 or dt <= 0:
            raise ValueError("nu and dt must be positive")
        self.comm = comm
        self.space = space
        self.nz = nz
        self.nu = float(nu)
        self.dt = float(dt)
        self.lz = float(lz)
        self.scheme = stiffly_stable(time_order)
        self.charge_compute = charge_compute
        self.blocked_solves = bool(blocked_solves)
        self.fused_transpose = bool(fused_transpose)
        self._pipeline = FusedFourierPipeline()
        self.velocity_bcs = dict(velocity_bcs)
        self.vel_tags = tuple(sorted(velocity_bcs))
        self.pressure_dirichlet = tuple(pressure_dirichlet)

        nm = nmodes_for(nz)
        self.all_k = wavenumbers(nz, lz)
        self.my_modes = list(mode_blocks(nm, comm.size)[comm.rank])
        self.k = self.all_k[self.my_modes]

        # Per-local-mode solvers; real/imag share these factorizations.
        self.p_solvers: list = []
        self._p_pin = None
        for m, k in zip(self.my_modes, self.k):
            lam = float(k * k)
            if self.pressure_dirichlet:
                self.p_solvers.append(
                    HelmholtzDirect(space, lam, self.pressure_dirichlet)
                )
            elif lam > 0.0:
                self.p_solvers.append(HelmholtzDirect(space, lam))
            else:
                mats = space.elemental_matrices("laplacian")
                self._p_pin = int(space.dofmap.boundary_dofs()[0])
                self.p_solvers.append(
                    CondensedOperator(space, mats, [self._p_pin])
                )
        self._visc_cache: dict[tuple[int, float], HelmholtzDirect] = {}

        # High-order pressure BC machinery (as in the serial solver).
        self._edge_quads = {
            tag: build_edge_quadrature(space, space.mesh.boundary_sides(tag))
            for tag in self.vel_tags
        }
        self._local_minv: dict[int, np.ndarray] = {}
        for quads in self._edge_quads.values():
            for eq in quads:
                if eq.elem not in self._local_minv:
                    m = elemental_mass(
                        space.dofmap.expansion(eq.elem), space.geom[eq.elem]
                    )
                    self._local_minv[eq.elem] = np.linalg.inv(m)
        if self.vel_tags:
            self._dirichlet_dofs, _ = project_dirichlet(
                space, self.vel_tags, lambda x, y: 0.0
            )
        else:
            self._dirichlet_dofs = np.array([], dtype=np.int64)

        # Dirichlet-value cache: the dof layout above is computed once;
        # the values are cached per (component, local mode) and reused
        # outright when the amplitude function is time-independent
        # (detected by probing, or forced via ``steady_bcs``).
        self._bc_cache: dict[tuple[int, int], tuple[float | None, np.ndarray]] = {}
        self._bc_steady = self._probe_steady_bcs(steady_bcs)

        nloc = len(self.my_modes)
        self.u_hat = np.zeros((nloc, space.ndof), dtype=np.complex128)
        self.v_hat = np.zeros_like(self.u_hat)
        self.w_hat = np.zeros_like(self.u_hat)
        self.p_hat = np.zeros_like(self.u_hat)
        self._hist_n: deque = deque(maxlen=self.scheme.order)
        self._hist_u: deque = deque(maxlen=self.scheme.order)
        self._hist_w: deque = deque(maxlen=self.scheme.order)
        self.t = 0.0
        self.step_count = 0
        self.timer = StageTimer()
        self.virtual = StageTimer()  # simulated machine per-stage cpu/wall

    # -- helpers ---------------------------------------------------------------------

    @property
    def nlocal(self) -> int:
        return len(self.my_modes)

    # The complex-field helpers stack real and imaginary parts (and all
    # local Fourier modes) into one leading batch axis, so each helper
    # is a single sweep through the space's batched transforms instead
    # of a Python loop over modes and parts.

    def _backward_c(self, field_hat: np.ndarray) -> np.ndarray:
        """(..., ndof) complex coefficients -> (..., nelem, nq) values."""
        vals = self.space.backward(np.stack([field_hat.real, field_hat.imag]))
        return vals[0] + 1j * vals[1]

    def _gradient_c(self, field_hat: np.ndarray):
        gx, gy = self.space.gradient(np.stack([field_hat.real, field_hat.imag]))
        return gx[0] + 1j * gx[1], gy[0] + 1j * gy[1]

    def _load_c(self, vals: np.ndarray) -> np.ndarray:
        rhs = self.space.load_vector(np.stack([vals.real, vals.imag]))
        return rhs[0] + 1j * rhs[1]

    def _grad_load_c(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        rhs = self.space.grad_load_vector(
            np.stack([fx.real, fx.imag]), np.stack([fy.real, fy.imag])
        )
        return rhs[0] + 1j * rhs[1]

    def set_initial(self, u_amp: AmpFn, v_amp: AmpFn, w_amp: AmpFn) -> None:
        """Project initial modal amplitudes (complex functions of x, y)."""
        xq, yq = self.space.coords()
        for i, m in enumerate(self.my_modes):
            for hat, amp in ((self.u_hat, u_amp), (self.v_hat, v_amp), (self.w_hat, w_amp)):
                vals = np.vectorize(
                    lambda x, y: complex(amp(m, x, y, 0.0)), otypes=[np.complex128]
                )(xq, yq)
                hat[i] = self.space.forward(vals.real) + 1j * self.space.forward(
                    vals.imag
                )
        self._hist_n.clear()
        self._hist_u.clear()
        self._hist_w.clear()

    def _probe_steady_bcs(self, steady_bcs: bool | None) -> dict[int, bool]:
        """Per-component time-independence of the velocity BC amplitudes.

        ``steady_bcs`` forces the answer; otherwise each amplitude is
        probed at a few boundary points, modes and times — equal values
        everywhere mean the per-step edge projections can be skipped.
        """
        if not self.vel_tags or not self.my_modes:
            return {c: True for c in range(3)}
        if steady_bcs is not None:
            return {c: bool(steady_bcs) for c in range(3)}
        probe_t = (0.0, 0.37, 1.91)
        modes = {self.my_modes[0], self.my_modes[-1]}
        steady = {c: True for c in range(3)}
        for tag in self.vel_tags:
            pts = []
            for eq in self._edge_quads[tag][:2]:
                pts.append((float(eq.x[0]), float(eq.y[0])))
                pts.append((float(eq.x[-1]), float(eq.y[-1])))
            for comp in range(3):
                amp = self.velocity_bcs[tag][comp]
                steady[comp] = steady[comp] and all(
                    complex(amp(m, x, y, probe_t[0])) == complex(amp(m, x, y, tt))
                    for m in modes
                    for x, y in pts
                    for tt in probe_t[1:]
                )
        return steady

    def _bc_values(self, comp: int, mode_i: int, t: float) -> np.ndarray | None:
        """Dirichlet amplitude coefficients of one component and local mode.

        Cached per (comp, mode): a steady amplitude is projected exactly
        once; an unsteady one is re-projected only when ``t`` changes.
        """
        if not self.vel_tags:
            return None
        hit = self._bc_cache.get((comp, mode_i))
        if hit is not None and (hit[0] is None or hit[0] == t):
            metrics.inc("bc_cache.hits")
            return hit[1]
        metrics.inc("bc_cache.misses")
        m = self.my_modes[mode_i]
        re: dict[int, float] = {}
        im: dict[int, float] = {}
        for tag in self.vel_tags:
            amp = self.velocity_bcs[tag][comp]
            dofs, vals = project_dirichlet(
                self.space, (tag,), lambda x, y: float(np.real(amp(m, x, y, t)))
            )
            re.update(zip(dofs.tolist(), vals.tolist()))
            dofs, vals = project_dirichlet(
                self.space, (tag,), lambda x, y: float(np.imag(amp(m, x, y, t)))
            )
            im.update(zip(dofs.tolist(), vals.tolist()))
        out = np.array(
            [complex(re[int(d)], im[int(d)]) for d in self._dirichlet_dofs]
        )
        self._bc_cache[(comp, mode_i)] = (
            None if self._bc_steady[comp] else t,
            out,
        )
        return out

    def _viscous_solver(self, mode_i: int, gamma0: float) -> HelmholtzDirect:
        k = float(self.k[mode_i])
        lam = gamma0 / (self.nu * self.dt) + k * k
        key = (mode_i, round(lam, 9))
        if key not in self._visc_cache:
            metrics.inc("visc_cache.misses")
            self._visc_cache[key] = HelmholtzDirect(self.space, lam, self.vel_tags)
        else:
            metrics.inc("visc_cache.hits")
        return self._visc_cache[key]

    # -- the timestep ------------------------------------------------------------------

    def step(self) -> None:
        comm, space, dt = self.comm, self.space, self.dt
        # Announce the step boundary to the fault layer (no-op without
        # a FaultPlan): CrashSpec(at_step=k) fires at the top of step k.
        comm.mark_step(self.step_count)
        order = max(1, min(self.scheme.order, len(self._hist_u) + 1))
        scheme = stiffly_stable(order)
        t_new = self.t + dt

        def stage(idx):
            return _StageScope(self, STAGES[idx])

        # Stage 1: modal -> quadrature.
        with stage(0):
            u = self._backward_c(self.u_hat)
            v = self._backward_c(self.v_hat)
            w = self._backward_c(self.w_hat)

        # Stage 2: non-linear terms via the distributed transpose.
        with stage(1):
            ux, uy = self._gradient_c(self.u_hat)
            vx, vy = self._gradient_c(self.v_hat)
            wx, wy = self._gradient_c(self.w_hat)
            ik = (1j * self.k)[:, None, None]
            uz, vz, wz = ik * u, ik * v, ik * w
            fields = [u, v, w, ux, uy, uz, vx, vy, vz, wx, wy, wz]
            npts = space.nelem * space.nq
            if self.fused_transpose:
                # Fast path: all 12 forward fields ride ONE Alltoall
                # and the 3 products ONE Alltoall back, via the z-major
                # workspace pipeline.  Data, compute charges and wire
                # bytes are identical to the per-field loop below —
                # only the latency terms (and message count) shrink.
                phys = self._pipeline.to_physical(
                    comm, [f.reshape(self.nlocal, npts) for f in fields],
                    self.nz,
                )  # 12 x (nz, mypts)
            else:
                # Per-field differential oracle: one transpose + one
                # transform per field (the seed's 15-Alltoall layout).
                phys = []
                for f in fields:
                    # (npoints, my_modes) -> transpose -> physical z.
                    pts = transpose_to_points(
                        comm, f.reshape(self.nlocal, npts).T
                    )
                    phys.append(ifft_z(pts, self.nz))  # (mypts, nz)
            pu, pv, pw, pux, puy, puz, pvx, pvy, pvz, pwx, pwy, pwz = phys
            nu_p = -(pu * pux + pv * puy + pw * puz)
            nv_p = -(pu * pvx + pv * pvy + pw * pvz)
            nw_p = -(pu * pwx + pv * pwy + pw * pwz)
            if self.fused_transpose:
                back = self._pipeline.to_modal(
                    comm, (nu_p, nv_p, nw_p), npts, self.nz
                )  # (3, my_modes, npoints)
                n_modes = back.reshape(
                    3, self.nlocal, space.nelem, space.nq
                )
            else:
                n_modes = []
                for f in (nu_p, nv_p, nw_p):
                    back = transpose_to_modes(comm, fft_z(f), npts)
                    n_modes.append(
                        back.T.reshape(self.nlocal, space.nelem, space.nq)
                    )
            nu_t, nv_t, nw_t = n_modes
            omega_z = vx - uy
            omega_x = wy - vz
            omega_y = uz - wx

        # Stage 3: weight-averaging.
        with stage(2):
            hist_u = [(u, v, w)] + list(self._hist_u)
            hist_n = [(nu_t, nv_t, nw_t)] + list(self._hist_n)
            uhx = sum(a * h[0] for a, h in zip(scheme.alpha, hist_u))
            uhy = sum(a * h[1] for a, h in zip(scheme.alpha, hist_u))
            uhz = sum(a * h[2] for a, h in zip(scheme.alpha, hist_u))
            uhx = uhx + dt * sum(b * h[0] for b, h in zip(scheme.beta, hist_n))
            uhy = uhy + dt * sum(b * h[1] for b, h in zip(scheme.beta, hist_n))
            uhz = uhz + dt * sum(b * h[2] for b, h in zip(scheme.beta, hist_n))
            hist_w = [(omega_x, omega_y, omega_z)] + list(self._hist_w)
            wx_e = sum(b * h[0] for b, h in zip(scheme.beta, hist_w))
            wy_e = sum(b * h[1] for b, h in zip(scheme.beta, hist_w))
            wz_e = sum(b * h[2] for b, h in zip(scheme.beta, hist_w))

        # Stage 4: pressure RHS (all local modes at once) + per-mode
        # rotational pressure BC.
        with stage(3):
            ik = (1j * self.k)[:, None]
            rhs_p = self._grad_load_c(uhx, uhy) - ik * self._load_c(uhz)
            rhs_p /= dt
            for i in range(self.nlocal):
                self._add_pressure_bc(
                    rhs_p[i], i, wx_e[i], wy_e[i], wz_e[i], scheme.gamma0, t_new
                )

        # Stage 5: per-mode Poisson solves — real and imaginary parts
        # share the factorisation, so the blocked path sweeps them as one
        # (2, ndof) RHS block per mode.
        with stage(4):
            solve_p = (
                self._solve_pressure_block
                if self.blocked_solves
                else self._solve_pressure
            )
            for i in range(self.nlocal):
                self.p_hat[i] = solve_p(i, rhs_p[i])

        # Stage 6: viscous RHS, all local modes at once.
        with stage(5):
            scale = 1.0 / (self.nu * dt)
            px, py = self._gradient_c(self.p_hat)
            pz = (1j * self.k)[:, None, None] * self._backward_c(self.p_hat)
            rhs_u = self._load_c(uhx - dt * px) * scale
            rhs_v = self._load_c(uhy - dt * py) * scale
            rhs_w = self._load_c(uhz - dt * pz) * scale

        # Stage 7: per-mode Helmholtz solves, three components.  The
        # blocked path stacks all six real solves per mode (3 components
        # x re/im, all sharing the mode's factorisation) into one
        # (6, ndof) block.
        with stage(6):
            if self.blocked_solves:
                for i in range(self.nlocal):
                    self._solve_viscous_block(
                        i, rhs_u[i], rhs_v[i], rhs_w[i], scheme.gamma0, t_new
                    )
            else:
                for i in range(self.nlocal):
                    solver = self._viscous_solver(i, scheme.gamma0)
                    for hat, rhs, comp in (
                        (self.u_hat, rhs_u, 0),
                        (self.v_hat, rhs_v, 1),
                        (self.w_hat, rhs_w, 2),
                    ):
                        bc = self._bc_values(comp, i, t_new)
                        re = solver.solve_rhs(
                            rhs[i].real, None if bc is None else bc.real
                        )
                        im = solver.solve_rhs(
                            rhs[i].imag, None if bc is None else bc.imag
                        )
                        hat[i] = re + 1j * im

        self._hist_u.appendleft((u, v, w))
        self._hist_n.appendleft((nu_t, nv_t, nw_t))
        self._hist_w.appendleft((omega_x, omega_y, omega_z))
        self.t = t_new
        self.step_count += 1

    def _solve_pressure(self, i: int, rhs: np.ndarray) -> np.ndarray:
        solver = self.p_solvers[i]
        if isinstance(solver, CondensedOperator):
            return solver.solve(rhs.real, np.zeros(1)) + 1j * solver.solve(
                rhs.imag, np.zeros(1)
            )
        zero = solver.bc_values(None)
        return solver.solve_rhs(rhs.real, zero) + 1j * solver.solve_rhs(
            rhs.imag, zero
        )

    def _solve_pressure_block(self, i: int, rhs: np.ndarray) -> np.ndarray:
        """Real + imaginary parts as one (2, ndof) multi-RHS sweep."""
        solver = self.p_solvers[i]
        block = np.stack([rhs.real, rhs.imag])
        if isinstance(solver, CondensedOperator):
            out = solver.solve(block, np.zeros(1))
        else:
            out = solver.solve_rhs(block, solver.bc_values(None))
        return out[0] + 1j * out[1]

    def _solve_viscous_block(
        self,
        i: int,
        rhs_u: np.ndarray,
        rhs_v: np.ndarray,
        rhs_w: np.ndarray,
        gamma0: float,
        t_new: float,
    ) -> None:
        """All six real Helmholtz solves of one mode (u, v, w x re/im)
        as a single (6, ndof) multi-RHS sweep through the shared
        factorisation."""
        solver = self._viscous_solver(i, gamma0)
        block = np.stack(
            [
                rhs_u.real,
                rhs_u.imag,
                rhs_v.real,
                rhs_v.imag,
                rhs_w.real,
                rhs_w.imag,
            ]
        )
        bcs = [self._bc_values(comp, i, t_new) for comp in range(3)]
        if bcs[0] is None:
            dv = None
        else:
            dv = np.stack(
                [
                    bcs[0].real,
                    bcs[0].imag,
                    bcs[1].real,
                    bcs[1].imag,
                    bcs[2].real,
                    bcs[2].imag,
                ]
            )
        out = solver.solve_rhs(block, dv)
        self.u_hat[i] = out[0] + 1j * out[1]
        self.v_hat[i] = out[2] + 1j * out[3]
        self.w_hat[i] = out[4] + 1j * out[5]

    # Complex-valued mode arithmetic: the real-only d-BLAS kernels cannot
    # hold it, so the matvecs stay raw numpy and the complex flop
    # convention is charged explicitly via _charge_zgemv below.
    # repro: waive[raw-numpy] complex mode arithmetic, charged via _charge_zgemv
    def _add_pressure_bc(
        self, rhs, mode_i, wx_e, wy_e, wz_e, gamma0, t_new
    ) -> None:
        """Per-mode rotational pressure BC:
        oint phi [-nu (n x curl omega)_z-mode - gamma0 (u_b . n)/dt]."""

        def _charge_zgemv(mat: np.ndarray) -> None:
            # Real (m, n) matrix times complex vector: 4 flops/element
            # (2 mul + 2 add), matrix traffic + complex vector in/out.
            m, n = mat.shape
            charge(4.0 * m * n, 8.0 * m * n + 16.0 * (m + n), "zgemv")

        space, dm = self.space, self.space.dofmap
        m = self.my_modes[mode_i]
        kk = 1j * self.k[mode_i]
        for tag, quads in self._edge_quads.items():
            fu, fv, _fw = self.velocity_bcs[tag]
            for eq in quads:
                ei = eq.elem
                exp = dm.expansion(ei)
                gf = space.geom[ei]
                minv = self._local_minv[ei]
                # Local modal projections of the vorticity components.
                for _m in (exp.phi, minv, exp.phi, minv, exp.phi, minv):
                    _charge_zgemv(_m)
                wz_loc = minv @ (exp.phi @ (gf.jw * wz_e[ei]))
                wx_loc = minv @ (exp.phi @ (gf.jw * wx_e[ei]))
                wy_loc = minv @ (exp.phi @ (gf.jw * wy_e[ei]))
                for _m in (eq.dphi_x, eq.dphi_y, eq.phi, eq.phi):
                    _charge_zgemv(_m)
                dwz_dx = eq.dphi_x.T @ wz_loc
                dwz_dy = eq.dphi_y.T @ wz_loc
                wx_edge = eq.phi.T @ wx_loc
                wy_edge = eq.phi.T @ wy_loc
                # n . curl(omega), z-Fourier form:
                #   nx (d omega_z/dy - ik omega_y) + ny (ik omega_x - d omega_z/dx)
                n_curl = eq.nx * (dwz_dy - kk * wy_edge) + eq.ny * (
                    kk * wx_edge - dwz_dx
                )
                ubn = np.array(
                    [
                        complex(fu(m, x, y, t_new)) * nx
                        + complex(fv(m, x, y, t_new)) * ny
                        for x, y, nx, ny in zip(eq.x, eq.y, eq.nx, eq.ny)
                    ]
                )
                term = -self.nu * n_curl - (gamma0 / self.dt) * ubn
                _charge_zgemv(eq.phi)
                local = eq.phi @ (eq.jw * term)
                signs = dm.elem_signs[ei]
                np.add.at(rhs, dm.elem_dofs[ei], signs * local)

    def run(
        self,
        nsteps: int,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        """Advance ``nsteps`` steps, optionally checkpointing.

        With ``checkpoint_every=k``, each rank writes its state to
        ``checkpoint_dir`` whenever ``step_count`` is a multiple of k
        (see :class:`repro.io.NekTarFCheckpoint`).  Checkpoint I/O is
        host-side and not priced on the virtual clocks.
        """
        if (checkpoint_every is None) != (checkpoint_dir is None):
            raise ValueError(
                "checkpoint_every and checkpoint_dir must be given together"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        for _ in range(nsteps):
            self.step()
            if checkpoint_every and self.step_count % checkpoint_every == 0:
                self.save_checkpoint(checkpoint_dir)

    def save_checkpoint(self, directory: str) -> None:
        """Write this rank's full stepping state (see NekTarFCheckpoint)."""
        from ..io.writers import NekTarFCheckpoint

        NekTarFCheckpoint.save(directory, self)

    def restore_checkpoint(self, directory: str, step: int | None = None) -> int:
        """Restore from the newest complete checkpoint set (or ``step``);
        returns the step restored.  Continuation is bit-for-bit on
        fault-free runs: coefficients and scheme histories both round-trip."""
        from ..io.writers import NekTarFCheckpoint

        return NekTarFCheckpoint.load(directory, self, step)

    # -- diagnostics -----------------------------------------------------------------

    def velocity_physical(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather all modes (on every rank) and return physical-space
        velocity arrays of shape (nelem, nq, nz)."""
        out = []
        for hat in (self.u_hat, self.v_hat, self.w_hat):
            vals = self._backward_c(hat)  # (nloc, nelem, nq)
            gathered = self.comm.allgather(vals)
            modes = np.concatenate(gathered, axis=0)  # (nmodes, nelem, nq)
            phys = ifft_z(np.moveaxis(modes, 0, -1), self.nz)
            out.append(phys)
        return tuple(out)

    def kinetic_energy(self) -> float:
        u, v, w = self.velocity_physical()
        e = 0.0
        for iz in range(self.nz):
            e += 0.5 * self.space.integrate(
                u[:, :, iz] ** 2 + v[:, :, iz] ** 2 + w[:, :, iz] ** 2
            )
        return e * (self.lz / self.nz)

    def mode_energies(self) -> np.ndarray:
        """Spanwise kinetic-energy spectrum E_m (all modes, every rank).

        Parseval over the two-sided convention: the physical energy is
        E = sum_m E_m with E_0 = (Lz/2) int |u_0|^2 and
        E_m = Lz int |u_m|^2 for m >= 1.
        """
        local = np.zeros(len(self.all_k))
        for i, m in enumerate(self.my_modes):
            for hat in (self.u_hat, self.v_hat, self.w_hat):
                vals = self.space.backward(hat[i].real) + 1j * self.space.backward(
                    hat[i].imag
                )
                e2 = self.space.integrate(np.abs(vals) ** 2)
                local[m] += 0.5 * self.lz * e2 * (1.0 if m == 0 else 2.0)
        return np.asarray(self.comm.allreduce(local, op="sum"))

    def stage_percentages(self, kind: str = "cpu") -> dict[str, float]:
        timer = self.virtual if self.charge_compute else self.timer
        return timer.percentages(kind)


class _StageScope:
    """Times a stage on the host AND on the simulated machine.

    Host cpu/wall goes to ``solver.timer``.  If ``charge_compute`` is
    set, the stage's counted flops are priced on the cluster CPU model
    and charged to the rank's virtual clock; the stage's virtual
    cpu/wall deltas (including any communication inside the stage) are
    recorded in ``solver.virtual``.
    """

    def __init__(self, solver: NekTarF, name: str):
        self.solver = solver
        self.name = name

    def __enter__(self):
        self._host = self.solver.timer.stage(self.name).__enter__()
        self._ops = OpCounter().__enter__()
        self._w0 = self.solver.comm.wall
        self._c0 = self.solver.comm.cpu_time
        # Thread-local stage tag: lets stage-attributing observers (the
        # critical-path recorder) name events by NekTar stage even on
        # untraced runs.  Charge-neutral.
        obs.push_stage(self.name)
        return self

    def __exit__(self, *exc):
        self._ops.__exit__(*exc)
        self._host.__exit__(*exc)
        if self.solver.charge_compute:
            self.solver.comm.compute_flops(self._ops.flops)
        obs.pop_stage()
        cpu = self.solver.comm.cpu_time - self._c0
        wall = self.solver.comm.wall - self._w0
        self.solver.virtual.add(self.name, cpu=cpu, wall=wall)
        tracer = obs.current()
        if tracer is not None:
            # Emitted after compute_flops so the span covers the priced
            # compute; timestamps are the rank's virtual wall clock.
            tracer.emit_span(
                self.name,
                "stage",
                self._w0,
                self.solver.comm.wall,
                {
                    "cpu": cpu,
                    "wall": wall,
                    "flops": self._ops.flops,
                    "bytes": self._ops.bytes,
                },
            )
