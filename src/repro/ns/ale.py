"""NekTar-ALE analogue: Navier-Stokes on moving meshes (2-D).

Section 4.2.2: the arbitrary Lagrangian-Eulerian version adds, to the
standard splitting timestep, (i) "a term ... in the non-linear step,
associated with the updating of the positions of the vertices of each
element" — the convective velocity becomes (u - w_mesh) — and (ii) "an
extra Helmholtz solve, associated with the calculation of the velocity
of the moving mesh", charged to step 7.  Instead of direct solvers, "a
diagonally preconditioned conjugate gradient iterative solver is
predominantly used": the operators change with the geometry every step,
so there is nothing to factor once.

Two mesh-motion modes:

* ``motion=callable`` — prescribed analytic vertex motion
  (x0, y0, t) -> (x, y); used by the verification tests (free-stream
  preservation, translating-frame accuracy).
* ``motion="solve"`` — the paper's mode: mesh velocity solved from a
  Laplace problem with the body's velocity on the "wall" boundary and
  zero on the outer boundaries, then vertices advected.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..assembly.boundary import build_edge_quadrature
from ..assembly.condensation import CondensedOperator
from ..assembly.global_system import project_dirichlet
from ..assembly.operators import elemental_mass
from ..assembly.space import FunctionSpace
from ..linalg import blas
from ..solvers.helmholtz import HelmholtzCG
from ..util.timing import StageTimer
from .splitting import stiffly_stable
from .stages import STAGES

__all__ = ["ALENavierStokes2D"]

BCFn = Callable[[float, float, float], float]
MotionFn = Callable[[float, float, float], tuple[float, float]]


class ALENavierStokes2D:
    """Incompressible NS on a moving mesh, PCG solvers, 7-stage timestep."""

    def __init__(
        self,
        mesh,
        order: int,
        nu: float,
        dt: float,
        velocity_bcs: dict[str, tuple[BCFn, BCFn]],
        pressure_dirichlet: tuple[str, ...] = (),
        motion: MotionFn | str | None = None,
        body_velocity: tuple[BCFn, BCFn] | None = None,
        wall_tag: str = "wall",
        outer_tags: tuple[str, ...] = (),
        time_order: int = 2,
        cg_tol: float = 1e-9,
        ale_convection: bool = True,
    ):
        if nu <= 0 or dt <= 0:
            raise ValueError("nu and dt must be positive")
        self.mesh = mesh
        self.order = order
        self.nu = float(nu)
        self.dt = float(dt)
        self.scheme = stiffly_stable(time_order)
        self.velocity_bcs = dict(velocity_bcs)
        self.vel_tags = tuple(sorted(velocity_bcs))
        self.pressure_dirichlet = tuple(pressure_dirichlet)
        self.cg_tol = cg_tol
        self.ale_convection = ale_convection
        self.motion = motion
        self.body_velocity = body_velocity
        self.wall_tag = wall_tag
        self.outer_tags = tuple(outer_tags)
        if motion == "solve" and body_velocity is None:
            raise ValueError("motion='solve' needs body_velocity")

        self.vertices0 = mesh.vertices.copy()
        self.t = 0.0
        self.step_count = 0
        self.timer = StageTimer()
        self.cg_iterations: dict[str, int] = {"pressure": 0, "viscous": 0, "mesh": 0}
        self._rebuild_space()
        self.u_hat = np.zeros(self.space.ndof)
        self.v_hat = np.zeros(self.space.ndof)
        self.p_hat = np.zeros(self.space.ndof)
        self._hist_u: deque = deque(maxlen=self.scheme.order)
        self._hist_n: deque = deque(maxlen=self.scheme.order)
        self._hist_w: deque = deque(maxlen=self.scheme.order)

    # -- geometry ---------------------------------------------------------------

    def _rebuild_space(self) -> None:
        """Recompute all geometry-dependent objects on the current mesh."""
        self.space = FunctionSpace(self.mesh, self.order)
        lam = self.scheme.gamma0 / (self.nu * self.dt)
        self.vel_solver = HelmholtzCG(self.space, lam, self.vel_tags, tol=self.cg_tol)
        if self.pressure_dirichlet:
            self.p_solver = HelmholtzCG(
                self.space, 0.0, self.pressure_dirichlet, tol=self.cg_tol
            )
            self._p_pin = None
        else:
            # Pin one dof: assemble the Laplacian once per geometry.
            mats = self.space.elemental_matrices("laplacian")
            self._p_pin = int(self.space.dofmap.boundary_dofs()[0])
            self.p_op = CondensedOperator(self.space, mats, [self._p_pin])
        if self.motion == "solve":
            tags = (self.wall_tag,) + self.outer_tags
            self.mesh_solver = HelmholtzCG(self.space, 0.0, tags, tol=self.cg_tol)
        # Pressure-BC machinery on the fresh geometry.
        self._edge_quads = {
            tag: build_edge_quadrature(self.space, self.mesh.boundary_sides(tag))
            for tag in self.vel_tags
        }
        self._local_minv: dict[int, np.ndarray] = {}
        for quads in self._edge_quads.values():
            for eq in quads:
                if eq.elem not in self._local_minv:
                    m = elemental_mass(
                        self.space.dofmap.expansion(eq.elem), self.space.geom[eq.elem]
                    )
                    self._local_minv[eq.elem] = np.linalg.inv(m)

    def set_initial(self, u_fn: BCFn, v_fn: BCFn) -> None:
        xq, yq = self.space.coords()
        uf = np.vectorize(lambda x, y: float(u_fn(x, y, 0.0)), otypes=[np.float64])
        vf = np.vectorize(lambda x, y: float(v_fn(x, y, 0.0)), otypes=[np.float64])
        self.u_hat = self.space.forward(uf(xq, yq))
        self.v_hat = self.space.forward(vf(xq, yq))
        self._hist_u.clear()
        self._hist_n.clear()
        self._hist_w.clear()

    # -- mesh velocity -----------------------------------------------------------

    def _mesh_velocity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mesh velocity at vertices and quadrature points at time t.

        Returns (vertex_velocities (nv, 2), wx_quad, wy_quad).
        """
        if self.motion is None:
            nv = self.mesh.nvertices
            zq = np.zeros((self.space.nelem, self.space.nq))
            return np.zeros((nv, 2)), zq, zq
        if callable(self.motion):
            h = 1e-6
            vel = np.empty((self.mesh.nvertices, 2))
            for i, (x0, y0) in enumerate(self.vertices0):
                xp = np.array(self.motion(x0, y0, self.t + h))
                xm = np.array(self.motion(x0, y0, self.t - h))
                vel[i] = (xp - xm) / (2 * h)
            # Quadrature-point mesh velocity: interpolate the vertex field
            # through the space (mesh velocity is bilinear per element).
            wx = self._vertex_field_to_quad(vel[:, 0])
            wy = self._vertex_field_to_quad(vel[:, 1])
            return vel, wx, wy
        # motion == "solve": Laplace solve with body velocity on the wall.
        bu, bv = self.body_velocity
        tags = (self.wall_tag,) + self.outer_tags
        wx_hat = self._solve_mesh_component(0, tags)
        wy_hat = self._solve_mesh_component(1, tags)
        vel = np.stack(
            [
                self.space.eval_at_vertices(wx_hat),
                self.space.eval_at_vertices(wy_hat),
            ],
            axis=1,
        )
        return vel, self.space.backward(wx_hat), self.space.backward(wy_hat)

    def _solve_mesh_component(self, comp: int, tags) -> np.ndarray:
        bfn = self.body_velocity[comp]
        values: dict[int, float] = {}
        dofs_w, vals_w = project_dirichlet(
            self.space, (self.wall_tag,), lambda x, y: float(bfn(x, y, self.t))
        )
        values.update(zip(dofs_w.tolist(), vals_w.tolist()))
        for tag in self.outer_tags:
            dofs_o, vals_o = project_dirichlet(self.space, (tag,), lambda x, y: 0.0)
            values.update(zip(dofs_o.tolist(), vals_o.tolist()))
        target = self.mesh_solver.dirichlet_dofs
        bc = np.array([values[int(d)] for d in target])
        zero = np.zeros((self.space.nelem, self.space.nq))
        w_hat = self.mesh_solver.solve_rhs(self.space.load_vector(zero), bc)
        self.cg_iterations["mesh"] += self.mesh_solver.last_iterations
        return w_hat

    def _vertex_field_to_quad(self, vvals: np.ndarray) -> np.ndarray:
        """Evaluate the vertex-interpolant of a vertex field at the
        quadrature points (uses only the vertex modes)."""
        u_hat = np.zeros(self.space.ndof)
        u_hat[: self.mesh.nvertices] = vvals
        return self.space.backward(u_hat)

    def _move_mesh(self, vertex_vel: np.ndarray) -> None:
        if self.motion is None:
            return
        if callable(self.motion):
            new = np.array(
                [self.motion(x0, y0, self.t + self.dt) for x0, y0 in self.vertices0]
            )
        else:
            new = self.mesh.vertices + self.dt * vertex_vel
        # Field coefficients ride along with the mesh (ALE description).
        self.mesh.vertices[:] = new
        self._rebuild_space()

    # -- timestep --------------------------------------------------------------------

    def step(self) -> None:
        dt = self.dt
        order = max(1, min(self.scheme.order, len(self._hist_u) + 1))
        scheme = stiffly_stable(order)
        t_new = self.t + dt

        # ALE-specific work first: advance the mesh to t^{n+1} and form
        # the discrete mesh velocity of the (grid-riding) quadrature
        # points.  The paper charges the vertex updates to step 2 and the
        # mesh-velocity Helmholtz solve to step 7.
        if self.motion is not None:
            old_xq, old_yq = self.space.coords()
            with self.timer.stage(STAGES[6]):
                vertex_vel, _, _ = self._mesh_velocity()
            with self.timer.stage(STAGES[1]):
                self._move_mesh(vertex_vel)
                new_xq, new_yq = self.space.coords()
                wx = (new_xq - old_xq) / dt
                wy = (new_yq - old_yq) / dt
        else:
            wx = wy = 0.0
        space = self.space

        with self.timer.stage(STAGES[0]):
            u_vals = space.backward(self.u_hat)
            v_vals = space.backward(self.v_hat)

        with self.timer.stage(STAGES[1]):
            dudx, dudy = space.gradient(self.u_hat)
            dvdx, dvdy = space.gradient(self.v_hat)
            cu = u_vals - wx if self.ale_convection else u_vals
            cv = v_vals - wy if self.ale_convection else v_vals
            nu_term = -(cu * dudx + cv * dudy)
            nv_term = -(cu * dvdx + cv * dvdy)
            omega = dvdx - dudy

        with self.timer.stage(STAGES[2]):
            hist_u = [(u_vals, v_vals)] + list(self._hist_u)
            hist_n = [(nu_term, nv_term)] + list(self._hist_n)
            uhx = sum(a * h[0] for a, h in zip(scheme.alpha, hist_u))
            uhy = sum(a * h[1] for a, h in zip(scheme.alpha, hist_u))
            uhx = uhx + dt * sum(b * h[0] for b, h in zip(scheme.beta, hist_n))
            uhy = uhy + dt * sum(b * h[1] for b, h in zip(scheme.beta, hist_n))
            hist_w = [omega] + list(self._hist_w)
            w_extrap = sum(b * h for b, h in zip(scheme.beta, hist_w))

        with self.timer.stage(STAGES[3]):
            rhs_p = space.grad_load_vector(uhx, uhy)
            rhs_p /= dt
            self._add_pressure_bc(rhs_p, w_extrap, scheme.gamma0, t_new)

        with self.timer.stage(STAGES[4]):
            if self._p_pin is None:
                self.p_hat = self.p_solver.solve_rhs(
                    rhs_p, np.zeros(self.p_solver.dirichlet_dofs.size)
                )
                self.cg_iterations["pressure"] += self.p_solver.last_iterations
            else:
                self.p_hat = self.p_op.solve(rhs_p, np.zeros(1))

        with self.timer.stage(STAGES[5]):
            dpdx, dpdy = space.gradient(self.p_hat)
            scale = 1.0 / (self.nu * dt)
            rhs_u = space.load_vector(uhx - dt * dpdx) * scale
            rhs_v = space.load_vector(uhy - dt * dpdy) * scale

        with self.timer.stage(STAGES[6]):
            solver = self._viscous_solver(scheme.gamma0)
            self.u_hat = solver.solve_rhs(rhs_u, self._dirichlet_values(0, t_new))
            self.cg_iterations["viscous"] += solver.last_iterations
            self.v_hat = solver.solve_rhs(rhs_v, self._dirichlet_values(1, t_new))
            self.cg_iterations["viscous"] += solver.last_iterations

        self._hist_u.appendleft((u_vals, v_vals))
        self._hist_n.appendleft((nu_term, nv_term))
        self._hist_w.appendleft(omega)
        self.t = t_new
        self.step_count += 1

    def _viscous_solver(self, gamma0: float) -> HelmholtzCG:
        lam = gamma0 / (self.nu * self.dt)
        if abs(lam - self.vel_solver.lam) < 1e-12 * max(1.0, lam):
            return self.vel_solver
        return HelmholtzCG(self.space, lam, self.vel_tags, tol=self.cg_tol)

    def _dirichlet_values(self, comp: int, t: float) -> np.ndarray | None:
        if not self.vel_tags:
            return None
        values: dict[int, float] = {}
        for tag in self.vel_tags:
            fn = self.velocity_bcs[tag][comp]
            dofs, vals = project_dirichlet(
                self.space, (tag,), lambda x, y: fn(x, y, t)
            )
            values.update(zip(dofs.tolist(), vals.tolist()))
        target = self.vel_solver.dirichlet_dofs
        return np.array([values[int(d)] for d in target])

    def _add_pressure_bc(self, rhs_p, w_extrap, gamma0, t_new) -> None:
        space, dm = self.space, self.space.dofmap
        for tag, quads in self._edge_quads.items():
            fu, fv = self.velocity_bcs[tag]
            for eq in quads:
                ei = eq.elem
                exp = dm.expansion(ei)
                gf = space.geom[ei]
                tmp = np.empty(exp.phi.shape[0])
                blas.dgemv(1.0, exp.phi, gf.jw * w_extrap[ei], 0.0, tmp)
                w_loc = np.empty_like(tmp)
                blas.dgemv(1.0, self._local_minv[ei], tmp, 0.0, w_loc)
                dwdx = np.empty(eq.npts)
                dwdy = np.empty(eq.npts)
                blas.dgemv(1.0, eq.dphi_x, w_loc, 0.0, dwdx, trans=True)
                blas.dgemv(1.0, eq.dphi_y, w_loc, 0.0, dwdy, trans=True)
                n_curl = eq.nx * dwdy - eq.ny * dwdx
                ubn = np.array(
                    [
                        float(fu(x, y, t_new)) * nx + float(fv(x, y, t_new)) * ny
                        for x, y, nx, ny in zip(eq.x, eq.y, eq.nx, eq.ny)
                    ]
                )
                term = -self.nu * n_curl - (gamma0 / self.dt) * ubn
                dm.scatter_add(ei, eq.load(term), rhs_p)

    def run(self, nsteps: int) -> None:
        for _ in range(nsteps):
            self.step()

    # -- diagnostics -------------------------------------------------------------

    def velocity(self) -> tuple[np.ndarray, np.ndarray]:
        return self.space.backward(self.u_hat), self.space.backward(self.v_hat)

    def kinetic_energy(self) -> float:
        u, v = self.velocity()
        return 0.5 * self.space.integrate(u * u + v * v)

    def stage_percentages(self, kind: str = "cpu") -> dict[str, float]:
        return self.timer.percentages(kind)
