"""Aerodynamic force diagnostics: traction integrals on tagged walls.

Wake DNS is run for its force signals (the paper's bluff-body and
flapping-wing cases are classic lift/drag studies).  The traction of an
incompressible Newtonian fluid on a boundary with outward normal n is

    t = -p n + nu (grad u + grad u^T) n

(density-normalised), where n is the *body's* outward normal (pointing
into the fluid) — the opposite of the edge quadrature's fluid-outward
normal, so a stagnation front produces positive drag.  The body force
is the traction integral over the wall.  Evaluation uses the element
modal coefficients directly on the edge quadrature of
:mod:`repro.assembly.boundary` — no interpolation or mass solves
needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..assembly.boundary import EdgeQuadrature, build_edge_quadrature
from ..assembly.space import FunctionSpace
from ..linalg import blas

__all__ = ["BodyForces", "traction", "body_forces", "ForceRecorder"]


@dataclass(frozen=True)
class BodyForces:
    """Integrated force (drag = x, lift = y) and its two contributions."""

    drag: float
    lift: float
    pressure_drag: float
    pressure_lift: float
    viscous_drag: float
    viscous_lift: float


def traction(
    space: FunctionSpace,
    eq: EdgeQuadrature,
    u_hat: np.ndarray,
    v_hat: np.ndarray,
    p_hat: np.ndarray,
    nu: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pointwise traction on one edge: (tx_p, ty_p, tx_v, ty_v)."""
    dm = space.dofmap
    ei = eq.elem
    u_loc = dm.gather(ei, u_hat)
    v_loc = dm.gather(ei, v_hat)
    p_loc = dm.gather(ei, p_hat)
    p, dudx, dudy, dvdx, dvdy = (np.empty(eq.npts) for _ in range(5))
    blas.dgemv(1.0, eq.phi, p_loc, 0.0, p, trans=True)
    blas.dgemv(1.0, eq.dphi_x, u_loc, 0.0, dudx, trans=True)
    blas.dgemv(1.0, eq.dphi_y, u_loc, 0.0, dudy, trans=True)
    blas.dgemv(1.0, eq.dphi_x, v_loc, 0.0, dvdx, trans=True)
    blas.dgemv(1.0, eq.dphi_y, v_loc, 0.0, dvdy, trans=True)
    # Body-outward normal = -(fluid-outward normal of the edge rule).
    nx, ny = -eq.nx, -eq.ny
    tx_p = -p * nx
    ty_p = -p * ny
    tx_v = nu * (2.0 * dudx * nx + (dudy + dvdx) * ny)
    ty_v = nu * ((dudy + dvdx) * nx + 2.0 * dvdy * ny)
    return tx_p, ty_p, tx_v, ty_v


def body_forces(
    space: FunctionSpace,
    u_hat: np.ndarray,
    v_hat: np.ndarray,
    p_hat: np.ndarray,
    nu: float,
    tag: str = "wall",
    edge_quads: list[EdgeQuadrature] | None = None,
) -> BodyForces:
    """Integrate the traction over the tagged boundary."""
    if edge_quads is None:
        edge_quads = build_edge_quadrature(space, space.mesh.boundary_sides(tag))
    pd = pl = vd = vl = 0.0
    for eq in edge_quads:
        tx_p, ty_p, tx_v, ty_v = traction(space, eq, u_hat, v_hat, p_hat, nu)
        pd += eq.integrate(tx_p)
        pl += eq.integrate(ty_p)
        vd += eq.integrate(tx_v)
        vl += eq.integrate(ty_v)
    return BodyForces(
        drag=pd + vd,
        lift=pl + vl,
        pressure_drag=pd,
        pressure_lift=pl,
        viscous_drag=vd,
        viscous_lift=vl,
    )


class ForceRecorder:
    """Per-step force history of an NS solver (vortex-shedding signals).

    Works with any solver exposing ``space``, ``u_hat``, ``v_hat``,
    ``p_hat``, ``nu`` and ``t`` (both the serial and ALE solvers do).
    The edge quadrature is cached, so recording is cheap per step —
    rebuild with ``refresh_geometry()`` after ALE mesh motion.
    """

    def __init__(self, solver, tag: str = "wall"):
        self.solver = solver
        self.tag = tag
        self.times: list[float] = []
        self.history: list[BodyForces] = []
        self.refresh_geometry()

    def refresh_geometry(self) -> None:
        self._quads = build_edge_quadrature(
            self.solver.space, self.solver.space.mesh.boundary_sides(self.tag)
        )

    def record(self) -> BodyForces:
        s = self.solver
        f = body_forces(
            s.space, s.u_hat, s.v_hat, s.p_hat, s.nu, self.tag, self._quads
        )
        self.times.append(s.t)
        self.history.append(f)
        return f

    def drag_series(self) -> tuple[np.ndarray, np.ndarray]:
        return np.array(self.times), np.array([f.drag for f in self.history])

    def lift_series(self) -> tuple[np.ndarray, np.ndarray]:
        return np.array(self.times), np.array([f.lift for f in self.history])

    def strouhal(self, diameter: float = 1.0, velocity: float = 1.0) -> float | None:
        """Shedding frequency from lift-signal zero crossings, as
        St = f D / U; None until a full period has been seen."""
        t, lift = self.lift_series()
        if t.size < 8:
            return None
        sign = np.sign(lift - lift.mean())
        crossings = t[1:][np.diff(sign) != 0]
        if crossings.size < 3:
            return None
        period = 2.0 * float(np.mean(np.diff(crossings)))
        return diameter / (velocity * period)
