"""Navier-Stokes solvers: serial 2-D, Fourier-parallel (NekTar-F) and
ALE moving-mesh (NekTar-ALE) analogues."""

from .ale import ALENavierStokes2D
from .exact import Kovasznay, TaylorVortex
from .forces import BodyForces, ForceRecorder, body_forces
from .nektar2d import NavierStokes2D
from .nektar_f import NekTarF
from .splitting import SplittingScheme, stiffly_stable
from .stages import ALE_GROUPS, STAGE_DESCRIPTIONS, STAGES, group_ale

__all__ = [
    "NavierStokes2D",
    "NekTarF",
    "ALENavierStokes2D",
    "BodyForces",
    "ForceRecorder",
    "body_forces",
    "SplittingScheme",
    "stiffly_stable",
    "STAGES",
    "STAGE_DESCRIPTIONS",
    "ALE_GROUPS",
    "group_ale",
    "Kovasznay",
    "TaylorVortex",
]
