"""Serial 2-D incompressible Navier-Stokes solver (the NekTar analogue).

Implements the paper's Section 4 algorithm: spectral/hp element
discretisation in space, stiffly-stable splitting in time, with each
timestep split into the seven instrumented stages of Figure 12:

1. transform modal -> quadrature space,
2. evaluate the non-linear terms in quadrature space,
3. weight-average non-linear terms with previous time-steps,
4. set up the pressure-Poisson right-hand side,
5. direct (banded LAPACK) Poisson solve,
6. set up the viscous Helmholtz right-hand side,
7. direct Helmholtz solves for the velocity components.

Each stage is timed (CPU + wall) and op-counted, so a run yields both
the Figure 12 percentage breakdown and the flop/byte totals that the
machine models price into Table 1.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..assembly.boundary import build_edge_quadrature
from ..assembly.condensation import CondensedOperator
from ..assembly.global_system import project_dirichlet
from ..assembly.operators import elemental_mass
from ..assembly.space import FunctionSpace
from ..linalg import blas
from ..linalg.counters import OpCounter, charge
from ..obs import tracer as obs
from ..solvers.helmholtz import HelmholtzDirect
from ..util.timing import StageTimer
from .splitting import stiffly_stable
from .stages import STAGES

__all__ = ["NavierStokes2D"]

BCFn = Callable[[float, float, float], float]  # (x, y, t) -> value


class NavierStokes2D:
    """Incompressible NS on a FunctionSpace with the 7-stage timestep.

    Parameters
    ----------
    space:
        Velocity/pressure function space (equal order, P_N - P_N).
    nu:
        Kinematic viscosity.
    dt:
        Timestep.
    velocity_bcs:
        tag -> (u_fn, v_fn) Dirichlet velocity parts; every untagged
        boundary side gets the natural (zero-flux Neumann) condition the
        paper uses at the outflow and the domain sides.
    pressure_dirichlet:
        Tags where p = 0 is imposed (the outflow).  If empty, the
        pressure is pinned at one dof (enclosed-flow case).
    time_order:
        Order of the stiffly-stable scheme (1-3; the paper uses 2).
    """

    def __init__(
        self,
        space: FunctionSpace,
        nu: float,
        dt: float,
        velocity_bcs: dict[str, tuple[BCFn, BCFn]],
        pressure_dirichlet: tuple[str, ...] = (),
        time_order: int = 2,
        force: tuple[BCFn, BCFn] | None = None,
    ):
        if nu <= 0.0 or dt <= 0.0:
            raise ValueError("nu and dt must be positive")
        self.force = force
        self.space = space
        self.nu = float(nu)
        self.dt = float(dt)
        self.scheme = stiffly_stable(time_order)
        self.velocity_bcs = dict(velocity_bcs)
        self.vel_tags = tuple(sorted(self.velocity_bcs))

        lam = self.scheme.gamma0 / (self.nu * self.dt)
        self.vel_solver = HelmholtzDirect(space, lam, self.vel_tags)
        if pressure_dirichlet:
            self.p_solver = HelmholtzDirect(space, 0.0, tuple(pressure_dirichlet))
            self._p_pin = None
        else:
            mats = space.elemental_matrices("laplacian")
            pin = int(space.dofmap.boundary_dofs()[0])
            self._p_pin = pin
            self.p_op = CondensedOperator(space, mats, [pin])

        # High-order pressure BC machinery: edge quadrature on the
        # velocity-Dirichlet boundary plus local mass inverses for the
        # per-element vorticity projection.
        self._edge_quads: dict[str, list] = {
            tag: build_edge_quadrature(space, space.mesh.boundary_sides(tag))
            for tag in self.vel_tags
        }
        self._local_minv: dict[int, np.ndarray] = {}
        for quads in self._edge_quads.values():
            for eq in quads:
                ei = eq.elem
                if ei not in self._local_minv:
                    m = elemental_mass(space.dofmap.expansion(ei), space.geom[ei])
                    self._local_minv[ei] = np.linalg.inv(m)

        self.t = 0.0
        self.step_count = 0
        self.u_hat = np.zeros(space.ndof)
        self.v_hat = np.zeros(space.ndof)
        self.p_hat = np.zeros(space.ndof)
        # Histories, newest first: velocity values, nonlinear terms and
        # vorticity (for the rotational pressure boundary condition).
        self._hist_u: deque = deque(maxlen=self.scheme.order)
        self._hist_n: deque = deque(maxlen=self.scheme.order)
        self._hist_w: deque = deque(maxlen=self.scheme.order)
        self.timer = StageTimer()
        self.stage_ops: dict[str, OpCounter] = {s: OpCounter() for s in STAGES}

    # -- setup -----------------------------------------------------------------

    def set_initial(self, u_fn: BCFn, v_fn: BCFn) -> None:
        """Project the initial velocity (functions of x, y, t=0)."""
        xq, yq = self.space.coords()
        self.u_hat = self.space.forward(u_fn(xq, yq, 0.0) * np.ones_like(xq))
        self.v_hat = self.space.forward(v_fn(xq, yq, 0.0) * np.ones_like(xq))
        self._hist_u.clear()
        self._hist_n.clear()
        self._hist_w.clear()

    def _dirichlet_values(self, comp: int, t: float) -> np.ndarray | None:
        """Velocity Dirichlet coefficients at time t, merged across tags."""
        if not self.vel_tags:
            return None
        values: dict[int, float] = {}
        for tag in self.vel_tags:
            fn = self.velocity_bcs[tag][comp]
            dofs, vals = project_dirichlet(
                self.space, (tag,), lambda x, y: fn(x, y, t)
            )
            values.update(zip(dofs.tolist(), vals.tolist()))
        target = self.vel_solver.dirichlet_dofs
        return np.array([values[int(d)] for d in target])

    # -- timestep ----------------------------------------------------------------

    def step(self) -> None:
        """Advance one timestep through the seven stages."""
        space, dt = self.space, self.dt
        # Startup ramp: use the highest order the history supports.
        order = max(1, min(self.scheme.order, len(self._hist_u) + 1))
        scheme = stiffly_stable(order) if order != self.scheme.order else self.scheme
        lam_eff = scheme.gamma0 / (self.nu * dt)

        # Stage 1: modal -> quadrature transform.
        with self.timer.stage(STAGES[0]), self.stage_ops[STAGES[0]], obs.span(STAGES[0], "stage"):
            u_vals = space.backward(self.u_hat)
            v_vals = space.backward(self.v_hat)

        # Stage 2: non-linear terms N = -(V . grad) V at quadrature points.
        with self.timer.stage(STAGES[1]), self.stage_ops[STAGES[1]], obs.span(STAGES[1], "stage"):
            dudx, dudy = space.gradient(self.u_hat)
            dvdx, dvdy = space.gradient(self.v_hat)
            nu_term = -(u_vals * dudx + v_vals * dudy)
            nv_term = -(u_vals * dvdx + v_vals * dvdy)
            if self.force is not None:
                xq, yq = space.coords()
                fx, fy = self.force
                nu_term = nu_term + fx(xq, yq, self.t) * np.ones_like(xq)
                nv_term = nv_term + fy(xq, yq, self.t) * np.ones_like(xq)
            omega = dvdx - dudy
            npts = u_vals.size
            charge(9.0 * npts, 9.0 * 24.0 * npts)  # pointwise products/sums

        # Stage 3: weight-average with previous steps (alpha / beta sums).
        with self.timer.stage(STAGES[2]), self.stage_ops[STAGES[2]], obs.span(STAGES[2], "stage"):
            hist_u = [(u_vals, v_vals)] + list(self._hist_u)
            hist_n = [(nu_term, nv_term)] + list(self._hist_n)
            uhx = sum(a * h[0] for a, h in zip(scheme.alpha, hist_u))
            uhy = sum(a * h[1] for a, h in zip(scheme.alpha, hist_u))
            uhx = uhx + dt * sum(b * h[0] for b, h in zip(scheme.beta, hist_n))
            uhy = uhy + dt * sum(b * h[1] for b, h in zip(scheme.beta, hist_n))
            npts = uhx.size
            charge((8.0 * order + 4.0) * npts, (8.0 * order + 4.0) * 16.0 * npts)

        # Stage 4: weak pressure-Poisson RHS, (u_hat, grad phi)/dt, plus the
        # high-order rotational pressure BC surface term
        # oint phi [-nu n.(curl omega)_beta - gamma0 (u_b^{n+1}.n)/dt].
        t_new = self.t + dt
        with self.timer.stage(STAGES[3]), self.stage_ops[STAGES[3]], obs.span(STAGES[3], "stage"):
            rhs_p = space.grad_load_vector(uhx, uhy)
            rhs_p /= dt
            hist_w = [omega] + list(self._hist_w)
            w_extrap = sum(b * h for b, h in zip(scheme.beta, hist_w))
            self._add_pressure_bc(rhs_p, w_extrap, scheme.gamma0, t_new)

        # Stage 5: Poisson solve for the pressure.
        with self.timer.stage(STAGES[4]), self.stage_ops[STAGES[4]], obs.span(STAGES[4], "stage"):
            if self._p_pin is None:
                self.p_hat = self.p_solver.solve_rhs(
                    rhs_p, self.p_solver.bc_values(None)
                )
            else:
                self.p_hat = self.p_op.solve(rhs_p, np.zeros(1))

        # Stage 6: project and set up the Helmholtz RHS.
        with self.timer.stage(STAGES[5]), self.stage_ops[STAGES[5]], obs.span(STAGES[5], "stage"):
            dpdx, dpdy = space.gradient(self.p_hat)
            ustar = uhx - dt * dpdx
            vstar = uhy - dt * dpdy
            charge(4.0 * ustar.size, 4.0 * 24.0 * ustar.size)
            scale = 1.0 / (self.nu * dt)
            rhs_u = space.load_vector(ustar) * scale
            rhs_v = space.load_vector(vstar) * scale

        # Stage 7: Helmholtz solves for the new velocity.
        with self.timer.stage(STAGES[6]), self.stage_ops[STAGES[6]], obs.span(STAGES[6], "stage"):
            solver = self._viscous_solver(lam_eff)
            self.u_hat = solver.solve_rhs(rhs_u, self._dirichlet_values(0, t_new))
            self.v_hat = solver.solve_rhs(rhs_v, self._dirichlet_values(1, t_new))

        self._hist_u.appendleft((u_vals, v_vals))
        self._hist_n.appendleft((nu_term, nv_term))
        self._hist_w.appendleft(omega)
        self.t = t_new
        self.step_count += 1

    def _add_pressure_bc(
        self,
        rhs_p: np.ndarray,
        w_extrap: np.ndarray,
        gamma0: float,
        t_new: float,
    ) -> None:
        """Accumulate the rotational pressure-BC surface integral on the
        velocity-Dirichlet boundary into the Poisson right-hand side."""
        space, dm = self.space, self.space.dofmap
        for tag, quads in self._edge_quads.items():
            fu, fv = self.velocity_bcs[tag]
            for eq in quads:
                ei = eq.elem
                exp = dm.expansion(ei)
                gf = space.geom[ei]
                # Local modal projection of the extrapolated vorticity.
                tmp = np.empty(exp.phi.shape[0])
                blas.dgemv(1.0, exp.phi, gf.jw * w_extrap[ei], 0.0, tmp)
                w_loc = np.empty_like(tmp)
                blas.dgemv(1.0, self._local_minv[ei], tmp, 0.0, w_loc)
                dwdx = np.empty(eq.npts)
                dwdy = np.empty(eq.npts)
                blas.dgemv(1.0, eq.dphi_x, w_loc, 0.0, dwdx, trans=True)
                blas.dgemv(1.0, eq.dphi_y, w_loc, 0.0, dwdy, trans=True)
                n_curl = eq.nx * dwdy - eq.ny * dwdx
                ubn = np.array(
                    [
                        float(fu(x, y, t_new)) * nx + float(fv(x, y, t_new)) * ny
                        for x, y, nx, ny in zip(eq.x, eq.y, eq.nx, eq.ny)
                    ]
                )
                term = -self.nu * n_curl - (gamma0 / self.dt) * ubn
                dm.scatter_add(ei, eq.load(term), rhs_p)

    def _viscous_solver(self, lam_eff: float) -> HelmholtzDirect:
        """Viscous solver for the effective lambda (startup steps use a
        lower-order gamma0; cache the extra factorisation)."""
        if abs(lam_eff - self.vel_solver.lam) < 1e-12 * max(1.0, lam_eff):
            return self.vel_solver
        cache = getattr(self, "_startup_solvers", {})
        key = round(lam_eff, 9)
        if key not in cache:
            cache[key] = HelmholtzDirect(self.space, lam_eff, self.vel_tags)
            self._startup_solvers = cache
        return cache[key]

    def run(self, nsteps: int) -> None:
        for _ in range(nsteps):
            self.step()

    # -- diagnostics ------------------------------------------------------------

    def velocity(self) -> tuple[np.ndarray, np.ndarray]:
        """Velocity values at the quadrature points."""
        return self.space.backward(self.u_hat), self.space.backward(self.v_hat)

    def kinetic_energy(self) -> float:
        u, v = self.velocity()
        return 0.5 * self.space.integrate(u * u + v * v)

    def divergence_norm(self) -> float:
        dudx, _ = self.space.gradient(self.u_hat)
        _, dvdy = self.space.gradient(self.v_hat)
        return self.space.norm_l2(dudx + dvdy)

    def max_velocity(self) -> float:
        u, v = self.velocity()
        return float(np.sqrt(u * u + v * v).max())

    def stage_percentages(self, kind: str = "cpu") -> dict[str, float]:
        """Figure-12-style per-stage share of the time loop."""
        return self.timer.percentages(kind)

    def reset_instrumentation(self) -> None:
        """Clear timers and op counters (call after warm-up steps so
        one-time factorisations don't pollute per-step costs)."""
        self.timer.reset()
        self.stage_ops = {s: OpCounter() for s in STAGES}

    def stage_flops(self) -> dict[str, float]:
        return {s: c.flops for s, c in self.stage_ops.items()}

    def stage_bytes(self) -> dict[str, float]:
        return {s: c.bytes for s, c in self.stage_ops.items()}
