"""Stiffly-stable splitting coefficients (Karniadakis, Israeli & Orszag 1991).

The Navier-Stokes equations are "integrated in time using a high-order
splitting scheme"; the paper uses the second-order member.  The scheme
advances

    (gamma0 u^{n+1} - sum_q alpha_q u^{n-q}) / dt
        = sum_q beta_q N(u^{n-q}) - grad p^{n+1} + nu lap u^{n+1}

with the backward-differentiation weights gamma0/alpha and the
extrapolation weights beta below.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SplittingScheme", "stiffly_stable"]

_TABLE = {
    1: (1.0, (1.0,), (1.0,)),
    2: (1.5, (2.0, -0.5), (2.0, -1.0)),
    3: (11.0 / 6.0, (3.0, -1.5, 1.0 / 3.0), (3.0, -3.0, 1.0)),
}


@dataclass(frozen=True)
class SplittingScheme:
    """Coefficients of the order-J stiffly-stable scheme."""

    order: int
    gamma0: float
    alpha: tuple[float, ...]
    beta: tuple[float, ...]

    def __post_init__(self):
        # Consistency: sum(alpha) = gamma0 (reproduces constants),
        # sum(beta) = 1 (consistent extrapolation).
        assert abs(sum(self.alpha) - self.gamma0) < 1e-12
        assert abs(sum(self.beta) - 1.0) < 1e-12


def stiffly_stable(order: int) -> SplittingScheme:
    """The order-1, -2 or -3 stiffly-stable scheme."""
    try:
        gamma0, alpha, beta = _TABLE[order]
    except KeyError:
        raise ValueError(
            f"stiffly-stable scheme available for orders {sorted(_TABLE)}, "
            f"got {order}"
        ) from None
    return SplittingScheme(order, gamma0, alpha, beta)
