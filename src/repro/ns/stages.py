"""The paper's seven timestep stages (Section 4.1, Figure 12).

Every NekTar analogue in this package charges its work to these stage
names so the serial (Figure 12), NekTar-F (Figures 13-14) and
NekTar-ALE (Figures 15-16) breakdowns come from the same instrument.
"""

from __future__ import annotations

__all__ = ["STAGES", "STAGE_DESCRIPTIONS", "ALE_GROUPS", "group_ale"]

STAGES = (
    "1:transform",
    "2:nonlinear",
    "3:average",
    "4:pressure-rhs",
    "5:pressure-solve",
    "6:viscous-rhs",
    "7:viscous-solve",
)

STAGE_DESCRIPTIONS = {
    "1:transform": "Transformation from modal (transformed) to quadrature "
    "(physical) space",
    "2:nonlinear": "Evaluation of the non-linear terms in quadrature space",
    "3:average": "Weight-averaging of non-linear terms with previous "
    "time-steps",
    "4:pressure-rhs": "Setup of the right hand side of the Poisson equation "
    "for the pressure",
    "5:pressure-solve": "Solution of the Laplacian for the Poisson equation",
    "6:viscous-rhs": "Setup of the right hand side of the Helmholtz equation",
    "7:viscous-solve": "Solution of the Laplacian for the Helmholtz equation",
}

# Figures 15-16 group the ALE stages: a = steps 1-4 and 6, b = step 5,
# c = step 7 (which gains the extra mesh-velocity Helmholtz solve).
ALE_GROUPS = {
    "a": ("1:transform", "2:nonlinear", "3:average", "4:pressure-rhs", "6:viscous-rhs"),
    "b": ("5:pressure-solve",),
    "c": ("7:viscous-solve",),
}


def group_ale(percentages: dict[str, float]) -> dict[str, float]:
    """Collapse a 7-stage percentage dict into the a/b/c ALE groups."""
    return {
        g: sum(percentages.get(s, 0.0) for s in stages)
        for g, stages in ALE_GROUPS.items()
    }
