"""Exact incompressible Navier-Stokes solutions used for verification.

* Kovasznay flow — steady 2-D wake-like solution; the classic spectral
  p-convergence benchmark for NekTar-family codes.
* Taylor (Taylor-Green) vortex — time-decaying solution for temporal
  accuracy of the splitting scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Kovasznay", "TaylorVortex"]


@dataclass(frozen=True)
class Kovasznay:
    """Kovasznay (1948) steady laminar wake behind a grid.

        u = 1 - exp(L x) cos(2 pi y)
        v = (L / 2 pi) exp(L x) sin(2 pi y)
        p = (1 - exp(2 L x)) / 2

    with L = Re/2 - sqrt(Re^2/4 + 4 pi^2).  Satisfies steady NS at
    nu = 1/Re exactly.
    """

    re: float = 40.0

    @property
    def nu(self) -> float:
        return 1.0 / self.re

    @property
    def lam(self) -> float:
        return self.re / 2.0 - math.sqrt(self.re**2 / 4.0 + 4.0 * math.pi**2)

    def u(self, x, y):
        return 1.0 - np.exp(self.lam * x) * np.cos(2 * np.pi * y)

    def v(self, x, y):
        return self.lam / (2 * np.pi) * np.exp(self.lam * x) * np.sin(2 * np.pi * y)

    def p(self, x, y):
        return 0.5 * (1.0 - np.exp(2 * self.lam * x))


@dataclass(frozen=True)
class TaylorVortex:
    """Decaying Taylor-Green vortex:

        u = -cos(k x) sin(k y) exp(-2 nu k^2 t)
        v =  sin(k x) cos(k y) exp(-2 nu k^2 t)
        p = -(cos(2 k x) + cos(2 k y)) exp(-4 nu k^2 t) / 4
    """

    nu: float = 0.05
    k: float = 1.0

    def decay(self, t: float) -> float:
        return math.exp(-2.0 * self.nu * self.k**2 * t)

    def u(self, x, y, t=0.0):
        return -np.cos(self.k * x) * np.sin(self.k * y) * self.decay(t)

    def v(self, x, y, t=0.0):
        return np.sin(self.k * x) * np.cos(self.k * y) * self.decay(t)

    def p(self, x, y, t=0.0):
        return -0.25 * (np.cos(2 * self.k * x) + np.cos(2 * self.k * y)) * self.decay(t) ** 2
