"""Mesh substrate: unstructured 2-D meshes, generators, mappings, partitioner."""

from .curved import BlendedQuadMap, circular_arc, make_element_map
from .generators import (
    annulus_mesh,
    attach_circular_wall,
    bluff_body_mesh,
    body_fitted_mesh,
    circle_profile,
    naca_profile,
    rectangle_quads,
    rectangle_tris,
    wing_mesh,
)
from .mapping import ElementMap, GeomFactors
from .mesh2d import QUAD_EDGES, TRI_EDGES, Edge, Element, Mesh2D
from .partition import (
    edge_cut,
    imbalance,
    interface_edges,
    partition_graph,
    partition_mesh,
)

__all__ = [
    "Mesh2D",
    "Element",
    "Edge",
    "TRI_EDGES",
    "QUAD_EDGES",
    "ElementMap",
    "GeomFactors",
    "rectangle_quads",
    "rectangle_tris",
    "circle_profile",
    "naca_profile",
    "body_fitted_mesh",
    "bluff_body_mesh",
    "annulus_mesh",
    "attach_circular_wall",
    "wing_mesh",
    "BlendedQuadMap",
    "circular_arc",
    "make_element_map",
    "partition_mesh",
    "partition_graph",
    "edge_cut",
    "imbalance",
    "interface_edges",
]
