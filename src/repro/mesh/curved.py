"""Curved (iso-parametric) element geometry via transfinite blending.

The paper's discretisation uses "both iso-parametric and
super-parametric representations" — bodies like the cylinder and the
NACA wing are resolved with *curved* element edges, not polygons.  This
module provides Gordon-Hall blended maps for quadrilaterals: the
bilinear vertex map plus, for each curved edge, a blending of the
difference between the true curve and the straight chord:

    x(xi) = x_bilinear(xi) + sum_e blend_e(xi) [c_e(s_e) - chord_e(s_e)]

The correction vanishes at the edge endpoints (curves interpolate the
vertices), so neighbouring elements stay conforming, and an uncurved
element reduces exactly to the bilinear map.

Curves are registered on the mesh as ``mesh.curves[(elem, local_edge)]
= fn`` with ``fn(s)`` mapping the intrinsic edge parameter s in [-1, 1]
to physical (x, y) arrays.  Only quads support curving (the body-fitted
O-grids are all-quad); a curved triangle raises.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .mapping import ElementMap
from .mesh2d import Mesh2D

__all__ = ["CurveFn", "BlendedQuadMap", "make_element_map", "circular_arc"]

CurveFn = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]

# Local edge -> (edge parameter, blend factor) as functions of (xi1, xi2).
_EDGE_PARAM = {
    0: lambda x1, x2: x1,
    1: lambda x1, x2: x2,
    2: lambda x1, x2: x1,
    3: lambda x1, x2: x2,
}
_BLEND = {
    0: lambda x1, x2: 0.5 * (1.0 - x2),
    1: lambda x1, x2: 0.5 * (1.0 + x1),
    2: lambda x1, x2: 0.5 * (1.0 + x2),
    3: lambda x1, x2: 0.5 * (1.0 - x1),
}
_DBLEND = {  # (d/dxi1, d/dxi2) of the blend
    0: (0.0, -0.5),
    1: (0.5, 0.0),
    2: (0.0, 0.5),
    3: (-0.5, 0.0),
}
_DS = {0: (1.0, 0.0), 1: (0.0, 1.0), 2: (1.0, 0.0), 3: (0.0, 1.0)}


def circular_arc(
    p0: np.ndarray, p1: np.ndarray, center=(0.0, 0.0)
) -> CurveFn:
    """The minor circle arc through p0 -> p1 about ``center`` (constant
    radius, angles interpolated linearly in s)."""
    c = np.asarray(center, dtype=np.float64)
    v0, v1 = np.asarray(p0) - c, np.asarray(p1) - c
    r0, r1 = np.hypot(*v0), np.hypot(*v1)
    a0 = np.arctan2(v0[1], v0[0])
    a1 = np.arctan2(v1[1], v1[0])
    da = np.mod(a1 - a0 + np.pi, 2 * np.pi) - np.pi  # minor arc

    def curve(s: np.ndarray):
        s = np.asarray(s, dtype=np.float64)
        t = 0.5 * (1.0 + s)
        ang = a0 + t * da
        rad = r0 + t * (r1 - r0)
        return c[0] + rad * np.cos(ang), c[1] + rad * np.sin(ang)

    return curve


class BlendedQuadMap(ElementMap):
    """Quadrilateral map with curved edges (Gordon-Hall blending)."""

    def __init__(self, coords: np.ndarray, curves: dict[int, CurveFn]):
        super().__init__(coords)
        if self.kind != "quad":
            raise ValueError("curved edges are supported on quads only")
        for le in curves:
            if not 0 <= le <= 3:
                raise ValueError(f"bad local edge {le}")
        self.curves = dict(curves)
        from .mesh2d import QUAD_EDGES

        self._chords = {}
        for le, fn in self.curves.items():
            a, b = QUAD_EDGES[le]
            pa, pb = self.coords[a], self.coords[b]
            # Validate endpoint interpolation.
            xs, ys = fn(np.array([-1.0, 1.0]))
            if not (
                np.allclose([xs[0], ys[0]], pa, atol=1e-9)
                and np.allclose([xs[1], ys[1]], pb, atol=1e-9)
            ):
                raise ValueError(
                    f"edge {le} curve does not interpolate its vertices"
                )
            self._chords[le] = (pa, pb)

    def _corrections(self, xi1, xi2):
        """Per curved edge: (delta_x, delta_y, d(delta)/ds) at points."""
        out = []
        h = 1e-7
        for le, fn in self.curves.items():
            s = _EDGE_PARAM[le](xi1, xi2)
            cx, cy = fn(s)
            pa, pb = self._chords[le]
            lin_x = 0.5 * (1 - s) * pa[0] + 0.5 * (1 + s) * pb[0]
            lin_y = 0.5 * (1 - s) * pa[1] + 0.5 * (1 + s) * pb[1]
            dx, dy = cx - lin_x, cy - lin_y
            cxp, cyp = fn(np.clip(s + h, -1, 1))
            cxm, cym = fn(np.clip(s - h, -1, 1))
            span = np.clip(s + h, -1, 1) - np.clip(s - h, -1, 1)
            ddx = (cxp - cxm) / span - 0.5 * (pb[0] - pa[0])
            ddy = (cyp - cym) / span - 0.5 * (pb[1] - pa[1])
            out.append((le, dx, dy, ddx, ddy))
        return out

    def x(self, xi1, xi2):
        xi1 = np.asarray(xi1, dtype=np.float64)
        xi2 = np.asarray(xi2, dtype=np.float64)
        x, y = super().x(xi1, xi2)
        for le, dx, dy, _, _ in self._corrections(xi1, xi2):
            b = _BLEND[le](xi1, xi2)
            x = x + b * dx
            y = y + b * dy
        return x, y

    def jacobian(self, xi1, xi2):
        xi1 = np.asarray(xi1, dtype=np.float64)
        xi2 = np.asarray(xi2, dtype=np.float64)
        j = super().jacobian(xi1, xi2)
        for le, dx, dy, ddx, ddy in self._corrections(xi1, xi2):
            b = _BLEND[le](xi1, xi2)
            db1, db2 = _DBLEND[le]
            ds1, ds2 = _DS[le]
            j[:, 0, 0] += db1 * dx + b * ddx * ds1
            j[:, 0, 1] += db2 * dx + b * ddx * ds2
            j[:, 1, 0] += db1 * dy + b * ddy * ds1
            j[:, 1, 1] += db2 * dy + b * ddy * ds2
        return j


def make_element_map(mesh: Mesh2D, elem: int) -> ElementMap:
    """The element's geometric map: blended if any of its edges carry a
    registered curve, plain straight-sided otherwise."""
    coords = mesh.element_coords(elem)
    curves = getattr(mesh, "curves", None) or {}
    local = {
        le: fn for (ei, le), fn in curves.items() if ei == elem
    }
    if not local:
        return ElementMap(coords)
    return BlendedQuadMap(coords, local)
