"""Iso-parametric geometric mappings from reference to physical elements.

Straight-sided elements: affine for triangles, bilinear for quads (the
iso-parametric representation at the vertex-mode level).  For each
element, :class:`GeomFactors` tabulates, at the expansion's quadrature
points, everything operator assembly needs: |J| dxi weights and the
inverse-Jacobian entries used to push reference gradients to physical
space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spectral.expansions import Expansion2D, TriExpansion

__all__ = ["ElementMap", "GeomFactors"]

Array = np.ndarray


class ElementMap:
    """Reference -> physical map for one straight-sided element.

    The map is expressed through the element's *vertex shape functions*
    (barycentric for the triangle, bilinear for the quad), which are
    exactly the vertex modes of the matching expansion — an
    iso-parametric representation.
    """

    def __init__(self, coords: np.ndarray):
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape not in ((3, 2), (4, 2)):
            raise ValueError("coords must be (3, 2) or (4, 2)")
        self.coords = coords
        self.kind = "tri" if coords.shape[0] == 3 else "quad"

    # Vertex shape functions and their reference gradients.
    def _shape(self, xi1: Array, xi2: Array) -> tuple[Array, Array, Array]:
        xi1 = np.asarray(xi1, dtype=np.float64)
        xi2 = np.asarray(xi2, dtype=np.float64)
        if self.kind == "tri":
            n = np.stack(
                [-0.5 * (xi1 + xi2), 0.5 * (1.0 + xi1), 0.5 * (1.0 + xi2)]
            )
            d1 = np.stack(
                [np.full_like(xi1, -0.5), np.full_like(xi1, 0.5), np.zeros_like(xi1)]
            )
            d2 = np.stack(
                [np.full_like(xi1, -0.5), np.zeros_like(xi1), np.full_like(xi1, 0.5)]
            )
        else:
            h0x, h1x = 0.5 * (1 - xi1), 0.5 * (1 + xi1)
            h0y, h1y = 0.5 * (1 - xi2), 0.5 * (1 + xi2)
            n = np.stack([h0x * h0y, h1x * h0y, h1x * h1y, h0x * h1y])
            d1 = np.stack([-0.5 * h0y, 0.5 * h0y, 0.5 * h1y, -0.5 * h1y])
            d2 = np.stack([-0.5 * h0x, -0.5 * h1x, 0.5 * h1x, 0.5 * h0x])
        return n, d1, d2

    def x(self, xi1: Array, xi2: Array) -> tuple[Array, Array]:
        """Physical coordinates of reference points."""
        n, _, _ = self._shape(xi1, xi2)
        return n.T @ self.coords[:, 0], n.T @ self.coords[:, 1]

    def jacobian(self, xi1: Array, xi2: Array) -> Array:
        """J[k] = [[dx/dxi1, dx/dxi2], [dy/dxi1, dy/dxi2]] at each point."""
        _, d1, d2 = self._shape(xi1, xi2)
        npts = np.asarray(xi1).size
        j = np.empty((npts, 2, 2))
        j[:, 0, 0] = d1.T @ self.coords[:, 0]
        j[:, 0, 1] = d2.T @ self.coords[:, 0]
        j[:, 1, 0] = d1.T @ self.coords[:, 1]
        j[:, 1, 1] = d2.T @ self.coords[:, 1]
        return j

    def det_jacobian(self, xi1: Array, xi2: Array) -> Array:
        j = self.jacobian(xi1, xi2)
        return j[:, 0, 0] * j[:, 1, 1] - j[:, 0, 1] * j[:, 1, 0]


@dataclass
class GeomFactors:
    """Geometric factors of one element at the expansion quadrature points.

    Attributes
    ----------
    jw:
        |det J| times the reference quadrature weight at each point — the
        physical integration weight.
    dxi_dx:
        (2, 2, nq) array; ``dxi_dx[i, j]`` is d(xi_i)/d(x_j), so the
        physical gradient of a mode is
        ``d/dx_j = sum_i dphi_i * dxi_dx[i, j]``.
    """

    jw: Array
    dxi_dx: Array

    @classmethod
    def compute(
        cls,
        expansion: Expansion2D,
        coords: np.ndarray,
        emap: "ElementMap | None" = None,
    ) -> "GeomFactors":
        if emap is None:
            emap = ElementMap(coords)
        if (emap.kind == "tri") != isinstance(expansion, TriExpansion):
            raise ValueError("expansion/element kind mismatch")
        A, B = expansion.rule.points
        if isinstance(expansion, TriExpansion):
            xi1 = 0.5 * (1.0 + A) * (1.0 - B) - 1.0
            xi2 = B
        else:
            xi1, xi2 = A, B
        j = emap.jacobian(xi1, xi2)
        det = j[:, 0, 0] * j[:, 1, 1] - j[:, 0, 1] * j[:, 1, 0]
        if np.any(det <= 0.0):
            raise ValueError("element is inverted or degenerate (det J <= 0)")
        inv = np.empty_like(j)
        inv[:, 0, 0] = j[:, 1, 1] / det
        inv[:, 0, 1] = -j[:, 0, 1] / det
        inv[:, 1, 0] = -j[:, 1, 0] / det
        inv[:, 1, 1] = j[:, 0, 0] / det
        # inv is d(xi)/d(x): inv[k][i, j] = dxi_i/dx_j.
        dxi_dx = np.transpose(inv, (1, 2, 0))
        return cls(jw=expansion.weights * det, dxi_dx=dxi_dx)

    @property
    def nq(self) -> int:
        return self.jw.size

    def physical_gradients(
        self, dphi1: Array, dphi2: Array
    ) -> tuple[Array, Array]:
        """Push (nmodes, nq) reference derivative tables to physical x, y."""
        dx = dphi1 * self.dxi_dx[0, 0] + dphi2 * self.dxi_dx[1, 0]
        dy = dphi1 * self.dxi_dx[0, 1] + dphi2 * self.dxi_dx[1, 1]
        return dx, dy
