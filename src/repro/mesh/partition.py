"""METIS-like element partitioning for domain decomposition.

The paper parallelises NekTar-ALE with "a multi-level graph
decomposition method (METIS) ... extended to suit the specific
characteristics of the spectral/hp method" (Section 4).  This module
provides the same service on the element dual graph:

* ``strips``    — naive coordinate-sorted strips (the baseline any
  graph partitioner must beat),
* ``spectral``  — recursive spectral bisection (Fiedler vector),
* ``multilevel``— METIS-style: heavy-edge-matching coarsening, spectral
  partition of the coarse graph, uncoarsening with greedy
  Kernighan-Lin boundary refinement.

Quality metrics (edge cut, imbalance) drive both the tests and the
gather-scatter communication volume in the ALE cost model.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = [
    "partition_mesh",
    "partition_graph",
    "edge_cut",
    "imbalance",
    "interface_edges",
]


def partition_mesh(mesh, nparts: int, method: str = "multilevel") -> np.ndarray:
    """Assign each element of ``mesh`` to one of ``nparts`` parts."""
    if method == "strips":
        return _strips(mesh, nparts)
    return partition_graph(mesh.dual_graph(), nparts, method=method)


def partition_graph(
    g: nx.Graph, nparts: int, method: str = "multilevel", seed: int = 0
) -> np.ndarray:
    """Partition an undirected graph into ``nparts`` balanced parts."""
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    n = g.number_of_nodes()
    if nparts > n:
        raise ValueError("more parts than graph nodes")
    if method not in ("spectral", "multilevel"):
        raise ValueError(f"unknown method {method!r}")
    parts = np.zeros(n, dtype=np.int64)
    _recurse(g, list(g.nodes), nparts, 0, parts, method, seed)
    return parts


def _strips(mesh, nparts: int) -> np.ndarray:
    order = np.argsort(mesh.centroids()[:, 0], kind="stable")
    parts = np.empty(mesh.nelements, dtype=np.int64)
    bounds = np.linspace(0, mesh.nelements, nparts + 1).astype(int)
    for p in range(nparts):
        parts[order[bounds[p] : bounds[p + 1]]] = p
    return parts


def _recurse(g, nodes, nparts, base, parts, method, seed) -> None:
    if nparts == 1:
        for v in nodes:
            parts[v] = base
        return
    nleft = nparts // 2
    target_left = round(len(nodes) * nleft / nparts)
    left, right = _bisect(g.subgraph(nodes), target_left, method, seed)
    _recurse(g, left, nleft, base, parts, method, seed + 1)
    _recurse(g, right, nparts - nleft, base + nleft, parts, method, seed + 2)


def _bisect(g: nx.Graph, target_left: int, method: str, seed: int):
    nodes = list(g.nodes)
    if target_left <= 0:
        return [], nodes
    if target_left >= len(nodes):
        return nodes, []
    if method == "multilevel" and len(nodes) > 64:
        return _multilevel_bisect(g, target_left, seed)
    order = _spectral_order(g, seed)
    left = set(order[:target_left])
    left = _kl_refine(g, left, target_left)
    return sorted(left), sorted(set(nodes) - left)


def _spectral_order(g: nx.Graph, seed: int) -> list:
    """Nodes sorted by the Fiedler vector (graph's second eigenvector)."""
    nodes = list(g.nodes)
    if len(nodes) <= 2:
        return nodes
    if not nx.is_connected(g):
        # Order components one after another (still yields a valid split).
        out = []
        for comp in nx.connected_components(g):
            sub = g.subgraph(comp)
            out.extend(_spectral_order(sub, seed))
        return out
    try:
        fiedler = nx.fiedler_vector(g, seed=seed, method="tracemin_lu")
    except (nx.NetworkXError, np.linalg.LinAlgError):
        return nodes
    return [nodes[i] for i in np.argsort(fiedler)]


def _multilevel_bisect(g: nx.Graph, target_left: int, seed: int):
    """Coarsen by heavy-edge matching, split coarse, project back, refine."""
    matching = _heavy_edge_matching(g, seed)
    coarse = nx.Graph()
    rep: dict = {}
    weight: dict = {}
    for v in g.nodes:
        u = matching.get(v)
        rep[v] = min(v, u) if u is not None else v
    for v in g.nodes:
        r = rep[v]
        weight[r] = weight.get(r, 0) + 1
        coarse.add_node(r)
    for a, b in g.edges:
        ra, rb = rep[a], rep[b]
        if ra != rb:
            w = coarse.get_edge_data(ra, rb, {"weight": 0})["weight"]
            coarse.add_edge(ra, rb, weight=w + 1)
    # Split the coarse graph so that expanded sizes hit the target.
    order = _spectral_order(coarse, seed)
    left_coarse: set = set()
    size = 0
    for r in order:
        if size >= target_left:
            break
        left_coarse.add(r)
        size += weight[r]
    left = {v for v in g.nodes if rep[v] in left_coarse}
    left = _trim_to_size(g, left, target_left)
    left = _kl_refine(g, left, target_left)
    return sorted(left), sorted(set(g.nodes) - left)


def _heavy_edge_matching(g: nx.Graph, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    nodes = list(g.nodes)
    rng.shuffle(nodes)
    matched: dict = {}
    for v in nodes:
        if v in matched:
            continue
        for u in g.neighbors(v):
            if u not in matched and u != v:
                matched[v] = u
                matched[u] = v
                break
    return matched


def _trim_to_size(g: nx.Graph, left: set, target: int) -> set:
    """Move boundary nodes until |left| == target, preferring low-gain moves."""
    left = set(left)
    while len(left) != target:
        grow = len(left) < target
        pool = (set(g.nodes) - left) if grow else left
        best, best_gain = None, None
        for v in pool:
            nin = sum(1 for u in g.neighbors(v) if u in left)
            nout = g.degree[v] - nin
            gain = (nin - nout) if grow else (nout - nin)
            if best_gain is None or gain > best_gain:
                best, best_gain = v, gain
        if best is None:
            break
        if grow:
            left.add(best)
        else:
            left.remove(best)
    return left


def _kl_refine(g: nx.Graph, left: set, target: int, passes: int = 4) -> set:
    """Greedy pairwise-swap Kernighan-Lin refinement at fixed sizes."""
    left = _trim_to_size(g, set(left), target)
    right = set(g.nodes) - left

    def gain(v, own, other):
        nin = sum(1 for u in g.neighbors(v) if u in own)
        nout = sum(1 for u in g.neighbors(v) if u in other)
        return nout - nin

    for _ in range(passes):
        lb = [v for v in left if any(u in right for u in g.neighbors(v))]
        rb = [v for v in right if any(u in left for u in g.neighbors(v))]
        best_pair, best_gain = None, 0
        for a in lb:
            ga = gain(a, left, right)
            for b in rb:
                gb = gain(b, right, left)
                coupled = 2 if g.has_edge(a, b) else 0
                total = ga + gb - coupled
                if total > best_gain:
                    best_pair, best_gain = (a, b), total
        if best_pair is None:
            break
        a, b = best_pair
        left.remove(a)
        right.remove(b)
        left.add(b)
        right.add(a)
    return left


def edge_cut(g: nx.Graph, parts: np.ndarray) -> int:
    """Number of graph edges whose endpoints are in different parts."""
    return sum(1 for a, b in g.edges if parts[a] != parts[b])


def imbalance(parts: np.ndarray, nparts: int) -> float:
    """max part size / ideal size (1.0 = perfectly balanced)."""
    sizes = np.bincount(parts, minlength=nparts)
    return float(sizes.max() * nparts / parts.size)


def interface_edges(mesh, parts: np.ndarray) -> list[int]:
    """Global mesh-edge ids on partition interfaces (the dofs the
    gather-scatter library must exchange)."""
    out = []
    for edge in mesh.edges:
        if len(edge.elements) == 2:
            (e0, _), (e1, _) = edge.elements
            if parts[e0] != parts[e1]:
                out.append(edge.id)
    return out
