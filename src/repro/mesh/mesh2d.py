"""Unstructured 2-D meshes of triangles and quadrilaterals.

NekTar "uses meshes similar to standard finite element and finite volume
meshes, consisting of structured or unstructured grids or a combination
of both" (Section 1.3).  :class:`Mesh2D` stores vertices, mixed
tri/quad elements, derives the global edge table with orientations
(needed for C0 assembly sign flips), detects the boundary, and exposes
the element dual graph the partitioner works on.

Local conventions (must match :mod:`repro.spectral.expansions`):

* triangle local edges: e0 = (0,1), e1 = (1,2), e2 = (0,2)
* quad local edges:     e0 = (0,1), e1 = (1,2), e2 = (3,2), e3 = (0,3)

Each local edge has an intrinsic direction first -> second local vertex;
the canonical global direction of an edge runs from its lower to its
higher global vertex id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["TRI_EDGES", "QUAD_EDGES", "Element", "Edge", "Mesh2D"]

TRI_EDGES = ((0, 1), (1, 2), (0, 2))
QUAD_EDGES = ((0, 1), (1, 2), (3, 2), (0, 3))


@dataclass(frozen=True)
class Element:
    """One element: ordered global vertex ids (3 = tri, 4 = quad)."""

    vertices: tuple[int, ...]

    def __post_init__(self):
        if len(self.vertices) not in (3, 4):
            raise ValueError("elements must have 3 or 4 vertices")
        if len(set(self.vertices)) != len(self.vertices):
            raise ValueError("repeated vertex in element")

    @property
    def kind(self) -> str:
        return "tri" if len(self.vertices) == 3 else "quad"

    @property
    def nedges(self) -> int:
        return len(self.vertices)

    @property
    def local_edges(self) -> tuple[tuple[int, int], ...]:
        return TRI_EDGES if self.kind == "tri" else QUAD_EDGES

    def edge_vertices(self, le: int) -> tuple[int, int]:
        """Global (first, second) vertex ids of local edge ``le``,
        in the edge's intrinsic direction."""
        a, b = self.local_edges[le]
        return self.vertices[a], self.vertices[b]


@dataclass
class Edge:
    """A global mesh edge: canonical direction is low -> high vertex id."""

    id: int
    vertices: tuple[int, int]  # (low, high)
    elements: list[tuple[int, int]] = field(default_factory=list)  # (elem, local edge)

    @property
    def on_boundary(self) -> bool:
        return len(self.elements) == 1


class Mesh2D:
    """An unstructured conforming mesh of triangles and quadrilaterals."""

    def __init__(
        self,
        vertices: np.ndarray,
        elements: list[tuple[int, ...]],
        boundary_tags: dict[str, list[tuple[int, int]]] | None = None,
    ):
        self.vertices = np.asarray(vertices, dtype=np.float64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 2:
            raise ValueError("vertices must be an (n, 2) array")
        self.elements = [Element(tuple(int(v) for v in e)) for e in elements]
        nv = self.vertices.shape[0]
        for e in self.elements:
            if any(v < 0 or v >= nv for v in e.vertices):
                raise ValueError("element references unknown vertex")
        self._build_edges()
        self.boundary_tags = dict(boundary_tags or {})
        self._validate_tags()
        # Optional curved-edge registry: (elem, local_edge) -> CurveFn
        # (see repro.mesh.curved); empty means straight-sided.
        self.curves: dict[tuple[int, int], object] = {}

    # -- topology ---------------------------------------------------------------

    def _build_edges(self) -> None:
        table: dict[tuple[int, int], Edge] = {}
        self.elem_edges: list[list[int]] = []
        for ei, elem in enumerate(self.elements):
            ids = []
            for le in range(elem.nedges):
                a, b = elem.edge_vertices(le)
                key = (min(a, b), max(a, b))
                edge = table.get(key)
                if edge is None:
                    edge = Edge(len(table), key)
                    table[key] = edge
                if len(edge.elements) >= 2:
                    raise ValueError(
                        f"edge {key} shared by more than two elements "
                        "(non-manifold mesh)"
                    )
                edge.elements.append((ei, le))
                ids.append(edge.id)
            self.elem_edges.append(ids)
        self.edges: list[Edge] = sorted(table.values(), key=lambda e: e.id)

    def _validate_tags(self) -> None:
        for tag, sides in self.boundary_tags.items():
            for ei, le in sides:
                if not 0 <= ei < self.nelements:
                    raise ValueError(f"tag {tag!r}: element {ei} out of range")
                edge = self.edges[self.elem_edges[ei][le]]
                if not edge.on_boundary:
                    raise ValueError(
                        f"tag {tag!r}: ({ei}, {le}) is not a boundary side"
                    )

    @property
    def nvertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def nelements(self) -> int:
        return len(self.elements)

    @property
    def nedges(self) -> int:
        return len(self.edges)

    def edge_orientation(self, elem: int, local_edge: int) -> int:
        """+1 if the element's intrinsic edge direction matches the
        canonical (low -> high vertex id) direction, else -1."""
        a, b = self.elements[elem].edge_vertices(local_edge)
        return 1 if a < b else -1

    def boundary_edges(self) -> list[Edge]:
        return [e for e in self.edges if e.on_boundary]

    def boundary_sides(self, tag: str | None = None) -> list[tuple[int, int]]:
        """(element, local_edge) pairs on the boundary; all if tag is None."""
        if tag is not None:
            if tag not in self.boundary_tags:
                raise KeyError(f"unknown boundary tag {tag!r}")
            return list(self.boundary_tags[tag])
        return [e.elements[0] for e in self.boundary_edges()]

    def untagged_boundary_sides(self) -> list[tuple[int, int]]:
        tagged = {s for sides in self.boundary_tags.values() for s in sides}
        return [s for s in self.boundary_sides() if s not in tagged]

    # -- geometry ----------------------------------------------------------------

    def element_coords(self, elem: int) -> np.ndarray:
        """(nverts, 2) vertex coordinates of one element."""
        return self.vertices[list(self.elements[elem].vertices)]

    def centroids(self) -> np.ndarray:
        out = np.empty((self.nelements, 2))
        for i in range(self.nelements):
            out[i] = self.element_coords(i).mean(axis=0)
        return out

    def element_areas(self) -> np.ndarray:
        """Signed (shoelace) areas; positive for counterclockwise elements."""
        out = np.empty(self.nelements)
        for i, elem in enumerate(self.elements):
            xy = self.element_coords(i)
            x, y = xy[:, 0], xy[:, 1]
            out[i] = 0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
        return out

    # -- graphs -------------------------------------------------------------------

    def dual_graph(self) -> nx.Graph:
        """Element adjacency graph (shared edge => graph edge),
        the structure METIS partitions in the paper."""
        g = nx.Graph()
        g.add_nodes_from(range(self.nelements))
        for edge in self.edges:
            if len(edge.elements) == 2:
                (e0, _), (e1, _) = edge.elements
                g.add_edge(e0, e1)
        return g

    def vertex_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.nvertices))
        for edge in self.edges:
            g.add_edge(*edge.vertices)
        return g
