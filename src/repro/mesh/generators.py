"""Parametric mesh generators for the paper's computational domains.

Figure 11 shows the two domains used at the application level: a
rectangular bluff-body wake domain (x in [-15, 25], y in [-5, 5]) with a
body at the origin, and a flapping NACA 4420 wing.  Both are produced
here as conforming all-quad meshes: an O-grid ring around the body
blended into a structured outer frame.  Plain rectangle meshes (quads
and triangles) support convergence tests and the channel examples.

All generators return counterclockwise elements and tagged boundaries
("inflow", "outflow", "side", "wall" for body-fitted meshes; "left",
"right", "bottom", "top" for rectangles).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .mesh2d import Mesh2D

__all__ = [
    "rectangle_quads",
    "rectangle_tris",
    "circle_profile",
    "naca_profile",
    "body_fitted_mesh",
    "bluff_body_mesh",
    "wing_mesh",
]

Profile = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]

# Parameter origin: t = 0 sits at the lower-left corner direction (225 deg)
# so ring sectors line up with the square frame perimeter walk.
_T0 = 5.0 * math.pi / 4.0


def rectangle_quads(
    nx: int,
    ny: int,
    x0: float = -1.0,
    x1: float = 1.0,
    y0: float = -1.0,
    y1: float = 1.0,
) -> Mesh2D:
    """Structured nx-by-ny quad mesh of [x0, x1] x [y0, y1]."""
    if nx < 1 or ny < 1:
        raise ValueError("need at least one cell per direction")
    xs = np.linspace(x0, x1, nx + 1)
    ys = np.linspace(y0, y1, ny + 1)
    nid = lambda i, j: j * (nx + 1) + i  # noqa: E731
    verts = np.array([(x, y) for y in ys for x in xs])
    elems = []
    for j in range(ny):
        for i in range(nx):
            elems.append((nid(i, j), nid(i + 1, j), nid(i + 1, j + 1), nid(i, j + 1)))
    eidx = lambda i, j: j * nx + i  # noqa: E731
    tags = {
        "bottom": [(eidx(i, 0), 0) for i in range(nx)],
        "top": [(eidx(i, ny - 1), 2) for i in range(nx)],
        "left": [(eidx(0, j), 3) for j in range(ny)],
        "right": [(eidx(nx - 1, j), 1) for j in range(ny)],
    }
    return Mesh2D(verts, elems, tags)


def rectangle_tris(
    nx: int,
    ny: int,
    x0: float = -1.0,
    x1: float = 1.0,
    y0: float = -1.0,
    y1: float = 1.0,
) -> Mesh2D:
    """Structured triangle mesh: each quad cell split along its diagonal."""
    quad = rectangle_quads(nx, ny, x0, x1, y0, y1)
    elems = []
    for e in quad.elements:
        v0, v1, v2, v3 = e.vertices
        elems.append((v0, v1, v2))
        elems.append((v0, v2, v3))
    # Tag boundaries by re-deriving from coordinates.
    mesh = Mesh2D(quad.vertices, elems)
    tol = 1e-12

    def side_tag(ei: int, le: int) -> str:
        a, b = mesh.elements[ei].edge_vertices(le)
        xy = 0.5 * (mesh.vertices[a] + mesh.vertices[b])
        if abs(xy[1] - y0) < tol:
            return "bottom"
        if abs(xy[1] - y1) < tol:
            return "top"
        if abs(xy[0] - x0) < tol:
            return "left"
        return "right"

    tags: dict[str, list[tuple[int, int]]] = {
        "bottom": [],
        "top": [],
        "left": [],
        "right": [],
    }
    for ei, le in mesh.boundary_sides():
        tags[side_tag(ei, le)].append((ei, le))
    return Mesh2D(quad.vertices, elems, tags)


def circle_profile(radius: float = 0.5, center: tuple[float, float] = (0.0, 0.0)) -> Profile:
    """Circular body of given radius (the paper's cylinder, diameter 1)."""

    def profile(t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        theta = 2.0 * np.pi * np.asarray(t, dtype=np.float64) + _T0
        return center[0] + radius * np.cos(theta), center[1] + radius * np.sin(theta)

    return profile


def naca_profile(
    code: str = "4420",
    chord: float = 1.0,
    center: tuple[float, float] = (0.0, 0.0),
    npts: int = 721,
) -> Profile:
    """Closed NACA 4-digit profile, parametrised by angle about the
    0.4-chord point (star-shaped for thick sections like 4420).

    The returned callable maps t in [0, 1) (same angular origin as
    :func:`circle_profile`) to boundary points, so the wing drops into
    :func:`body_fitted_mesh` unchanged.
    """
    if len(code) != 4 or not code.isdigit():
        raise ValueError("NACA code must be 4 digits")
    m = int(code[0]) / 100.0
    p = int(code[1]) / 10.0
    th = int(code[2:]) / 100.0

    x = 0.5 * (1.0 - np.cos(np.linspace(0.0, np.pi, npts)))  # cosine clustering
    yt = 5 * th * (
        0.2969 * np.sqrt(x)
        - 0.1260 * x
        - 0.3516 * x**2
        + 0.2843 * x**3
        - 0.1036 * x**4  # closed trailing edge variant
    )
    if m > 0:
        yc = np.where(
            x < p,
            m / p**2 * (2 * p * x - x**2),
            m / (1 - p) ** 2 * ((1 - 2 * p) + 2 * p * x - x**2),
        )
    else:
        yc = np.zeros_like(x)
    upper = np.stack([x, yc + yt], axis=1)
    lower = np.stack([x, yc - yt], axis=1)
    poly = np.vstack([upper, lower[::-1][1:-1]])  # closed CCW-ish loop
    # Recentre on the 0.4-chord point and scale by chord.
    ref = np.array([0.4, 0.0])
    poly = (poly - ref) * chord
    ang = np.arctan2(poly[:, 1], poly[:, 0])
    rad = np.hypot(poly[:, 0], poly[:, 1])
    order = np.argsort(ang)
    ang, rad = ang[order], rad[order]
    # Periodic pad for interpolation.
    ang = np.concatenate([ang - 2 * np.pi, ang, ang + 2 * np.pi])
    rad = np.concatenate([rad, rad, rad])

    def profile(t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        theta = np.mod(2.0 * np.pi * np.asarray(t, dtype=np.float64) + _T0 + np.pi, 2 * np.pi) - np.pi
        r = np.interp(theta, ang, rad)
        return center[0] + r * np.cos(theta), center[1] + r * np.sin(theta)

    return profile


def _graded(a: float, b: float, n: int, ratio: float = 1.0) -> np.ndarray:
    """n-cell breakpoints from a to b; successive cell sizes multiply by
    ``ratio`` (> 1 grows towards b)."""
    if n < 1:
        raise ValueError("need at least one cell")
    if abs(ratio - 1.0) < 1e-12:
        return np.linspace(a, b, n + 1)
    w = ratio ** np.arange(n)
    cum = np.concatenate([[0.0], np.cumsum(w)])
    return a + (b - a) * cum / cum[-1]


def body_fitted_mesh(
    profile: Profile,
    half_width: float = 2.0,
    m: int = 4,
    nr: int = 2,
    x_up: float = -15.0,
    x_down: float = 25.0,
    y_half: float = 5.0,
    n_up: int = 4,
    n_down: int = 8,
    n_side: int = 2,
    grade: float = 1.35,
    curved: bool = False,
) -> Mesh2D:
    """Conforming all-quad mesh around a body: O-grid ring inside the
    central square of half-width ``half_width`` (m cells per side,
    nr radial rings), embedded in a graded structured frame covering
    [x_up, x_down] x [-y_half, y_half] — the Figure 11 (left) layout.

    Boundary tags: "inflow" (x = x_up), "outflow" (x = x_down),
    "side" (y = +-y_half), "wall" (body surface).  ``curved=True``
    attaches the exact body profile to the wall edges (iso-parametric
    body representation for any profile, cylinder or wing).
    """
    hw = half_width
    if not (x_up < -hw < hw < x_down and y_half > hw):
        raise ValueError("central square must lie strictly inside the domain")
    if m < 1 or nr < 1:
        raise ValueError("m and nr must be >= 1")

    xs = np.concatenate(
        [
            _graded(x_up, -hw, n_up, 1.0 / grade)[:-1],
            np.linspace(-hw, hw, m + 1)[:-1],
            _graded(hw, x_down, n_down, grade),
        ]
    )
    ys = np.concatenate(
        [
            _graded(-y_half, -hw, n_side, 1.0 / grade)[:-1],
            np.linspace(-hw, hw, m + 1)[:-1],
            _graded(hw, y_half, n_side, grade),
        ]
    )
    nx_tot, ny_tot = xs.size - 1, ys.size - 1
    ix0, iy0 = n_up, n_side  # grid index of the square's lower-left corner
    nid = lambda i, j: j * (nx_tot + 1) + i  # noqa: E731

    verts: list[tuple[float, float]] = [(x, y) for y in ys for x in xs]
    elems: list[tuple[int, ...]] = []
    tags: dict[str, list[tuple[int, int]]] = {
        "inflow": [],
        "outflow": [],
        "side": [],
        "wall": [],
    }

    inside = lambda i, j: ix0 <= i < ix0 + m and iy0 <= j < iy0 + m  # noqa: E731
    for j in range(ny_tot):
        for i in range(nx_tot):
            if inside(i, j):
                continue
            e = len(elems)
            elems.append((nid(i, j), nid(i + 1, j), nid(i + 1, j + 1), nid(i, j + 1)))
            if i == 0:
                tags["inflow"].append((e, 3))
            if i == nx_tot - 1:
                tags["outflow"].append((e, 1))
            if j == 0:
                tags["side"].append((e, 0))
            if j == ny_tot - 1:
                tags["side"].append((e, 2))

    # Square perimeter nodes, CCW from the lower-left corner.
    per: list[int] = []
    for i in range(m):  # bottom, left -> right
        per.append(nid(ix0 + i, iy0))
    for j in range(m):  # right, bottom -> top
        per.append(nid(ix0 + m, iy0 + j))
    for i in range(m):  # top, right -> left
        per.append(nid(ix0 + m - i, iy0 + m))
    for j in range(m):  # left, top -> bottom
        per.append(nid(ix0, iy0 + m - j))
    nper = 4 * m

    tpar = np.arange(nper) / nper
    bx, by = profile(tpar)
    sq = np.array([verts[k] for k in per])
    # Ring node ids: ring[i][k]; i = 0 on the body, i = nr on the square.
    ring: list[list[int]] = []
    for i in range(nr):
        frac = i / nr
        ids = []
        for k in range(nper):
            px = bx[k] + frac * (sq[k, 0] - bx[k])
            py = by[k] + frac * (sq[k, 1] - by[k])
            ids.append(len(verts))
            verts.append((px, py))
        ring.append(ids)
    ring.append(list(per))

    for i in range(nr):
        for k in range(nper):
            k1 = (k + 1) % nper
            e = len(elems)
            elems.append((ring[i][k], ring[i + 1][k], ring[i + 1][k1], ring[i][k1]))
            if i == 0:
                tags["wall"].append((e, 3))  # local edge (v0, v3) is on the body

    # Frame nodes strictly inside the central square belong to no element;
    # compact them away so the dof map has no orphan (zero-row) vertices.
    used = sorted({v for e in elems for v in e})
    remap = {old: new for new, old in enumerate(used)}
    verts_arr = np.asarray(verts)[used]
    elems = [tuple(remap[v] for v in e) for e in elems]
    mesh = Mesh2D(verts_arr, elems, tags)
    if curved:
        # The k-th wall edge spans body parameters [k, k+1] / nper along
        # its intrinsic (v0 -> v3) direction.
        for idx, (ei, le) in enumerate(mesh.boundary_tags["wall"]):
            t0, t1 = idx / nper, (idx + 1) / nper

            def curve(s, t0=t0, t1=t1):
                s = np.asarray(s, dtype=np.float64)
                return profile(t0 + (t1 - t0) * 0.5 * (1.0 + s))

            mesh.curves[(ei, le)] = curve
    return mesh


def bluff_body_mesh(
    m: int = 4,
    nr: int = 2,
    refine: int = 1,
    radius: float = 0.5,
    curved: bool = False,
) -> Mesh2D:
    """The paper's bluff-body (circular cylinder) wake domain,
    Figure 11 left: [-15, 25] x [-5, 5] with a diameter-2*radius body
    at the origin.  ``refine`` scales the cell counts everywhere;
    ``curved=True`` attaches exact circular arcs to the wall edges
    (iso-parametric body representation)."""
    mesh = body_fitted_mesh(
        circle_profile(radius),
        m=m * refine,
        nr=nr * refine,
        n_up=4 * refine,
        n_down=8 * refine,
        n_side=2 * refine,
    )
    if curved:
        attach_circular_wall(mesh, radius=radius)
    return mesh


def attach_circular_wall(
    mesh: Mesh2D,
    radius: float = 0.5,
    center: tuple[float, float] = (0.0, 0.0),
    tag: str = "wall",
) -> None:
    """Register exact circle arcs on every tagged wall edge (the edges'
    vertices must already lie on the circle)."""
    from .curved import circular_arc

    for ei, le in mesh.boundary_sides(tag):
        a, b = mesh.elements[ei].edge_vertices(le)
        mesh.curves[(ei, le)] = circular_arc(
            mesh.vertices[a], mesh.vertices[b], center
        )


def annulus_mesh(
    ntheta: int = 8,
    nr: int = 2,
    r0: float = 0.5,
    r1: float = 1.0,
    curved: bool = True,
) -> Mesh2D:
    """All-quad annulus between radii r0 and r1, tags "inner"/"outer";
    with ``curved`` the ring edges are exact circle arcs — the standard
    curved-geometry convergence testbed."""
    if not (0 < r0 < r1) or ntheta < 3 or nr < 1:
        raise ValueError("bad annulus parameters")
    verts = []
    for i in range(nr + 1):
        r = r0 + (r1 - r0) * i / nr
        for k in range(ntheta):
            th = 2 * np.pi * k / ntheta
            verts.append((r * np.cos(th), r * np.sin(th)))
    nid = lambda i, k: i * ntheta + (k % ntheta)  # noqa: E731
    elems = []
    tags: dict[str, list[tuple[int, int]]] = {"inner": [], "outer": []}
    for i in range(nr):
        for k in range(ntheta):
            e = len(elems)
            elems.append((nid(i, k), nid(i + 1, k), nid(i + 1, k + 1), nid(i, k + 1)))
            if i == 0:
                tags["inner"].append((e, 3))  # edge (v0, v3) on r = r0
            if i == nr - 1:
                tags["outer"].append((e, 1))  # edge (v1, v2) on r = r1
    mesh = Mesh2D(np.asarray(verts), elems, tags)
    if curved:
        from .curved import circular_arc

        for eid, edge in enumerate(mesh.edges):
            a, b = edge.vertices
            ra = np.hypot(*mesh.vertices[a])
            rb = np.hypot(*mesh.vertices[b])
            if abs(ra - rb) < 1e-12:  # circumferential edge -> arc
                for ei, le in edge.elements:
                    va, vb = mesh.elements[ei].edge_vertices(le)
                    mesh.curves[(ei, le)] = circular_arc(
                        mesh.vertices[va], mesh.vertices[vb]
                    )
    return mesh


def wing_mesh(
    m: int = 6,
    nr: int = 2,
    code: str = "4420",
    chord: float = 1.0,
    curved: bool = False,
) -> Mesh2D:
    """Body-fitted mesh around a NACA wing (the paper's flapping-wing
    geometry, Figure 11 right), on a 10 x 5-proportioned domain."""
    return body_fitted_mesh(
        naca_profile(code, chord),
        half_width=1.25 * chord,
        m=m,
        nr=nr,
        x_up=-3.5,
        x_down=6.5,
        y_half=2.5,
        n_up=2,
        n_down=4,
        n_side=1,
        curved=curved,
    )
