"""Chrome trace-event / Perfetto JSON exporter and re-importer.

Serialises a :class:`~repro.obs.tracer.Trace` to the Trace Event Format
(the JSON consumed by ``chrome://tracing`` and https://ui.perfetto.dev):
one process, one thread track per rank, complete ("X") events for
spans, instant ("i") events for samples, plus thread-name metadata.
Timestamps are microseconds; virtual-cluster traces are virtual
``MPI_Wtime`` microseconds, so the browsable timeline IS the paper's
cost model laid out per rank.

The re-importer (:func:`load_chrome_trace` / :func:`stage_breakdown`)
reconstructs the Figure 12-16 per-stage cpu/wall/idle accounting from a
trace file alone — ``repro.apps.trace_report`` round-trips through the
JSON so the report provably derives from the artifact, not from
solver-internal state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..util.timing import StageTimer
from .tracer import Trace, TraceEvent

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "stage_breakdown",
    "idle_by_peer",
]

_US = 1.0e6  # seconds -> trace-event microseconds


def to_chrome_trace(
    trace: Trace,
    rank_traces: dict[int, list[str]] | None = None,
    label: str = "repro virtual cluster",
) -> dict[str, Any]:
    """Render a Trace as a Trace-Event-Format dict.

    ``rank_traces`` (from :meth:`VirtualCluster.rank_traces`) attaches
    each rank's most recent communication event strings to its thread
    metadata, so the comm verifier's view and the timeline share one
    artifact.
    """
    process_args: dict[str, Any] = {"name": label}
    if trace.annotations:
        process_args["annotations"] = dict(trace.annotations)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": process_args,
        }
    ]
    for rank in sorted(trace.tracers):
        meta_args: dict[str, Any] = {"name": f"rank {rank}"}
        if rank_traces and rank in rank_traces:
            meta_args["recent_comm_events"] = list(rank_traces[rank])
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": meta_args,
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"sort_index": rank},
            }
        )
    for ev in trace.events():
        entry: dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat or "default",
            "ph": ev.ph,
            "ts": ev.ts * _US,
            "pid": 0,
            "tid": ev.rank,
        }
        if ev.ph == "X":
            entry["dur"] = ev.dur * _US
        if ev.ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        if ev.args:
            entry["args"] = ev.args
        events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: Trace,
    path: str | Path,
    rank_traces: dict[int, list[str]] | None = None,
    label: str = "repro virtual cluster",
) -> Path:
    """Write the trace JSON; returns the path written."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace, rank_traces, label), fh, indent=1)
        fh.write("\n")
    return path


def load_chrome_trace(path: str | Path) -> list[TraceEvent]:
    """Read a trace JSON back into :class:`TraceEvent` records.

    Metadata ("M") events are dropped; timestamps come back in seconds.
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events: list[TraceEvent] = []
    for entry in doc["traceEvents"]:
        if entry.get("ph") == "M":
            continue
        events.append(
            TraceEvent(
                name=entry["name"],
                cat=entry.get("cat", ""),
                ts=entry["ts"] / _US,
                dur=entry.get("dur", 0.0) / _US,
                rank=int(entry.get("tid", 0)),
                args=entry.get("args"),
                ph=entry.get("ph", "X"),
            )
        )
    return events


def stage_breakdown(
    events: list[TraceEvent], rank: int | None = None
) -> StageTimer:
    """Per-stage cpu/wall accounting recovered from ``stage`` spans.

    Each stage span carries its virtual ``cpu``/``wall`` deltas in
    ``args`` (written by the solver's stage scope); summing them into a
    :class:`StageTimer` reproduces the Figure 12-16 breakdown, with
    ``wall - cpu`` per stage being the attributed idle time.  ``rank``
    restricts to one rank track; the default merges all ranks.
    """
    timer = StageTimer()
    for ev in events:
        if ev.cat != "stage" or ev.ph != "X":
            continue
        if rank is not None and ev.rank != rank:
            continue
        args = ev.args or {}
        wall = float(args.get("wall", ev.dur))
        cpu = float(args.get("cpu", wall))
        timer.add(ev.name, cpu=cpu, wall=wall)
    return timer


def idle_by_peer(events: list[TraceEvent]) -> dict[int, float]:
    """Total idle-wait seconds per rank (sum of ``idle`` span durations)."""
    out: dict[int, float] = {}
    for ev in events:
        if ev.cat == "idle" and ev.ph == "X":
            out[ev.rank] = out.get(ev.rank, 0.0) + ev.dur
    return out
