"""Persistent run ledger: append-only JSONL memory across bench runs.

Every bench CLI run forgets its predecessors — the regression gate
(``benchmarks/check_regression.py``) only ever compares one fresh
report against one committed baseline.  The ledger is the cross-run
memory underneath the ROADMAP's campaign-engine item: each run appends
one JSON line keyed by a **config fingerprint** (a stable hash of the
run's configuration: machine, network, mesh/order, ranks, workload
knobs), so ``repro.apps.perf_report`` can render per-configuration
trajectories and flag drift against history instead of a single pin.

Record schema (``schema: 1``)::

    {
      "schema": 1,
      "bench":  "scaling_bench",
      "ts":     "2026-08-09T12:00:00+00:00",   # host time, metadata only
      "git_rev": "d8aafb5" | null,
      "fingerprint": "9f3a...",                 # hash of "config" only
      "config":  {...},                         # what was run
      "status":  "ok" | "failed",               # job outcome (default "ok")
      "values":  {flat key: number},            # deterministic quantities
      "timings": {flat key: seconds},           # host timings (drift warns)
      "critpath": {...} | null,                 # critical-path summary
      "metrics": {...} | null                   # metrics snapshot
    }

Records may carry an ``"error"`` string when ``status`` is ``failed``
(the campaign engine records why a job died).  Older ledgers predate the
``status`` field; readers treat a missing status as ``"ok"``.

The fingerprint hashes only ``config`` (canonical JSON), never the
timestamp or git revision: drift *across* revisions of the same
configuration is exactly what trend analysis must see, so the revision
rides in the record for attribution instead of splitting the history.
Host wall time appears only as record metadata — everything virtual
stays deterministic, which is what lets ``perf_report`` hard-flag
changes in ``values`` while merely warning on ``timings``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "config_fingerprint",
    "git_rev",
    "flatten_report",
    "is_timing_key",
    "split_flat",
    "RunLedger",
    "append_bench_record",
    "iter_timing_drift",
]


def config_fingerprint(config: dict[str, Any]) -> str:
    """Stable 16-hex-char fingerprint of a run configuration.

    Canonical-JSON hash: insensitive to dict ordering, stable across
    processes and platforms (asserted by the tier-1 tests).  Floats are
    serialised by ``repr`` via :func:`json.dumps`, so numerically equal
    configs hash equal.
    """
    blob = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_rev(root: str | Path | None = None) -> str | None:
    """Short git revision of the working tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=None if root is None else str(root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def flatten_report(report: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten nested dicts/lists to dotted scalar leaves.

    ``{"a": {"b": 1}, "c": [2, 3]}`` -> ``{"a.b": 1, "c.0": 2, "c.1": 3}``.
    Non-scalar leaves that aren't dict/list (None, etc.) are kept as-is.
    """
    flat: dict[str, Any] = {}
    if isinstance(report, dict):
        for k in sorted(report, key=str):
            key = f"{prefix}.{k}" if prefix else str(k)
            flat.update(flatten_report(report[k], key))
    elif isinstance(report, (list, tuple)):
        for i, v in enumerate(report):
            key = f"{prefix}.{i}" if prefix else str(i)
            flat.update(flatten_report(v, key))
    else:
        flat[prefix] = report
    return flat


def is_timing_key(key: str) -> bool:
    """Host-timing keys: wall-clock quantities whose drift only warns.

    Mirrors the regression gate's convention — ``*_s`` suffixes and
    speedup ratios are host measurements; everything else in a bench
    report is treated as deterministic.
    """
    leaf = key.rsplit(".", 1)[-1]
    return leaf.endswith("_s") or "speedup" in leaf or "elapsed" in leaf


def split_flat(report: Any) -> tuple[dict[str, Any], dict[str, float]]:
    """Flatten a bench report and split (deterministic values, timings)."""
    values: dict[str, Any] = {}
    timings: dict[str, float] = {}
    for key, val in flatten_report(report).items():
        if is_timing_key(key):
            if isinstance(val, (int, float)) and not isinstance(val, bool):
                timings[key] = float(val)
        else:
            values[key] = val
    return values, timings


class RunLedger:
    """Append-only JSONL store of bench run records.

    One line per run.  Concurrent appenders — campaign workers in one
    process, or several bench processes sharing one ledger — are safe at
    line granularity: the record is serialised to one buffer first and
    written with a single ``os.write`` on an ``O_APPEND`` descriptor, so
    the kernel's atomic append positioning keeps lines from interleaving
    (a buffered ``fh.write`` gives no such guarantee: the stdio layer
    may flush a line in several chunks).  Reading tolerates nothing: a
    corrupt line is a real error and raises, because silent skipping
    would turn the drift detector blind exactly when something went
    wrong.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(
        self,
        bench: str,
        config: dict[str, Any],
        *,
        report: Any = None,
        values: dict[str, Any] | None = None,
        timings: dict[str, float] | None = None,
        critpath: dict[str, Any] | None = None,
        metrics: dict[str, Any] | None = None,
        status: str = "ok",
        error: str | None = None,
    ) -> dict[str, Any]:
        """Append one run record; returns the record written.

        Pass the whole bench ``report`` to have it split into
        deterministic ``values`` and host ``timings`` automatically, or
        pass the two dicts explicitly (explicit wins).  ``status`` is
        the completion marker the campaign engine resumes from: only
        ``"ok"`` records mark a fingerprint as done.
        """
        if status not in ("ok", "failed"):
            raise ValueError(f"status must be 'ok' or 'failed', not {status!r}")
        auto_values: dict[str, Any] = {}
        auto_timings: dict[str, float] = {}
        if report is not None:
            auto_values, auto_timings = split_flat(report)
        record = {
            "schema": 1,
            "bench": bench,
            "ts": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "git_rev": git_rev(),
            "fingerprint": config_fingerprint(config),
            "config": config,
            "status": status,
            "values": values if values is not None else auto_values,
            "timings": timings if timings is not None else auto_timings,
            "critpath": critpath,
            "metrics": metrics,
        }
        if error is not None:
            record["error"] = str(error)
        self._write_line(json.dumps(record, sort_keys=True))
        return record

    def _write_line(self, line: str) -> None:
        """Atomically append one line: serialise first, one os.write.

        O_APPEND makes the kernel pick the offset at write time, so
        concurrent appenders (threads or processes) cannot clobber each
        other; emitting the whole line in a single write keeps it from
        interleaving with another writer's line.
        """
        data = (line + "\n").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            written = os.write(fd, data)
            if written != len(data):
                raise OSError(
                    f"short ledger write: {written} of {len(data)} bytes"
                )
        finally:
            os.close(fd)

    def records(
        self,
        bench: str | None = None,
        fingerprint: str | None = None,
    ) -> list[dict[str, Any]]:
        """All records, oldest first, optionally filtered."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: corrupt ledger line: {exc}"
                    ) from exc
                if bench is not None and rec.get("bench") != bench:
                    continue
                if fingerprint is not None and rec.get("fingerprint") != fingerprint:
                    continue
                out.append(rec)
        return out

    def history(self, fingerprint: str) -> list[dict[str, Any]]:
        """Records of one configuration, oldest first."""
        return self.records(fingerprint=fingerprint)

    def fingerprints(self) -> list[str]:
        """Distinct fingerprints in first-seen order."""
        seen: dict[str, None] = {}
        for rec in self.records():
            seen.setdefault(rec.get("fingerprint", ""), None)
        return [f for f in seen if f]

    def grouped(self) -> dict[str, list[dict[str, Any]]]:
        """fingerprint -> records (oldest first), first-seen order."""
        groups: dict[str, list[dict[str, Any]]] = {}
        for rec in self.records():
            groups.setdefault(rec.get("fingerprint", ""), []).append(rec)
        groups.pop("", None)
        return groups

    def grouped_by_bench(self) -> dict[tuple[str, str], list[dict[str, Any]]]:
        """(bench, fingerprint) -> records (oldest first), first-seen order.

        The history key :mod:`repro.apps.perf_report` compares against:
        two benches that happen to share a config fingerprint must not
        pool their timing histories.
        """
        groups: dict[tuple[str, str], list[dict[str, Any]]] = {}
        for rec in self.records():
            fp = rec.get("fingerprint", "")
            if not fp:
                continue
            groups.setdefault((str(rec.get("bench", "")), fp), []).append(rec)
        return groups

    # -- completion index (the campaign engine's resumable store) ----------------

    def statuses(self, bench: str | None = None) -> dict[str, str]:
        """fingerprint -> status of its *latest* record.

        Records written before the status field default to ``"ok"``
        (they predate failure recording, and every pre-campaign bench
        appended only after a successful run).
        """
        out: dict[str, str] = {}
        for rec in self.records(bench=bench):
            fp = rec.get("fingerprint", "")
            if fp:
                out[fp] = str(rec.get("status", "ok"))
        return out

    def completed(self, bench: str | None = None) -> set[str]:
        """Fingerprints whose latest record finished ok.

        A restarted campaign skips exactly this set: pending jobs never
        reached the ledger, and failed jobs' latest status is
        ``"failed"``, so both re-run.
        """
        return {
            fp for fp, st in self.statuses(bench=bench).items() if st == "ok"
        }


def append_bench_record(
    ledger_path: str | Path,
    bench: str,
    results: dict[str, Any],
) -> dict[str, Any]:
    """Append one bench CLI result dict to a ledger (the ``--ledger`` flag).

    Expects the bench convention: ``results["config"]`` is the run
    configuration (fingerprinted), an optional ``results["critpath"]``
    block rides in the dedicated field, and everything else is the
    report proper (split into deterministic values vs host timings).
    """
    report = {
        k: v for k, v in results.items() if k not in ("config", "critpath")
    }
    return RunLedger(ledger_path).append(
        bench,
        dict(results.get("config", {})),
        report=report,
        critpath=results.get("critpath"),
    )


def iter_timing_drift(
    history: Iterable[dict[str, Any]],
    rtol: float = 0.5,
) -> list[dict[str, Any]]:
    """Trend-aware drift findings for one fingerprint's history.

    Compares the latest record against the *median* of each timing key
    over the earlier records (so one noisy run doesn't poison the
    reference), and the latest deterministic values against the
    immediately preceding record (any change is a hard finding).
    Returns a list of finding dicts sorted most-severe first.

    Reference-history contract (pinned by the tier-1 tests):

    * the latest run is **excluded** from its own reference before the
      median is taken — folding it in would drag the reference towards
      the very run under test and dampen real regressions;
    * a single-sample reference (``nref == 1``, i.e. a two-run history)
      still compares, but the finding is downgraded to
      ``suspect-regression`` / ``suspect-improvement``: one reference
      run cannot distinguish "the code regressed" from "the first run
      was noisy", so strict gates treat these as warnings.
    """
    hist = list(history)
    if len(hist) < 2:
        return []
    # hist[:-1]: the run under test never contributes to its own
    # reference median.
    latest, earlier = hist[-1], hist[:-1]
    findings: list[dict[str, Any]] = []
    # Host timings vs median of history: warn-level drift.
    for key, val in sorted(latest.get("timings", {}).items()):
        samples = sorted(
            rec["timings"][key]
            for rec in earlier
            if key in rec.get("timings", {})
        )
        if not samples:
            continue
        mid = len(samples) // 2
        median = (
            samples[mid]
            if len(samples) % 2
            else 0.5 * (samples[mid - 1] + samples[mid])
        )
        if median <= 0:
            continue
        ratio = val / median
        if ratio > 1.0 + rtol or ratio < 1.0 / (1.0 + rtol):
            severity = "regression" if ratio > 1.0 else "improvement"
            if len(samples) == 1:
                severity = f"suspect-{severity}"
            findings.append(
                {
                    "severity": severity,
                    "kind": "timing",
                    "key": key,
                    "latest": val,
                    "reference": median,
                    "ratio": ratio,
                    "nref": len(samples),
                }
            )
    # Deterministic values vs the previous record: hard drift.
    prev = earlier[-1]
    for key, val in sorted(latest.get("values", {}).items()):
        if key not in prev.get("values", {}):
            continue
        ref = prev["values"][key]
        if isinstance(val, float) and isinstance(ref, (int, float)):
            changed = val != ref
        else:
            changed = val != ref
        if changed:
            findings.append(
                {
                    "severity": "drift",
                    "kind": "value",
                    "key": key,
                    "latest": val,
                    "reference": ref,
                }
            )
    order = {
        "drift": 0,
        "regression": 1,
        "suspect-regression": 2,
        "improvement": 3,
        "suspect-improvement": 4,
    }
    findings.sort(key=lambda f: (order.get(f["severity"], 5), f["key"]))
    return findings
