"""Metrics registry: counters, gauges, and histograms.

The second leg of the observability layer (the first is the span tracer
of :mod:`repro.obs.tracer`): low-rate aggregate signals that do not
belong on a timeline — message-size histograms, PCG iteration counts,
cache-hit rates for the Dirichlet-value and factor-slab caches.

The module-level helpers (:func:`inc`, :func:`observe`, :func:`set_gauge`)
are no-ops unless a registry is activated with :func:`use_registry`, so
instrumented hot paths pay one global read when metrics are off.  The
registry is process-global (not thread-local) on purpose: simmpi rank
threads aggregate into the same instruments, which take an internal
lock only on update.

Like the tracer, nothing here charges the ambient
:class:`~repro.linalg.counters.OpCounter` — metrics on/off leaves
flop/byte accounting byte-identical.
"""

from __future__ import annotations

import threading
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "use_registry",
    "scoped",
    "inc",
    "observe",
    "set_gauge",
    "hit_rate",
]

_active: "MetricsRegistry | None" = None
_active_lock = threading.Lock()


class Counter:
    """Monotonically increasing count (events, bytes, cache hits)."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-observed value (residuals, queue depths)."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Power-of-two bucketed distribution (message sizes, iterations).

    Bucket ``i`` counts observations in ``(2^(i-1), 2^i]``, with bucket
    0 holding everything <= 1; exact count/sum/min/max ride along so
    means stay exact even though the shape is bucketed.
    """

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    @staticmethod
    def bucket_of(value: float) -> int:
        if value <= 1.0:
            return 0
        b = 0
        edge = 1.0
        while edge < value:
            edge *= 2.0
            b += 1
        return b

    def observe(self, value: float) -> None:
        value = float(value)
        b = self.bucket_of(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            # bucket upper edges (2^i) -> count, sorted for readability
            "buckets": {
                str(int(2**b)): n for b, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Create-or-get instrument store with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, self._lock)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict[str, dict]:
        """name -> instrument snapshot, JSON-serialisable."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(items)}

    def reset(self) -> None:
        """Drop every instrument, returning the registry to birth state.

        For long-lived registries observing back-to-back clusters in
        one process (the campaign-engine pattern): reset between runs
        instead of replacing the registry, so handles held by callers
        keep pointing at the live store.
        """
        with self._lock:
            self._instruments.clear()

    def hit_rate(self, prefix: str) -> float | None:
        """Hit rate of a ``<prefix>.hits`` / ``<prefix>.misses`` pair."""
        with self._lock:
            hits = self._instruments.get(f"{prefix}.hits")
            misses = self._instruments.get(f"{prefix}.misses")
        h = hits.value if isinstance(hits, Counter) else 0.0
        m = misses.value if isinstance(misses, Counter) else 0.0
        total = h + m
        return None if total == 0 else h / total


# -- process-global activation --------------------------------------------------


def active_registry() -> MetricsRegistry | None:
    """The activated registry, or None (metrics disabled)."""
    return _active


class _RegistryScope:
    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._prev: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        global _active
        with _active_lock:
            self._prev = _active
            _active = self._registry
        return self._registry

    def __exit__(self, *exc: object) -> None:
        global _active
        with _active_lock:
            _active = self._prev


def use_registry(registry: MetricsRegistry | None = None) -> _RegistryScope:
    """Activate a registry for the duration of a ``with`` block."""
    return _RegistryScope(registry if registry is not None else MetricsRegistry())


def scoped(registry: MetricsRegistry | None = None) -> _RegistryScope:
    """Activate a *freshly reset* registry for one measurement scope.

    The scoped-reset helper for back-to-back clusters in one process:
    ``with metrics.scoped() as reg:`` guarantees ``reg`` starts empty
    (a passed-in long-lived registry is reset on entry) and deactivates
    on exit, so consecutive runs never bleed counters into each other.
    """
    if registry is None:
        registry = MetricsRegistry()
    else:
        registry.reset()
    return _RegistryScope(registry)


def _instruments() -> Iterator[MetricsRegistry]:
    reg = _active
    if reg is not None:
        yield reg


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter in the active registry (no-op when disabled)."""
    for reg in _instruments():
        reg.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    for reg in _instruments():
        reg.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    for reg in _instruments():
        reg.gauge(name).set(value)


def hit_rate(prefix: str) -> float | None:
    """Hit rate from the active registry, or None when disabled/empty."""
    reg = _active
    return None if reg is None else reg.hit_rate(prefix)
