"""Critical-path profiler: the happens-before event graph, priced.

The virtual cluster already *prices* every event (Hockney point-to-point
model, collective formulas, fault surcharges) but discards the structure
between them: which chain of compute segments, message deliveries and
collective joins actually bounds the makespan.  This module records that
structure as a DAG and answers the paper's Figures 12-16 question
quantitatively — *why* is the makespan what it is.

Model
-----
Nodes are rank-local events anchored at virtual wall timestamps: a
per-rank ``start``, every ``send``/``recv`` completion, collective
``arrive``/``sync``/``release`` points, and a per-rank ``finish``.
Edges carry the priced virtual-seconds between events, split into five
resources:

* ``cpu``       — application compute (BLAS/app-model seconds),
* ``overhead``  — protocol-stack CPU that also occupies the wall clock
  (TCP copies/checksums: ``cpu_overhead_per_byte``),
* ``latency``   — per-message/per-round zero-byte cost (plus the
  rendezvous handshake),
* ``bandwidth`` — wire occupancy (bytes over link bandwidth, including
  retransmitted copies and congestion/half-duplex stretch),
* ``idle``      — time no resource is used: RTO backoff waits and
  expired virtual recv timeouts.

Each node's recorded timestamp satisfies ``t(node) = max over in-edges
of (t(src) + cost(edge))`` (up to float association), so the graph
*re-derives* the simulator's clocks rather than approximating them —
:meth:`EventGraph.validate` asserts this.  Collective rendezvous are
collapsed to ``P arrivals -> 1 sync -> 1 release`` (2P+2 edges, not
P^2), which is what keeps 1024-rank graphs cheap.

The creation order of nodes is a valid topological order under both
scheduler engines (an edge's source always exists before its target),
so longest-path and counterfactual re-weighting are single O(V+E)
passes — no re-run of the cluster.

Counterfactuals
---------------
:func:`whatif` re-weights edge components (zero latency, infinite
bandwidth, remove-straggler via per-rank cpu scaling);
:func:`swap_network` re-prices communication edges under a different
:class:`~repro.machines.network.NetworkModel` using the byte counts and
participant counts stashed on each edge.  Both recompute node times in
one pass over the recorded graph.

Charge parity: the recorder reads rank state and appends to its own
lists — it never touches virtual clocks, byte ledgers, the OpCounter,
or sanitizer vector clocks (pinned byte-identical by the tier-1
hypothesis tests, like the tracer and the race detector).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .tracer import current_stage

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.network import NetworkModel
    from ..parallel.simmpi import VirtualCluster

__all__ = [
    "RESOURCES",
    "Edge",
    "EventGraph",
    "CritPathRecorder",
    "PathSegment",
    "CriticalPath",
    "critical_path",
    "whatif",
    "swap_network",
    "analyze",
    "aggregate_analyses",
    "render_critpath_report",
]

#: The five cost resources every edge decomposes into.
RESOURCES = ("cpu", "overhead", "latency", "bandwidth", "idle")


@dataclass
class Edge:
    """One happens-before edge with its priced cost decomposition.

    The byte/participant metadata (``nbytes``, ``ebytes``, ``obytes``,
    ``n``, ``stretch``, ``factor``) exists purely so counterfactual
    re-pricing can re-derive the components under a different network:

    * ``nbytes`` — logical payload bytes (per message / max chunk),
    * ``ebytes`` — effective wire bytes: link-factor-scaled, including
      retransmitted copies (``bandwidth == ebytes / old_bw``),
    * ``obytes`` — bytes through the protocol stack
      (``overhead == cpu_overhead_per_byte * obytes``),
    * ``n``      — participant count (collective edges),
    * ``stretch``— degraded-link round stretch (alltoall),
    * ``factor`` — per-link degradation factor (message edges).
    """

    src: int
    cpu: float = 0.0
    overhead: float = 0.0
    latency: float = 0.0
    bandwidth: float = 0.0
    idle: float = 0.0
    kind: str = "local"
    nbytes: float = 0.0
    ebytes: float = 0.0
    obytes: float = 0.0
    n: int = 0
    stretch: float = 1.0
    factor: float = 1.0

    def total(self) -> float:
        return self.cpu + self.overhead + self.latency + self.bandwidth + self.idle

    def components(self) -> dict[str, float]:
        return {
            "cpu": self.cpu,
            "overhead": self.overhead,
            "latency": self.latency,
            "bandwidth": self.bandwidth,
            "idle": self.idle,
        }


# weight(edge, dst_node_index) -> seconds, for counterfactual passes.
WeightFn = Callable[[Edge, int], float]


class EventGraph:
    """The recorded happens-before DAG of one ``VirtualCluster.run``.

    Node arrays are parallel lists indexed by node id; ``in_edges[i]``
    holds the edges ending at node ``i``.  Node ids are assigned in a
    valid topological order (see module docstring), which
    :meth:`recompute` exploits.
    """

    def __init__(self, nprocs: int, network: "NetworkModel | None" = None):
        self.nprocs = nprocs
        self.network = network
        # Deserialized graphs know the recorded network only by name
        # (the model itself is not persisted); see ``network_name``.
        self._network_name: str | None = None
        self.node_rank: list[int] = []
        self.node_kind: list[str] = []
        self.node_label: list[str] = []
        self.node_stage: list[str | None] = []
        self.node_t: list[float] = []
        self.in_edges: list[list[Edge]] = []

    def __len__(self) -> int:
        return len(self.node_t)

    @property
    def nedges(self) -> int:
        return sum(len(es) for es in self.in_edges)

    @property
    def network_name(self) -> str | None:
        """Name of the network the graph was recorded under, if known."""
        if self.network is not None:
            return self.network.name
        return self._network_name

    def add_node(
        self,
        rank: int,
        kind: str,
        label: str,
        t: float,
        stage: str | None = None,
    ) -> int:
        self.node_rank.append(rank)
        self.node_kind.append(kind)
        self.node_label.append(label)
        self.node_stage.append(stage)
        self.node_t.append(t)
        self.in_edges.append([])
        return len(self.node_t) - 1

    def add_edge(self, dst: int, edge: Edge) -> Edge:
        if not 0 <= edge.src < len(self.node_t):
            raise ValueError(f"edge source {edge.src} does not exist")
        if edge.src >= dst:
            raise ValueError(
                f"edge {edge.src} -> {dst} violates topological node order"
            )
        self.in_edges[dst].append(edge)
        return edge

    # -- longest-path machinery ------------------------------------------------

    def recompute(self, weight: WeightFn | None = None) -> list[float]:
        """Node times implied by the edges (one pass, creation order).

        Source nodes (no in-edges) keep their recorded anchor — a
        reused cluster's clocks do not restart at zero.  With a
        ``weight`` override this evaluates a counterfactual timing.
        """
        t: list[float] = [0.0] * len(self.node_t)
        for i, edges in enumerate(self.in_edges):
            if not edges:
                t[i] = self.node_t[i]
                continue
            best = None
            for e in edges:
                cand = t[e.src] + (e.total() if weight is None else weight(e, i))
                if best is None or cand > best:
                    best = cand
            t[i] = best if best is not None else self.node_t[i]
        return t

    def makespan(self, weight: WeightFn | None = None) -> float:
        """Virtual makespan implied by the (possibly re-weighted) graph.

        Measured from the earliest source anchor, so graphs recorded on
        reused clusters (nonzero starting clocks) stay comparable.
        """
        t = self.recompute(weight)
        return max(t, default=0.0) - self.t0

    @property
    def t0(self) -> float:
        """Earliest source anchor (0.0 on a fresh cluster)."""
        starts = [
            self.node_t[i] for i, es in enumerate(self.in_edges) if not es
        ]
        return min(starts, default=0.0)

    # -- serialization (campaign artifacts) ------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form of the recorded graph.

        The campaign engine persists each job's graph next to the run
        ledger so ``campaign search`` can re-weight it (``whatif`` /
        ``swap_network``) long after the run, without re-running the
        cluster.  The network rides along by name only — counterfactual
        passes supply their own :class:`NetworkModel`.
        """
        return {
            "schema": 1,
            "nprocs": self.nprocs,
            "network": self.network_name,
            # Numeric fields are normalised (counts int, weights float)
            # so serialising a rebuilt graph is a byte-level fixed point.
            "nodes": [
                [
                    int(self.node_rank[i]),
                    self.node_kind[i],
                    self.node_label[i],
                    self.node_stage[i],
                    float(self.node_t[i]),
                ]
                for i in range(len(self.node_t))
            ],
            "edges": [
                [
                    int(dst),
                    int(e.src),
                    float(e.cpu),
                    float(e.overhead),
                    float(e.latency),
                    float(e.bandwidth),
                    float(e.idle),
                    e.kind,
                    float(e.nbytes),
                    float(e.ebytes),
                    float(e.obytes),
                    int(e.n),
                    float(e.stretch),
                    float(e.factor),
                ]
                for dst, edges in enumerate(self.in_edges)
                for e in edges
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EventGraph":
        """Rebuild a graph serialised by :meth:`to_dict`."""
        if data.get("schema") != 1:
            raise ValueError(
                f"unknown event-graph schema {data.get('schema')!r}"
            )
        g = cls(int(data["nprocs"]))
        g._network_name = data.get("network")
        for rank, kind, label, stage, t in data["nodes"]:
            g.add_node(int(rank), str(kind), str(label), float(t), stage)
        for dst, src, cpu, ovh, lat, bw, idle, kind, nb, eb, ob, n, st, fa in data[
            "edges"
        ]:
            g.add_edge(
                int(dst),
                Edge(
                    src=int(src),
                    cpu=float(cpu),
                    overhead=float(ovh),
                    latency=float(lat),
                    bandwidth=float(bw),
                    idle=float(idle),
                    kind=str(kind),
                    nbytes=float(nb),
                    ebytes=float(eb),
                    obytes=float(ob),
                    n=int(n),
                    stretch=float(st),
                    factor=float(fa),
                ),
            )
        return g

    def validate(self, rel: float = 1e-6) -> None:
        """Assert recorded anchors match edge-implied times.

        Tolerates float re-association between the simulator's
        incremental clock updates and the single-pass summation here.
        """
        t = self.recompute()
        span = max(abs(x) for x in self.node_t) if self.node_t else 1.0
        tol = rel * max(1e-30, span)
        for i, (got, want) in enumerate(zip(t, self.node_t)):
            if abs(got - want) > tol:
                raise AssertionError(
                    f"node {i} ({self.node_kind[i]} "
                    f"'{self.node_label[i]}' rank {self.node_rank[i]}): "
                    f"edge-implied t={got!r} vs recorded t={want!r}"
                )


# ---------------------------------------------------------------------------
# Recorder (the simmpi hook surface)
# ---------------------------------------------------------------------------


class _Pending:
    """Wall-clock components a rank accrued since its last node.

    Sender-side wire occupancy, protocol overhead and RTO/timeout idle
    land on the *next* local edge; ``ebytes``/``obytes`` ride along for
    counterfactual re-pricing.
    """

    __slots__ = ("bandwidth", "overhead", "idle", "ebytes", "obytes")

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.bandwidth = 0.0
        self.overhead = 0.0
        self.idle = 0.0
        self.ebytes = 0.0
        self.obytes = 0.0

    def total(self) -> float:
        return self.bandwidth + self.overhead + self.idle


class CritPathRecorder:
    """Observer recording the event graph of one ``VirtualCluster.run``.

    Attach via ``VirtualCluster(..., critpath=recorder)``; after the
    run, ``recorder.graph`` holds the priced DAG.  A new ``run()``
    starts a fresh graph.  Thread-safe (the thread engine calls hooks
    from rank threads); under the event engine the lock is uncontended.
    """

    def __init__(self) -> None:
        self.graph: EventGraph | None = None
        self._lock = threading.Lock()
        self._last: list[int] = []
        self._pending: list[_Pending] = []
        # send node -> (latency, wire, rto_idle, nbytes, factor) of the
        # in-flight message; consumed by the matching recv.
        self._msg: dict[int, tuple[float, float, float, float, float]] = {}
        # collective key -> list of (arrival node, rank)
        self._arrivals: dict[tuple[str, int], list[tuple[int, int]]] = {}
        # collective key -> (release node, remaining releases)
        self._release: dict[tuple[str, int], list[int]] = {}

    # -- run lifecycle ---------------------------------------------------------

    def on_run_begin(self, cluster: "VirtualCluster") -> None:
        with self._lock:
            g = EventGraph(cluster.nprocs, cluster.network)
            self.graph = g
            self._msg.clear()
            self._arrivals.clear()
            self._release.clear()
            self._pending = [_Pending() for _ in range(cluster.nprocs)]
            self._last = [
                g.add_node(r, "start", "start", cluster.ranks[r].wall)
                for r in range(cluster.nprocs)
            ]

    def on_run_finish(self, cluster: "VirtualCluster") -> None:
        with self._lock:
            g = self.graph
            if g is None:
                return
            for r in range(cluster.nprocs):
                node = g.add_node(r, "finish", "finish", cluster.ranks[r].wall)
                self._close_segment(r, node, cluster.ranks[r].wall)

    def _close_segment(
        self,
        rank: int,
        node: int,
        t_busy_end: float,
        extra_overhead: float = 0.0,
        extra_obytes: float = 0.0,
    ) -> None:
        """Local edge last[rank] -> node (lock held).

        ``t_busy_end`` is the rank's wall before any blocking at this
        event, so the residual after pending components is pure compute;
        ``extra_overhead`` folds in receiver-side protocol cost charged
        after the blocking point.
        """
        g = self.graph
        assert g is not None
        last = self._last[rank]
        p = self._pending[rank]
        cpu = max(0.0, t_busy_end - g.node_t[last] - p.total())
        g.add_edge(
            node,
            Edge(
                src=last,
                cpu=cpu,
                overhead=p.overhead + extra_overhead,
                bandwidth=p.bandwidth,
                idle=p.idle,
                kind="local",
                ebytes=p.ebytes,
                obytes=p.obytes + extra_obytes,
            ),
        )
        p.clear()
        self._last[rank] = node

    # -- point-to-point --------------------------------------------------------

    def on_send(
        self,
        *,
        rank: int,
        dest: int,
        tag: int,
        nbytes: float,
        t_start: float,
        ready: float,
        wire: float,
        overhead: float,
        nret: int,
        delay: float,
        factor: float,
        resend_cpu: float = 0.0,
    ) -> int:
        """Record a send; returns the node id the mailbox entry carries."""
        with self._lock:
            g = self.graph
            assert g is not None
            node = g.add_node(
                rank, "send", f"send->{dest} tag={tag}", t_start, current_stage()
            )
            self._close_segment(rank, node, t_start)
            # Message-edge split: ready = t_start + delay + factor *
            # send_time(nbytes); the wire term is factor * nbytes/bw,
            # the remainder is latency (plus any rendezvous handshake).
            self._msg[node] = (
                ready - t_start - delay - wire,
                wire,
                delay,
                nbytes,
                factor,
            )
            # Sender-side wall costs accrue onto the next local edge:
            # wire occupancy for each copy, protocol CPU (plus kernel
            # resend copies), RTO backoff as idle.
            p = self._pending[rank]
            p.bandwidth += wire * (1 + nret)
            p.overhead += overhead + resend_cpu
            p.idle += delay
            p.ebytes += factor * nbytes * (1 + nret)
            p.obytes += nbytes * (1 + nret)
            return node

    def on_recv(
        self,
        *,
        rank: int,
        source: int,
        tag: int,
        nbytes: float,
        t_busy_end: float,
        t_after: float,
        overhead: float,
        send_node: int | None,
    ) -> None:
        with self._lock:
            g = self.graph
            assert g is not None
            node = g.add_node(
                rank, "recv", f"recv<-{source} tag={tag}", t_after, current_stage()
            )
            self._close_segment(
                rank, node, t_busy_end,
                extra_overhead=overhead, extra_obytes=nbytes,
            )
            if send_node is not None:
                lat, wire, delay, mbytes, factor = self._msg.pop(send_node)
                g.add_edge(
                    node,
                    Edge(
                        src=send_node,
                        latency=lat,
                        bandwidth=wire,
                        idle=delay,
                        overhead=overhead,
                        kind="message",
                        nbytes=mbytes,
                        ebytes=factor * mbytes,
                        obytes=mbytes,
                        factor=factor,
                    ),
                )

    def on_wait_burn(self, rank: int, seconds: float) -> None:
        """An expired virtual recv timeout burned wall time as idle."""
        with self._lock:
            if self.graph is not None:
                self._pending[rank].idle += seconds

    # -- collectives -----------------------------------------------------------

    def on_collective_arrive(
        self, key: tuple[str, int], rank: int, t_arrive: float
    ) -> None:
        with self._lock:
            g = self.graph
            assert g is not None
            label = f"{key[0]}#{key[1]}"
            node = g.add_node(rank, "arrive", label, t_arrive, current_stage())
            self._close_segment(rank, node, t_arrive)
            self._arrivals.setdefault(key, []).append((node, rank))

    def on_collective_complete(
        self,
        key: tuple[str, int],
        t_start: float,
        t_done: float,
        components: dict[str, float],
        meta: dict[str, Any],
    ) -> None:
        """All ranks arrived: collapse the rendezvous to sync -> release.

        ``components`` (resource -> seconds) must sum to
        ``t_done - t_start``; ``meta`` carries the re-pricing fields
        (kind/n/nbytes/ebytes/obytes/stretch).
        """
        with self._lock:
            g = self.graph
            assert g is not None
            label = f"{key[0]}#{key[1]}"
            sync = g.add_node(-1, "sync", label, t_start)
            for node, _rank in self._arrivals.pop(key, []):
                g.add_edge(sync, Edge(src=node, kind="sync"))
            release = g.add_node(-1, "release", label, t_done)
            g.add_edge(
                release,
                Edge(
                    src=sync,
                    cpu=components.get("cpu", 0.0),
                    overhead=components.get("overhead", 0.0),
                    latency=components.get("latency", 0.0),
                    bandwidth=components.get("bandwidth", 0.0),
                    idle=components.get("idle", 0.0),
                    kind=str(meta.get("kind", key[0])),
                    nbytes=float(meta.get("nbytes", 0.0)),
                    ebytes=float(meta.get("ebytes", 0.0)),
                    obytes=float(meta.get("obytes", 0.0)),
                    n=int(meta.get("n", g.nprocs)),
                    stretch=float(meta.get("stretch", 1.0)),
                ),
            )
            self._release[key] = [release, g.nprocs]

    def on_collective_release(self, key: tuple[str, int], rank: int) -> None:
        with self._lock:
            if self.graph is None:
                return
            entry = self._release.get(key)
            if entry is None:  # defensive: release without completion
                return
            self._last[rank] = entry[0]
            entry[1] -= 1
            if entry[1] <= 0:
                del self._release[key]


# ---------------------------------------------------------------------------
# Critical-path extraction and attribution
# ---------------------------------------------------------------------------


@dataclass
class PathSegment:
    """One edge on the critical path, resolved to (rank, stage, label)."""

    rank: int
    stage: str | None
    label: str
    kind: str
    start: float
    end: float
    cpu: float = 0.0
    overhead: float = 0.0
    latency: float = 0.0
    bandwidth: float = 0.0
    idle: float = 0.0

    def total(self) -> float:
        return self.cpu + self.overhead + self.latency + self.bandwidth + self.idle

    def components(self) -> dict[str, float]:
        return {
            "cpu": self.cpu,
            "overhead": self.overhead,
            "latency": self.latency,
            "bandwidth": self.bandwidth,
            "idle": self.idle,
        }


@dataclass
class CriticalPath:
    """The longest virtual-time chain and its makespan attribution."""

    graph: EventGraph
    makespan: float
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def covered(self) -> float:
        """Seconds of the makespan explained by named path segments."""
        return sum(s.total() for s in self.segments)

    @property
    def coverage(self) -> float:
        """Fraction of the makespan attributed (1.0 = fully explained)."""
        return self.covered / self.makespan if self.makespan > 0 else 1.0

    def by_resource(self) -> dict[str, float]:
        out = dict.fromkeys(RESOURCES, 0.0)
        for s in self.segments:
            for k, v in s.components().items():
                out[k] += v
        return out

    def by_rank(self) -> dict[int, float]:
        out: dict[int, float] = {}
        for s in self.segments:
            out[s.rank] = out.get(s.rank, 0.0) + s.total()
        return dict(sorted(out.items()))

    def by_stage(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.segments:
            stage = s.stage if s.stage is not None else "(unstaged)"
            out[stage] = out.get(stage, 0.0) + s.total()
        return dict(sorted(out.items()))

    def top_segments(self, k: int = 10) -> list[PathSegment]:
        return sorted(self.segments, key=lambda s: -s.total())[:k]


def critical_path(graph: EventGraph) -> CriticalPath:
    """Longest virtual-time path from any start anchor to the last finish.

    Ties break deterministically (larger edge cost, then lower source
    id).  Collective release edges are attributed to the binding (last
    arriving) rank and its stage.
    """
    t = graph.recompute()
    if not t:
        return CriticalPath(graph, 0.0)
    sink = max(range(len(t)), key=lambda i: (t[i], i))
    makespan = t[sink] - graph.t0

    # Backward walk over binding in-edges.
    chain: list[tuple[int, Edge]] = []  # (dst, edge), sink-first
    node = sink
    while graph.in_edges[node]:
        best: Edge | None = None
        best_key: tuple[float, float, int] | None = None
        for e in graph.in_edges[node]:
            key = (t[e.src] + e.total(), e.total(), -e.src)
            if best_key is None or key > best_key:
                best, best_key = e, key
        assert best is not None
        chain.append((node, best))
        node = best.src
    chain.reverse()  # source -> sink order

    # Resolve rank/stage along the walk: sync/release nodes are global
    # (rank -1); they inherit from the most recent ranked node on the
    # path — the binding arrival.
    segments: list[PathSegment] = []
    cur_rank = graph.node_rank[node] if graph.node_rank else 0
    cur_stage = graph.node_stage[node] if graph.node_stage else None
    for dst, e in chain:
        if graph.node_rank[e.src] >= 0:
            cur_rank = graph.node_rank[e.src]
            cur_stage = graph.node_stage[e.src]
        rank = graph.node_rank[dst]
        stage = graph.node_stage[dst]
        if rank < 0:
            rank, stage = cur_rank, cur_stage
        if e.kind == "sync":
            continue  # zero-cost join bookkeeping, not a segment
        segments.append(
            PathSegment(
                rank=rank,
                stage=stage,
                label=graph.node_label[dst],
                kind=e.kind,
                start=t[e.src],
                end=t[e.src] + e.total(),
                cpu=e.cpu,
                overhead=e.overhead,
                latency=e.latency,
                bandwidth=e.bandwidth,
                idle=e.idle,
            )
        )
    return CriticalPath(graph, makespan, segments)


# ---------------------------------------------------------------------------
# Counterfactuals: re-weight edges, never re-run the cluster
# ---------------------------------------------------------------------------


def whatif(
    graph: EventGraph,
    *,
    cpu_scale: float = 1.0,
    overhead_scale: float = 1.0,
    latency_scale: float = 1.0,
    bandwidth_scale: float = 1.0,
    idle_scale: float = 1.0,
    rank_cpu_scale: dict[int, float] | None = None,
) -> float:
    """Makespan under component scaling (e.g. ``latency_scale=0``).

    ``rank_cpu_scale`` scales the cpu component of edges whose target
    node belongs to the given rank — ``{straggler: 1/stretch}`` is the
    remove-straggler counterfactual.
    """

    def weight(e: Edge, dst: int) -> float:
        cs = cpu_scale
        if rank_cpu_scale is not None:
            cs *= rank_cpu_scale.get(graph.node_rank[dst], 1.0)
        return (
            e.cpu * cs
            + e.overhead * overhead_scale
            + e.latency * latency_scale
            + e.bandwidth * bandwidth_scale
            + e.idle * idle_scale
        )

    return graph.makespan(weight)


def _swap_collective(e: Edge, new: "NetworkModel", lossy: bool) -> float:
    """Re-priced collective release edge under ``new``."""
    n, nbytes = e.n, int(e.nbytes)
    kind = e.kind
    if kind == "alltoall":
        base = e.stretch * new.alltoall_time(n, nbytes)
    elif kind == "barrier":
        base = new.barrier_time(n)
    elif kind.startswith("allreduce") or kind == "allgather":
        base = new.allreduce_time(n, nbytes)
    elif kind == "bcast":
        hops = max(0, (n - 1).bit_length()) if n > 1 else 0
        base = hops * new.send_time(nbytes)
    elif kind == "gather":
        base = (n - 1) * new.send_time(nbytes)
    else:  # unknown kind: keep the recorded wire cost, re-price overhead
        base = e.latency + e.bandwidth
    cost = base + new.cpu_time_for_bytes(e.obytes)
    if lossy:
        # Keep the recorded RTO draws; resend wire re-priced to the new
        # link speed.
        cost += e.idle + e.ebytes / new.bandwidth
    return cost


def swap_network(
    graph: EventGraph, new: "NetworkModel", cpu_scale: float = 1.0
) -> float:
    """Makespan with every communication edge re-priced under ``new``.

    Compute (cpu) is untouched by default; ``cpu_scale`` scales it so a
    whole-machine swap (different CPU *and* fabric, e.g. campaign
    ``search`` trying another catalog entry) can be priced in one pass.
    Loss surcharges (RTO idle, resend wire/CPU) only survive if the new
    network is still kernel-mediated (``cpu_overhead_per_byte > 0``) —
    swapping to an OS-bypass fabric removes TCP loss along with its
    costs, mirroring ``FaultPlan.loss_applies``.
    """
    lossy = new.cpu_overhead_per_byte > 0.0

    def weight(e: Edge, dst: int) -> float:
        if e.kind == "local":
            cost = e.cpu * cpu_scale + e.ebytes / new.bandwidth
            cost += new.cpu_time_for_bytes(e.obytes)
            if lossy:
                cost += e.idle
            return cost
        if e.kind == "message":
            nbytes = int(e.nbytes)
            lat = e.factor * (new.send_time(nbytes) - nbytes / new.bandwidth)
            cost = lat + e.ebytes / new.bandwidth
            cost += new.cpu_time_for_bytes(e.obytes)
            if lossy:
                cost += e.idle
            return cost
        if e.kind == "sync":
            return 0.0
        return _swap_collective(e, new, lossy)

    return graph.makespan(weight)


# ---------------------------------------------------------------------------
# One-call analysis + text report
# ---------------------------------------------------------------------------


def analyze(
    graph: EventGraph,
    swap_nets: dict[str, "NetworkModel"] | None = None,
    straggler_scale: dict[int, float] | None = None,
    top_k: int = 8,
) -> dict[str, Any]:
    """Critical path + attribution + standard counterfactual suite.

    Returns a JSON-able dict (every quantity is virtual-clock derived,
    hence deterministic and regression-gateable).  ``swap_nets`` maps
    display name -> NetworkModel for fabric-swap counterfactuals;
    ``straggler_scale`` maps rank -> cpu scale for remove-straggler.
    """
    path = critical_path(graph)
    res = path.by_resource()
    makespan = path.makespan
    pct = {
        k: (100.0 * v / makespan if makespan > 0 else 0.0)
        for k, v in res.items()
    }
    counter: dict[str, float] = {
        "zero_latency": whatif(graph, latency_scale=0.0),
        "infinite_bandwidth": whatif(graph, bandwidth_scale=0.0),
        "zero_overhead": whatif(graph, overhead_scale=0.0),
        "zero_idle": whatif(graph, idle_scale=0.0),
    }
    if straggler_scale:
        counter["remove_straggler"] = whatif(
            graph, rank_cpu_scale=straggler_scale
        )
    if swap_nets:
        for name, net in swap_nets.items():
            counter[f"swap:{name}"] = swap_network(graph, net)
    return {
        "nodes": len(graph),
        "edges": graph.nedges,
        "makespan": makespan,
        "covered": path.covered,
        "coverage": path.coverage,
        "resource_seconds": res,
        "resource_pct": pct,
        "by_rank": {str(k): v for k, v in path.by_rank().items()},
        "by_stage": path.by_stage(),
        "top_segments": [
            {
                "rank": s.rank,
                "stage": s.stage if s.stage is not None else "(unstaged)",
                "label": s.label,
                "kind": s.kind,
                "seconds": s.total(),
                "pct": 100.0 * s.total() / makespan if makespan > 0 else 0.0,
                "components": s.components(),
            }
            for s in path.top_segments(top_k)
        ],
        "counterfactuals": counter,
    }


def aggregate_analyses(analyses: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Campaign-level attribution across many per-job ``analyze()`` dicts.

    ``analyses`` maps job id -> per-job analysis.  Jobs are independent
    virtual clusters, so campaign totals are sums: total makespan is the
    serialized cost of the campaign's work (wall-clock depends on the
    worker pool, which is host-side and not attributable), and
    resource/stage seconds add because each job's attribution already
    partitions its own makespan.  Percentages are recomputed against the
    summed makespan; ``dominant_jobs`` ranks jobs by makespan share so a
    campaign report can lead with where the virtual time actually went.
    """
    if not analyses:
        return {
            "jobs": 0,
            "total_makespan": 0.0,
            "resource_seconds": dict.fromkeys(RESOURCES, 0.0),
            "resource_pct": dict.fromkeys(RESOURCES, 0.0),
            "by_stage": {},
            "dominant_jobs": [],
        }
    total = sum(a["makespan"] for a in analyses.values())
    res = dict.fromkeys(RESOURCES, 0.0)
    by_stage: dict[str, float] = {}
    for a in analyses.values():
        for k in RESOURCES:
            res[k] += a["resource_seconds"].get(k, 0.0)
        for stage, secs in a["by_stage"].items():
            by_stage[stage] = by_stage.get(stage, 0.0) + secs
    by_stage = dict(sorted(by_stage.items()))
    dominant = sorted(
        analyses.items(), key=lambda kv: kv[1]["makespan"], reverse=True
    )
    return {
        "jobs": len(analyses),
        "total_makespan": total,
        "resource_seconds": res,
        "resource_pct": {
            k: (100.0 * v / total if total > 0 else 0.0)
            for k, v in res.items()
        },
        "by_stage": by_stage,
        "dominant_jobs": [
            {
                "job": job,
                "makespan": a["makespan"],
                "pct": 100.0 * a["makespan"] / total if total > 0 else 0.0,
            }
            for job, a in dominant
        ],
    }


def render_critpath_report(analysis: dict[str, Any]) -> str:
    """Human-readable block for ``trace_report --critical-path``."""
    lines: list[str] = []
    mk = analysis["makespan"]
    lines.append(
        f"Critical path: virtual makespan {mk:.6g} s over "
        f"{analysis['nodes']} events / {analysis['edges']} edges, "
        f"{100.0 * analysis['coverage']:.1f}% attributed"
    )
    pct = analysis["resource_pct"]
    lines.append(
        "  resource shares: "
        + " | ".join(f"{k} {pct[k]:5.1f}%" for k in RESOURCES)
    )
    lines.append("  top path segments (rank, stage, event, resource split):")
    for s in analysis["top_segments"]:
        comp = s["components"]
        dom = max(comp, key=lambda k: comp[k])
        lines.append(
            f"    rank {s['rank']:>4}  {s['stage']:<16} {s['label']:<24} "
            f"{s['seconds']:.4g} s ({s['pct']:.1f}%) mostly {dom}"
        )
    lines.append("  counterfactuals (edge re-weighting, no re-run):")
    lines.append(f"    {'recorded':<24} {mk:.6g} s  1.00x")
    for name, val in analysis["counterfactuals"].items():
        ratio = val / mk if mk > 0 else 1.0
        lines.append(f"    {name:<24} {val:.6g} s  {ratio:.2f}x")
    return "\n".join(lines)
