"""repro.obs — unified tracing & metrics layer.

One subsystem for every measurement signal the reproduction produces
(DESIGN.md sections 11 and 16):

* :mod:`repro.obs.tracer` — thread-local nestable span tracer; rank
  timelines in virtual (``MPI_Wtime``) or host time;
* :mod:`repro.obs.metrics` — counters / gauges / histograms (message
  sizes, PCG iterations, cache-hit rates);
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON
  exporter and the report-side re-importer;
* :mod:`repro.obs.critpath` — happens-before event-graph recorder,
  critical-path makespan attribution and what-if counterfactuals;
* :mod:`repro.obs.runlog` — persistent append-only run ledger keyed by
  config fingerprint (the cross-run memory under ``perf_report``).

The emit helpers are zero-cost no-ops when nothing is installed and
never charge the ambient OpCounter, so instrumentation cannot perturb
the flop/byte accounting it reports on.
"""

from .critpath import (
    CritPathRecorder,
    CriticalPath,
    EventGraph,
    analyze,
    critical_path,
    render_critpath_report,
    swap_network,
    whatif,
)
from .export import (
    idle_by_peer,
    load_chrome_trace,
    stage_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    MetricsRegistry,
    active_registry,
    hit_rate,
    inc,
    observe,
    scoped,
    set_gauge,
    use_registry,
)
from .runlog import RunLedger, config_fingerprint
from .tracer import (
    Trace,
    TraceEvent,
    Tracer,
    current,
    current_stage,
    emit_span,
    install,
    instant,
    span,
    stage_scope,
)

__all__ = [
    "Trace",
    "TraceEvent",
    "Tracer",
    "current",
    "current_stage",
    "emit_span",
    "install",
    "instant",
    "span",
    "stage_scope",
    "MetricsRegistry",
    "active_registry",
    "hit_rate",
    "inc",
    "observe",
    "scoped",
    "set_gauge",
    "use_registry",
    "idle_by_peer",
    "load_chrome_trace",
    "stage_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
    "CritPathRecorder",
    "CriticalPath",
    "EventGraph",
    "analyze",
    "critical_path",
    "render_critpath_report",
    "swap_network",
    "whatif",
    "RunLedger",
    "config_fingerprint",
]
