"""repro.obs — unified tracing & metrics layer.

One subsystem for every measurement signal the reproduction produces
(DESIGN.md section 11):

* :mod:`repro.obs.tracer` — thread-local nestable span tracer; rank
  timelines in virtual (``MPI_Wtime``) or host time;
* :mod:`repro.obs.metrics` — counters / gauges / histograms (message
  sizes, PCG iterations, cache-hit rates);
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON
  exporter and the report-side re-importer.

The emit helpers are zero-cost no-ops when nothing is installed and
never charge the ambient OpCounter, so instrumentation cannot perturb
the flop/byte accounting it reports on.
"""

from .export import (
    idle_by_peer,
    load_chrome_trace,
    stage_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    MetricsRegistry,
    active_registry,
    hit_rate,
    inc,
    observe,
    set_gauge,
    use_registry,
)
from .tracer import (
    Trace,
    TraceEvent,
    Tracer,
    current,
    emit_span,
    install,
    instant,
    span,
)

__all__ = [
    "Trace",
    "TraceEvent",
    "Tracer",
    "current",
    "emit_span",
    "install",
    "instant",
    "span",
    "MetricsRegistry",
    "active_registry",
    "hit_rate",
    "inc",
    "observe",
    "set_gauge",
    "use_registry",
    "idle_by_peer",
    "load_chrome_trace",
    "stage_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
]
