"""Thread-local, nestable span tracer — the observability spine.

Every measurement signal the reproduction already collects
(:class:`~repro.util.timing.StageTimer` stages, BLAS kernel charges,
PCG iterations, and simmpi communication events) can emit into one
:class:`Trace`, tagged with rank and timestamp, without perturbing the
signal it observes:

* **zero-cost when disabled** — the emit helpers read one thread-local
  slot and return immediately when no tracer is installed; no objects
  are allocated and no clocks are read;
* **charge-neutral** — nothing in this module calls
  :func:`repro.linalg.counters.charge` or a counted BLAS kernel, so
  tracing enabled vs disabled leaves :class:`OpCounter` totals
  byte-identical (asserted by the tier-1 property tests).

Time domain: each :class:`Tracer` is bound to a ``clock`` callable.
Virtual-cluster runs bind each rank's tracer to that rank's virtual
wall clock (``simmpi`` timestamps are the paper's ``MPI_Wtime``);
serial host runs default to :func:`repro.util.timing.wall_clock`.

Event categories (the ``cat`` field, stable — the exporter and the
report CLI key off them):

* ``stage``  — one numbered timestep stage; ``args`` carries the
  virtual ``cpu``/``wall`` deltas and the stage's OpCounter
  ``flops``/``bytes`` when the emitter knows them;
* ``comm``   — one send / recv / collective, with byte counts;
* ``idle``   — the blocking portion of a recv or collective: the
  cpu/wall gap the paper attributes to network inefficiency;
* ``kernel`` — a sampled BLAS charge (one event every
  ``sample_every`` charges per label, cumulative totals in ``args``);
* ``pcg``    — one converged PCG solve (iterations, residual).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..util.timing import wall_clock

__all__ = [
    "TraceEvent",
    "Tracer",
    "Trace",
    "current",
    "install",
    "span",
    "instant",
    "emit_span",
    "push_stage",
    "pop_stage",
    "current_stage",
    "stage_scope",
]

_tls = threading.local()

ClockFn = Callable[[], float]


@dataclass
class TraceEvent:
    """One complete ("X"-phase) or instant ("i"-phase) trace event.

    Timestamps are seconds in the owning tracer's clock domain; the
    Chrome exporter converts to microseconds.
    """

    name: str
    cat: str
    ts: float
    dur: float
    rank: int
    args: dict[str, Any] | None = None
    ph: str = "X"


class Tracer:
    """Per-thread event sink bound to one rank track and one clock.

    A tracer is installed on a thread with :func:`install`; the module
    emit helpers then route to it.  Each tracer owns its event list, so
    rank threads never contend on a lock.
    """

    def __init__(
        self,
        rank: int = 0,
        clock: ClockFn | None = None,
        sample_every: int = 64,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.rank = rank
        self.clock: ClockFn = wall_clock if clock is None else clock
        self.sample_every = sample_every
        self.events: list[TraceEvent] = []
        # label -> [calls, flops, bytes] cumulative kernel attribution.
        self.kernel_charges: dict[str, list[float]] = {}

    # -- emission ---------------------------------------------------------------

    def emit_span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a completed span [t0, t1] (clock-domain seconds)."""
        self.events.append(
            TraceEvent(name, cat, t0, max(0.0, t1 - t0), self.rank, args)
        )

    def emit_instant(
        self, name: str, cat: str, args: dict[str, Any] | None = None
    ) -> None:
        self.events.append(
            TraceEvent(name, cat, self.clock(), 0.0, self.rank, args, ph="i")
        )

    def span(self, name: str, cat: str = "", **args: Any) -> "_SpanContext":
        """Context manager timing a span against this tracer's clock."""
        return _SpanContext(self, name, cat, args or None)

    # -- kernel charge sampling ---------------------------------------------------

    def kernel_sample(self, flops: float, nbytes: float, label: str) -> None:
        """Observe one BLAS charge (installed as the counters sampler).

        Aggregates exact per-label flop/byte attribution and emits one
        timeline instant every ``sample_every`` charges per label.
        Never charges anything itself.
        """
        acc = self.kernel_charges.get(label)
        if acc is None:
            acc = [0.0, 0.0, 0.0]
            self.kernel_charges[label] = acc
        acc[0] += 1
        acc[1] += flops
        acc[2] += nbytes
        if int(acc[0]) % self.sample_every == 1 or self.sample_every == 1:
            self.emit_instant(
                label or "(unlabelled)",
                "kernel",
                {
                    "calls": int(acc[0]),
                    "flops": acc[1],
                    "bytes": acc[2],
                    "last_flops": flops,
                    "last_bytes": nbytes,
                },
            )

    def kernel_totals(self) -> dict[str, tuple[int, float, float]]:
        """label -> (calls, flops, bytes) seen while installed."""
        return {
            k: (int(v[0]), v[1], v[2]) for k, v in self.kernel_charges.items()
        }


class _SpanContext:
    def __init__(
        self, tracer: Tracer, name: str, cat: str, args: dict[str, Any] | None
    ):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_SpanContext":
        self._t0 = self._tracer.clock()
        if self._cat == "stage":
            push_stage(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._cat == "stage":
            pop_stage()
        self._tracer.emit_span(
            self._name, self._cat, self._t0, self._tracer.clock(), self._args
        )


class _NoopSpan:
    """Shared do-nothing context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()


@dataclass
class Trace:
    """A whole run's worth of tracers, one per rank track.

    ``VirtualCluster.run`` creates one rank tracer per rank, bound to
    that rank's virtual wall clock; serial callers use ``rank_tracer(0)``
    with the default host clock.
    """

    sample_every: int = 64
    tracers: dict[int, Tracer] = field(default_factory=dict)
    annotations: dict[str, Any] = field(default_factory=dict)

    def annotate(self, key: str, value: Any) -> None:
        """Attach a run-level annotation, exported with the trace
        metadata (e.g. the sanitizer's final vector clocks)."""
        self.annotations[key] = value

    def rank_tracer(self, rank: int, clock: ClockFn | None = None) -> Tracer:
        """Create (or return) the tracer for one rank track."""
        tr = self.tracers.get(rank)
        if tr is None:
            tr = Tracer(rank=rank, clock=clock, sample_every=self.sample_every)
            self.tracers[rank] = tr
        return tr

    def events(self) -> list[TraceEvent]:
        """All events, merged across ranks, time-ordered."""
        merged = [e for tr in self.tracers.values() for e in tr.events]
        merged.sort(key=lambda e: (e.ts, e.rank, -e.dur))
        return merged

    @property
    def nranks(self) -> int:
        return len(self.tracers)


# -- thread-local stage stack ---------------------------------------------------
#
# Solver stage scopes announce themselves here whether or not a tracer
# is installed, so observers that tag events by NekTar stage (the
# critical-path recorder) work on untraced runs too.  Per-thread, like
# the tracer slot: each rank thread keeps its own stack.


def push_stage(name: str) -> None:
    """Enter a named solver stage on this thread (nests)."""
    stack = getattr(_tls, "stages", None)
    if stack is None:
        _tls.stages = [name]
    else:
        stack.append(name)


def pop_stage() -> None:
    """Leave the innermost stage scope (no-op when the stack is empty)."""
    stack = getattr(_tls, "stages", None)
    if stack:
        stack.pop()


def current_stage() -> str | None:
    """Innermost stage name on this thread, or None outside any stage."""
    stack = getattr(_tls, "stages", None)
    return stack[-1] if stack else None


class _StageTag:
    """Context manager that only maintains the stage stack (the
    untraced path of ``span(..., cat="stage")``)."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __enter__(self) -> "_StageTag":
        push_stage(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        pop_stage()


def stage_scope(name: str) -> _StageTag:
    """Tag this thread as being inside solver stage ``name``.

    Purely a stage-stack annotation: never emits events and never reads
    a clock, so it is charge-neutral and safe on untraced runs.
    """
    return _StageTag(name)


# -- thread-local installation -------------------------------------------------


def current() -> Tracer | None:
    """The tracer installed on this thread, or None."""
    return getattr(_tls, "tracer", None)


class _Installation:
    """Context manager installing ``tracer`` thread-locally, plus the
    kernel-charge sampler hook in :mod:`repro.linalg.counters`."""

    def __init__(self, tracer: Tracer | None):
        self._tracer = tracer
        self._prev: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        from ..linalg import counters

        self._prev = getattr(_tls, "tracer", None)
        _tls.tracer = self._tracer
        counters.set_kernel_sampler(
            None if self._tracer is None else self._tracer.kernel_sample
        )
        return self._tracer

    def __exit__(self, *exc: object) -> None:
        from ..linalg import counters

        _tls.tracer = self._prev
        counters.set_kernel_sampler(
            None if self._prev is None else self._prev.kernel_sample
        )


def install(tracer: Tracer | None) -> _Installation:
    """Install ``tracer`` on this thread for the duration of a ``with``.

    ``install(None)`` is valid and disables tracing in the block (used
    to shield sub-computations).  Nests: the previous installation is
    restored on exit.
    """
    return _Installation(tracer)


# -- module-level emit helpers (no-ops when nothing is installed) ---------------


def span(name: str, cat: str = "", **args: Any) -> "_SpanContext | _NoopSpan | _StageTag":
    """Time a span against the installed tracer's clock (no-op if none).

    ``cat="stage"`` spans additionally maintain the thread-local stage
    stack — even when no tracer is installed — so stage attribution
    (critical-path recorder) survives untraced runs.
    """
    tr = getattr(_tls, "tracer", None)
    if tr is None:
        return _StageTag(name) if cat == "stage" else _NOOP
    return tr.span(name, cat, **args)


def instant(name: str, cat: str = "", **args: Any) -> None:
    """Emit an instant event (no-op when no tracer is installed)."""
    tr = getattr(_tls, "tracer", None)
    if tr is not None:
        tr.emit_instant(name, cat, args or None)


def emit_span(
    name: str,
    cat: str,
    t0: float,
    t1: float,
    args: dict[str, Any] | None = None,
) -> None:
    """Record an already-timed span (no-op when no tracer is installed)."""
    tr = getattr(_tls, "tracer", None)
    if tr is not None:
        tr.emit_span(name, cat, t0, t1, args)
