"""Timing utilities mirroring the paper's measurement protocol.

The paper times DNS stages two ways: ``clock()`` (CPU time) and
``MPI_Wtime`` (wall clock); the gap between the two is idle time spent
waiting on the network.  This module provides the same pair of clocks for
*real* runs on the host, plus :class:`StageTimer`, the instrument used to
produce the per-stage breakdowns of Figures 12-16.

Virtual-time runs (on the simulated cluster) do not use these clocks; they
read the rank-local clocks maintained by :mod:`repro.parallel.simmpi`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def cpu_clock() -> float:
    """CPU seconds consumed by this process (the paper's ``clock()``)."""
    return time.process_time()


def wall_clock() -> float:
    """Wall-clock seconds (the paper's ``MPI_Wtime``)."""
    return time.perf_counter()


@dataclass
class StageRecord:
    """Accumulated CPU and wall time for one named stage."""

    name: str
    cpu: float = 0.0
    wall: float = 0.0
    calls: int = 0


@dataclass
class StageTimer:
    """Accumulates per-stage CPU and wall-clock time across timesteps.

    The serial and parallel NekTar analogues split each timestep into the
    paper's numbered stages (Section 4.1, items 1-7).  Usage::

        timer = StageTimer()
        with timer.stage("2:nonlinear"):
            ...work...
        timer.percentages("cpu")   # -> {"2:nonlinear": 61.3, ...}
    """

    records: dict[str, StageRecord] = field(default_factory=dict)

    def stage(self, name: str) -> "_StageContext":
        rec = self.records.setdefault(name, StageRecord(name))
        return _StageContext(rec)

    def add(self, name: str, cpu: float, wall: float | None = None) -> None:
        """Directly charge time to a stage (used by cost-model drivers)."""
        rec = self.records.setdefault(name, StageRecord(name))
        rec.cpu += cpu
        rec.wall += cpu if wall is None else wall
        rec.calls += 1

    def total(self, kind: str = "cpu") -> float:
        return sum(getattr(r, kind) for r in self.records.values())

    def percentages(self, kind: str = "cpu") -> dict[str, float]:
        """Share of each stage in percent, as in the paper's pie charts."""
        tot = self.total(kind)
        if tot <= 0.0:
            return {name: 0.0 for name in self.records}
        return {
            name: 100.0 * getattr(rec, kind) / tot
            for name, rec in self.records.items()
        }

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-stage ``{cpu, wall, idle, calls}`` rows.

        ``idle = max(0, wall - cpu)`` is the paper's idle-time
        attribution (Section 4.2): the CPU/wall gap spent waiting on the
        network.  This is the table the trace-report CLI renders.
        """
        return {
            name: {
                "cpu": rec.cpu,
                "wall": rec.wall,
                "idle": max(0.0, rec.wall - rec.cpu),
                "calls": float(rec.calls),
            }
            for name, rec in self.records.items()
        }

    def merge(self, other: "StageTimer") -> None:
        for name, rec in other.records.items():
            mine = self.records.setdefault(name, StageRecord(name))
            mine.cpu += rec.cpu
            mine.wall += rec.wall
            mine.calls += rec.calls

    def reset(self) -> None:
        self.records.clear()


class _StageContext:
    def __init__(self, rec: StageRecord):
        self._rec = rec
        self._cpu0 = 0.0
        self._wall0 = 0.0

    def __enter__(self) -> "_StageContext":
        self._cpu0 = cpu_clock()
        self._wall0 = wall_clock()
        return self

    def __exit__(self, *exc) -> None:
        self._rec.cpu += cpu_clock() - self._cpu0
        self._rec.wall += wall_clock() - self._wall0
        self._rec.calls += 1
