"""Unit helpers shared by the performance models and reporting code.

The paper mixes MB/s (figures 1, 7, 8), Mflop/s (figures 2-6), bytes
(abscissae) and microseconds (latency).  Keeping the conversions in one
place avoids the classic 1e6-vs-2**20 confusion: the paper's
MB = 1e6 bytes (NetPIPE convention), and Mflop = 1e6 flops.
"""

from __future__ import annotations

MEGA = 1.0e6
GIGA = 1.0e9
KIB = 1024
MIB = 1024 * 1024
DOUBLE = 8  # bytes per double-precision word

MICRO = 1.0e-6


def mb_per_s(nbytes: float, seconds: float) -> float:
    """Throughput in the paper's MB/s (1 MB = 1e6 bytes)."""
    if seconds <= 0.0:
        raise ValueError("non-positive elapsed time")
    return nbytes / seconds / MEGA


def mflop_per_s(flops: float, seconds: float) -> float:
    """Rate in Mflop/s (1 Mflop = 1e6 floating point operations)."""
    if seconds <= 0.0:
        raise ValueError("non-positive elapsed time")
    return flops / seconds / MEGA


def usec(seconds: float) -> float:
    """Seconds -> microseconds (figure 7 left panel)."""
    return seconds / MICRO


def doubles(nbytes: float) -> int:
    """Number of 8-byte words that fit in ``nbytes``."""
    return int(nbytes // DOUBLE)
