"""Shared CLI exit-code convention for every bench/report entry point.

Every ``repro.apps`` CLI (and ``benchmarks/check_regression.py``)
distinguishes three outcomes with distinct exit codes, so CI scripts
and campaign drivers can tell "the gate fired" apart from "you invoked
me wrong" without parsing output:

* ``EXIT_OK`` (0)    — ran to completion, no gate failure;
* ``EXIT_GATE`` (1)  — ran, but a gate/acceptance check failed
  (``--strict`` drift, regression hard-failure, failed campaign jobs);
* ``EXIT_USAGE`` (2) — never ran: bad arguments or unreadable/corrupt
  input artifacts.  Matches argparse's own exit code for bad flags.

:func:`usage_error` prints to stderr and returns ``EXIT_USAGE`` so
``main`` bodies can ``return usage_error(...)`` in one line.
"""

from __future__ import annotations

import sys

__all__ = ["EXIT_OK", "EXIT_GATE", "EXIT_USAGE", "usage_error"]

EXIT_OK = 0
EXIT_GATE = 1
EXIT_USAGE = 2


def usage_error(message: str) -> int:
    """Report a usage error on stderr; returns :data:`EXIT_USAGE`."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE
