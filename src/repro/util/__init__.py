"""Shared utilities: clocks, stage timers, unit conversions."""

from .timing import StageRecord, StageTimer, cpu_clock, wall_clock
from .units import DOUBLE, GIGA, KIB, MEGA, MIB, mb_per_s, mflop_per_s, usec

__all__ = [
    "StageRecord",
    "StageTimer",
    "cpu_clock",
    "wall_clock",
    "DOUBLE",
    "GIGA",
    "KIB",
    "MEGA",
    "MIB",
    "mb_per_s",
    "mflop_per_s",
    "usec",
]
