"""Fused stage-2 pipeline: one Alltoall, z-major layout, reused buffers.

:func:`repro.fourier.mapping.transpose_to_points` with a leading field
axis already collapses NekTar-F's 15 collectives per step to 2, but a
straight "stack the fields and call the same primitives" fast path is
*slower* on the host than the per-field loop it replaces: the stacked
arrays are tens of MB, so every pass (stack build, chunk gather, padded
spectrum, ``irfft`` scratch) is a fresh multi-MB allocation (mmap +
page faults) streamed through memory with a 16-byte granule scatter on
the mode axis.  Measured on the paper-size mesh (1216 quads at order 8,
121600 quadrature points) the naive fused step lost 2-3x to the loop.

This module is the layout the fused path actually wants:

* **z-major point space** — in point space the mode/plane axis comes
  *first* ``(nz, my_points)``, so Alltoall chunks are contiguous row
  blocks (memcpy, not 16-byte scatters) and the real FFTs run along
  axis 0, which pocketfft vectorises across the contiguous point axis.
  NumPy's FFT is layout-independent in values, so results stay
  *bitwise* identical to the per-field oracle (pinned by tests).
* **persistent send workspaces** — chunk buffers are allocated once
  and refilled every step, eliminating the allocation/page-fault churn
  that dominated the naive path.  Reuse is safe with exactly one
  collective of separation: simmpi hands chunks to receivers by
  reference, but a rank can only reach its *next* ``alltoall`` (and
  thus overwrite a send buffer) after every peer completed the current
  one, which happens after those peers copied the chunks out — every
  receive chunk is consumed before the receiver's next collective.
* **fused scale/pad/chunk passes** — the ``1/nz`` and ``nz`` scalings
  ride the chunk/scatter copies instead of being separate passes, and
  the padded half-spectrum is refilled in place per field.

Charges are byte-identical to ``ifft_z``/``fft_z`` on the same data
(same ``rfft-z``/``irfft-z`` labels, linear in the batch), the wire
bytes and message counts match the stacked transpose exactly, and each
collective increments the same ``fourier.transpose.alltoalls`` metric.
"""

from __future__ import annotations

import numpy as np

from ..obs import metrics
from ..parallel.simmpi import VirtualComm
from .mapping import point_chunks
from .transforms import _charge_irfft, _charge_rfft, mode_blocks

__all__ = ["FusedFourierPipeline"]


class FusedFourierPipeline:
    """Workspace-holding fused transpose + transform pair.

    One instance per solver: the send-side chunk buffers persist across
    steps (shapes are constant for a fixed discretisation, and the
    buffers are re-created if the shape key changes).  Outputs handed
    back to the caller (physical planes, modal blocks) are fresh arrays
    the caller may keep; only the *send* workspaces are reused.
    """

    def __init__(self) -> None:
        self._send: dict = {}

    def _send_bufs(self, key, shapes) -> list[np.ndarray]:
        bufs = self._send.get(key)
        if bufs is None or [b.shape for b in bufs] != list(shapes):
            bufs = [np.empty(s, dtype=np.complex128) for s in shapes]
            self._send[key] = bufs
        return bufs

    def to_physical(
        self, comm: VirtualComm, fields, nz: int
    ) -> list[np.ndarray]:
        """F modal fields (my_modes, npoints) -> F planes (nz, my_points).

        One Alltoall for the whole field stack; per-field inverse FFTs
        keep the working set allocator-recycled.  Values are bitwise
        those of ``ifft_z(transpose_to_points(comm, stack), nz)`` in
        z-major layout.
        """
        nf = len(fields)
        nmy, npoints = fields[0].shape
        chunks = point_chunks(npoints, comm.size)
        send = self._send_bufs(
            "fwd", [(nf, nmy, sl.stop - sl.start) for sl in chunks]
        )
        for buf, sl in zip(send, chunks):
            for i, f in enumerate(fields):
                buf[i] = f[:, sl]
        recv = comm.alltoall(send)
        metrics.inc("fourier.transpose.alltoalls")
        blocks = mode_blocks(nz // 2, comm.size)
        my_pts = len(range(npoints)[chunks[comm.rank]])
        full = self._send.get(("spectrum", my_pts, nz))
        if full is None:
            full = np.empty((nz // 2 + 1, my_pts), dtype=np.complex128)
            self._send[("spectrum", my_pts, nz)] = full
        _charge_irfft(nf * my_pts, nz)
        phys = []
        for i in range(nf):
            for blk, part in zip(blocks, recv):
                np.multiply(part[i], nz, out=full[blk.start : blk.stop])
            full[nz // 2 :] = 0.0
            phys.append(np.fft.irfft(full, n=nz, axis=0))
        return phys

    def to_modal(
        self, comm: VirtualComm, planes, npoints: int, nz: int
    ) -> np.ndarray:
        """F planes (nz, my_points) -> (F, my_modes, npoints) modal.

        Inverse of :meth:`to_physical` composed with the forward FFT:
        bitwise ``transpose_to_modes(comm, fft_z(stack), npoints)`` in
        z-major layout.  The output is a fresh array (NekTar-F keeps it
        in the time-integration history).
        """
        nf = len(planes)
        my_pts = planes[0].shape[1]
        blocks = mode_blocks(nz // 2, comm.size)
        _charge_rfft(nf * my_pts, nz)
        specs = [np.fft.rfft(p, axis=0) for p in planes]
        send = self._send_bufs(
            "bwd", [(nf, len(blk), my_pts) for blk in blocks]
        )
        for buf, blk in zip(send, blocks):
            for j, s in enumerate(specs):
                np.divide(s[blk.start : blk.stop], nz, out=buf[j])
        recv = comm.alltoall(send)
        metrics.inc("fourier.transpose.alltoalls")
        chunks = point_chunks(npoints, comm.size)
        out = np.empty(
            (nf, len(blocks[comm.rank]), npoints), dtype=np.complex128
        )
        for sl, part in zip(chunks, recv):
            out[..., sl] = part
        return out
