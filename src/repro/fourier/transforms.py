"""Fourier machinery for the homogeneous (spanwise) direction.

NekTar-F resolves one homogeneous direction with Fourier expansions:
Nz physical planes <-> Nz/2 complex modes (the Nyquist mode is dropped,
as in the production code's dealiased convention).  "Typically, one
processor is assigned to one Fourier mode which corresponds to two
spectral/hp element planes."
"""

from __future__ import annotations

import numpy as np

from ..linalg.counters import charge

__all__ = [
    "nmodes_for",
    "wavenumbers",
    "fft_z",
    "ifft_z",
    "dz_hat",
    "mode_blocks",
]


def nmodes_for(nz: int) -> int:
    """Complex modes kept for nz physical planes (Nyquist dropped)."""
    if nz < 2 or nz % 2:
        raise ValueError("need an even number of planes >= 2")
    return nz // 2


def wavenumbers(nz: int, lz: float = 2.0 * np.pi) -> np.ndarray:
    """Spanwise wavenumbers k_m = 2 pi m / L_z of the kept modes."""
    return 2.0 * np.pi * np.arange(nmodes_for(nz)) / lz


def _charge_rfft(nbatch: int, nz: int) -> None:
    """Real-to-complex transform work: nbatch length-nz lines.

    Split-radix real FFT (~2.5 nz log2 nz real flops per line) plus the
    1/nz normalisation of the kept half-spectrum; traffic is the real
    input line plus the complex half-spectrum output."""
    nm = nz // 2
    charge(
        nbatch * (2.5 * nz * np.log2(max(2, nz)) + 2.0 * nm),
        nbatch * (8.0 * nz + 16.0 * (nz // 2 + 1)),
        "rfft-z",
    )


def _charge_irfft(nbatch: int, nz: int) -> None:
    """Complex-to-real inverse transform work: nbatch length-nz lines.

    The nz-scale of the padded half-spectrum (2 real flops per complex
    entry), then the inverse split-radix FFT; traffic adds the
    zero-padded scratch spectrum to the modal input and real output."""
    nh = nz // 2 + 1
    charge(
        nbatch * (2.5 * nz * np.log2(max(2, nz)) + 2.0 * nh),
        nbatch * (32.0 * nh + 8.0 * nz),
        "irfft-z",
    )


def fft_z(values: np.ndarray) -> np.ndarray:
    """Forward transform along the last axis: (..., nz) real physical
    planes -> (..., nz//2) complex modes, normalised so mode 0 is the
    z-mean.  The Nyquist mode is discarded.  Leading axes are batched
    through one library call (fields x points in the fused NekTar-F
    path), charged per transformed line."""
    values = np.asarray(values, dtype=np.float64)
    nz = values.shape[-1]
    nm = nmodes_for(nz)
    _charge_rfft(values.size // nz, nz)
    return np.fft.rfft(values, axis=-1)[..., :nm] / nz


def ifft_z(modes: np.ndarray, nz: int) -> np.ndarray:
    """Inverse of :func:`fft_z` back to nz physical planes.

    The padded half-spectrum is scaled in place (no ``full * nz``
    temporary): on the fused multi-field stacks the scratch spectrum is
    tens of MB, and the extra allocate+stream per call is what made the
    batched path slower than the per-field loop it replaces."""
    modes = np.asarray(modes, dtype=np.complex128)
    nm = nmodes_for(nz)
    if modes.shape[-1] != nm:
        raise ValueError(f"expected {nm} modes for nz={nz}")
    full = np.empty(modes.shape[:-1] + (nz // 2 + 1,), dtype=np.complex128)
    np.multiply(modes, nz, out=full[..., :nm])
    full[..., nm:] = 0.0
    _charge_irfft(int(np.prod(modes.shape[:-1], dtype=np.int64)), nz)
    return np.fft.irfft(full, n=nz, axis=-1)


def dz_hat(modes: np.ndarray, nz: int, lz: float = 2.0 * np.pi) -> np.ndarray:
    """Spectral d/dz in mode space: multiply mode m by i k_m."""
    k = wavenumbers(nz, lz)
    return modes * (1j * k)


def mode_blocks(nmodes: int, nprocs: int) -> list[range]:
    """Contiguous mode-to-processor assignment (the paper's mapping).

    Balanced exactly like :func:`repro.fourier.mapping.point_chunks`:
    when nmodes does not divide evenly, block sizes differ by at most
    one, so awkward (nmodes, nprocs) pairs map without padding."""
    if nmodes < 0 or nprocs < 1:
        raise ValueError("need nmodes >= 0 and nprocs >= 1")
    bounds = np.linspace(0, nmodes, nprocs + 1).astype(int)
    return [range(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]
