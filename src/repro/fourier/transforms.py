"""Fourier machinery for the homogeneous (spanwise) direction.

NekTar-F resolves one homogeneous direction with Fourier expansions:
Nz physical planes <-> Nz/2 complex modes (the Nyquist mode is dropped,
as in the production code's dealiased convention).  "Typically, one
processor is assigned to one Fourier mode which corresponds to two
spectral/hp element planes."
"""

from __future__ import annotations

import numpy as np

from ..linalg.counters import charge

__all__ = [
    "nmodes_for",
    "wavenumbers",
    "fft_z",
    "ifft_z",
    "dz_hat",
    "mode_blocks",
]


def nmodes_for(nz: int) -> int:
    """Complex modes kept for nz physical planes (Nyquist dropped)."""
    if nz < 2 or nz % 2:
        raise ValueError("need an even number of planes >= 2")
    return nz // 2


def wavenumbers(nz: int, lz: float = 2.0 * np.pi) -> np.ndarray:
    """Spanwise wavenumbers k_m = 2 pi m / L_z of the kept modes."""
    return 2.0 * np.pi * np.arange(nmodes_for(nz)) / lz


def _charge_fft(n_total: int, nz: int) -> None:
    """Real-FFT work over a batch of n_total samples, transform length nz
    (~2.5 n log2 nz real flops, in/out traffic)."""
    charge(2.5 * n_total * np.log2(max(2, nz)), 16.0 * n_total, "fft-z")


def fft_z(values: np.ndarray) -> np.ndarray:
    """Forward transform along the last axis: (..., nz) real physical
    planes -> (..., nz//2) complex modes, normalised so mode 0 is the
    z-mean.  The Nyquist mode is discarded."""
    values = np.asarray(values, dtype=np.float64)
    nz = values.shape[-1]
    nm = nmodes_for(nz)
    _charge_fft(values.size, nz)
    return np.fft.rfft(values, axis=-1)[..., :nm] / nz


def ifft_z(modes: np.ndarray, nz: int) -> np.ndarray:
    """Inverse of :func:`fft_z` back to nz physical planes."""
    modes = np.asarray(modes, dtype=np.complex128)
    nm = nmodes_for(nz)
    if modes.shape[-1] != nm:
        raise ValueError(f"expected {nm} modes for nz={nz}")
    full = np.zeros(modes.shape[:-1] + (nz // 2 + 1,), dtype=np.complex128)
    full[..., :nm] = modes
    _charge_fft(int(np.prod(modes.shape[:-1], dtype=np.int64)) * nz, nz)
    return np.fft.irfft(full * nz, n=nz, axis=-1)


def dz_hat(modes: np.ndarray, nz: int, lz: float = 2.0 * np.pi) -> np.ndarray:
    """Spectral d/dz in mode space: multiply mode m by i k_m."""
    k = wavenumbers(nz, lz)
    return modes * (1j * k)


def mode_blocks(nmodes: int, nprocs: int) -> list[range]:
    """Contiguous mode-to-processor assignment (the paper's mapping)."""
    if nmodes % nprocs:
        raise ValueError(
            f"{nmodes} modes do not divide evenly over {nprocs} processors"
        )
    per = nmodes // nprocs
    return [range(p * per, (p + 1) * per) for p in range(nprocs)]
