"""Fourier substrate: spanwise transforms and distributed transposes."""

from .mapping import point_chunks, transpose_to_modes, transpose_to_points
from .pipeline import FusedFourierPipeline
from .transforms import dz_hat, fft_z, ifft_z, mode_blocks, nmodes_for, wavenumbers

__all__ = [
    "nmodes_for",
    "wavenumbers",
    "fft_z",
    "ifft_z",
    "dz_hat",
    "mode_blocks",
    "point_chunks",
    "transpose_to_points",
    "transpose_to_modes",
    "FusedFourierPipeline",
]
