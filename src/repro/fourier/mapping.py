"""Distributed transpose between mode and plane decompositions.

NekTar-F keeps fields distributed by Fourier *mode* (each rank owns all
x-y points of its modes).  The non-linear products need physical z, so
step 2 transposes to a *point* decomposition (each rank owns all modes
of an x-y point chunk), inverse-FFTs, multiplies, FFTs and transposes
back — "each processor communicates with all the others with message
sizes of Gamma/P x Nz/P" (Section 4.2.1).  That is exactly what
:func:`transpose_to_points` / :func:`transpose_to_modes` implement on
top of simmpi's MPI_Alltoall.
"""

from __future__ import annotations

import numpy as np

from ..parallel.simmpi import VirtualComm

__all__ = ["point_chunks", "transpose_to_points", "transpose_to_modes"]


def point_chunks(npoints: int, nprocs: int) -> list[slice]:
    """Split the flattened x-y point index among ranks (balanced)."""
    bounds = np.linspace(0, npoints, nprocs + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def transpose_to_points(
    comm: VirtualComm, local_modes: np.ndarray
) -> np.ndarray:
    """(npoints, my_modes) complex -> (my_points, total_modes) complex.

    ``local_modes`` holds all x-y points for this rank's mode block;
    the result holds this rank's point chunk for every mode, with modes
    ordered by owning rank (i.e. global mode order for the contiguous
    block assignment).
    """
    local_modes = np.ascontiguousarray(local_modes, dtype=np.complex128)
    npoints = local_modes.shape[0]
    chunks = point_chunks(npoints, comm.size)
    send = [np.ascontiguousarray(local_modes[sl, :]) for sl in chunks]
    recv = comm.alltoall(send)
    return np.concatenate(recv, axis=1)


def transpose_to_modes(
    comm: VirtualComm, local_points: np.ndarray, npoints: int
) -> np.ndarray:
    """Inverse of :func:`transpose_to_points`.

    ``local_points`` is (my_points, total_modes); returns
    (npoints, my_modes).
    """
    local_points = np.ascontiguousarray(local_points, dtype=np.complex128)
    total_modes = local_points.shape[1]
    if total_modes % comm.size:
        raise ValueError("total modes must divide evenly over ranks")
    per = total_modes // comm.size
    send = [
        np.ascontiguousarray(local_points[:, p * per : (p + 1) * per])
        for p in range(comm.size)
    ]
    recv = comm.alltoall(send)
    chunks = point_chunks(npoints, comm.size)
    out = np.empty((npoints, per), dtype=np.complex128)
    for sl, part in zip(chunks, recv):
        out[sl, :] = part
    return out
