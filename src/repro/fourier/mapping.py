"""Distributed transpose between mode and plane decompositions.

NekTar-F keeps fields distributed by Fourier *mode* (each rank owns all
x-y points of its modes).  The non-linear products need physical z, so
step 2 transposes to a *point* decomposition (each rank owns all modes
of an x-y point chunk), inverse-FFTs, multiplies, FFTs and transposes
back — "each processor communicates with all the others with message
sizes of Gamma/P x Nz/P" (Section 4.2.1).  That is exactly what
:func:`transpose_to_points` / :func:`transpose_to_modes` implement on
top of simmpi's MPI_Alltoall.

Both transposes accept an arbitrary stack of *leading field axes*: an
F-field stack rides the same Alltoall as a single field, with all
fields bound for a given destination rank packed into one chunk.  That
is the Cluster Computing White Paper's message-aggregation trick — the
fused call moves byte-identical data and pays byte-identical wire
traffic, but one latency term instead of F (simmpi charges one
``alltoall_time`` and ``size - 1`` messages per *call*, and scales the
per-pair cost with the chunk size).  Every call increments the
``fourier.transpose.alltoalls`` metric, which is what pins NekTar-F's
per-step collective count at 2 (down from 15).
"""

from __future__ import annotations

import numpy as np

from ..obs import metrics
from ..parallel.simmpi import VirtualComm
from .transforms import mode_blocks

__all__ = ["point_chunks", "transpose_to_points", "transpose_to_modes"]


def point_chunks(npoints: int, nprocs: int) -> list[slice]:
    """Split the flattened x-y point index among ranks (balanced)."""
    bounds = np.linspace(0, npoints, nprocs + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def transpose_to_points(
    comm: VirtualComm, local_modes: np.ndarray
) -> np.ndarray:
    """(..., npoints, my_modes) complex -> (..., my_points, total_modes).

    ``local_modes`` holds all x-y points for this rank's mode block;
    the result holds this rank's point chunk for every mode, with modes
    ordered by owning rank (i.e. global mode order for the contiguous
    block assignment).  Leading field axes are fused into the same
    Alltoall: one collective moves every field.
    """
    local_modes = np.ascontiguousarray(local_modes, dtype=np.complex128)
    npoints = local_modes.shape[-2]
    chunks = point_chunks(npoints, comm.size)
    # Chunks are views: the single gather happens at the receiver's
    # concatenate.  Forcing each chunk contiguous here would stream the
    # whole multi-field stack through memory a second time per call.
    send = [local_modes[..., sl, :] for sl in chunks]
    recv = comm.alltoall(send)
    metrics.inc("fourier.transpose.alltoalls")
    return np.concatenate(recv, axis=-1)


def transpose_to_modes(
    comm: VirtualComm, local_points: np.ndarray, npoints: int
) -> np.ndarray:
    """Inverse of :func:`transpose_to_points`.

    ``local_points`` is (..., my_points, total_modes); returns
    (..., npoints, my_modes).  The mode axis is split exactly as
    :func:`repro.fourier.transforms.mode_blocks` assigns it, so
    balanced-but-uneven layouts (total_modes not divisible by the rank
    count) round-trip without padding.
    """
    local_points = np.ascontiguousarray(local_points, dtype=np.complex128)
    total_modes = local_points.shape[-1]
    blocks = mode_blocks(total_modes, comm.size)
    # Views, as in transpose_to_points: the one gather per chunk is the
    # receiver's strided assignment into ``out`` below.
    send = [local_points[..., blk.start : blk.stop] for blk in blocks]
    recv = comm.alltoall(send)
    metrics.inc("fourier.transpose.alltoalls")
    chunks = point_chunks(npoints, comm.size)
    my_modes = len(blocks[comm.rank])
    out = np.empty(
        local_points.shape[:-2] + (npoints, my_modes), dtype=np.complex128
    )
    for sl, part in zip(chunks, recv):
        out[..., sl, :] = part
    return out
