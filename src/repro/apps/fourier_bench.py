"""Perf-regression harness: fused vs per-field NekTar-F transposes.

Exercises real NekTar-F timesteps on a simmpi cluster in both stage-2
modes — the fused z-major pipeline (ONE Alltoall for the 12 forward
fields, ONE back for the 3 non-linear products, persistent send
workspaces) and the per-field differential oracle (the seed's
15-Alltoall layout) — and verifies the fast path is a pure wall-clock
optimisation:

* final velocity state **bitwise identical** between modes,
* OpCounter flop/byte ledgers identical,
* total wire bytes and message payloads conserved,
* per-rank per-step Alltoall count pinned at 2 vs 15 (via the
  ``fourier.transpose.alltoalls`` metric).

Timing comes in two honest flavours.  ``stage2_*`` isolates the
non-linear stage's data motion (transpose + FFT + products + back) at
the exact paper shapes, alternating modes within one cluster so
allocator drift cancels — this is where the fast path's >= 1.5x lives.
``step_s`` times *whole* solver steps the same alternating way; since
stage 2 is only ~15-20% of a step (the paper's own Figure 13 shares —
the elliptic solves dominate), the whole-step win is Amdahl-bounded
near 1.1x and is reported, not gated.  Host walls are measured per
step between barriers inside the rank body (the barrier-delimited
window spans every rank's share, so on a single host it is the true
cost of advancing the whole cluster), best-of-steps.

Writes ``BENCH_fourier.json``.  Run as a script::

    python -m repro.apps.fourier_bench [--smoke] [--out BENCH_fourier.json]

``--smoke`` runs a toy mesh on 2 ranks so CI can exercise the harness
in seconds; the stage-2 acceptance gate applies to the paper-size run
only (the paper configuration takes ~20 minutes of solver setup).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time

import numpy as np

from ..assembly.space import FunctionSpace
from ..fourier.mapping import transpose_to_modes, transpose_to_points
from ..fourier.pipeline import FusedFourierPipeline
from ..fourier.transforms import fft_z, ifft_z, mode_blocks
from ..linalg.counters import OpCounter
from ..machines.catalog import NETWORKS
from ..mesh.generators import bluff_body_mesh, rectangle_quads
from ..ns.nektar_f import NekTarF
from ..obs import scoped
from ..obs.runlog import append_bench_record
from ..parallel.simmpi import VirtualCluster

__all__ = ["PAPER", "SMOKE", "run_bench", "main"]

# Section 4.1/4.2.1 size: the order-8 bluff-body mesh (our generator
# lands at 1216 elements; the paper quotes 902) with 32 planes on 8
# processors — 2 complex modes (4 planes) per processor.
PAPER = {
    "mesh": "bluff",
    "order": 8,
    "nz": 32,
    "nprocs": 8,
    "warmup": 2,
    "steps": 3,
    "stage2_reps": 6,
}
SMOKE = {
    "mesh": "rect",
    "order": 4,
    "nz": 8,
    "nprocs": 2,
    "warmup": 2,
    "steps": 3,
    "stage2_reps": 3,
}

NET = NETWORKS["RoadRunner, myr-internode"]


def _build(cfg):
    if cfg["mesh"] == "bluff":
        mesh = bluff_body_mesh(m=8, nr=4, refine=2)
        vel_tags = ("inflow", "side", "wall")
        p_tags = ("outflow",)
    else:
        mesh = rectangle_quads(3, 2, 0.0, 2.0 * np.pi, 0.0, np.pi)
        vel_tags = ("left", "top", "bottom")
        p_tags = ("right",)
    return mesh, vel_tags, p_tags


def _amp_u(m, x, y, t):
    return 1.0 if m == 0 else 0.0


def _amp_zero(m, x, y, t):
    return 0.0


def _amp_w0(m, x, y, t):
    # A non-zero higher mode so the non-linear products exercise real
    # three-dimensional data from the first step.
    return complex(0.1 * np.sin(x)) if m == 1 else 0.0


def _make_solver(comm, cfg, mesh, vel_tags, p_tags, fused):
    space = FunctionSpace(mesh, cfg["order"])
    bcs = {
        t: (
            _amp_u if t != "wall" else _amp_zero,
            _amp_zero,
            _amp_zero,
        )
        for t in vel_tags
    }
    nf = NekTarF(
        comm,
        space,
        nz=cfg["nz"],
        nu=0.05,
        dt=2e-3,
        velocity_bcs=bcs,
        pressure_dirichlet=p_tags,
        fused_transpose=fused,
    )
    nf.set_initial(_amp_u, _amp_zero, _amp_w0)
    return nf


def _run_mode(cfg, fused: bool) -> dict:
    """One full-trajectory run of a single mode: state digests, charge
    ledger, wire traffic and the Alltoall metric (the parity data)."""
    mesh, vel_tags, p_tags = _build(cfg)
    nprocs = cfg["nprocs"]
    nsteps = cfg["warmup"] + cfg["steps"]

    def rank_fn(comm):
        with OpCounter() as c:
            nf = _make_solver(comm, cfg, mesh, vel_tags, p_tags, fused)
            nf.run(nsteps)
        digest = hashlib.sha256()
        for f in (nf.u_hat, nf.v_hat, nf.w_hat):
            digest.update(np.ascontiguousarray(f).tobytes())
        flops, bytes_ = c.snapshot().totals()
        return {
            "digest": digest.hexdigest(),
            "virtual_wall": comm.wall,
            "sent_bytes": comm._st.sent_bytes,
            "messages": comm._st.messages,
            "flops": flops,
            "bytes": bytes_,
        }

    with scoped() as registry:
        cluster = VirtualCluster(nprocs, NET, engine="event")
        res = cluster.run(rank_fn)
    alltoalls = registry.snapshot()["fourier.transpose.alltoalls"]["value"]
    return {
        "digests": tuple(r["digest"] for r in res),
        "virtual_wall_s": max(r["virtual_wall"] for r in res),
        "alltoalls_per_rank_step": alltoalls / (nprocs * nsteps),
        "wire_bytes_total": sum(r["sent_bytes"] for r in res),
        "messages_total": sum(r["messages"] for r in res),
        "flops_total": sum(r["flops"] for r in res),
        "bytes_total": sum(r["bytes"] for r in res),
    }


def _time_steps(cfg) -> dict[str, float]:
    """Whole-step host walls, alternating stage-2 modes step by step
    inside ONE cluster so setup is paid once and allocator/cache drift
    hits both modes equally (both modes advance the identical
    trajectory — they are bitwise interchangeable)."""
    mesh, vel_tags, p_tags = _build(cfg)

    def rank_fn(comm):
        nf = _make_solver(comm, cfg, mesh, vel_tags, p_tags, fused=True)
        nf.run(cfg["warmup"])
        times: dict[str, list] = {"fused": [], "per_field": []}
        for i in range(2 * cfg["steps"]):
            nf.fused_transpose = i % 2 == 0
            comm.barrier()
            # repro: waive[virtual-time] the harness measures HOST wall per step
            t0 = time.perf_counter()
            nf.step()
            comm.barrier()
            # repro: waive[virtual-time] end of the host-wall step window
            dt_host = time.perf_counter() - t0
            times["fused" if i % 2 == 0 else "per_field"].append(dt_host)
        return times

    cluster = VirtualCluster(cfg["nprocs"], NET, engine="event")
    res = cluster.run(rank_fn)
    return {mode: min(ts) for mode, ts in res[0].items()}


def _time_stage2(cfg) -> dict:
    """The non-linear stage's data motion in isolation, at the exact
    paper shapes: 12 modal fields out, inverse FFT, physical products,
    forward FFT, 3 fields back.  Alternating reps, best-of; bitwise
    and ledger parity asserted in-line."""
    mesh, _, _ = _build(cfg)
    space = FunctionSpace(mesh, cfg["order"])
    npts = space.nelem * space.nq
    nz = cfg["nz"]

    def products(p):
        return [
            -(p[0] * p[3 * k + 3] + p[1] * p[3 * k + 4] + p[2] * p[3 * k + 5])
            for k in range(3)
        ]

    def rank_fn(comm):
        my = mode_blocks(nz // 2, comm.size)[comm.rank]
        rng = np.random.default_rng(comm.rank)
        fields = [
            rng.standard_normal((len(my), npts))
            + 1j * rng.standard_normal((len(my), npts))
            for _ in range(12)
        ]
        pipe = FusedFourierPipeline()
        times: dict[str, list] = {"fused": [], "per_field": []}
        ledgers = {}
        outs = {}
        for rep in range(2 * cfg["stage2_reps"]):
            fused = rep % 2 == 0
            comm.barrier()
            # repro: waive[virtual-time] host wall of one stage-2 sweep
            t0 = time.perf_counter()
            with OpCounter() as c:
                if fused:
                    phys = pipe.to_physical(comm, fields, nz)
                    back = pipe.to_modal(comm, products(phys), npts, nz)
                else:
                    phys = [
                        ifft_z(transpose_to_points(comm, f.T), nz)
                        for f in fields
                    ]
                    back = np.stack(
                        [
                            transpose_to_modes(comm, fft_z(p), npts).T
                            for p in products(phys)
                        ]
                    )
            comm.barrier()
            # repro: waive[virtual-time] end of the stage-2 window
            dt_host = time.perf_counter() - t0
            key = "fused" if fused else "per_field"
            times[key].append(dt_host)
            ledgers[key] = c.snapshot().totals()
            outs[key] = np.ascontiguousarray(back).tobytes()
        assert outs["fused"] == outs["per_field"], "stage-2 modes diverge"
        assert ledgers["fused"] == ledgers["per_field"], "stage-2 ledgers diverge"
        return {mode: min(ts) for mode, ts in times.items()}

    cluster = VirtualCluster(cfg["nprocs"], NET, engine="event")
    res = cluster.run(rank_fn)
    fused_s = res[0]["fused"]
    per_field_s = res[0]["per_field"]
    return {
        "fused_s": fused_s,
        "per_field_s": per_field_s,
        "speedup": per_field_s / fused_s,
    }


def run_bench(smoke: bool = False) -> dict:
    """Benchmark both stage-2 modes; returns the results dict."""
    cfg = SMOKE if smoke else PAPER
    mesh, _, _ = _build(cfg)
    modes = {
        "fused": _run_mode(cfg, fused=True),
        "per_field": _run_mode(cfg, fused=False),
    }
    fused, loop = modes["fused"], modes["per_field"]
    if fused["digests"] != loop["digests"]:
        raise AssertionError("fused and per-field final states differ")
    for key in ("flops_total", "bytes_total", "wire_bytes_total"):
        if fused[key] != loop[key]:
            raise AssertionError(
                f"{key} differs between modes: "
                f"{fused[key]} != {loop[key]}"
            )
    steps = _time_steps(cfg)
    stage2 = _time_stage2(cfg)
    results: dict = {
        "config": {
            "elements": mesh.nelements,
            "order": cfg["order"],
            "nz": cfg["nz"],
            "nprocs": cfg["nprocs"],
            "steps": cfg["steps"],
            "warmup": cfg["warmup"],
            "stage2_reps": cfg["stage2_reps"],
            "smoke": smoke,
        },
        "step_speedup": steps["per_field"] / steps["fused"],
        "stage2": stage2,
        "results_identical": True,
        "charges_identical": True,
        "wire_bytes_conserved": True,
    }
    for name, entry in modes.items():
        results[name] = {
            "step_s": steps[name],
            "virtual_wall_s": entry["virtual_wall_s"],
            "alltoalls_per_rank_step": entry["alltoalls_per_rank_step"],
            "wire_bytes_total": entry["wire_bytes_total"],
            "messages_total": entry["messages_total"],
            "flops_total": entry["flops_total"],
            "bytes_total": entry["bytes_total"],
        }
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced size for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_fourier.json", help="output path")
    parser.add_argument(
        "--ledger",
        default=None,
        help="append a run record to this JSONL run ledger",
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if args.ledger:
        rec = append_bench_record(args.ledger, "fourier_bench", results)
        print(f"ledger: appended {rec['fingerprint']} -> {args.ledger}")
    for name in ("fused", "per_field"):
        e = results[name]
        print(
            f"{name:10s} step {e['step_s'] * 1e3:9.2f} ms   "
            f"alltoalls/step {e['alltoalls_per_rank_step']:5.1f}   "
            f"virtual wall {e['virtual_wall_s']:.4f} s"
        )
    s2 = results["stage2"]
    print(
        f"stage 2    fused {s2['fused_s'] * 1e3:9.2f} ms   "
        f"per-field {s2['per_field_s'] * 1e3:9.2f} ms   "
        f"speedup {s2['speedup']:.2f}x"
    )
    print(f"step speedup: {results['step_speedup']:.2f}x -> {args.out}")
    return results


if __name__ == "__main__":
    main()
