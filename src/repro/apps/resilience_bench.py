"""Resilience benchmark: degradation curves the paper's tables hint at.

Sweeps message-loss rates over the RoadRunner Fast-Ethernet and Myrinet
catalog entries, running a 2-rank NekTar-F with compute charging and a
seeded :class:`~repro.parallel.faults.FaultPlan`, and records the
per-step virtual wall/cpu inflation relative to the loss-free run —
the quantitative form of Section 4.3's "fact or fiction" answer: a
kernel-mediated TCP fabric pays retransmit timeouts that compound with
the Alltoall traffic, while an OS-bypass fabric (link-level flow
control, no software retransmit path) stays flat at any loss rate.

Also runs the recovery scenario end to end: a rank crash mid-run,
restart from the last complete checkpoint set, and a bitwise comparison
of the recovered fields against the fault-free run.

Writes ``BENCH_resilience.json``.  Run as a script::

    python -m repro.apps.resilience_bench [--smoke] [--out BENCH_resilience.json]

All recorded quantities are virtual-clock or counter values —
deterministic properties of the pricing model, hard-gated by
``benchmarks/check_regression.py`` (no machine-dependent timings).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from ..assembly.space import FunctionSpace
from ..campaign.client import bench_client, run_cli
from ..io.writers import NekTarFCheckpoint
from ..machines.catalog import CPUS, NETWORKS
from ..mesh.generators import rectangle_quads
from ..ns.nektar_f import NekTarF
from ..obs import scoped
from ..parallel.faults import CrashSpec, FaultPlan, RankFailure
from ..parallel.simmpi import VirtualCluster

__all__ = ["run_bench", "main"]

SWEPT_NETWORKS = {
    "fast-ethernet": "RoadRunner, eth-internode",
    "myrinet": "RoadRunner, myr-internode",
}
CPU_NAME = "pentium-ii-450"  # the RoadRunner node of Table 1
LOSS_RATES_FULL = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)
LOSS_RATES_SMOKE = (0.0, 0.05, 0.2)
SEED = 1999  # SC99

FULL = {"nx": 2, "ny": 2, "order": 5, "nz": 8, "nsteps": 4}
SMOKE = {"nx": 1, "ny": 1, "order": 4, "nz": 4, "nsteps": 2}


def _solver(comm, cfg, dt=5e-3):
    """A small decaying-vortex NekTar-F (no-slip box, modes 0..nz/2)."""
    mesh = rectangle_quads(cfg["nx"], cfg["ny"], 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    space = FunctionSpace(mesh, cfg["order"])

    def zero(m, x, y, t):
        return 0.0

    bcs = {t: (zero, zero, zero) for t in ("left", "right", "top", "bottom")}
    nf = NekTarF(
        comm, space, nz=cfg["nz"], nu=0.05, dt=dt, velocity_bcs=bcs,
        charge_compute=True,
    )
    nf.set_initial(
        lambda m, x, y, t: complex(np.sin(x) * np.cos(y)) if m <= 1 else 0.0,
        lambda m, x, y, t: complex(-np.cos(x) * np.sin(y)) if m <= 1 else 0.0,
        lambda m, x, y, t: complex(0.1) if m == 1 else 0.0,
    )
    return nf


def _run_case(network, cfg, plan=None):
    """One (network, plan) run; returns virtual clocks and fault counters."""
    def rank_fn(comm):
        nf = _solver(comm, cfg)
        nf.run(cfg["nsteps"])
        return comm.wall, comm.cpu_time

    with scoped() as registry:
        cluster = VirtualCluster(
            2, network=network, cpu=CPUS[CPU_NAME], faults=plan
        )
        res = cluster.run(rank_fn)
    snap = registry.snapshot()

    def counter(name):
        return snap.get(name, {}).get("value", 0.0)

    return {
        "wall_virtual": max(r[0] for r in res),
        "cpu_virtual": max(r[1] for r in res),
        "retransmits": counter("faults.retransmits"),
        "retransmitted_bytes": counter("faults.retransmitted_bytes"),
    }


def _sweep(net_name, cfg, loss_rates):
    network = NETWORKS[net_name]
    points = []
    for rate in loss_rates:
        plan = FaultPlan(seed=SEED, loss_rate=rate) if rate else None
        case = _run_case(network, cfg, plan)
        case["loss_rate"] = rate
        points.append(case)
    base = points[0]
    for p in points:
        p["wall_inflation"] = p["wall_virtual"] / base["wall_virtual"]
        p["cpu_inflation"] = p["cpu_virtual"] / base["cpu_virtual"]
        p["per_step_wall"] = p["wall_virtual"] / cfg["nsteps"]
    return points


def _crash_restart(cfg):
    """Crash rank 1 mid-run, restart from the last checkpoint set, and
    compare the recovered fields bitwise against a fault-free run."""
    network = NETWORKS[SWEPT_NETWORKS["fast-ethernet"]]
    nsteps = 2 * cfg["nsteps"]
    crash_step = nsteps // 2 + 1
    every = 2

    def clean(comm):
        nf = _solver(comm, cfg)
        nf.run(nsteps)
        return nf.u_hat, nf.w_hat, nf.t

    ref = VirtualCluster(2, network=network, cpu=CPUS[CPU_NAME]).run(clean)

    with tempfile.TemporaryDirectory() as ckpt_dir:

        def faulty(comm):
            nf = _solver(comm, cfg)
            try:
                nf.run(nsteps, checkpoint_every=every, checkpoint_dir=ckpt_dir)
                return "finished"
            except RankFailure as e:
                return f"lost rank {e.rank}"

        plan = FaultPlan(crashes=(CrashSpec(rank=1, at_step=crash_step),))
        survived = VirtualCluster(
            2, network=network, cpu=CPUS[CPU_NAME], faults=plan
        ).run(faulty)
        restart_step = NekTarFCheckpoint.latest_step(ckpt_dir, 2)

        def restarted(comm):
            nf = _solver(comm, cfg)
            nf.restore_checkpoint(ckpt_dir)
            nf.run(nsteps - nf.step_count)
            return nf.u_hat, nf.w_hat, nf.t

        out = VirtualCluster(2, network=network, cpu=CPUS[CPU_NAME]).run(
            restarted
        )

    recovered = all(
        np.array_equal(a[0], b[0])
        and np.array_equal(a[1], b[1])
        and a[2] == b[2]
        for a, b in zip(ref, out)
    )
    return {
        "nsteps": nsteps,
        "crash_step": crash_step,
        "checkpoint_every": every,
        "survivor_outcome": survived[0],
        "restart_step": restart_step,
        "steps_lost": crash_step - restart_step,
        "recovered_bitwise": recovered,
    }


def run_bench(smoke: bool = False) -> dict:
    cfg = SMOKE if smoke else FULL
    loss_rates = LOSS_RATES_SMOKE if smoke else LOSS_RATES_FULL
    results: dict = {
        "config": {
            **cfg,
            "cpu": CPU_NAME,
            "seed": SEED,
            "smoke": smoke,
            "nprocs": 2,
        },
        "sweep": {},
    }
    for label, net_name in SWEPT_NETWORKS.items():
        results["sweep"][label] = _sweep(net_name, cfg, loss_rates)

    eth = [p["wall_inflation"] for p in results["sweep"]["fast-ethernet"]]
    myr = [p["wall_inflation"] for p in results["sweep"]["myrinet"]]
    # The acceptance shape: TCP pays for loss, OS-bypass does not.
    if not all(b <= a for b, a in zip(eth, eth[1:])) or eth[-1] <= eth[0]:
        raise AssertionError(f"fast-ethernet inflation not monotone: {eth}")
    if any(m != 1.0 for m in myr):
        raise AssertionError(f"myrinet inflation not flat: {myr}")

    results["crash_restart"] = _crash_restart(cfg)
    if not results["crash_restart"]["recovered_bitwise"]:
        raise AssertionError("checkpoint restart failed to recover the fields")
    return results


def _summary(results: dict) -> None:
    for label, points in results["sweep"].items():
        curve = "  ".join(
            f"{p['loss_rate']:.0%}:{p['wall_inflation']:.2f}x" for p in points
        )
        print(f"{label:14s} wall inflation  {curve}")
    cr = results["crash_restart"]
    print(
        f"crash at step {cr['crash_step']}, restarted from "
        f"{cr['restart_step']} ({cr['steps_lost']} step(s) replayed), "
        f"recovered bitwise: {cr['recovered_bitwise']}"
    )


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced size for CI smoke runs"
    )
    parser.add_argument(
        "--out", default="BENCH_resilience.json", help="output path"
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="append a run record to this JSONL run ledger",
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke)
    return bench_client(
        "resilience_bench", results, args.out, args.ledger, summary=_summary
    )


if __name__ == "__main__":
    sys.exit(run_cli(main))
