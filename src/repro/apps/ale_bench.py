"""Table 3 / Figures 15-16 driver: NekTar-ALE flapping-wing scaling.

The paper's strong-scaling case: a flapping NACA 4420 wing, 15,870
elements at polynomial order 4, 4,062,720 degrees of freedom, Re=1000.
The solver is iterative (diagonally preconditioned CG) with the
Tufo-Fischer gather-scatter interface — per CG iteration the only
communication is a pairwise/binary-tree interface exchange plus two
allreduce inner products; *no Alltoall* (Section 4.2.2).

Model composition per step and processor:

* compute = TOTAL_FLOPS / P at the machine's application rate,
  inflated by a memory-pressure penalty when the per-processor working
  set exceeds node RAM (the paper: AP3000 and SP2-Thin2 "have such
  performance, due to marginal memory resources");
* communication = (CG iterations per step) x (two 8-byte allreduces +
  pairwise neighbour exchanges of the partition-interface dofs).

Stage grouping follows Figures 15-16: a = steps 1-4 and 6 (vector
work), b = step 5 (pressure CG), c = step 7 (velocity + mesh-velocity
CG).  TOTAL_FLOPS is calibrated once, to the NCSA 16-processor entry
(which per the paper's footnote ran on the 195 MHz Origins; 32-128
used the 250 MHz processors — the model switches CPU accordingly).

Run: ``python -m repro.apps.ale_bench [--breakdown 16|64]``.
"""

from __future__ import annotations

from ..machines.catalog import CPUS, MACHINES
from ..reporting.tables import ascii_table, format_percentages

__all__ = [
    "PAPER_ALE",
    "TABLE3_PAPER",
    "TABLE3_SYSTEMS",
    "step_times",
    "table3",
    "figure15_16",
    "main",
]

PAPER_ALE = {
    "elements": 15_870,
    "order": 4,
    "dofs": 4_062_720,
    "re": 1000,
    # Modes per tetrahedral element at order 4: (P+1)(P+2)(P+3)/6.
    "nmodes": 35,
    # CG iterations per timestep (pressure / 3 velocity / mesh velocity);
    # calibrated to the b:c split of Figures 15-16.
    "iters": {"pressure": 120, "viscous": 105, "mesh": 40},
    # Fraction of compute in the a/b/c stage groups (Figures 15-16).
    "fractions": {"a": 0.08, "b": 0.41, "c": 0.51},
    # Total flops per timestep, calibrated to NCSA@16 = 25.71 s.
    "total_flops": 33.7e9,
    # Working set: bytes per dof (fields, histories, geometric factors,
    # elemental operators) — sets the memory-pressure penalty.
    "bytes_per_dof": 800.0,
    # Non-scaling (replicated/serial) work per step as a fraction of the
    # one-processor compute: fitting T = C/P + sigma to the paper's own
    # NCSA column (32/64/128) gives ~1%.
    "serial_fraction": 0.01,
    # Face-coupled dofs per interface face at order 4 (tet faces).
    "dofs_per_face": 15,
    "neighbors": 6,
}

# Table 3 of the paper: P -> {system: (cpu, wall)}.
TABLE3_PAPER = {
    16: {
        "AP3000": (43.23, 43.674),
        "NCSA": (25.71, 25.79),
        "SP2-Silver": (29.59, 29.71),
        "SP2-Thin2": (65.47, 69.21),
        "RoadRunner myr.": (25.38, 25.4),
    },
    32: {
        "NCSA": (9.87, 10.08),
        "SP2-Silver": (15.82, 15.85),
        "RoadRunner myr.": (13.57, 13.58),
    },
    64: {
        "NCSA": (6.97, 6.99),
        "SP2-Silver": (9.37, 9.4),
        "RoadRunner myr.": (9.83, 9.87),
    },
    128: {
        "NCSA": (5.72, 6.04),
    },
}

TABLE3_SYSTEMS = {
    "AP3000": ("AP3000", "default"),
    "NCSA": ("NCSA", "default"),
    "SP2-Silver": ("SP2-Silver", "internode"),
    "SP2-Thin2": ("SP2-Thin2", "default"),
    "RoadRunner myr.": ("RoadRunner", "myrinet"),
}


def _ncsa_cpu(nprocs: int):
    """The paper's footnote: 16-processor NCSA runs used the 195 MHz
    Origins; 32-128 processor runs the 250 MHz ones."""
    return CPUS["r10000-195"] if nprocs <= 16 else CPUS["r10000-250"]


def _iface_bytes(nprocs: int) -> float:
    """Partition-interface payload per neighbour per exchange: surface
    scaling (elements/P)^(2/3) faces x dofs/face x 8 bytes."""
    faces = (PAPER_ALE["elements"] / nprocs) ** (2.0 / 3.0)
    return faces * PAPER_ALE["dofs_per_face"] * 8.0


def step_times(system: str, nprocs: int) -> dict:
    """Model CPU and wall seconds per ALE step for one system."""
    mkey, nkind = TABLE3_SYSTEMS[system]
    spec = MACHINES[mkey]
    cpu_model = _ncsa_cpu(nprocs) if system == "NCSA" else spec.cpu
    net = spec.network(nkind)

    rate = (cpu_model.app_mflops or cpu_model.dns_sustained_mflops()) * 1e6
    required = PAPER_ALE["dofs"] * PAPER_ALE["bytes_per_dof"] / nprocs
    available = 0.75 * spec.ram_per_proc  # OS and code leave ~75% usable
    penalty = max(1.0, required / available)
    single = PAPER_ALE["total_flops"] / rate
    compute = (
        single / nprocs * penalty + PAPER_ALE["serial_fraction"] * single
    )

    iters = sum(PAPER_ALE["iters"].values())
    per_iter = 2.0 * net.allreduce_time(nprocs, 8) + PAPER_ALE[
        "neighbors"
    ] * net.send_time(int(_iface_bytes(nprocs)))
    comm_wall = iters * per_iter
    comm_cpu = net.busy_wait_fraction * comm_wall + net.cpu_time_for_bytes(
        iters * PAPER_ALE["neighbors"] * _iface_bytes(nprocs) * 2.0
    )

    frac = PAPER_ALE["fractions"]
    it = PAPER_ALE["iters"]
    comm_b = comm_wall * it["pressure"] / iters
    comm_c = comm_wall * (it["viscous"] + it["mesh"]) / iters
    stage_cpu = {
        "a": compute * frac["a"],
        "b": compute * frac["b"] + comm_cpu * it["pressure"] / iters,
        "c": compute * frac["c"] + comm_cpu * (it["viscous"] + it["mesh"]) / iters,
    }
    stage_wall = {
        "a": compute * frac["a"],
        "b": compute * frac["b"] + comm_b,
        "c": compute * frac["c"] + comm_c,
    }
    return {
        "cpu": sum(stage_cpu.values()),
        "wall": sum(stage_wall.values()),
        "stage_cpu": stage_cpu,
        "stage_wall": stage_wall,
        "penalty": penalty,
    }


def _normalisation() -> float:
    return TABLE3_PAPER[16]["NCSA"][0] / step_times("NCSA", 16)["cpu"]


def table3() -> list[tuple]:
    scale = _normalisation()
    rows = []
    for p in sorted(TABLE3_PAPER):
        for system, (pc, pw) in TABLE3_PAPER[p].items():
            t = step_times(system, p)
            rows.append(
                (
                    p,
                    system,
                    f"{t['cpu'] * scale:.2f}/{t['wall'] * scale:.2f}",
                    f"{pc}/{pw}",
                )
            )
    return rows


def figure15_16(
    nprocs: int = 16, systems=("NCSA", "RoadRunner myr.")
) -> dict[str, dict[str, float]]:
    """Stage-group (a/b/c) percentage shares, CPU and wall (Figs 15-16)."""
    out = {}
    for system in systems:
        t = step_times(system, nprocs)
        for kind in ("cpu", "wall"):
            stages = t[f"stage_{kind}"]
            tot = sum(stages.values())
            out[f"{system} ({kind})"] = {
                g: 100.0 * v / tot for g, v in stages.items()
            }
    return out


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--breakdown", type=int, default=0, metavar="P")
    args = parser.parse_args(argv)
    out = [
        ascii_table(
            ["P", "system", "model cpu/wall (s)", "paper cpu/wall (s)"],
            table3(),
            title="Table 3: NekTar-ALE 3D flapping-wing CPU/wall time per step",
        )
    ]
    if args.breakdown:
        out.append("")
        out.append(
            format_percentages(
                figure15_16(args.breakdown),
                title=f"Figures 15-16: ALE stage shares, {args.breakdown} processors",
            )
        )
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    main()
