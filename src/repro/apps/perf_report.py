"""Performance-trajectory report over the persistent run ledger.

``benchmarks/check_regression.py`` answers "did this run match the one
committed baseline?".  This CLI answers the longitudinal question the
baseline cannot: **how has each configuration behaved across runs?**
It groups the ledger (:mod:`repro.obs.runlog`) by config fingerprint,
renders each configuration's trajectory — timestamp, git revision,
headline timings — and flags drift the trend-aware way:

* **host timings** (``*_s`` keys, speedups): the latest run is compared
  against the *median* of its history — with the latest run itself
  excluded from the reference (self-comparison would dampen real
  regressions), so one noisy run neither fires nor poisons the
  reference — findings are ``regression`` / ``improvement`` and warn by
  default.  A two-run history still compares, but its findings are
  downgraded to ``suspect-*`` severity: one reference sample cannot
  tell a regression from a noisy first run;
* **deterministic values** (virtual clocks, charge counters, critical
  path attribution): any change against the immediately preceding
  record is a ``drift`` finding — on the virtual machine these have no
  noise, so a change is a code change.

Histories are keyed by ``(bench, fingerprint)``: two benches that
happen to share a config fingerprint never pool their trajectories.

Run::

    python -m repro.apps.perf_report --ledger RUNLOG.jsonl
        [--bench scaling_bench] [--fingerprint abc123...]
        [--timing-rtol 0.5] [--strict] [--out perf_report.txt]

``--strict`` exits :data:`~repro.util.cli.EXIT_GATE` (1) when any
``drift`` or ``regression`` finding fires, turning the report into a
gate (``suspect-*`` findings warn but do not gate); a missing or
corrupt ledger is a usage error (exit 2).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..obs.runlog import RunLedger, iter_timing_drift
from ..reporting.tables import ascii_table
from ..util.cli import EXIT_GATE, EXIT_OK, usage_error

__all__ = ["render_perf_report", "main"]

# How many headline timing columns each trajectory table shows.
MAX_TIMING_COLS = 3


def _headline_keys(records: list[dict]) -> list[str]:
    """Pick the timing keys shown as trajectory columns.

    Keys present in every record sort first (a trajectory you can read
    down the column), then alphabetically; capped at MAX_TIMING_COLS.
    """
    counts: dict[str, int] = {}
    for rec in records:
        for key in rec.get("timings", {}):
            counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts, key=lambda k: (-counts[k], k))
    return ranked[:MAX_TIMING_COLS]


def _trajectory_table(fingerprint: str, records: list[dict]) -> str:
    keys = _headline_keys(records)
    headers = ["#", "ts", "rev", "values"] + [k.rsplit(".", 1)[-1] for k in keys]
    rows = []
    for i, rec in enumerate(records):
        row = [
            str(i),
            str(rec.get("ts", "?")),
            str(rec.get("git_rev") or "-"),
            str(len(rec.get("values", {}))),
        ]
        for key in keys:
            val = rec.get("timings", {}).get(key)
            row.append("-" if val is None else f"{val:.4g}")
        rows.append(row)
    bench = records[-1].get("bench", "?")
    return ascii_table(
        headers,
        rows,
        title=f"{bench} @ {fingerprint} ({len(records)} run(s))",
    )


def _findings_lines(findings: list[dict]) -> list[str]:
    lines = []
    for f in findings:
        if f["kind"] == "timing":
            lines.append(
                f"  [{f['severity']}] {f['key']}: {f['latest']:.4g} s vs "
                f"median {f['reference']:.4g} s over {f['nref']} run(s) "
                f"({f['ratio']:.2f}x)"
            )
        else:
            lines.append(
                f"  [{f['severity']}] {f['key']}: {f['latest']!r} != "
                f"previous {f['reference']!r} (deterministic key changed)"
            )
    return lines


def render_perf_report(
    ledger: RunLedger,
    bench: str | None = None,
    fingerprint: str | None = None,
    timing_rtol: float = 0.5,
) -> tuple[str, list[dict]]:
    """Render the full report; returns (text, all drift findings)."""
    groups = {
        key: recs
        for key, recs in ledger.grouped_by_bench().items()
        if (fingerprint is None or key[1] == fingerprint)
        and (bench is None or key[0] == bench)
    }
    if not groups:
        return f"run ledger {ledger.path}: no matching records", []
    parts = [
        f"Run ledger {ledger.path}: {sum(len(r) for r in groups.values())} "
        f"record(s), {len(groups)} configuration(s)"
    ]
    all_findings: list[dict] = []
    for (_bench, fp), records in groups.items():
        parts += ["", _trajectory_table(fp, records)]
        findings = iter_timing_drift(records, rtol=timing_rtol)
        for f in findings:
            f["fingerprint"] = fp
        all_findings += findings
        if findings:
            parts += _findings_lines(findings)
        elif len(records) >= 2:
            parts.append("  steady: no drift against history")
        else:
            parts.append("  first record: no history to compare against")
    n_drift = sum(1 for f in all_findings if f["severity"] == "drift")
    n_reg = sum(1 for f in all_findings if f["severity"] == "regression")
    n_suspect = sum(
        1 for f in all_findings if f["severity"].startswith("suspect-")
    )
    parts += [
        "",
        f"summary: {n_drift} deterministic drift(s), "
        f"{n_reg} timing regression(s), "
        f"{n_suspect} low-confidence (nref=1) finding(s), "
        f"{len(all_findings) - n_drift - n_reg - n_suspect} other finding(s)",
    ]
    return "\n".join(parts), all_findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ledger", required=True, help="run-ledger JSONL path"
    )
    parser.add_argument("--bench", default=None, help="filter by bench name")
    parser.add_argument(
        "--fingerprint", default=None, help="filter by config fingerprint"
    )
    parser.add_argument(
        "--timing-rtol",
        type=float,
        default=0.5,
        help="relative tolerance for host-timing drift (0.5 = flag 1.5x)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on deterministic drift or timing regression",
    )
    parser.add_argument(
        "--out", default=None, help="also write the report to a file"
    )
    args = parser.parse_args(argv)
    if not Path(args.ledger).exists():
        return usage_error(f"run ledger not found: {args.ledger}")
    try:
        report, findings = render_perf_report(
            RunLedger(args.ledger),
            bench=args.bench,
            fingerprint=args.fingerprint,
            timing_rtol=args.timing_rtol,
        )
    except ValueError as exc:  # corrupt ledger line
        return usage_error(str(exc))
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
    # suspect-* findings (single-sample reference) warn but never gate.
    bad = [f for f in findings if f["severity"] in ("drift", "regression")]
    return EXIT_GATE if (args.strict and bad) else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
