"""Application-level drivers: Tables 1-3 and Figures 9-16."""

from . import (
    ale_bench,
    cost_of_ownership,
    kernel_report,
    matrix_structure,
    nektar_f_bench,
    serial_bluff,
)
from .pricing import STAGE_KINDS, price_stages, total_time

__all__ = [
    "serial_bluff",
    "nektar_f_bench",
    "ale_bench",
    "kernel_report",
    "matrix_structure",
    "cost_of_ownership",
    "STAGE_KINDS",
    "price_stages",
    "total_time",
]
