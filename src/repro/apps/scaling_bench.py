"""Scaling benchmark: O(1000)-rank virtual clusters on the event engine.

The paper stops at 64 processors because that is where its PC/Linux
cluster stopped; the ROADMAP's question is what the *model* says beyond
that.  This harness drives the event-driven simmpi scheduler through
the communication patterns that dominate the paper's solvers — a
nearest-neighbour ring exchange (the gather-scatter shape) and the
Fourier-direction Alltoall sweep (NekTar-F's transpose) — at rank
counts the legacy thread-per-rank engine cannot reach, plus one fault
storm (loss + stragglers + a degraded link) at an intermediate size.

Three kinds of quantities are recorded:

* **virtual clocks and charge counters** (``wall_virtual``,
  ``cpu_virtual``, ``comm.*`` / ``faults.*`` counter values) —
  deterministic properties of the pricing model, hard-gated by
  ``benchmarks/check_regression.py``;
* **host scheduler statistics** (``scheduler.switches`` /
  ``scheduler.wakeups``) — deterministic properties of the cooperative
  schedule, also hard-gated: an unintended change in how the engine
  dispatches ranks shows up here before it shows up anywhere else;
* **host elapsed times** (``*_s`` keys) — machine-dependent, warn-only
  under the regression gate.

An engine-parity section re-runs the small cases on the legacy thread
engine and asserts byte-identical virtual clocks and ledgers — the
differential oracle riding inside the benchmark.

Writes ``BENCH_scaling.json``.  Run as a script::

    python -m repro.apps.scaling_bench [--smoke] [--out BENCH_scaling.json]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from ..machines.network import NetworkModel
from ..obs import MetricsRegistry, use_registry
from ..parallel.faults import FaultPlan
from ..parallel.simmpi import VirtualCluster

__all__ = ["run_bench", "main"]

# A paper-plausible commodity fabric (100 Mbit/s, 10 us latency) priced
# directly rather than via the catalog: the sweep is about scheduler
# scale, and a fixed synthetic network keeps the numbers self-contained.
# Kernel-mediated (nonzero per-byte protocol CPU) so the loss model of
# the fault storm applies — loss only injects on TCP-style fabrics.
NETWORK = NetworkModel(
    "scaling-eth",
    latency_us=10,
    bandwidth=100e6,
    cpu_overhead_per_byte=2e-9,
    busy_wait_fraction=0.1,
)

RANKS_FULL = (64, 256, 1024)
RANKS_SMOKE = (16, 64, 256)
# Engine parity is only checked at sizes the thread engine handles
# comfortably (the ISSUE pins the oracle at <= 64 ranks).
PARITY_MAX_RANKS = 64
ALLTOALL_DOUBLES = (64, 512)  # per-destination chunk lengths
RING_ROUNDS = 4
RING_DOUBLES = 256
SEED = 1999  # SC99
STORM_PLAN = FaultPlan(
    seed=SEED,
    loss_rate=0.05,
    stragglers={1: 1.5, 5: 2.0},
    degraded_links={(0, 1): 3.0},
)


def _ring_program(rounds: int = RING_ROUNDS, ndoubles: int = RING_DOUBLES):
    def rank_fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        buf = np.full(ndoubles, float(comm.rank))
        acc = 0.0
        for _ in range(rounds):
            comm.send(right, buf, tag=5)
            # Guarded recv: the harness is fault-bearing (the storm
            # section), so a dropped message must surface as a priced
            # retransmit, never a hang.
            buf = comm.recv(left, tag=5, timeout=5.0, retries=2)
            acc += float(buf[0])
        return acc

    return rank_fn


def _alltoall_program(ndoubles_list=ALLTOALL_DOUBLES):
    def rank_fn(comm):
        checks = []
        for n in ndoubles_list:
            chunk = np.full(n, float(comm.rank))
            out = comm.alltoall([chunk] * comm.size)
            # Every rank contributed its own id: the received chunks
            # must carry ids 0..P-1 in order.
            checks.append(float(sum(c[0] for c in out)))
        comm.barrier()
        return checks

    return rank_fn


def _fingerprint(cluster):
    """Deterministic per-run summary: clocks, ledgers, scheduler."""
    return {
        "wall_virtual": cluster.max_wall,
        "cpu_virtual": cluster.max_cpu,
        "bytes_sent": sum(st.sent_bytes for st in cluster.ranks),
        "messages": sum(st.messages for st in cluster.ranks),
        "scheduler": cluster.engine_stats(),
    }


def _run_case(nprocs, rank_fn, faults=None, engine="event"):
    registry = MetricsRegistry()
    cluster = VirtualCluster(
        nprocs, network=NETWORK, faults=faults, engine=engine
    )
    t0 = time.perf_counter()
    with use_registry(registry):
        results = cluster.run(rank_fn)
    elapsed = time.perf_counter() - t0
    snap = registry.snapshot()

    def counter(name):
        return snap.get(name, {}).get("value", 0.0)

    case = _fingerprint(cluster)
    case.update(
        {
            "nprocs": nprocs,
            "elapsed_s": elapsed,
            "sends": counter("comm.sends"),
            "collectives": counter("comm.collectives"),
            "retransmits": counter("faults.retransmits"),
        }
    )
    return case, results, cluster


def _parity_check(nprocs, rank_fn, faults=None):
    """Run on both engines; assert byte-identical clocks and ledgers."""
    per_engine = {}
    for engine in ("event", "threads"):
        _case, results, cluster = _run_case(
            nprocs, rank_fn, faults=faults, engine=engine
        )
        per_engine[engine] = {
            "results": results,
            "ranks": [
                (st.wall, st.cpu, st.sent_bytes, st.recv_bytes, st.messages)
                for st in cluster.ranks
            ],
            "traces": cluster.rank_traces(),
        }
    ev, th = per_engine["event"], per_engine["threads"]
    if ev["ranks"] != th["ranks"] or ev["traces"] != th["traces"]:
        raise AssertionError(
            f"engine parity broken at {nprocs} ranks: event != threads"
        )
    if repr(ev["results"]) != repr(th["results"]):
        raise AssertionError(
            f"engine parity broken at {nprocs} ranks: results differ"
        )
    return {
        "nprocs": nprocs,
        "wall_virtual": max(r[0] for r in ev["ranks"]),
        "identical": True,
    }


def run_bench(smoke: bool = False) -> dict:
    rank_counts = RANKS_SMOKE if smoke else RANKS_FULL
    storm_ranks = rank_counts[1]
    results: dict = {
        "config": {
            "smoke": smoke,
            "network": NETWORK.name,
            "rank_counts": list(rank_counts),
            "alltoall_doubles": list(ALLTOALL_DOUBLES),
            "ring_rounds": RING_ROUNDS,
            "ring_doubles": RING_DOUBLES,
            "storm_ranks": storm_ranks,
            "seed": SEED,
        },
        "ring": [],
        "alltoall": [],
    }
    for nprocs in rank_counts:
        case, _res, _cl = _run_case(nprocs, _ring_program())
        results["ring"].append(case)
        case, res, _cl = _run_case(nprocs, _alltoall_program())
        # Data correctness at every scale: each received sweep sums the
        # full rank-id range.
        expect = [float(nprocs * (nprocs - 1) // 2)] * len(ALLTOALL_DOUBLES)
        if any(r != expect for r in res):
            raise AssertionError(f"alltoall data wrong at {nprocs} ranks")
        results["alltoall"].append(case)

    storm_case, _res, _cl = _run_case(
        storm_ranks, _alltoall_program(), faults=STORM_PLAN
    )
    if storm_case["retransmits"] <= 0:
        raise AssertionError("fault storm injected no retransmits")
    clean = next(
        c for c in results["alltoall"] if c["nprocs"] == storm_ranks
    )
    if storm_case["wall_virtual"] <= clean["wall_virtual"]:
        raise AssertionError("fault storm did not inflate the wall clock")
    results["fault_storm"] = storm_case

    results["parity"] = [
        _parity_check(n, _alltoall_program())
        for n in rank_counts
        if n <= PARITY_MAX_RANKS
    ] + [
        _parity_check(
            min(PARITY_MAX_RANKS, storm_ranks),
            _alltoall_program(),
            faults=STORM_PLAN,
        )
    ]

    # The tentpole's acceptance shape: virtual Alltoall cost must grow
    # with rank count (the model sees the scaling wall) while the host
    # cost stays tractable (the scheduler does not).
    walls = [c["wall_virtual"] for c in results["alltoall"]]
    if not all(b < a for b, a in zip(walls, walls[1:])):
        raise AssertionError(f"alltoall virtual wall not increasing: {walls}")
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced size for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_scaling.json", help="output path")
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for case in results["alltoall"]:
        print(
            f"alltoall P={case['nprocs']:5d}  "
            f"virtual wall {case['wall_virtual']:.4g}s  "
            f"host {case['elapsed_s']:.2f}s  "
            f"switches {case['scheduler'].get('scheduler.switches', 0):.0f}"
        )
    print(
        f"fault storm P={results['fault_storm']['nprocs']}: "
        f"{results['fault_storm']['retransmits']:.0f} retransmits; "
        f"parity cases: {len(results['parity'])} identical -> {args.out}"
    )
    return results


if __name__ == "__main__":
    main()
