"""Scaling benchmark: O(1000)-rank virtual clusters on the event engine.

The paper stops at 64 processors because that is where its PC/Linux
cluster stopped; the ROADMAP's question is what the *model* says beyond
that.  This harness drives the event-driven simmpi scheduler through
the communication patterns that dominate the paper's solvers — a
nearest-neighbour ring exchange (the gather-scatter shape) and the
Fourier-direction Alltoall sweep (NekTar-F's transpose) — at rank
counts the legacy thread-per-rank engine cannot reach, plus one fault
storm (loss + stragglers + a degraded link) at an intermediate size.

Three kinds of quantities are recorded:

* **virtual clocks and charge counters** (``wall_virtual``,
  ``cpu_virtual``, ``comm.*`` / ``faults.*`` counter values) —
  deterministic properties of the pricing model, hard-gated by
  ``benchmarks/check_regression.py``;
* **host scheduler statistics** (``scheduler.switches`` /
  ``scheduler.wakeups``) — deterministic properties of the cooperative
  schedule, also hard-gated: an unintended change in how the engine
  dispatches ranks shows up here before it shows up anywhere else;
* **host elapsed times** (``*_s`` keys) — machine-dependent, warn-only
  under the regression gate.

An engine-parity section re-runs the small cases on the legacy thread
engine and asserts byte-identical virtual clocks and ledgers — the
differential oracle riding inside the benchmark.

Writes ``BENCH_scaling.json``.  Run as a script::

    python -m repro.apps.scaling_bench [--smoke] [--out BENCH_scaling.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from ..campaign.client import bench_client, run_cli
from ..machines.network import NetworkModel
from ..obs import CritPathRecorder, analyze, scoped
from ..parallel.faults import FaultPlan
from ..parallel.simmpi import VirtualCluster

__all__ = ["NETWORK", "MYRINET", "alltoall_program", "run_bench", "main"]

# A paper-plausible commodity fabric (100 Mbit/s, 10 us latency) priced
# directly rather than via the catalog: the sweep is about scheduler
# scale, and a fixed synthetic network keeps the numbers self-contained.
# Kernel-mediated (nonzero per-byte protocol CPU) so the loss model of
# the fault storm applies — loss only injects on TCP-style fabrics.
NETWORK = NetworkModel(
    "scaling-eth",
    latency_us=10,
    bandwidth=100e6,
    cpu_overhead_per_byte=2e-9,
    busy_wait_fraction=0.1,
)

# OS-bypass counterpart at the same port count: the Myrinet/GM shape
# from the paper's Figure 7 comparison — lower latency, faster links,
# no per-byte protocol CPU (so TCP-style loss does not apply).  Used
# only for the critical-path fabric-swap counterfactual: "what would
# this recorded run have cost on the other interconnect".
MYRINET = NetworkModel(
    "scaling-myr",
    latency_us=3,
    bandwidth=250e6,
    cpu_overhead_per_byte=0.0,
    busy_wait_fraction=1.0,
)

RANKS_FULL = (64, 256, 1024)
RANKS_SMOKE = (16, 64, 256)
# Engine parity is only checked at sizes the thread engine handles
# comfortably (the ISSUE pins the oracle at <= 64 ranks).
PARITY_MAX_RANKS = 64
ALLTOALL_DOUBLES = (64, 512)  # per-destination chunk lengths
RING_ROUNDS = 4
RING_DOUBLES = 256
SEED = 1999  # SC99
STORM_COMPUTE_S = 2e-4  # per-exchange compute in the storm (stragglers stretch it)
STORM_PLAN = FaultPlan(
    seed=SEED,
    loss_rate=0.05,
    stragglers={1: 1.5, 5: 2.0},
    degraded_links={(0, 1): 3.0},
)


def _ring_program(rounds: int = RING_ROUNDS, ndoubles: int = RING_DOUBLES):
    def rank_fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        buf = np.full(ndoubles, float(comm.rank))
        acc = 0.0
        for _ in range(rounds):
            comm.send(right, buf, tag=5)
            # Guarded recv: the harness is fault-bearing (the storm
            # section), so a dropped message must surface as a priced
            # retransmit, never a hang.
            buf = comm.recv(left, tag=5, timeout=5.0, retries=2)
            acc += float(buf[0])
        return acc

    return rank_fn


def alltoall_program(ndoubles_list=ALLTOALL_DOUBLES, compute_s=0.0):
    def rank_fn(comm):
        checks = []
        for n in ndoubles_list:
            if compute_s:
                # Transform work between exchanges (the NekTar-F shape);
                # nonzero only in the fault storm so its stragglers have
                # compute to stretch.
                comm.compute(compute_s)
            chunk = np.full(n, float(comm.rank))
            out = comm.alltoall([chunk] * comm.size)
            # Every rank contributed its own id: the received chunks
            # must carry ids 0..P-1 in order.
            checks.append(float(sum(c[0] for c in out)))
        comm.barrier()
        return checks

    return rank_fn


def _fingerprint(cluster):
    """Deterministic per-run summary: clocks, ledgers, scheduler."""
    return {
        "wall_virtual": cluster.max_wall,
        "cpu_virtual": cluster.max_cpu,
        "bytes_sent": sum(st.sent_bytes for st in cluster.ranks),
        "messages": sum(st.messages for st in cluster.ranks),
        "scheduler": cluster.engine_stats(),
    }


def _run_case(nprocs, rank_fn, faults=None, engine="event", critpath=None):
    cluster = VirtualCluster(
        nprocs, network=NETWORK, faults=faults, engine=engine,
        critpath=critpath,
    )
    t0 = time.perf_counter()
    with scoped() as registry:
        results = cluster.run(rank_fn)
    elapsed = time.perf_counter() - t0
    snap = registry.snapshot()

    def counter(name):
        return snap.get(name, {}).get("value", 0.0)

    case = _fingerprint(cluster)
    case.update(
        {
            "nprocs": nprocs,
            "elapsed_s": elapsed,
            "sends": counter("comm.sends"),
            "collectives": counter("comm.collectives"),
            "retransmits": counter("faults.retransmits"),
        }
    )
    return case, results, cluster


def _parity_check(nprocs, rank_fn, faults=None):
    """Run on both engines; assert byte-identical clocks and ledgers."""
    per_engine = {}
    for engine in ("event", "threads"):
        _case, results, cluster = _run_case(
            nprocs, rank_fn, faults=faults, engine=engine
        )
        per_engine[engine] = {
            "results": results,
            "ranks": [
                (st.wall, st.cpu, st.sent_bytes, st.recv_bytes, st.messages)
                for st in cluster.ranks
            ],
            "traces": cluster.rank_traces(),
        }
    ev, th = per_engine["event"], per_engine["threads"]
    if ev["ranks"] != th["ranks"] or ev["traces"] != th["traces"]:
        raise AssertionError(
            f"engine parity broken at {nprocs} ranks: event != threads"
        )
    if repr(ev["results"]) != repr(th["results"]):
        raise AssertionError(
            f"engine parity broken at {nprocs} ranks: results differ"
        )
    return {
        "nprocs": nprocs,
        "wall_virtual": max(r[0] for r in ev["ranks"]),
        "identical": True,
    }


def run_bench(smoke: bool = False) -> dict:
    rank_counts = RANKS_SMOKE if smoke else RANKS_FULL
    storm_ranks = rank_counts[1]
    results: dict = {
        "config": {
            "smoke": smoke,
            "network": NETWORK.name,
            "swap_network": MYRINET.name,
            "critpath_ranks": rank_counts[-1],
            "rank_counts": list(rank_counts),
            "alltoall_doubles": list(ALLTOALL_DOUBLES),
            "ring_rounds": RING_ROUNDS,
            "ring_doubles": RING_DOUBLES,
            "storm_ranks": storm_ranks,
            "storm_compute_s": STORM_COMPUTE_S,
            "seed": SEED,
        },
        "ring": [],
        "alltoall": [],
    }
    alltoall_rec = None
    for nprocs in rank_counts:
        case, _res, _cl = _run_case(nprocs, _ring_program())
        results["ring"].append(case)
        # Attach the critical-path recorder at the largest sweep size:
        # that is the point whose makespan the report must explain.
        rec = CritPathRecorder() if nprocs == rank_counts[-1] else None
        case, res, _cl = _run_case(nprocs, alltoall_program(), critpath=rec)
        if rec is not None:
            alltoall_rec = rec
        # Data correctness at every scale: each received sweep sums the
        # full rank-id range.
        expect = [float(nprocs * (nprocs - 1) // 2)] * len(ALLTOALL_DOUBLES)
        if any(r != expect for r in res):
            raise AssertionError(f"alltoall data wrong at {nprocs} ranks")
        results["alltoall"].append(case)

    storm_rec = CritPathRecorder()
    storm_case, _res, _cl = _run_case(
        storm_ranks, alltoall_program(compute_s=STORM_COMPUTE_S),
        faults=STORM_PLAN, critpath=storm_rec,
    )
    if storm_case["retransmits"] <= 0:
        raise AssertionError("fault storm injected no retransmits")
    clean = next(
        c for c in results["alltoall"] if c["nprocs"] == storm_ranks
    )
    if storm_case["wall_virtual"] <= clean["wall_virtual"]:
        raise AssertionError("fault storm did not inflate the wall clock")
    results["fault_storm"] = storm_case

    results["parity"] = [
        _parity_check(n, alltoall_program())
        for n in rank_counts
        if n <= PARITY_MAX_RANKS
    ] + [
        _parity_check(
            min(PARITY_MAX_RANKS, storm_ranks),
            alltoall_program(),
            faults=STORM_PLAN,
        )
    ]

    # The tentpole's acceptance shape: virtual Alltoall cost must grow
    # with rank count (the model sees the scaling wall) while the host
    # cost stays tractable (the scheduler does not).
    walls = [c["wall_virtual"] for c in results["alltoall"]]
    if not all(b < a for b, a in zip(walls, walls[1:])):
        raise AssertionError(f"alltoall virtual wall not increasing: {walls}")

    # Critical-path attribution: explain the largest sweep's makespan
    # and the fault storm's, with the standard counterfactual suite plus
    # a Myrinet-style fabric swap and (storm only) remove-straggler.
    assert alltoall_rec is not None
    alltoall_rec.graph.validate()
    storm_rec.graph.validate()
    swap = {"myrinet": MYRINET}
    cp_alltoall = analyze(alltoall_rec.graph, swap_nets=swap)
    cp_storm = analyze(
        storm_rec.graph,
        swap_nets=swap,
        straggler_scale={
            r: 1.0 / s for r, s in STORM_PLAN.stragglers.items()
        },
    )
    if cp_alltoall["coverage"] < 0.95:
        raise AssertionError(
            f"critical path explains only {cp_alltoall['coverage']:.1%} "
            "of the alltoall makespan"
        )
    mk = cp_alltoall["makespan"]
    cf = cp_alltoall["counterfactuals"]
    if not (cf["zero_latency"] < mk and cf["swap:myrinet"] < mk):
        raise AssertionError(
            "counterfactuals failed to improve on the recorded fabric: "
            f"{cf}"
        )
    # The storm's makespan is made of loss RTOs plus straggler compute:
    # wiping the idle component must strictly beat the recorded run, and
    # remove-straggler can never make it worse.
    scf = cp_storm["counterfactuals"]
    if scf["zero_idle"] >= cp_storm["makespan"]:
        raise AssertionError("zero-idle did not shrink the fault storm")
    if scf["remove_straggler"] > cp_storm["makespan"]:
        raise AssertionError("remove-straggler increased the storm makespan")
    results["critpath"] = {"alltoall": cp_alltoall, "fault_storm": cp_storm}
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced size for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_scaling.json", help="output path")
    parser.add_argument(
        "--critpath-out",
        default=None,
        help="also write the critical-path section to its own JSON",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="append a run record to this JSONL run ledger",
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke)
    if args.critpath_out:
        with open(args.critpath_out, "w") as fh:
            json.dump(results["critpath"], fh, indent=2, sort_keys=True)
            fh.write("\n")
    return bench_client(
        "scaling_bench", results, args.out, args.ledger, summary=_summary
    )


def _summary(results: dict) -> None:
    for case in results["alltoall"]:
        print(
            f"alltoall P={case['nprocs']:5d}  "
            f"virtual wall {case['wall_virtual']:.4g}s  "
            f"host {case['elapsed_s']:.2f}s  "
            f"switches {case['scheduler'].get('scheduler.switches', 0):.0f}"
        )
    print(
        f"fault storm P={results['fault_storm']['nprocs']}: "
        f"{results['fault_storm']['retransmits']:.0f} retransmits; "
        f"parity cases: {len(results['parity'])} identical"
    )
    cp = results["critpath"]["alltoall"]
    pct = cp["resource_pct"]
    dominant = max(pct, key=lambda k: pct[k])
    print(
        f"critical path P={results['config']['critpath_ranks']}: "
        f"{100.0 * cp['coverage']:.1f}% attributed, "
        f"{pct[dominant]:.0f}% {dominant}; "
        f"myrinet swap {cp['counterfactuals']['swap:myrinet'] / cp['makespan']:.2f}x"
    )


if __name__ == "__main__":
    sys.exit(run_cli(main))
