"""Table 2 / Figures 13-14 driver: NekTar-F weak scaling.

The paper runs the bluff-body turbulent simulation with the number of
Fourier planes adjusted so every processor holds exactly two planes
(one complex mode, ~461k dof/processor); with the per-processor
workload fixed, per-step timings should be constant — the departure
from constancy is pure communication (the Alltoall transposes of the
non-linear step).

The model composes (a) the per-processor compute cost — the serial
paper-size per-stage flops of :mod:`repro.apps.serial_bluff`, scaled to
three velocity components on a real/imaginary plane pair — with (b) the
communication cost of the six per-step MPI_Alltoall exchanges (three
velocity fields to the point decomposition and three non-linear fields
back) with the paper's message size Gamma/P x Nz/P, priced by each
system's network model.  TCP protocol overhead inflates *CPU* time on
the Ethernet clusters, which is why Table 2's RoadRunner-ethernet CPU
and wall columns diverge.

Run: ``python -m repro.apps.nektar_f_bench [--breakdown]``.
"""

from __future__ import annotations

from ..machines.catalog import MACHINES, MachineSpec
from ..ns.stages import STAGES
from ..reporting.tables import ascii_table, format_percentages
from .pricing import price_stages
from .serial_bluff import paper_stage_flops

__all__ = [
    "TABLE2_PAPER",
    "TABLE2_SYSTEMS",
    "PAPER_F",
    "step_times",
    "table2",
    "figure13_14",
    "main",
]

# Section 4.2.1: same 2-D mesh, spanwise length 2 pi, 2 planes/proc,
# 461k dof per processor.
PAPER_F = {
    "elements": 902,
    "order": 8,
    "dof_per_proc": 461_000,
    "planes_per_proc": 2,
    # Quadrature points per plane (the Alltoall payload unit).
    "nxy": 902 * (8 + 2) ** 2,
    # Alltoall exchanges per step: u, v, w out; Nu, Nv, Nw back.
    "exchanges": 6,
}

# Table 2 of the paper: P -> {system: (cpu, wall)}.
TABLE2_PAPER = {
    2: {
        "AP3000": (4.23, 4.31),
        "NCSA": (3.62, 3.63),
        "SP2-Silver": (4.92, 4.93),
        "SP2-Thin2": (5.74, 5.81),
        "RoadRunner eth.": (5.28, 5.81),
        "RoadRunner myr.": (3.99, 3.99),
        "Muses": (4.32, 4.757),
    },
    4: {
        "AP3000": (4.52, 4.59),
        "NCSA": (4.96, 4.99),
        "SP2-Silver": (5.94, 5.96),
        "SP2-Thin2": (5.91, 5.98),
        "RoadRunner eth.": (6.99, 8.27),
        "RoadRunner myr.": (4.15, 4.15),
        "Muses": (5.59, 6.2),
    },
    8: {
        "AP3000": (4.71, 4.79),
        "NCSA": (4.17, 4.2),
        "SP2-Silver": (6.53, 6.56),
        "SP2-Thin2": (6.18, 6.23),
        "RoadRunner eth.": (9.92, 11.47),
        "RoadRunner myr.": (4.27, 4.27),
    },
    16: {
        "AP3000": (4.63, 4.74),
        "NCSA": (5.12, 5.15),
        "SP2-Silver": (6.71, 6.74),
        "SP2-Thin2": (6.3, 6.39),
        "RoadRunner eth.": (18.47, 22.13),
        "RoadRunner myr.": (4.64, 4.66),
    },
    32: {
        "NCSA": (4.85, 4.88),
        "SP2-Silver": (6.95, 6.99),
        "RoadRunner eth.": (12.81, 23.865),
        "RoadRunner myr.": (4.606, 4.606),
    },
    64: {
        "NCSA": (4.24, 4.26),
        "SP2-Silver": (6.93, 6.93),
        "RoadRunner eth.": (13.13, 30.21),
        "RoadRunner myr.": (7.71, 7.71),
    },
    128: {
        "NCSA": (5.12, 5.16),
        "RoadRunner myr.": (11.14, 11.14),
    },
}

# System label -> (machine key, network kind).
TABLE2_SYSTEMS = {
    "AP3000": ("AP3000", "default"),
    "NCSA": ("NCSA", "default"),
    "SP2-Silver": ("SP2-Silver", "internode"),
    "SP2-Thin2": ("SP2-Thin2", "default"),
    "RoadRunner eth.": ("RoadRunner", "ethernet"),
    "RoadRunner myr.": ("RoadRunner", "myrinet"),
    "Muses": ("Muses", "lam"),
}


def _per_proc_stage_flops() -> dict[str, float]:
    """Per-processor per-step flops: the serial 2-D per-plane cost scaled
    to a real/imaginary plane pair of three velocity components.

    Vector/transform stages scale by 3 (3 components x 2 planes vs the
    serial 2 components x 1 plane); the pressure solve by 2 (re + im,
    one scalar field); the viscous solves by 3 (3 components x re/im
    over 2 planes sharing the factorisation).
    """
    serial = paper_stage_flops()
    factors = {
        "1:transform": 3.0,
        "2:nonlinear": 3.0,
        "3:average": 3.0,
        "4:pressure-rhs": 3.0,
        "5:pressure-solve": 2.0,
        "6:viscous-rhs": 3.0,
        "7:viscous-solve": 3.0,
    }
    return {s: f * factors[s] for s, f in serial.items()}


def message_bytes(nprocs: int) -> int:
    """Per-pair Alltoall message: (Gamma/P) x (Nz/P) doubles, with
    Gamma = Nxy quadrature points and Nz = 2P planes."""
    nxy = PAPER_F["nxy"]
    nz = PAPER_F["planes_per_proc"] * nprocs
    return int(nxy / nprocs * nz / nprocs * 8)


def step_times(system: str, nprocs: int) -> dict:
    """Model CPU and wall seconds per step for one system at P procs."""
    mkey, nkind = TABLE2_SYSTEMS[system]
    spec: MachineSpec = MACHINES[mkey]
    net = spec.network(nkind)
    stage_secs = price_stages(spec.cpu, _per_proc_stage_flops())
    m = message_bytes(nprocs)
    comm_wall = PAPER_F["exchanges"] * net.alltoall_time(nprocs, m)
    bytes_moved = PAPER_F["exchanges"] * 2.0 * (nprocs - 1) * m
    comm_cpu = (
        net.cpu_time_for_bytes(bytes_moved)
        + net.busy_wait_fraction * comm_wall
    )
    stage_cpu = dict(stage_secs)
    stage_wall = dict(stage_secs)
    stage_cpu["2:nonlinear"] += comm_cpu
    stage_wall["2:nonlinear"] += comm_wall + comm_cpu
    return {
        "cpu": sum(stage_cpu.values()),
        "wall": sum(stage_wall.values()),
        "stage_cpu": stage_cpu,
        "stage_wall": stage_wall,
    }


def _normalisation() -> float:
    """Anchor the model to the paper's NCSA 2-processor CPU time."""
    model = step_times("NCSA", 2)["cpu"]
    return TABLE2_PAPER[2]["NCSA"][0] / model


def table2() -> list[tuple]:
    """Rows: (P, system, model cpu/wall, paper cpu/wall)."""
    scale = _normalisation()
    rows = []
    for p in sorted(TABLE2_PAPER):
        for system, (pc, pw) in TABLE2_PAPER[p].items():
            t = step_times(system, p)
            rows.append(
                (
                    p,
                    system,
                    f"{t['cpu'] * scale:.2f}/{t['wall'] * scale:.2f}",
                    f"{pc}/{pw}",
                )
            )
    return rows


def figure13_14(
    systems=("NCSA", "SP2-Silver", "RoadRunner eth.", "RoadRunner myr."),
    nprocs: int = 4,
) -> dict[str, dict[str, float]]:
    """Per-stage CPU and wall percentages (Figures 13 and 14)."""
    out = {}
    for system in systems:
        t = step_times(system, nprocs)
        for kind in ("cpu", "wall"):
            stages = t[f"stage_{kind}"]
            tot = sum(stages.values())
            out[f"{system} ({kind})"] = {
                s: 100.0 * stages[s] / tot for s in STAGES
            }
    return out


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--breakdown", action="store_true")
    parser.add_argument("--procs", type=int, default=4)
    args = parser.parse_args(argv)
    out = [
        ascii_table(
            ["P", "system", "model cpu/wall (s)", "paper cpu/wall (s)"],
            table2(),
            title="Table 2: NekTar-F CPU/wall-clock time per step (bluff body)",
        )
    ]
    if args.breakdown:
        out.append("")
        out.append(
            format_percentages(
                figure13_14(nprocs=args.procs),
                title=f"Figures 13-14: stage shares, {args.procs} processors",
            )
        )
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    main()
