"""Perf-regression harness: blocked vs per-RHS Helmholtz solves in NekTar-F.

Times the two direct-solve stages of the splitting scheme (Section 4.1,
items 5 and 7) with the multi-RHS solve engine on and off, on the
paper-size bluff-body discretisation at order 8 with 8 local Fourier
modes.  The blocked path stacks the pressure solve into (2, ndof)
real/imaginary blocks per mode and the viscous solves into (6, ndof)
component blocks, runs them through the batched condensation and the
blocked banded triangular sweeps, and must charge byte-for-byte
identical OpCounter flop/byte totals (per label as well as in total) to
the per-RHS reference path — the speedup is pure wall clock.

Writes ``BENCH_solve.json``.  Run as a script::

    python -m repro.apps.solve_bench [--smoke] [--out BENCH_solve.json]

``--smoke`` uses a reduced mesh/order so CI can exercise the harness in
seconds; the acceptance gate (stage 5+7 speedup >= 3x) applies to the
full paper-size run only, where the boundary systems are large enough
for the blocked sweeps to engage.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..assembly.space import FunctionSpace
from ..campaign.client import bench_client, run_cli
from ..linalg.counters import OpCounter
from ..machines.network import NetworkModel
from ..mesh.generators import bluff_body_mesh
from ..ns.nektar_f import NekTarF
from ..ns.stages import STAGES
from ..parallel.simmpi import VirtualCluster

__all__ = ["run_bench", "main"]

# Section 4.1 discretisation (paper: 902 elements, order 8).
PAPER_MESH = {"m": 8, "nr": 4, "refine": 2}
PAPER_ORDER = 8
PAPER_NZ = 16  # 8 local Fourier modes on one rank
# Reduced configuration for CI smoke runs (small boundary systems: the
# blocked banded sweep falls back to the per-column reference there, so
# only harness integrity and charge parity are meaningful).
SMOKE_MESH = {"m": 3, "nr": 1}
SMOKE_ORDER = 5
SMOKE_NZ = 8

SOLVE_STAGES = (STAGES[4], STAGES[6])  # "5:pressure-solve", "7:viscous-solve"

NET = NetworkModel("bench", latency_us=5, bandwidth=1e9)


def _steady_bluff_bcs():
    """Unit free-stream inflow, no-slip cylinder wall (mode 0 only)."""

    def amp(value):
        return lambda m, x, y, t: complex(value) if m == 0 else 0.0

    zero = amp(0.0)
    return {
        "inflow": (amp(1.0), zero, zero),
        "side": (amp(1.0), zero, zero),
        "wall": (zero, zero, zero),
    }


def _step_timed(nf: NekTarF):
    """One timestep; returns (per-stage wall deltas, charges)."""
    before = {s: nf.timer.records[s].wall if s in nf.timer.records else 0.0
              for s in SOLVE_STAGES}
    t0 = time.perf_counter()
    with OpCounter() as c:
        nf.step()
    total = time.perf_counter() - t0
    deltas = {s: nf.timer.records[s].wall - before[s] for s in SOLVE_STAGES}
    # label_charges() drops call counts: the blocked path legitimately
    # makes fewer (bigger) calls for the same work.
    snap = c.snapshot()
    return deltas, total, snap.totals(), snap.label_charges()


def run_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Benchmark both solve paths; returns the results dict."""
    mesh = bluff_body_mesh(**(SMOKE_MESH if smoke else PAPER_MESH))
    order = SMOKE_ORDER if smoke else PAPER_ORDER
    nz = SMOKE_NZ if smoke else PAPER_NZ

    def rank_fn(comm):
        space = FunctionSpace(mesh, order, batched=True)
        bcs = _steady_bluff_bcs()
        solvers = {
            mode: NekTarF(
                comm,
                space,
                nz=nz,
                nu=1e-2,
                dt=1e-3,
                velocity_bcs=bcs,
                pressure_dirichlet=("outflow",),
                time_order=1,
                blocked_solves=(mode == "blocked"),
            )
            for mode in ("blocked", "reference")
        }
        # Warm-up step: builds the Helmholtz factorisations, the BC value
        # cache, and the blocked path's lazy slabs/inverses.
        for nf in solvers.values():
            nf.step()

        best = {m: dict.fromkeys(SOLVE_STAGES, float("inf")) for m in solvers}
        step_best = dict.fromkeys(solvers, float("inf"))
        # Interleave the two modes within each repeat so machine drift
        # hits both equally.
        for rep in range(repeats):
            stats = {}
            for mode, nf in solvers.items():
                deltas, total, tot_charge, lbl_charge = _step_timed(nf)
                stats[mode] = (tot_charge, lbl_charge)
                step_best[mode] = min(step_best[mode], total)
                for s in SOLVE_STAGES:
                    best[mode][s] = min(best[mode][s], deltas[s])
            if stats["blocked"] != stats["reference"]:
                raise AssertionError(
                    "blocked and per-RHS steps charge differently: "
                    f"{stats['blocked'][0]} != {stats['reference'][0]}"
                )
        return {
            "best": best,
            "step_best": step_best,
            "ndof": space.ndof,
            "nlocal": solvers["blocked"].nlocal,
        }

    res = VirtualCluster(1, NET).run(rank_fn)[0]
    best, step_best = res["best"], res["step_best"]

    results: dict = {
        "config": {
            "elements": mesh.nelements,
            "order": order,
            "nz": nz,
            "local_modes": res["nlocal"],
            "ndof": res["ndof"],
            "smoke": smoke,
            "paper_elements": 902,
        },
        "stages": {},
        "charges_identical": True,
    }
    tot = {"blocked": 0.0, "reference": 0.0}
    for s in SOLVE_STAGES:
        blk, ref = best["blocked"][s], best["reference"][s]
        results["stages"][s] = {
            "blocked_s": blk,
            "reference_s": ref,
            "speedup": ref / blk,
        }
        tot["blocked"] += blk
        tot["reference"] += ref
    results["solve_speedup"] = tot["reference"] / tot["blocked"]
    results["step_blocked_s"] = step_best["blocked"]
    results["step_reference_s"] = step_best["reference"]
    results["step_speedup"] = step_best["reference"] / step_best["blocked"]
    return results


def _summary(results: dict) -> None:
    for s, entry in results["stages"].items():
        print(
            f"{s:18s} blocked {entry['blocked_s'] * 1e3:9.2f} ms   "
            f"per-RHS {entry['reference_s'] * 1e3:9.2f} ms   "
            f"speedup {entry['speedup']:6.2f}x"
        )
    print(
        f"solve speedup (5+7): {results['solve_speedup']:.2f}x   "
        f"whole step: {results['step_speedup']:.2f}x"
    )


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced size for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_solve.json", help="output path")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--ledger",
        default=None,
        help="append a run record to this JSONL run ledger",
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke, repeats=args.repeats)
    return bench_client(
        "solve_bench", results, args.out, args.ledger, summary=_summary
    )


if __name__ == "__main__":
    sys.exit(run_cli(main))
