"""Campaign CLI: the scenario cross-product as a resumable service.

``run`` expands a declarative job matrix (machine x network x fault
plan x workload shape), executes every job not already completed in
the run ledger on a bounded worker pool, records per-job values and
critical-path attribution, and writes a resume-invariant campaign
report.  ``search`` re-prices the recorded event graphs over the
machine catalog to find the cheapest configuration meeting a target
makespan — no re-running.

Run::

    python -m repro.apps.campaign run --ledger RUNLOG.jsonl --smoke \
        [--matrix matrix.json] [--workers 4] [--artifacts DIR] \
        [--out BENCH_campaign.json] [--stop-after N]
    python -m repro.apps.campaign search --ledger RUNLOG.jsonl \
        --artifacts DIR --target SECONDS [--out SEARCH.json]

Exit codes follow the shared convention (:mod:`repro.util.cli`):
0 = clean, 1 = gate failure (failed jobs; infeasible search target),
2 = usage error (missing ledger/matrix/artifacts).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..campaign.engine import CampaignEngine, campaign_report
from ..campaign.matrix import smoke_matrix
from ..campaign.search import load_graphs, search_catalog
from ..obs.runlog import RunLedger
from ..util.cli import EXIT_GATE, EXIT_OK, usage_error

__all__ = ["main"]


def _load_matrix(args) -> dict | None:
    if args.matrix:
        path = Path(args.matrix)
        if not path.exists():
            usage_error(f"matrix file not found: {args.matrix}")
            return None
        with path.open() as fh:
            return json.load(fh)
    if args.smoke:
        return smoke_matrix()
    usage_error("need --matrix FILE or --smoke")
    return None


def _cmd_run(args) -> int:
    matrix = _load_matrix(args)
    if matrix is None:
        return 2
    try:
        engine = CampaignEngine(
            args.ledger,
            matrix,
            workers=args.workers,
            artifacts_dir=args.artifacts,
        )
    except ValueError as exc:  # bad matrix contents
        return usage_error(str(exc))
    outcome = engine.run(stop_after=args.stop_after)
    print(
        f"campaign: {outcome['jobs']} job(s), {outcome['skipped']} skipped "
        f"(already complete), {outcome['ran']} ran, "
        f"{len(outcome['failed'])} failed, cache hit rate "
        f"{outcome['cache']['hit_rate']:.0%} "
        f"({outcome['cache']['hits']}/{outcome['cache']['hits'] + outcome['cache']['misses']}) "
        f"in {outcome['campaign_elapsed_s']:.2f}s host"
    )
    agg = outcome["aggregate"]
    if agg["jobs"]:
        pct = agg["resource_pct"]
        dominant = max(pct, key=lambda k: pct[k])
        print(
            f"attribution: {agg['total_makespan']:.4g} virtual s across "
            f"{agg['jobs']} job(s), {pct[dominant]:.0f}% {dominant}"
        )
    if args.out:
        report = campaign_report(RunLedger(args.ledger), matrix)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"report: {report['jobs']['completed']}/{report['jobs']['total']} "
            f"complete -> {args.out}"
        )
    for job_id in outcome["failed"]:
        print(f"failed: {job_id}", file=sys.stderr)
    if outcome["aborted"]:
        print("campaign aborted (--stop-after)", file=sys.stderr)
    return EXIT_GATE if outcome["failed"] else EXIT_OK


def _cmd_search(args) -> int:
    if not Path(args.ledger).exists():
        return usage_error(f"run ledger not found: {args.ledger}")
    if not Path(args.artifacts).is_dir():
        return usage_error(f"artifacts dir not found: {args.artifacts}")
    entries = load_graphs(RunLedger(args.ledger), args.artifacts)
    if not entries:
        return usage_error(
            f"no recorded graphs under {args.artifacts} for this ledger"
        )
    result = search_catalog(entries, args.target)
    for cand in result["candidates"]:
        mark = "ok" if cand["meets_target"] else "over"
        print(
            f"{cand['name']:<22} ${cand['price_total']:>9,}  "
            f"predicted {cand['predicted_makespan']:.4g} s  [{mark}]"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if result["cheapest"] is None:
        print(
            f"no candidate meets target {args.target:.4g} s", file=sys.stderr
        )
        return EXIT_GATE
    best = result["cheapest"]
    print(
        f"cheapest meeting {args.target:.4g} s: {best['name']} "
        f"(${best['price_total']:,}, {best['predicted_makespan']:.4g} s)"
    )
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run (or resume) a campaign")
    p_run.add_argument("--ledger", required=True, help="run-ledger JSONL path")
    p_run.add_argument("--matrix", default=None, help="job matrix JSON file")
    p_run.add_argument(
        "--smoke", action="store_true", help="use the built-in smoke matrix"
    )
    p_run.add_argument("--workers", type=int, default=4)
    p_run.add_argument(
        "--artifacts", default=None, help="directory for per-job event graphs"
    )
    p_run.add_argument(
        "--out", default=None, help="write the campaign report JSON here"
    )
    p_run.add_argument(
        "--stop-after",
        type=int,
        default=None,
        help="abort after N job records (simulates a mid-campaign kill)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_search = sub.add_parser(
        "search", help="cheapest catalog config meeting a target makespan"
    )
    p_search.add_argument("--ledger", required=True)
    p_search.add_argument(
        "--artifacts", required=True, help="directory holding graph-*.json"
    )
    p_search.add_argument(
        "--target", type=float, required=True, help="target makespan, seconds"
    )
    p_search.add_argument("--out", default=None)
    p_search.set_defaults(func=_cmd_search)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
