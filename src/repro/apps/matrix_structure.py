"""Figures 9-11 driver: discretisation structure reports.

* Figure 9 — the modal ordering of the modified expansion on the
  triangle and quadrilateral at order 4 (vertices, then edges, then
  interior with q fastest);
* Figure 10 — the elemental Laplacian sparsity with boundary-first
  ordering (symmetric; banded interior-interior block);
* Figure 11 — the computational meshes (bluff-body domain and wing).

Run: ``python -m repro.apps.matrix_structure``.
"""

from __future__ import annotations

import numpy as np

from ..mesh.generators import bluff_body_mesh, wing_mesh
from ..mesh.mapping import GeomFactors
from ..reporting.tables import ascii_table
from ..spectral.expansions import QuadExpansion, TriExpansion

__all__ = ["figure9", "figure10", "figure11", "main"]

REF_TRI = np.array([[-1.0, -1.0], [1.0, -1.0], [-1.0, 1.0]])
REF_QUAD = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])


def figure9(order: int = 4) -> str:
    """Mode ordering tables for both element shapes."""
    out = []
    for exp, name in ((TriExpansion(order), "triangle"), (QuadExpansion(order), "quadrilateral")):
        rows = [
            (i, m.kind, m.entity if m.entity >= 0 else "-", str(m.k), m.label)
            for i, m in enumerate(exp.modes)
        ]
        out.append(
            ascii_table(
                ["#", "kind", "entity", "k", "label"],
                rows,
                title=(
                    f"Figure 9: modified expansion ordering, {name}, "
                    f"order {order} ({exp.nmodes} modes)"
                ),
            )
        )
    return "\n\n".join(out)


def _spy(matrix: np.ndarray, tol: float = 1e-10) -> str:
    scale = np.abs(matrix).max()
    lines = []
    for row in matrix:
        lines.append(
            "".join("x" if abs(v) > tol * scale else "." for v in row)
        )
    return "\n".join(lines)


def figure10(order: int = 4) -> str:
    """Elemental Laplacian structure, boundary dofs first (Figure 10)."""
    out = []
    for exp, coords, name in (
        (TriExpansion(order), REF_TRI, "triangular"),
        (QuadExpansion(order), REF_QUAD, "quadrilateral"),
    ):
        gf = GeomFactors.compute(exp, coords)
        from ..assembly.operators import elemental_laplacian

        lap = elemental_laplacian(exp, gf)
        nb = len(exp.boundary_modes)
        out.append(
            f"Figure 10: elemental Laplacian, standard modal {name} "
            f"expansion, order {order}\n"
            f"(boundary dofs first: {nb} boundary + "
            f"{exp.nmodes - nb} interior)\n" + _spy(lap)
        )
    return "\n\n".join(out)


def figure11() -> str:
    """Mesh summaries for the two Figure 11 domains."""
    out = []
    for mesh, name in (
        (bluff_body_mesh(), "bluff-body wake domain [-15,25] x [-5,5]"),
        (wing_mesh(), "NACA 4420 flapping-wing domain"),
    ):
        x = mesh.vertices[:, 0]
        y = mesh.vertices[:, 1]
        rows = [
            ("elements", mesh.nelements),
            ("vertices", mesh.nvertices),
            ("edges", mesh.nedges),
            ("x range", f"[{x.min():.2f}, {x.max():.2f}]"),
            ("y range", f"[{y.min():.2f}, {y.max():.2f}]"),
            ("wall sides", len(mesh.boundary_tags.get("wall", []))),
            ("total area", f"{mesh.element_areas().sum():.2f}"),
        ]
        out.append(ascii_table(["property", "value"], rows, title=f"Figure 11: {name}"))
    return "\n\n".join(out)


def main(argv=None) -> str:
    text = "\n\n".join([figure9(), figure10(), figure11()])
    print(text)
    return text


if __name__ == "__main__":
    main()
