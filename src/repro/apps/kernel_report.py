"""Kernel-level figure CLI: regenerate Figures 1-8 as data series.

``python -m repro.apps.kernel_report --figure N [--panel left|right]
[--procs P]`` prints the curves of the requested figure:

* 1-6 — BLAS rates per machine vs operand size (model mode),
* 7   — ping-pong latency and bandwidth per network,
* 8   — MPI_Alltoall average bandwidth per network at P processors.
"""

from __future__ import annotations

from ..benchkernels.alltoall import figure8_series
from ..benchkernels.blas_bench import FIGURES, figure_series
from ..benchkernels.netpipe import bandwidth_series, latency_series
from ..machines.catalog import MACHINES
from ..reporting.tables import format_series

__all__ = ["report", "main"]

_TITLES = {
    1: "Figure 1: speed of dcopy in MB/s against array size",
    2: "Figure 2: speed of daxpy in Mflop/s against array size",
    3: "Figure 3: speed of ddot in Mflop/s against array size",
    4: "Figure 4: speed of dgemv in Mflop/s against array size",
    5: "Figure 5: speed of dgemm in Mflop/s against array size",
    6: "Figure 6: speed of dgemm in Mflop/s against small array size",
}


def report(figure: int, panel: str = "left", procs: int = 4, max_rows: int = 12) -> str:
    if figure in FIGURES:
        routine, _ = FIGURES[figure]
        series = {
            MACHINES[k].cpu.name: xy for k, xy in figure_series(figure, panel).items()
        }
        ylabel = "MB/s" if routine == "dcopy" else "Mflop/s"
        return format_series(
            series,
            xlabel="array size (bytes)" if figure != 6 else "matrix size n",
            ylabel=ylabel,
            title=f"{_TITLES[figure]} [{panel} panel]",
            max_rows=max_rows,
        )
    if figure == 7:
        lat = format_series(
            latency_series(),
            xlabel="message size (bytes)",
            ylabel="latency (usec)",
            title="Figure 7 (left): ping-pong one-way latency",
            max_rows=max_rows,
        )
        bw = format_series(
            bandwidth_series(),
            xlabel="message size (bytes)",
            ylabel="bandwidth (MB/s)",
            title="Figure 7 (right): ping-pong one-way bandwidth",
            max_rows=max_rows,
        )
        return lat + "\n\n" + bw
    if figure == 8:
        return format_series(
            figure8_series(procs),
            xlabel="message size (bytes)",
            ylabel="average bandwidth (MB/s)",
            title=f"Figure 8: MPI_Alltoall average bandwidth, {procs} processors",
            max_rows=max_rows,
        )
    raise ValueError(f"no kernel figure {figure} (1-8)")


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", type=int, required=True)
    parser.add_argument("--panel", default="left", choices=["left", "right"])
    parser.add_argument("--procs", type=int, default=4)
    args = parser.parse_args(argv)
    text = report(args.figure, args.panel, args.procs)
    print(text)
    return text


if __name__ == "__main__":
    main()
