"""Observability report CLI: rank timelines, idle attribution, rooflines.

Runs a smoke NekTar-F simulation on a virtual cluster with the tracing
and metrics layers enabled, writes the browsable Chrome trace-event /
Perfetto JSON (one thread track per rank: stage spans, comm spans, and
idle-wait spans on the virtual ``MPI_Wtime`` axis), then *re-reads that
JSON* and renders:

* the per-stage cpu / wall / idle breakdown (the Figures 12-16 shape,
  with ``wall - cpu`` being the paper's Section 4.2 idle-time
  attribution),
* roofline points per stage — arithmetic intensity (flops/byte) and
  attained Mflop/s against the machine's peak rate and memory
  bandwidth from :mod:`repro.machines.catalog`,
* per-rank idle totals and the metrics-registry summary (message-size
  histogram, cache hit rates, PCG statistics).

The report round-trips through the written trace file so everything it
prints provably derives from the artifact.  Run::

    python -m repro.apps.trace_report [--machine RoadRunner]
        [--network ethernet] [--procs 2] [--nz 8] [--steps 3]
        [--out TRACE_nektar_f.json] [--report-out report.txt]

or render an existing trace without re-running the solver::

    python -m repro.apps.trace_report --trace TRACE_nektar_f.json

Open the JSON at https://ui.perfetto.dev (or chrome://tracing) to
browse the timelines interactively.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..assembly.space import FunctionSpace
from ..machines.catalog import MACHINES
from ..mesh.generators import bluff_body_mesh
from ..ns.nektar_f import NekTarF
from ..obs import (
    CritPathRecorder,
    MetricsRegistry,
    Trace,
    TraceEvent,
    analyze,
    idle_by_peer,
    load_chrome_trace,
    render_critpath_report,
    scoped,
    stage_breakdown,
    write_chrome_trace,
)
from ..parallel.simmpi import VirtualCluster
from ..reporting.tables import ascii_table, format_percentages
from ..util.cli import EXIT_OK, usage_error

__all__ = ["run_traced", "run_critpath_pattern", "render_report", "main", "cli"]

# Reduced bluff-body configuration (same as the bench smoke runs): small
# enough for CI, big enough that every stage and both solver kinds run.
SMOKE_MESH = {"m": 3, "nr": 1}
SMOKE_ORDER = 5


def _steady_bluff_bcs():
    """Unit free-stream inflow, no-slip cylinder wall (mode 0 only)."""

    def amp(value):
        return lambda m, x, y, t: complex(value) if m == 0 else 0.0

    zero = amp(0.0)
    return {
        "inflow": (amp(1.0), zero, zero),
        "side": (amp(1.0), zero, zero),
        "wall": (zero, zero, zero),
    }


def run_traced(
    machine: str = "RoadRunner",
    network: str = "ethernet",
    nprocs: int = 2,
    nz: int = 8,
    steps: int = 3,
    critpath: CritPathRecorder | None = None,
) -> tuple[Trace, VirtualCluster, MetricsRegistry]:
    """Run the smoke NekTar-F case with tracing + metrics enabled.

    ``charge_compute=True`` prices every stage's counted flops on the
    machine's CPU model, so the rank timelines advance in virtual
    ``MPI_Wtime`` and the cpu/wall gap at the stage-2 transposes is the
    paper's network idle time.
    """
    spec = MACHINES[machine]
    net = spec.network(network)
    trace = Trace()
    cluster = VirtualCluster(
        nprocs,
        net,
        cpu=spec.cpu,
        procs_per_node=spec.procs_per_node,
        trace=trace,
        critpath=critpath,
    )
    mesh = bluff_body_mesh(**SMOKE_MESH)
    bcs = _steady_bluff_bcs()

    def rank_fn(comm):
        space = FunctionSpace(mesh, SMOKE_ORDER, batched=True)
        # No pressure Dirichlet tag: the k=0 pressure mode (rank 0 only)
        # takes the pinned CondensedOperator path, whose different flop
        # count skews the rank walls — so the next step's transposes
        # show genuine idle waits, like the paper's imbalanced runs.
        nf = NekTarF(
            comm,
            space,
            nz=nz,
            nu=1e-2,
            dt=1e-3,
            velocity_bcs=bcs,
            time_order=1,
            charge_compute=True,
        )
        nf.run(steps)
        return {"wall": comm.wall, "cpu": comm.cpu_time}

    with scoped() as registry:
        cluster.run(rank_fn)
    return trace, cluster, registry


def run_critpath_pattern(
    pattern: str = "alltoall",
    nprocs: int = 512,
) -> dict:
    """Critical-path analysis of a synthetic communication pattern.

    Reuses the scaling benchmark's Alltoall sweep program and fabrics
    (the commodity-Ethernet model and its OS-bypass Myrinet-style
    counterpart) so the CLI, the CI smoke and the acceptance test all
    exercise one code path.  Runs on the event engine only — the thread
    oracle cannot reach these rank counts.
    """
    from .scaling_bench import MYRINET, NETWORK, alltoall_program

    if pattern != "alltoall":
        raise ValueError(f"unknown pattern {pattern!r} (only 'alltoall')")
    rec = CritPathRecorder()
    cluster = VirtualCluster(nprocs, NETWORK, engine="event", critpath=rec)
    cluster.run(alltoall_program())
    rec.graph.validate()
    return analyze(rec.graph, swap_nets={"myrinet": MYRINET})


# -- report rendering -----------------------------------------------------------


def _stage_ranks(events: list[TraceEvent]) -> list[int]:
    return sorted({e.rank for e in events if e.cat == "stage" and e.ph == "X"})


def _breakdown_table(events: list[TraceEvent]) -> str:
    """Per-stage cpu / wall / idle seconds, merged across ranks."""
    timer = stage_breakdown(events)
    rows = [
        [s, f"{v['cpu']:.4g}", f"{v['wall']:.4g}", f"{v['idle']:.4g}"]
        for s, v in sorted(timer.breakdown().items())
    ]
    rows.append(
        [
            "total",
            f"{timer.total('cpu'):.4g}",
            f"{timer.total('wall'):.4g}",
            f"{max(0.0, timer.total('wall') - timer.total('cpu')):.4g}",
        ]
    )
    return ascii_table(
        ["stage", "cpu (s)", "wall (s)", "idle (s)"],
        rows,
        title="Per-stage virtual time, all ranks (idle = wall - cpu)",
    )


def _percentage_table(events: list[TraceEvent]) -> str:
    """Figure 12-16 shape: per-rank cpu and wall stage shares."""
    cases: dict[str, dict[str, float]] = {}
    for rank in _stage_ranks(events):
        timer = stage_breakdown(events, rank=rank)
        cases[f"rank {rank} (cpu)"] = timer.percentages("cpu")
        cases[f"rank {rank} (wall)"] = timer.percentages("wall")
    return format_percentages(
        cases, title="Stage shares per rank (Figures 12-16 shape)"
    )


def _roofline_table(events: list[TraceEvent], machine: str) -> str:
    """Per-stage roofline points against the machine's peak rates.

    ``attained`` is flops / virtual cpu seconds; ``bound`` is the
    roofline ceiling min(peak, intensity x memory bandwidth) at that
    stage's arithmetic intensity.
    """
    cpu = MACHINES[machine].cpu
    membw = cpu.bandwidths[-1]
    agg: dict[str, list[float]] = {}
    for ev in events:
        if ev.cat != "stage" or ev.ph != "X" or not ev.args:
            continue
        row = agg.setdefault(ev.name, [0.0, 0.0, 0.0])
        row[0] += float(ev.args.get("flops", 0.0))
        row[1] += float(ev.args.get("bytes", 0.0))
        row[2] += float(ev.args.get("cpu", 0.0))
    rows = []
    for stage in sorted(agg):
        flops, nbytes, cpu_s = agg[stage]
        intensity = flops / nbytes if nbytes else 0.0
        attained = flops / cpu_s / 1e6 if cpu_s else 0.0
        bound = min(cpu.peak_mflops, intensity * membw / 1e6)
        rows.append(
            [
                stage,
                f"{flops:.4g}",
                f"{nbytes:.4g}",
                f"{intensity:.3f}",
                f"{attained:.1f}",
                f"{bound:.1f}",
            ]
        )
    return ascii_table(
        ["stage", "flops", "bytes", "flops/byte", "attained MF/s", "roof MF/s"],
        rows,
        title=(
            f"Roofline points vs {cpu.name} "
            f"(peak {cpu.peak_mflops:.0f} MF/s, "
            f"mem {membw / 1e6:.0f} MB/s)"
        ),
    )


def _idle_table(events: list[TraceEvent]) -> str:
    rows = [
        [f"rank {r}", f"{s:.4g}"]
        for r, s in sorted(idle_by_peer(events).items())
    ]
    if not rows:
        rows = [["(none)", "0"]]
    return ascii_table(
        ["rank", "idle wait (s)"],
        rows,
        title="Blocking-wait time per rank (idle spans)",
    )


def _metrics_summary(registry: MetricsRegistry) -> str:
    lines = ["Metrics summary:"]
    snap = registry.snapshot()
    for name, entry in snap.items():
        if entry["type"] == "histogram":
            lines.append(
                f"  {name}: n={entry['count']} mean={entry['mean']:.4g} "
                f"min={entry['min']} max={entry['max']}"
            )
        else:
            lines.append(f"  {name}: {entry['value']}")
    for prefix in ("bc_cache", "visc_cache", "slab_cache"):
        rate = registry.hit_rate(prefix)
        if rate is not None:
            lines.append(f"  {prefix} hit rate: {100.0 * rate:.1f}%")
    return "\n".join(lines)


def render_report(
    events: list[TraceEvent],
    machine: str = "RoadRunner",
    registry: MetricsRegistry | None = None,
) -> str:
    """Render the full text report from (re-)loaded trace events."""
    ranks = sorted({e.rank for e in events})
    parts = [
        f"Trace: {len(events)} events on {len(ranks)} rank tracks "
        f"{ranks}",
        "",
        _breakdown_table(events),
        "",
        _percentage_table(events),
        "",
        _roofline_table(events, machine),
        "",
        _idle_table(events),
    ]
    if registry is not None:
        parts += ["", _metrics_summary(registry)]
    return "\n".join(parts)


def main(argv=None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="RoadRunner")
    parser.add_argument(
        "--network",
        default="ethernet",
        help="network kind of the machine (e.g. ethernet, myrinet)",
    )
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument("--nz", type=int, default=8)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument(
        "--out", default="TRACE_nektar_f.json", help="trace JSON output path"
    )
    parser.add_argument(
        "--report-out", default=None, help="also write the report to a file"
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="render an existing trace JSON instead of running the solver",
    )
    parser.add_argument(
        "--metrics-out", default=None, help="write the metrics snapshot JSON"
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="record the happens-before event graph and append the "
        "makespan attribution + counterfactual block to the report",
    )
    parser.add_argument(
        "--pattern",
        default=None,
        choices=("alltoall",),
        help="critical-path of a synthetic pattern at --procs ranks "
        "instead of the NekTar-F smoke run (implies --critical-path)",
    )
    parser.add_argument(
        "--critpath-out",
        default=None,
        help="write the critical-path analysis JSON",
    )
    args = parser.parse_args(argv)

    if args.pattern is not None:
        analysis = run_critpath_pattern(args.pattern, nprocs=args.procs)
        report = (
            f"Synthetic {args.pattern} sweep, {args.procs} ranks on the "
            "scaling-bench fabric:\n" + render_critpath_report(analysis)
        )
        print(report)
        if args.critpath_out:
            with open(args.critpath_out, "w") as fh:
                json.dump(analysis, fh, indent=2, sort_keys=True)
                fh.write("\n")
        if args.report_out:
            with open(args.report_out, "w") as fh:
                fh.write(report + "\n")
        return report

    registry = None
    critpath_block = None
    if args.trace is None:
        recorder = CritPathRecorder() if args.critical_path else None
        trace, cluster, registry = run_traced(
            machine=args.machine,
            network=args.network,
            nprocs=args.procs,
            nz=args.nz,
            steps=args.steps,
            critpath=recorder,
        )
        if recorder is not None:
            recorder.graph.validate()
            # Swap against the machine's *other* fabrics: on RoadRunner
            # this is the paper's Ethernet-vs-Myrinet question answered
            # from one recorded run.
            spec = MACHINES[args.machine]
            swaps = {
                kind: spec.network(kind)
                for kind in ("ethernet", "myrinet")
                if kind in spec.networks and kind != args.network
            }
            analysis = analyze(recorder.graph, swap_nets=swaps)
            critpath_block = render_critpath_report(analysis)
            if args.critpath_out:
                with open(args.critpath_out, "w") as fh:
                    json.dump(analysis, fh, indent=2, sort_keys=True)
                    fh.write("\n")
        path = write_chrome_trace(
            trace,
            args.out,
            rank_traces=cluster.rank_traces(),
            label=f"NekTar-F on {args.machine} ({args.network})",
        )
        print(f"trace written: {path} (open at https://ui.perfetto.dev)")
        if args.metrics_out:
            with open(args.metrics_out, "w") as fh:
                json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        trace_path = path
    else:
        trace_path = args.trace

    # The report derives from the JSON artifact, not solver state.
    events = load_chrome_trace(trace_path)
    report = render_report(events, machine=args.machine, registry=registry)
    if critpath_block is not None:
        report += "\n\n" + critpath_block
    print(report)
    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(report + "\n")
    return report


def cli(argv=None) -> int:
    """Process entry point with the shared exit-code convention.

    ``main`` keeps returning the rendered report string (the tier-1
    tests consume it); this wrapper maps unreadable/corrupt inputs to
    usage-error exits.  The report has no acceptance gate, so the only
    nonzero outcome is :data:`~repro.util.cli.EXIT_USAGE`.
    """
    try:
        main(argv)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        return usage_error(f"{type(exc).__name__}: {exc}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(cli())
