"""Pricing application stages on the simulated machines.

The serial/parallel drivers obtain exact per-stage flop counts from
*instrumented real runs* of the reduced-size solvers, scale them to the
paper's problem sizes, and price each stage with the machine-specific
sustained rate for that stage's kind of work:

* stages 5, 7 — banded solves ('solve': recurrence/bandwidth bound),
* stages 2, 3, 4, 6 — long-vector kernels ('vector'),
* stage 1 — small dense transforms ('transform').

This is how Table 1 / Figure 12's machine-to-machine differences arise
from the same workload.
"""

from __future__ import annotations

from ..machines.cpu import CPUModel
from ..ns.stages import STAGES

__all__ = ["STAGE_KINDS", "price_stages", "total_time"]

STAGE_KINDS = {
    "1:transform": "transform",
    "2:nonlinear": "vector",
    "3:average": "vector",
    "4:pressure-rhs": "vector",
    "5:pressure-solve": "solve",
    "6:viscous-rhs": "vector",
    "7:viscous-solve": "solve",
}


def price_stages(
    cpu: CPUModel,
    stage_flops: dict[str, float],
    solver_ws_bytes: float = 2e6,
) -> dict[str, float]:
    """Seconds per stage on a machine, from per-stage flop counts."""
    out = {}
    for stage in STAGES:
        flops = stage_flops.get(stage, 0.0)
        if flops < 0:
            raise ValueError(f"negative flops for stage {stage}")
        kind = STAGE_KINDS[stage]
        rate = cpu.stage_rate(kind, solver_ws_bytes=solver_ws_bytes)
        out[stage] = flops / (rate * 1e6)
    return out


def total_time(stage_seconds: dict[str, float]) -> float:
    return sum(stage_seconds.values())
