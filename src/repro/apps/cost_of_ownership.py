"""Section 5 quantified: cost-effectiveness of PC clusters vs supercomputers.

The paper's conclusion is economic: "Low number of processor
ethernet-based networks are slower, yet provide better
cost-effectiveness than myrinet-based networks, which are cost-effective
for high number of processor simulations."  This driver turns the
reproduced Table 1/2 performance into performance-per-dollar using
documented 1999 list-price estimates.

Prices are order-of-magnitude 1999 figures (the paper gives only the
Muses number, "less than $10,000"): commodity nodes ~$2.5k each, a
Myrinet NIC+switch share ~$1.8k/node, and supercomputers at their
published per-node system prices.  The point of the exercise is the
*ratio structure* — PC clusters win by an order of magnitude on
price/performance — which is robust to these estimates.

Run: ``python -m repro.apps.cost_of_ownership``.
"""

from __future__ import annotations

from ..machines.catalog import MACHINES
from ..reporting.tables import ascii_table
from .nektar_f_bench import step_times
from .serial_bluff import paper_stage_flops
from .pricing import price_stages, total_time

__all__ = ["PRICES_1999", "serial_cost_table", "parallel_cost_table", "main"]

# Estimated 1999 cost per processor, US$ (documented assumptions above).
PRICES_1999 = {
    "Muses": 2_500,  # $10k / 4 nodes, per the paper
    "RoadRunner-eth": 2_800,  # commodity node + ethernet share
    "RoadRunner-myr": 4_600,  # + Myrinet NIC and switch share
    "SP2-Silver": 40_000,
    "SP2-Thin2": 35_000,
    "P2SC": 45_000,
    "Onyx2": 50_000,
    "NCSA": 45_000,
    "AP3000": 35_000,
    "T3E": 60_000,
}


def serial_cost_table() -> list[tuple]:
    """Single-processor DNS throughput per dollar (Table 1 workload)."""
    flops = paper_stage_flops()
    rows = []
    entries = {
        "Muses": "Muses",
        "SP2-Thin2": "SP2-Thin2",
        "SP2-Silver": "SP2-Silver",
        "P2SC": "P2SC",
        "Onyx2": "Onyx2",
        "AP3000": "AP3000",
        "T3E": "T3E",
    }
    for label, mkey in entries.items():
        cpu = MACHINES[mkey].cpu
        t = total_time(price_stages(cpu, flops))
        steps_per_s = 1.0 / t
        price = PRICES_1999[label]
        rows.append((cpu.name, round(t, 3), price, round(1e6 * steps_per_s / price, 2)))
    rows.sort(key=lambda r: -r[-1])
    return rows


def parallel_cost_table(nprocs: int = 4) -> list[tuple]:
    """NekTar-F throughput per dollar at P processors (Table 2 workload)."""
    cases = {
        "Muses": ("Muses", "Muses"),
        "RoadRunner eth.": ("RoadRunner eth.", "RoadRunner-eth"),
        "RoadRunner myr.": ("RoadRunner myr.", "RoadRunner-myr"),
        "SP2-Silver": ("SP2-Silver", "SP2-Silver"),
        "SP2-Thin2": ("SP2-Thin2", "SP2-Thin2"),
        "NCSA": ("NCSA", "NCSA"),
        "AP3000": ("AP3000", "AP3000"),
    }
    rows = []
    for label, (system, price_key) in cases.items():
        if label == "Muses" and nprocs > 4:
            continue
        t = step_times(system, nprocs)["wall"]
        price = nprocs * PRICES_1999[price_key]
        rows.append(
            (label, nprocs, round(t, 2), price, round(1e6 / (t * price), 2))
        )
    rows.sort(key=lambda r: -r[-1])
    return rows


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=4)
    args = parser.parse_args(argv)
    out = [
        ascii_table(
            ["Machine", "s/step", "est. $(1999)/proc", "steps/s per M$"],
            serial_cost_table(),
            title="Serial DNS cost-effectiveness (Table 1 workload)",
        ),
        "",
        ascii_table(
            ["System", "P", "wall s/step", "est. $(1999)", "steps/s per M$"],
            parallel_cost_table(args.procs),
            title=f"NekTar-F cost-effectiveness at P = {args.procs}",
        ),
        "",
        "Section 5's conclusion in numbers: the PC clusters lead on",
        "price/performance by roughly an order of magnitude; Ethernet is",
        "the most cost-effective at small P, Myrinet at larger P.",
    ]
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    main()
