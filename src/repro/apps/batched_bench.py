"""Perf-regression harness: batched vs per-element elemental execution.

Times the hot FunctionSpace operations (backward transform, physical
gradient, load vectors, Helmholtz operator setup) in both execution
modes on the paper-size bluff-body discretisation — the order-8 mesh of
Section 4.1 (our generator lands at 1216 elements; the paper quotes
902) — and verifies that both modes charge byte-for-byte identical
OpCounter flop/byte totals, i.e. that batching is a pure wall-clock
optimisation with no accounting drift.

Writes ``BENCH_batched.json`` with per-operation timings and speedups.
Run as a script::

    python -m repro.apps.batched_bench [--smoke] [--out BENCH_batched.json]

``--smoke`` uses the reduced mesh/order so CI can exercise the harness
in seconds; the acceptance gate (total speedup >= 3x) applies to the
full paper-size run only.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from ..assembly.condensation import CondensedOperator
from ..assembly.space import FunctionSpace
from ..linalg.counters import OpCounter
from ..mesh.generators import bluff_body_mesh

__all__ = ["run_bench", "main"]

# Section 4.1 discretisation (paper: 902 elements, order 8).
PAPER_MESH = {"m": 8, "nr": 4, "refine": 2}
PAPER_ORDER = 8
# Reduced configuration for CI smoke runs.
SMOKE_MESH = {"m": 3, "nr": 1}
SMOKE_ORDER = 5


def _charges(fn):
    """OpCounter flop/byte totals of one run (also serves as warm-up)."""
    with OpCounter() as c:
        fn()
    return c.snapshot().totals()


def run_bench(smoke: bool = False, repeats: int = 5) -> dict:
    """Benchmark both execution modes; returns the results dict."""
    mesh = bluff_body_mesh(**(SMOKE_MESH if smoke else PAPER_MESH))
    order = SMOKE_ORDER if smoke else PAPER_ORDER
    spaces = {
        "batched": FunctionSpace(mesh, order, batched=True),
        "per_element": FunctionSpace(mesh, order, batched=False),
    }
    rng = np.random.default_rng(2026)
    u_hat = rng.standard_normal(spaces["batched"].ndof)
    values = spaces["batched"].backward(u_hat)

    def ops_for(space):
        return {
            "backward": lambda: space.backward(u_hat),
            "gradient": lambda: space.gradient(u_hat),
            "load_vector": lambda: space.load_vector(values),
            "grad_load_vector": lambda: space.grad_load_vector(values, values),
            "helmholtz_setup": lambda: space.elemental_matrices("helmholtz", 1.0),
            "condensation_setup": lambda: CondensedOperator(
                space, space.elemental_matrices("helmholtz", 1.0)
            ),
        }

    results: dict = {
        "config": {
            "elements": mesh.nelements,
            "order": order,
            "ndof": spaces["batched"].ndof,
            "smoke": smoke,
            "paper_elements": 902,
        },
        "ops": {},
    }
    # The acceptance gate covers the per-timestep transform operations;
    # operator/condensation setup is a one-time cost reported alongside.
    transform_ops = ("backward", "gradient", "load_vector", "grad_load_vector")
    totals = {"batched": 0.0, "per_element": 0.0}
    tr_totals = {"batched": 0.0, "per_element": 0.0}
    for name in ops_for(spaces["batched"]):
        entry: dict = {}
        fns = {mode: ops_for(space)[name] for mode, space in spaces.items()}
        charges = {mode: _charges(fn) for mode, fn in fns.items()}
        # Interleave the two modes within each repeat so slow machine
        # drift (frequency scaling, background load) hits both equally
        # instead of biasing whichever mode ran second.
        best = dict.fromkeys(fns, float("inf"))
        for _ in range(repeats):
            for mode, fn in fns.items():
                t0 = time.perf_counter()
                fn()
                best[mode] = min(best[mode], time.perf_counter() - t0)
        for mode in fns:
            entry[f"{mode}_s"] = best[mode]
            totals[mode] += best[mode]
            if name in transform_ops:
                tr_totals[mode] += best[mode]
        if charges["batched"] != charges["per_element"]:
            raise AssertionError(
                f"{name}: OpCounter totals differ between modes: "
                f"{charges['batched']} != {charges['per_element']}"
            )
        entry["flops"] = charges["batched"][0]
        entry["bytes"] = charges["batched"][1]
        entry["speedup"] = entry["per_element_s"] / entry["batched_s"]
        results["ops"][name] = entry
    results["total_speedup"] = totals["per_element"] / totals["batched"]
    results["transform_speedup"] = tr_totals["per_element"] / tr_totals["batched"]
    results["charges_identical"] = True
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced size for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_batched.json", help="output path")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, entry in results["ops"].items():
        print(
            f"{name:20s} batched {entry['batched_s'] * 1e3:9.2f} ms   "
            f"per-element {entry['per_element_s'] * 1e3:9.2f} ms   "
            f"speedup {entry['speedup']:6.2f}x"
        )
    print(
        f"transform speedup: {results['transform_speedup']:.2f}x   "
        f"total: {results['total_speedup']:.2f}x -> {args.out}"
    )
    return results


if __name__ == "__main__":
    main()
