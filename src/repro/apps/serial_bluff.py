"""Table 1 / Figure 12 driver: serial bluff-body DNS cost per timestep.

Protocol:

1. Run the *real* serial solver (:class:`repro.ns.NavierStokes2D`) on a
   reduced bluff-body mesh for a few timesteps with full per-stage
   flop instrumentation.
2. Scale the per-stage flop counts to the paper's configuration (902
   elements, polynomial order 8, ~230k dof): vector/transform stages
   scale with the dof count; the banded-solve stages scale with
   dof x bandwidth, with the paper-size bandwidth obtained from the
   RCM-reordered sparsity pattern of the *actual* paper-size dof map.
3. Price the paper-size stages on every machine's CPU model
   (:mod:`repro.apps.pricing`) — Table 1; the per-stage shares are
   Figure 12.

Run as a script: ``python -m repro.apps.serial_bluff [--breakdown]``.
"""

from __future__ import annotations

import numpy as np

from ..assembly.dofmap import DofMap
from ..assembly.space import FunctionSpace
from ..machines.catalog import MACHINES
from ..mesh.generators import bluff_body_mesh
from ..ns.nektar2d import NavierStokes2D
from ..ns.stages import STAGES
from ..reporting.tables import ascii_table, format_percentages
from .pricing import price_stages, total_time

__all__ = [
    "PAPER_CONFIG",
    "TABLE1_PAPER",
    "TABLE1_MACHINES",
    "measure_reduced",
    "paper_stage_flops",
    "table1",
    "figure12",
    "main",
]

# Section 4.1: 902 elements, order 8, 230k dof (all fields), inflow u=1.
PAPER_CONFIG = {"elements": 902, "order": 8, "dofs": 230_000}

# Table 1 of the paper (seconds per time step).
TABLE1_PAPER = {
    "AP3000": 1.22,
    "Onyx2": 1.03,
    "Muses": 0.81,  # "Pentium II, 450Mhz"
    "SP2-Thin2": 1.44,
    "SP2-Silver": 1.3,
    "T3E": 0.82,
    "P2SC": 0.71,
}
TABLE1_MACHINES = list(TABLE1_PAPER)


def reduced_solver(
    m: int = 3, nr: int = 1, order: int = 5, dt: float = 5e-3, batched: bool = True
):
    """The reduced-size bluff-body run (same physics, tractable size).

    The Table-1 flop-scaling protocol is calibrated against the
    tabulated (dense) elemental evaluation — the 1999 code's operator
    profile — so the sum-factorised fast path stays off here.
    """
    mesh = bluff_body_mesh(m=m, nr=nr)
    space = FunctionSpace(mesh, order, sumfact=False, batched=batched)
    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    ns = NavierStokes2D(
        space,
        nu=0.01,
        dt=dt,
        velocity_bcs={"inflow": (one, zero), "wall": (zero, zero)},
        pressure_dirichlet=("outflow",),
    )
    ns.set_initial(one, zero)
    return ns


def measure_reduced(steps: int = 3, warmup: int = 2, **kw) -> dict:
    """Instrumented reduced run: per-step per-stage flops + geometry.

    Warm-up steps run first so the startup-ramp factorisations (one-time
    setup, outside the production time loop) are excluded.
    """
    ns = reduced_solver(**kw)
    ns.run(warmup)
    ns.reset_instrumentation()
    ns.run(steps)
    flops = {s: f / steps for s, f in ns.stage_flops().items()}
    return {
        "stage_flops": flops,
        "ndof": ns.space.ndof,
        "order": ns.space.order,
        "elements": ns.space.nelem,
        "bandwidth": ns.vel_solver.op.bandwidth,
        "solver": ns,
    }


def _paper_dofmap_stats(order: int = 8) -> dict:
    """Statistics of the actual paper-size discretisation.

    Builds the real ~900-element mesh and dof map at order 8, assembles
    the *sparsity pattern* of the statically condensed boundary system,
    and measures its RCM bandwidth — no matrices, so this is cheap.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import reverse_cuthill_mckee

    mesh = bluff_body_mesh(m=8, nr=4, refine=2)  # lands near 900 elements
    dm = DofMap(mesh, order)
    nb = dm.nboundary
    rows, cols = [], []
    for e in range(mesh.nelements):
        exp = dm.expansion(e)
        d = dm.elem_dofs[e][: len(exp.boundary_modes)]
        n = d.size
        rows.append(np.repeat(d, n))
        cols.append(np.tile(d, n))
    pat = sp.coo_matrix(
        (
            np.ones(sum(r.size for r in rows)),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(nb, nb),
    ).tocsr()
    perm = np.asarray(reverse_cuthill_mckee(pat, symmetric_mode=True))
    p = pat[np.ix_(perm, perm)].tocoo()
    kd = int(np.abs(p.row - p.col).max())
    nmodes = (order + 1) ** 2
    ni = (order - 1) ** 2
    nbe = nmodes - ni
    return {
        "ndof": dm.ndof,
        "nboundary": nb,
        "kd": kd,
        "elements": mesh.nelements,
        "nmodes": nmodes,
        "ni": ni,
        "nbe": nbe,
        "nq": (order + 2) ** 2,
    }


def _solve_flops(stats: dict) -> float:
    """Flops of one condensed direct solve: banded boundary sweep plus
    per-element condensation/back-substitution (4 ni^2 + 4 ni nbe)."""
    banded = 4.0 * stats["nboundary"] * stats["kd"]
    per_elem = stats["elements"] * (
        4.0 * stats["ni"] ** 2 + 4.0 * stats["ni"] * stats["nbe"]
    )
    return banded + per_elem


_CACHE: dict = {}


def paper_stage_flops(measured: dict | None = None) -> dict[str, float]:
    """Per-stage flops of one paper-size timestep.

    Transform/gradient-heavy stages (1, 2, 4, 6) scale with elements x
    modes x quadrature points; the pure-vector stage 3 with quadrature
    points; the solve stages use the analytic condensed-solve count at
    both sizes (validated against the measured reduced-run counts).
    """
    default_run = measured is None
    if default_run:
        if "paper_flops" in _CACHE:
            return dict(_CACHE["paper_flops"])
        measured = _CACHE.setdefault("measured", measure_reduced())
    stats_p = _CACHE.setdefault("paper_stats", _paper_dofmap_stats())
    ns = measured["solver"]
    order_r = measured["order"]
    stats_r = {
        "elements": measured["elements"],
        "nmodes": (order_r + 1) ** 2,
        "ni": (order_r - 1) ** 2,
        "nbe": (order_r + 1) ** 2 - (order_r - 1) ** 2,
        "nq": (order_r + 2) ** 2,
        "nboundary": ns.space.dofmap.nboundary,
        "kd": measured["bandwidth"],
    }
    work = lambda s: s["elements"] * s["nmodes"] * s["nq"]  # noqa: E731
    pts = lambda s: s["elements"] * s["nq"]  # noqa: E731
    ratios = {
        "1:transform": work(stats_p) / work(stats_r),
        "2:nonlinear": work(stats_p) / work(stats_r),
        "3:average": pts(stats_p) / pts(stats_r),
        "4:pressure-rhs": work(stats_p) / work(stats_r),
        "6:viscous-rhs": work(stats_p) / work(stats_r),
    }
    solve_ratio = _solve_flops(stats_p) / _solve_flops(stats_r)
    out = {}
    for stage, flops in measured["stage_flops"].items():
        if stage in ("5:pressure-solve", "7:viscous-solve"):
            out[stage] = flops * solve_ratio
        else:
            out[stage] = flops * ratios[stage]
    if default_run:
        _CACHE["paper_flops"] = out
    return dict(out)


def table1(normalize: bool = True) -> list[tuple]:
    """Rows: (machine, model s/step, paper s/step)."""
    flops = paper_stage_flops()
    rows = []
    model_times = {}
    for mkey in TABLE1_MACHINES:
        cpu = MACHINES[mkey].cpu
        model_times[mkey] = total_time(price_stages(cpu, flops))
    scale = TABLE1_PAPER["Muses"] / model_times["Muses"] if normalize else 1.0
    for mkey in TABLE1_MACHINES:
        rows.append(
            (
                MACHINES[mkey].cpu.name,
                round(model_times[mkey] * scale, 3),
                TABLE1_PAPER[mkey],
            )
        )
    return rows


def figure12(machines=("Onyx2", "Muses")) -> dict[str, dict[str, float]]:
    """Per-stage percentage breakdown per machine (Figure 12)."""
    flops = paper_stage_flops()
    out = {}
    for mkey in machines:
        cpu = MACHINES[mkey].cpu
        secs = price_stages(cpu, flops)
        tot = total_time(secs)
        out[cpu.name] = {s: 100.0 * secs[s] / tot for s in STAGES}
    return out


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--breakdown", action="store_true", help="Figure 12")
    args = parser.parse_args(argv)
    out = []
    out.append(
        ascii_table(
            ["Machine", "model s/step (normalised)", "paper s/step"],
            table1(),
            title="Table 1: CPU time for serial algorithm bluff body simulation",
        )
    )
    if args.breakdown:
        out.append("")
        out.append(
            format_percentages(
                figure12(),
                title="Figure 12: percentage of each stage within a time step",
            )
        )
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    main()
