# repro: waive-file[virtual-time] host-side bookkeeping lock; never touches the virtual clocks
"""Runtime determinism sanitizer: vector-clock race detection.

The static rules REPRO004–REPRO006 ban the *sources* of
nondeterminism the AST can see; this module catches the ones it can't —
two ranks touching the same Python object without a message or
collective ordering the accesses.  ``VirtualCluster(sanitize=True)``
builds per-rank vector clocks from the virtual-time message graph that
already exists (every ``send`` piggybacks the sender's clock, every
``recv`` joins it, every collective joins all participants), and rank
code declares shared-object accesses with
:meth:`~repro.parallel.simmpi.VirtualComm.shared_read` /
``shared_write``.  At finalize, any cross-rank pair of accesses to the
same object with at least one write and vector clocks unordered by
happens-before is reported as a race (:class:`DeterminismError`, code
REPRO006 — the runtime twin of the unordered-iteration rule).

Charge parity is a hard contract: the detector maintains its own host
lock and its own state, and none of its hooks read or write the
per-rank virtual wall/cpu clocks, byte ledgers or the ambient
OpCounter.  A sanitized run produces byte-identical virtual clocks and
op counts to an unsanitized one (locked by a property test).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..analysis.vocab import RUNTIME_CODES

__all__ = ["Access", "DeterminismError", "Race", "RaceDetector"]


@dataclass(frozen=True)
class Access:
    """One declared shared-object access."""

    rank: int
    op: str  # "read" | "write"
    vc: tuple[int, ...]  # rank's vector clock at the access
    site: str  # "file:line" of the shared_read/shared_write call


@dataclass(frozen=True)
class Race:
    """Two cross-rank accesses unordered by happens-before."""

    label: str
    first: Access
    second: Access

    def describe(self) -> str:
        code = RUNTIME_CODES["race"]
        return (
            f"data race on {self.label}: rank {self.first.rank} "
            f"{self.first.op} at {self.first.site} (vc={self.first.vc}) and "
            f"rank {self.second.rank} {self.second.op} at "
            f"{self.second.site} (vc={self.second.vc}) are unordered by "
            f"happens-before [{code}]"
        )


class DeterminismError(RuntimeError):
    """Raised at finalize when a sanitized run observed data races."""

    def __init__(self, races: list[Race]):
        self.races = races
        lines = [f"{len(races)} data race(s) detected"]
        lines += [r.describe() for r in races]
        super().__init__("\n".join(lines))


def _leq(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    return all(x <= y for x, y in zip(a, b))


def _ordered(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    return _leq(a, b) or _leq(b, a)


class RaceDetector:
    """Per-run vector clocks plus the shared-access log.

    Clock discipline (standard vector clocks): every recorded event —
    a send, a completed recv, a collective arrival/release, a declared
    shared access — first ticks the rank's own component, so two
    accesses on different ranks can only compare as ordered when an
    actual message chain connects them.
    """

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        # Host-side lock only: hook latency never reaches virtual time.
        self._lock = threading.Lock()
        self._clocks = [[0] * nprocs for _ in range(nprocs)]
        # id(obj) -> (label, [Access, ...])
        self._accesses: dict[int, tuple[str, list[Access]]] = {}
        self._races: list[Race] = []
        # collective key -> {rank: vc snapshot at arrival}
        self._coll_vcs: dict[tuple[str, int], dict[int, tuple[int, ...]]] = {}
        self._coll_released: dict[tuple[str, int], int] = {}

    # -- clock maintenance --------------------------------------------

    def _tick(self, rank: int) -> None:
        self._clocks[rank][rank] += 1

    def _merge(self, rank: int, other: tuple[int, ...]) -> None:
        mine = self._clocks[rank]
        for i, v in enumerate(other):
            if v > mine[i]:
                mine[i] = v

    def clock(self, rank: int) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._clocks[rank])

    def clocks(self) -> dict[int, tuple[int, ...]]:
        """All ranks' vector clocks in one snapshot (rank -> clock).

        Convenience for finalize-time consumers (trace annotation, the
        engine parity suite) that compare whole-cluster clock states."""
        with self._lock:
            return {r: tuple(vc) for r, vc in enumerate(self._clocks)}

    # -- hooks called by simmpi ---------------------------------------

    def on_send(self, rank: int) -> tuple[int, ...]:
        """Tick and snapshot the sender's clock (piggybacked on the
        message)."""
        with self._lock:
            self._tick(rank)
            return tuple(self._clocks[rank])

    def on_recv(self, rank: int, sender_vc: tuple[int, ...]) -> None:
        """Join the piggybacked clock into the receiver's."""
        with self._lock:
            self._merge(rank, sender_vc)
            self._tick(rank)

    def collective_arrive(self, key: tuple[str, int], rank: int) -> None:
        with self._lock:
            self._tick(rank)
            self._coll_vcs.setdefault(key, {})[rank] = tuple(self._clocks[rank])

    def collective_release(self, key: tuple[str, int], rank: int) -> None:
        """Join every participant's arrival clock: a completed
        collective orders everything before it on any rank before
        everything after it on every rank."""
        with self._lock:
            for vc in self._coll_vcs[key].values():
                self._merge(rank, vc)
            self._tick(rank)
            done = self._coll_released.get(key, 0) + 1
            if done == self.nprocs:
                del self._coll_vcs[key]
                self._coll_released.pop(key, None)
            else:
                self._coll_released[key] = done

    # -- shared-object accesses ---------------------------------------

    def record(self, rank: int, obj, op: str, label: str | None, site: str) -> None:
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        with self._lock:
            self._tick(rank)
            vc = tuple(self._clocks[rank])
            access = Access(rank=rank, op=op, vc=vc, site=site)
            key = id(obj)
            name = label or f"{type(obj).__name__}@0x{key:x}"
            _, log = self._accesses.setdefault(key, (name, []))
            for prior in log:
                if prior.rank == rank:
                    continue
                if prior.op != "write" and op != "write":
                    continue
                if not _ordered(prior.vc, vc):
                    self._races.append(Race(label=name, first=prior, second=access))
            log.append(access)

    def races(self) -> list[Race]:
        with self._lock:
            return list(self._races)
