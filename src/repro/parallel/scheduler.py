# repro: waive-file[virtual-time] host-side scheduling substrate; rank threads implement the simulated ranks
"""Execution engines for :class:`~repro.parallel.simmpi.VirtualCluster`.

A virtual cluster needs two things from its host: a way to *suspend* a
rank whose next virtual event has not happened yet (a ``recv`` with an
empty mailbox, a collective missing participants), and a way to *wake*
exactly the ranks whose wait just became satisfiable.  Two engines
implement that contract:

``event`` (the default)
    A cooperative, deterministic scheduler.  Each rank runs as a
    continuation — a parked OS thread that holds the rank's full Python
    call stack (the only stdlib-portable way to suspend arbitrary
    synchronous code mid-call; greenlets without the dependency) — but
    at most ONE continuation executes at any moment.  A single run
    token is handed directly from the parking rank to the next entry of
    an O(1) ready deque, wakeups are targeted (a ``send`` readies only
    its receiver), and the scheduler thread takes over only when the
    ready deque drains (deadlock / timeout-expiry classification).
    Cost per blocking operation is O(1) host work, independent of the
    cluster size, which is what makes 1024-rank clusters cheap: the
    thread-per-rank engine's broadcast wakeups cost O(P) re-checks per
    state change, O(P^2) per collective round.

``threads``
    The original preemptive engine: one free-running thread per rank
    synchronised on a shared :class:`threading.Condition`, every state
    change broadcast with ``notify_all``.  Kept selectable for one
    release as the differential-testing oracle — the parity suite runs
    both engines on identical programs and asserts bitwise-identical
    clocks, charges and traces.

Both engines preserve every simulator contract byte-for-byte: virtual
clock arithmetic, OpCounter charges, fault injection, the finalize-time
communication verifier, sanitizer vector clocks and the
``rank_traces()`` event strings are all computed by
:mod:`~repro.parallel.simmpi` itself; the engine only decides *which
host thread runs when*.  Because every rank keeps its own OS thread in
both engines, thread-local machinery (the ambient
:class:`~repro.linalg.counters.OpCounter`, the per-rank
:mod:`repro.obs` tracer installation) works unchanged.

A host-level stall — no rank is runnable, yet the deadlock classifier
declines to call it a (virtual) deadlock — raises a typed
:class:`SchedulerDeadlock` carrying a per-rank blocked-state dump,
instead of hanging the process the way a lost ``Condition`` wakeup
used to.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from ..analysis.vocab import RUNTIME_CODES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simmpi import VirtualCluster, VirtualComm

__all__ = [
    "ENGINES",
    "EventEngine",
    "SchedulerDeadlock",
    "ThreadEngine",
    "make_engine",
]

#: Engine names accepted by ``VirtualCluster(engine=...)``.
ENGINES = ("event", "threads")

# Consecutive stale safety-net wakeups (no cluster progress, wait still
# unsatisfied, every live rank blocked) before the thread engine calls
# the run host-stalled.  Two strikes so a single slow broadcast never
# false-positives.
_STALL_STRIKES = 2

FailureProbe = Callable[[], BaseException | None]
WaitEntry = "tuple[str, Callable[[], bool], bool, FailureProbe | None]"


class SchedulerDeadlock(RuntimeError):
    """No rank is runnable and no pending wait can ever complete.

    This is the *host-level* stall error: the virtual-semantics
    classifier (:meth:`VirtualCluster._check_deadlock`) looked at the
    blocked ranks and declined to raise a
    :class:`~repro.parallel.simmpi.CommVerificationError` — every
    communication-shaped deadlock still surfaces as that — yet nothing
    can make progress.  It means a scheduler invariant broke (a lost
    wakeup, a monkeypatched or buggy classifier), so instead of hanging
    the process the engines raise this typed error with a per-rank dump
    of each blocked rank's wait description.
    """

    def __init__(self, blocked: dict[int, str], detail: str = ""):
        self.blocked = dict(blocked)
        lines = [
            "scheduler stall: no rank is runnable and no blocked wait can "
            f"complete [{RUNTIME_CODES['scheduler_stall']}]"
        ]
        if detail:
            lines.append(detail)
        if self.blocked:
            lines.append("per-rank blocked state:")
            lines.extend(
                f"  rank {r}: blocked in {self.blocked[r]}"
                for r in sorted(self.blocked)
            )
        else:
            lines.append("(no rank had a registered wait entry)")
        super().__init__("\n".join(lines))


class _PeerFailure(RuntimeError):
    """Secondary failure: this rank aborted because another rank died.

    ``VirtualCluster.run`` re-raises the *root* error, not these."""


class _NullMutex:
    """No-op lock for the cooperative engine: with a single run token
    there is never a second thread to exclude."""

    def __enter__(self) -> "_NullMutex":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class ThreadEngine:
    """Preemptive thread-per-rank execution (the legacy oracle).

    All waits share one :class:`threading.Condition`; every state
    change that can satisfy a wait broadcasts ``notify_all`` and each
    woken rank re-checks its own predicate.  Correct and simple, but
    broadcast wakeups cost O(P) per event — the reason this engine caps
    out near the paper's 64 procs and the event engine exists.
    """

    name = "threads"

    def __init__(self, cluster: "VirtualCluster"):
        self.cluster = cluster
        self.mutex = threading.Condition()
        # Monotone progress stamp: bumped by every notification.  A
        # safety-net wakeup that observes no progress while every live
        # rank is blocked counts toward a SchedulerDeadlock strike.
        self._progress = 0
        self._notifies = 0

    # -- notifications (call with the mutex held) ---------------------

    def notify_all(self) -> None:
        self._progress += 1
        self._notifies += 1
        self.mutex.notify_all()

    def notify_rank(self, rank: int) -> None:
        # A Condition cannot target one waiter; the oracle broadcasts.
        self.notify_all()

    # -- blocking wait (call with the mutex held) ---------------------

    def wait(
        self,
        rank: int,
        desc: str,
        predicate: Callable[[], bool],
        timed: bool = False,
        failure: FailureProbe | None = None,
    ) -> bool:
        cl = self.cluster
        cl._waiting[rank] = (desc, predicate, timed, failure)
        strikes = 0
        try:
            while not predicate():
                if failure is not None:
                    exc = failure()
                    if exc is not None:
                        raise exc
                if cl._deadlock is not None:
                    raise cl._deadlock
                if cl._error_flag:
                    peer = next(
                        (st.error for st in cl.ranks if st.error is not None),
                        None,
                    )
                    if peer is not None:
                        raise _PeerFailure(
                            f"rank {rank}: peer rank failed during {desc}"
                        ) from peer
                if rank in cl._timed_out:
                    cl._timed_out.discard(rank)
                    return False
                if cl._check_deadlock():
                    raise cl._deadlock
                if rank in cl._timed_out:
                    # _check_deadlock may have just expired this wait.
                    cl._timed_out.discard(rank)
                    return False
                stamp = self._progress
                self.mutex.wait(timeout=cl.wait_safety_net_s)
                if self._progress == stamp and not predicate():
                    # Stale wakeup: the safety net fired with zero
                    # cluster activity.  Only a stall if nobody is
                    # computing either — a rank mid-numpy is progress
                    # the stamp cannot see.
                    live_all_blocked = all(
                        st.done or st.error is not None or r in cl._waiting
                        for r, st in enumerate(cl.ranks)
                    )
                    if live_all_blocked:
                        strikes += 1
                        if strikes >= _STALL_STRIKES:
                            raise SchedulerDeadlock(
                                {
                                    r: entry[0]
                                    for r, entry in sorted(cl._waiting.items())
                                },
                                detail=(
                                    f"thread engine: {strikes} consecutive "
                                    f"safety-net windows "
                                    f"({cl.wait_safety_net_s:.3g}s each) "
                                    "passed with no notification"
                                ),
                            )
                else:
                    strikes = 0
            return True
        finally:
            cl._waiting.pop(rank, None)
            cl._timed_out.discard(rank)

    # -- execution ----------------------------------------------------

    def run_ranks(
        self,
        comms: "list[VirtualComm]",
        body: Callable[["VirtualComm"], None],
    ) -> None:
        cl = self.cluster
        self._notifies = 0
        threads = []
        for comm in comms:

            def work(comm: "VirtualComm" = comm) -> None:
                body(comm)
                with self.mutex:
                    cl.ranks[comm.rank].done = True
                    cl._waiting.pop(comm.rank, None)
                    # A finished rank can strand peers waiting on it.
                    cl._check_deadlock()
                    self.notify_all()

            threads.append(threading.Thread(target=work, daemon=True))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def stats(self) -> dict[str, float]:
        return {"scheduler.notifies": float(self._notifies)}


# Continuation states.  READY ranks sit in the deque; exactly one rank
# is RUNNING (it holds the token); BLOCKED ranks are parked inside
# EventEngine.wait; DONE ranks have returned, crashed or errored.
_READY, _RUNNING, _BLOCKED, _DONE = range(4)


class _Continuation:
    """One rank's parked call stack plus its wake signal."""

    __slots__ = ("go", "state", "thread")

    def __init__(self) -> None:
        self.thread: threading.Thread | None = None
        self.go = threading.Event()
        self.state = _READY


class EventEngine:
    """Cooperative event-driven scheduler (the default engine).

    Exactly one continuation holds the run token at any moment, so the
    simulator's shared state (mailboxes, collectives, ledgers) needs no
    lock at all — ``mutex`` is a no-op.  Scheduling is deterministic:
    ranks start in rank order, wakeups append to a FIFO ready deque in
    a fixed order, and the token is handed directly from the parking
    rank to the next ready rank (one Event signal per block, no
    scheduler-thread bounce).  The scheduler thread regains control
    only when the ready deque drains, where it either classifies the
    situation through the cluster's deadlock/timeout logic or raises
    :class:`SchedulerDeadlock`.
    """

    name = "event"

    def __init__(self, cluster: "VirtualCluster"):
        self.cluster = cluster
        self.mutex = _NullMutex()
        self._conts: list[_Continuation] = []
        self._ready: deque[int] = deque()
        self._sched_go = threading.Event()
        self._comms: "list[VirtualComm]" = []
        self._body: Callable[["VirtualComm"], None] | None = None
        self._abort: SchedulerDeadlock | None = None
        self._ndone = 0
        self._switches = 0
        self._wakeups = 0
        self._ready_depth_max = 0

    # -- notifications (token holder only) ----------------------------

    def _track_depth(self) -> None:
        depth = len(self._ready)
        if depth > self._ready_depth_max:
            self._ready_depth_max = depth

    def notify_rank(self, rank: int) -> None:
        """Ready one parked rank; O(1), no-op unless it is blocked."""
        cont = self._conts[rank]
        if cont.state == _BLOCKED:
            cont.state = _READY
            self._ready.append(rank)
            self._wakeups += 1
            self._track_depth()

    def notify_all(self) -> None:
        """Ready every parked rank, in rank order (deterministic)."""
        for rank, cont in enumerate(self._conts):
            if cont.state == _BLOCKED:
                cont.state = _READY
                self._ready.append(rank)
                self._wakeups += 1
        self._track_depth()

    # -- blocking wait (token holder only) ----------------------------

    def wait(
        self,
        rank: int,
        desc: str,
        predicate: Callable[[], bool],
        timed: bool = False,
        failure: FailureProbe | None = None,
    ) -> bool:
        cl = self.cluster
        cl._waiting[rank] = (desc, predicate, timed, failure)
        try:
            while not predicate():
                if self._abort is not None:
                    raise self._abort
                if failure is not None:
                    exc = failure()
                    if exc is not None:
                        raise exc
                if cl._deadlock is not None:
                    raise cl._deadlock
                if cl._error_flag:
                    peer = next(
                        (st.error for st in cl.ranks if st.error is not None),
                        None,
                    )
                    if peer is not None:
                        raise _PeerFailure(
                            f"rank {rank}: peer rank failed during {desc}"
                        ) from peer
                if rank in cl._timed_out:
                    cl._timed_out.discard(rank)
                    return False
                self._park(rank)
            return True
        finally:
            cl._waiting.pop(rank, None)
            cl._timed_out.discard(rank)

    # -- token plumbing -----------------------------------------------

    def _park(self, rank: int) -> None:
        """Give up the token until something readies this rank again."""
        cont = self._conts[rank]
        cont.state = _BLOCKED
        self._hand_off()
        cont.go.wait()
        cont.go.clear()
        cont.state = _RUNNING

    def _hand_off(self) -> None:
        """Pass the token to the next ready rank, or to the scheduler
        thread when none is ready (drain: classify or finish)."""
        self._switches += 1
        if self._ready:
            rank = self._ready.popleft()
            nxt = self._conts[rank]
            if nxt.thread is None:
                # First dispatch: the continuation's thread starts
                # directly in its body — no initial signal round-trip.
                nxt.state = _RUNNING
                nxt.thread = threading.Thread(
                    target=self._main, args=(rank,), daemon=True
                )
                nxt.thread.start()
            else:
                nxt.go.set()
        else:
            self._sched_go.set()

    def _main(self, rank: int) -> None:
        """Continuation entry point: run the rank body, then finalize
        and hand the token on.  Runs on the rank's own thread, so all
        thread-local machinery (OpCounter, obs tracer) is per-rank."""
        cl = self.cluster
        assert self._body is not None
        self._body(self._comms[rank])
        st = cl.ranks[rank]
        st.done = True
        cl._waiting.pop(rank, None)
        self._conts[rank].state = _DONE
        self._ndone += 1
        if self._abort is None:
            if st.error is not None:
                # Peers blocked on this rank must wake to observe the
                # failure (they raise _PeerFailure; run() re-raises the
                # root error).
                self.notify_all()
            elif cl._waiting:
                # A finished rank can strand peers waiting on it; the
                # classifier notifies whoever it concerns.
                cl._check_deadlock()
        self._hand_off()

    # -- drain handling -----------------------------------------------

    def _on_idle(self) -> None:
        """No rank is ready and not all are done: classify.

        Either the cluster's own logic turns the drain into virtual
        semantics (deadlock error, expired virtual timeouts, crashed
        peers — all of which ready the affected ranks), or the engine
        declares a host-level stall.  Unlike the thread engine this
        needs no real-time safety net: with a single token the drain
        condition is observed exactly, so classification is immediate.
        """
        cl = self.cluster
        if cl._check_deadlock():
            # Classified as a communication deadlock: the classifier
            # recorded cl._deadlock and notified; blocked ranks wake to
            # raise it.
            return
        if self._ready:
            # The classifier expired timed waits or fired a failure
            # probe — someone is runnable again.
            return
        # Defensive sweep (the event-engine analogue of the thread
        # engine's safety net): ready any rank whose wait is actually
        # satisfiable, so a lost targeted wakeup degrades to a sweep
        # instead of a stall.
        for rank in sorted(cl._waiting):
            _desc, predicate, _timed, failure = cl._waiting[rank]
            if (
                rank in cl._timed_out
                or predicate()
                or (failure is not None and failure() is not None)
            ):
                self.notify_rank(rank)
        if self._ready:
            return
        if cl._error_flag and any(st.error is not None for st in cl.ranks):
            # An error is propagating: wake everyone so peers abort.
            self.notify_all()
            if self._ready:
                return
        blocked = {r: entry[0] for r, entry in sorted(cl._waiting.items())}
        self._abort = SchedulerDeadlock(
            blocked,
            detail=(
                "event engine: ready deque drained with "
                f"{self.cluster.nprocs - self._ndone} rank(s) unfinished"
            ),
        )
        if not blocked:
            # Nothing is even parked: no continuation can absorb the
            # abort, so raise it straight from the scheduler thread.
            raise self._abort
        # Wake every parked rank; each observes the abort in wait() and
        # raises it, so the error propagates through the normal
        # per-rank error path and every thread terminates.
        self.notify_all()

    # -- execution ----------------------------------------------------

    def run_ranks(
        self,
        comms: "list[VirtualComm]",
        body: Callable[["VirtualComm"], None],
    ) -> None:
        cl = self.cluster
        nprocs = cl.nprocs
        self._comms = comms
        self._body = body
        self._conts = [_Continuation() for _ in range(nprocs)]
        self._ready = deque(range(nprocs))
        self._abort = None
        self._ndone = 0
        self._switches = 0
        self._wakeups = 0
        self._ready_depth_max = nprocs  # everyone starts ready
        self._sched_go.clear()
        try:
            while self._ndone < nprocs:
                if not self._ready:
                    self._on_idle()
                    continue
                self._hand_off()
                self._sched_go.wait()
                self._sched_go.clear()
        finally:
            for cont in self._conts:
                if cont.thread is not None:
                    cont.thread.join()
            self._comms = []
            self._body = None

    def stats(self) -> dict[str, float]:
        return {
            "scheduler.switches": float(self._switches),
            "scheduler.wakeups": float(self._wakeups),
            "scheduler.ready_depth_max": float(self._ready_depth_max),
        }


def make_engine(name: str, cluster: "VirtualCluster"):
    """Engine factory for ``VirtualCluster(engine=...)``."""
    if name == "event":
        return EventEngine(cluster)
    if name == "threads":
        return ThreadEngine(cluster)
    raise ValueError(
        f"unknown engine {name!r} (valid engines: {', '.join(ENGINES)})"
    )
