"""Distributed matrix-free Helmholtz solve: element partitions + GS + PCG.

This is NekTar-ALE's parallel solver layer: the mesh elements are
partitioned across ranks (METIS-style, :mod:`repro.mesh.partition`),
each rank holds only its elements' operators, and the global CG
iteration needs exactly two kinds of communication per iteration —

* a gather-scatter assembly exchange of interface dofs after each
  element-local matvec (pairwise/binary-tree, no Alltoall), and
* two allreduce inner products.

Dirichlet conditions are lifted exactly as in the serial solver; dot
products count every shared dof once (lowest-rank ownership).
"""

from __future__ import annotations

import numpy as np

from ..assembly.global_system import project_dirichlet
from ..assembly.operators import elemental_helmholtz
from ..assembly.space import FunctionSpace
from ..linalg import blas
from .gs import GatherScatter
from .simmpi import VirtualComm

__all__ = ["DistributedHelmholtz"]


class DistributedHelmholtz:
    """One rank's share of a Jacobi-preconditioned CG Helmholtz solve.

    For testing convenience every rank constructs the full
    :class:`FunctionSpace` (the mesh is replicated, as in many real FEM
    codes' setup phase) but stores operators, vectors and does work only
    for its own elements.
    """

    def __init__(
        self,
        comm: VirtualComm,
        space: FunctionSpace,
        parts: np.ndarray,
        lam: float = 0.0,
        dirichlet_tags: tuple[str, ...] = (),
        tol: float = 1e-10,
        maxiter: int | None = None,
    ):
        self.comm = comm
        self.space = space
        self.parts = np.asarray(parts, dtype=np.int64)
        if self.parts.shape != (space.nelem,):
            raise ValueError("parts must assign every element")
        self.lam = float(lam)
        self.tol = tol
        self.maxiter = maxiter
        self.my_elems = [e for e in range(space.nelem) if self.parts[e] == comm.rank]

        dm = space.dofmap
        # Local dof set and global->local map.
        loc = sorted({int(d) for e in self.my_elems for d in dm.elem_dofs[e]})
        self.local_dofs = np.array(loc, dtype=np.int64)
        self.g2l = {g: i for i, g in enumerate(loc)}
        self.nlocal = len(loc)
        self.elem_mats = {
            e: elemental_helmholtz(dm.expansion(e), space.geom[e], self.lam)
            for e in self.my_elems
        }
        self._elem_local = {
            e: np.array([self.g2l[int(d)] for d in dm.elem_dofs[e]], dtype=np.int64)
            for e in self.my_elems
        }

        # Which ranks touch each dof (computable locally: the mesh and the
        # partition vector are replicated).
        dof_ranks: dict[int, set[int]] = {}
        for e in range(space.nelem):
            r = int(self.parts[e])
            for d in dm.elem_dofs[e]:
                dof_ranks.setdefault(int(d), set()).add(r)
        shared = [g for g in loc if len(dof_ranks[g]) > 1]
        self.shared_ids = np.array(shared, dtype=np.int64)
        self.shared_local = np.array([self.g2l[g] for g in shared], dtype=np.int64)
        self.gs = GatherScatter(comm, self.shared_ids)
        self.owned = np.array(
            [min(dof_ranks[g]) == comm.rank for g in loc], dtype=bool
        )

        # Dirichlet dofs restricted to this rank.
        if dirichlet_tags:
            gdofs, _ = project_dirichlet(space, dirichlet_tags, lambda x, y: 0.0)
            self.dirichlet_local = np.array(
                [self.g2l[int(d)] for d in gdofs if int(d) in self.g2l],
                dtype=np.int64,
            )
            self.dirichlet_global = np.array(
                [int(d) for d in gdofs if int(d) in self.g2l], dtype=np.int64
            )
        else:
            self.dirichlet_local = np.array([], dtype=np.int64)
            self.dirichlet_global = np.array([], dtype=np.int64)
        self.free_mask = np.ones(self.nlocal, dtype=bool)
        self.free_mask[self.dirichlet_local] = False

        # Assembled Jacobi diagonal.
        diag = np.zeros(self.nlocal)
        for e in self.my_elems:
            signs = dm.elem_signs[e]
            np.add.at(
                diag, self._elem_local[e], signs * np.diag(self.elem_mats[e]) * signs
            )
        diag[self.shared_local] = self.gs.exchange(diag[self.shared_local])
        self.diag = diag
        self.last_iterations = 0

    # -- distributed primitives -----------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Assembled A x on the local dofs (x assumed consistent on
        shared dofs across ranks)."""
        dm = self.space.dofmap
        y = np.zeros(self.nlocal)
        for e in self.my_elems:
            idx = self._elem_local[e]
            signs = dm.elem_signs[e]
            tmp = np.empty(idx.size)
            blas.dgemv(1.0, self.elem_mats[e], signs * x[idx], 0.0, tmp)
            y[idx] += signs * tmp
        y[self.shared_local] = self.gs.exchange(y[self.shared_local])
        return y

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        local = blas.ddot(x[self.owned], y[self.owned])
        return float(self.comm.allreduce(local, op="sum"))

    def assemble_rhs(self, values: np.ndarray) -> np.ndarray:
        """Assembled load vector (f, phi) over the local dofs from
        quadrature values of f on *my* elements ((nelem, nq) full array
        or dict by element)."""
        from ..assembly.operators import elemental_load

        dm = self.space.dofmap
        rhs = np.zeros(self.nlocal)
        for e in self.my_elems:
            exp = dm.expansion(e)
            fv = values[e]
            local = elemental_load(exp, self.space.geom[e], fv)
            rhs[self._elem_local[e]] += dm.elem_signs[e] * local
        rhs[self.shared_local] = self.gs.exchange(rhs[self.shared_local])
        return rhs

    # -- the solve --------------------------------------------------------------------

    def solve(
        self,
        rhs: np.ndarray,
        dirichlet_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """PCG on the free dofs; rhs is the assembled local load vector.

        ``dirichlet_values`` aligns with ``dirichlet_global``.  Returns
        the local solution vector (consistent on shared dofs).
        """
        n = self.nlocal
        x = np.zeros(n)
        if self.dirichlet_local.size:
            if dirichlet_values is None:
                dirichlet_values = np.zeros(self.dirichlet_local.size)
            x[self.dirichlet_local] = dirichlet_values
        r = rhs - self.matvec(x)
        r[~self.free_mask] = 0.0
        inv_diag = np.where(self.free_mask, 1.0 / self.diag, 0.0)
        z = inv_diag * r
        p = z.copy()
        rz = self.dot(r, z)
        bnorm = np.sqrt(max(self.dot(rhs, rhs), 1e-300))
        maxiter = self.maxiter if self.maxiter is not None else 10 * n + 100
        it = 0
        while it < maxiter:
            resid = np.sqrt(max(self.dot(r, r), 0.0)) / bnorm
            if resid <= self.tol:
                break
            ap = self.matvec(p)
            ap[~self.free_mask] = 0.0
            pap = self.dot(p, ap)
            if pap <= 0:
                raise np.linalg.LinAlgError("distributed operator not SPD")
            alpha = rz / pap
            x += alpha * p
            r -= alpha * ap
            z = inv_diag * r
            rz_new = self.dot(r, z)
            p = z + (rz_new / rz) * p
            rz = rz_new
            it += 1
        else:
            raise RuntimeError("distributed CG did not converge")
        self.last_iterations = it
        return x
