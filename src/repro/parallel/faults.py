"""Deterministic fault injection for the virtual cluster.

The paper's "fact or fiction" question is really a question about
unreliability: commodity Fast-Ethernet/TCP fabrics are lossy,
half-duplex and kernel-mediated, while the supercomputer interconnects
they chase carry DNS traffic natively.  This module models the three
failure classes that separate a Beowulf cluster from the machines of
Tables 2-3:

* **message loss** — a lost TCP segment costs a retransmit timeout
  (exponential backoff) plus a resend; the timeout and resend are
  charged to the virtual *wall* clocks, the kernel's extra copies and
  checksums to the *CPU* clocks via
  :meth:`~repro.machines.network.NetworkModel.cpu_time_for_bytes`.
  Loss only applies to kernel-mediated (TCP) networks — the catalog's
  Ethernet entries — because OS-bypass fabrics (Myrinet/GM, the
  supercomputer switches) have link-level flow control and never drop
  into a software retransmit path;
* **link degradation and stragglers** — per-link slowdown factors
  stretch the priced point-to-point times, per-rank straggler factors
  stretch compute on the virtual clocks (a failing fan, a busy node);
* **rank crash** — a rank dies at a chosen virtual time or timestep.
  Surviving ranks see a typed :class:`RankFailure` on their next
  communication with the dead rank, which an application can catch to
  trigger checkpoint/restart recovery.

Everything is seeded and deterministic: the retransmit count of message
``n`` from rank ``s`` to rank ``d`` with tag ``t`` is a pure function
of ``(seed, s, d, t, n)``, so a faulty run replays bit-for-bit.

An **empty plan is provably zero-cost**: ``VirtualCluster`` skips every
fault branch when the plan is empty, so clocks and charge accounting
stay byte-identical to a run without the fault layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from ..machines.network import NetworkModel

__all__ = [
    "CrashSpec",
    "FaultPlan",
    "RankFailure",
    "RecvTimeout",
]

_MASK64 = (1 << 64) - 1
# splitmix64 constants: a tiny, stable, well-mixed generator that keeps
# the loss draws identical across Python versions and platforms.
_GOLDEN = 0x9E3779B97F4A7C15


class RankFailure(RuntimeError):
    """A rank crashed; raised on the next communication with it.

    ``rank`` is the dead rank, ``when`` its virtual crash time (the
    dead rank's wall clock at the crash point).  Applications catch
    this to abandon the step and restart from a checkpoint.
    """

    def __init__(self, rank: int, when: float, detail: str = ""):
        self.rank = int(rank)
        self.when = float(when)
        msg = f"rank {rank} crashed at virtual t={when:.6g}s"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class RecvTimeout(RuntimeError):
    """A ``recv`` with a virtual timeout expired with no message.

    Carries the peer, tag, total virtual seconds waited across all
    attempts, and the number of attempts made.
    """

    def __init__(self, source: int, tag: int, waited: float, attempts: int):
        self.source = int(source)
        self.tag = int(tag)
        self.waited = float(waited)
        self.attempts = int(attempts)
        super().__init__(
            f"recv(source={source}, tag={tag}) timed out after "
            f"{waited:.6g} virtual seconds ({attempts} attempt(s))"
        )


@dataclass(frozen=True)
class CrashSpec:
    """Kill one rank at a virtual time or at the start of a timestep.

    Exactly one of ``at_time`` (virtual seconds on the rank's wall
    clock) or ``at_step`` (application step index, delivered through
    :meth:`VirtualComm.mark_step`) must be given.
    """

    rank: int
    at_time: float | None = None
    at_step: int | None = None

    def __post_init__(self):
        if (self.at_time is None) == (self.at_step is None):
            raise ValueError("CrashSpec needs exactly one of at_time/at_step")
        if self.rank < 0:
            raise ValueError(f"bad rank {self.rank}")


def _mix(*vals: int) -> int:
    """Deterministic 64-bit hash of a tuple of ints (splitmix64 chain)."""
    h = _MASK64 & 0x243F6A8885A308D3
    for v in vals:
        h = (h + (v & _MASK64) + _GOLDEN) & _MASK64
        h ^= h >> 30
        h = (h * 0xBF58476D1CE4E5B9) & _MASK64
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK64
        h ^= h >> 31
    return h


def _next(h: int) -> tuple[int, float]:
    """Advance the hash state; returns (new state, uniform in [0, 1))."""
    h = (h + _GOLDEN) & _MASK64
    x = h
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return h, (x >> 11) / float(1 << 53)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults for one cluster run.

    Parameters
    ----------
    seed:
        Root seed for the loss draws; two runs with the same plan see
        the same losses on the same messages.
    loss_rate:
        Per-transmission-attempt probability that a point-to-point
        message is lost and must be retransmitted.  Only applies to
        kernel-mediated TCP networks (``cpu_overhead_per_byte > 0``);
        OS-bypass fabrics never enter the software retransmit path.
    retransmit_timeout:
        Base TCP retransmission timeout in virtual seconds; attempt
        ``i`` backs off exponentially to ``retransmit_timeout * 2**i``.
    max_retransmits:
        Hard cap on retransmits per message (mirrors a kernel's RTO
        cap; also bounds the deterministic draw).
    degraded_links:
        ``(rank_a, rank_b) -> slowdown factor >= 1`` applied
        symmetrically to the priced point-to-point time on that pair.
    stragglers:
        ``rank -> slowdown factor >= 1`` applied to that rank's priced
        compute (both clocks: a slow node burns proportionally more of
        each).
    crashes:
        :class:`CrashSpec` entries, at most one per rank.
    """

    seed: int = 0
    loss_rate: float = 0.0
    retransmit_timeout: float = 0.2
    max_retransmits: int = 8
    degraded_links: Mapping[tuple[int, int], float] = field(default_factory=dict)
    stragglers: Mapping[int, float] = field(default_factory=dict)
    crashes: tuple[CrashSpec, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.retransmit_timeout < 0 or self.max_retransmits < 0:
            raise ValueError("invalid retransmit parameters")
        for f in self.degraded_links.values():
            if f < 1.0:
                raise ValueError("link degradation factors must be >= 1")
        for f in self.stragglers.values():
            if f < 1.0:
                raise ValueError("straggler factors must be >= 1")
        ranks = [c.rank for c in self.crashes]
        if len(ranks) != len(set(ranks)):
            raise ValueError("at most one CrashSpec per rank")

    @property
    def is_empty(self) -> bool:
        """True iff the plan injects nothing (zero-cost guarantee)."""
        return (
            self.loss_rate == 0.0
            and not self.degraded_links
            and not self.stragglers
            and not self.crashes
        )

    # -- loss ------------------------------------------------------------------

    def loss_applies(self, network: "NetworkModel") -> bool:
        """Loss injects only on kernel-mediated (TCP) networks."""
        return self.loss_rate > 0.0 and network.cpu_overhead_per_byte > 0.0

    def retransmits(self, src: int, dst: int, tag: int, index: int) -> int:
        """Deterministic retransmit count of one message.

        ``index`` is the sender's message sequence number; the draw is
        a pure function of ``(seed, src, dst, tag, index)``.
        """
        if self.loss_rate <= 0.0:
            return 0
        h = _mix(self.seed, src, dst, tag, index)
        n = 0
        while n < self.max_retransmits:
            h, u = _next(h)
            if u >= self.loss_rate:
                break
            n += 1
        return n

    def retransmit_delay(self, nretrans: int) -> float:
        """Total virtual seconds of RTO backoff before the successful
        transmission: ``sum_i rto * 2**i`` for ``i < nretrans``."""
        if nretrans <= 0:
            return 0.0
        return self.retransmit_timeout * float((1 << nretrans) - 1)

    def collective_retransmits(
        self, kind: str, seq: int, src: int, dst: int
    ) -> int:
        """Deterministic retransmit count of one pairwise message inside
        collective instance ``(kind, seq)``.

        The draw chain is disjoint from the point-to-point one (the
        kind string is folded into the tag slot), so interleaving
        collectives with sends never perturbs either stream.
        """
        if self.loss_rate <= 0.0:
            return 0
        tag = _mix(*kind.encode("utf-8"))
        return self.retransmits(src, dst, tag, seq)

    # -- degradation / stragglers ------------------------------------------------

    def link_factor(self, a: int, b: int) -> float:
        """Symmetric slowdown factor of the (a, b) link (1.0 = healthy)."""
        if not self.degraded_links:
            return 1.0
        f = self.degraded_links.get((a, b))
        if f is None:
            f = self.degraded_links.get((b, a), 1.0)
        return float(f)

    def max_link_factor(self, nprocs: int) -> float:
        """Worst slowdown factor over every rank pair below ``nprocs``.

        Equals ``max(link_factor(a, b) for all pairs a != b)`` but costs
        O(|degraded_links|) instead of O(nprocs^2) — the alltoall
        pricing path calls this once per collective, and at 1024 ranks
        the pairwise scan would dominate the simulation.
        """
        worst = 1.0
        for (a, b), f in sorted(self.degraded_links.items()):
            if a != b and 0 <= a < nprocs and 0 <= b < nprocs:
                worst = max(worst, float(f))
        return worst

    def straggler_factor(self, rank: int) -> float:
        if not self.stragglers:
            return 1.0
        return float(self.stragglers.get(rank, 1.0))

    # -- crashes ----------------------------------------------------------------

    def crash_for(self, rank: int) -> CrashSpec | None:
        for c in self.crashes:
            if c.rank == rank:
                return c
        return None
