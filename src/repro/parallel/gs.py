"""Tufo-Fischer style gather-scatter ("GS") library on simmpi.

"The communication interface used, was designed by Tufo & Fischer ...
allows for the treatment of all the communications using a binary-tree
algorithm, pairwise exchanges, or a mix of these two.  Pairwise
exchange is used for communicating values shared by only a few
processors, while the binary-tree approach is used for values shared by
many processors." (Section 4.2.2)

:class:`GatherScatter` assembles (sums) values of shared global dofs
across ranks: dofs shared by exactly two ranks go through pairwise
neighbour exchanges; dofs shared by three or more ranks (partition
cross-points) go through a dense allreduce (the binary-tree reduction).
Crucially, *no Alltoall is used* — the property the paper credits for
NekTar-ALE's good Ethernet-free scaling.
"""

from __future__ import annotations

import numpy as np

from .simmpi import VirtualComm

__all__ = ["GatherScatter"]


class GatherScatter:
    """Sum-assembly of shared dof values across ranks.

    Parameters
    ----------
    comm:
        simmpi communicator.
    shared_ids:
        Sorted 1-D int array: the global ids of this rank's *interface*
        dofs (dofs that may be owned by other ranks too).  ``exchange``
        then operates on vectors aligned with this array.
    """

    def __init__(self, comm: VirtualComm, shared_ids: np.ndarray):
        self.comm = comm
        self.ids = np.asarray(shared_ids, dtype=np.int64)
        if self.ids.ndim != 1 or (
            self.ids.size > 1 and np.any(np.diff(self.ids) <= 0)
        ):
            raise ValueError("shared_ids must be sorted and unique")
        self._index = {int(g): i for i, g in enumerate(self.ids)}

        all_ids = comm.allgather(self.ids)
        owners: dict[int, list[int]] = {}
        for r, ids in enumerate(all_ids):
            for g in ids.tolist():
                owners.setdefault(g, []).append(r)

        # Pairwise plan: partner -> local indices of dofs shared exactly
        # by {me, partner}, in ascending global-id order on both sides.
        me = comm.rank
        pair_plan: dict[int, list[int]] = {}
        tree_local: list[int] = []
        tree_globals: set[int] = set()
        for g in self.ids.tolist():
            own = owners[g]
            if len(own) == 1:
                continue
            if len(own) == 2:
                partner = own[0] if own[1] == me else own[1]
                pair_plan.setdefault(partner, []).append(self._index[g])
            else:
                tree_local.append(self._index[g])
                tree_globals.add(g)
        self.pair_plan = {
            p: np.array(idx, dtype=np.int64) for p, idx in sorted(pair_plan.items())
        }
        # Global catalogue of multiply-shared dofs (same on all ranks).
        all_tree = sorted(
            {g for g, own in owners.items() if len(own) >= 3}
        )
        tree_slot_of = {g: i for i, g in enumerate(all_tree)}
        self.tree_ids = np.array(all_tree, dtype=np.int64)
        self.tree_local = np.array(tree_local, dtype=np.int64)
        self.tree_slots = np.array(
            [tree_slot_of[int(self.ids[i])] for i in tree_local], dtype=np.int64
        )
        self.multiplicity = np.array(
            [len(owners[int(g)]) for g in self.ids], dtype=np.float64
        )

    # -- operation -----------------------------------------------------------------

    def exchange(self, values: np.ndarray) -> np.ndarray:
        """Sum contributions of shared dofs across ranks.

        ``values`` is aligned with ``shared_ids``; returns the assembled
        (summed) vector, identical on every rank that shares each dof.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.ids.shape:
            raise ValueError("values must align with shared_ids")
        out = values.copy()
        # Pairwise exchanges (deadlock-free: buffered sends first).
        # sorted(): accumulation into out[idx] must visit partners in a
        # rank-independent order for bitwise determinism.
        for partner, idx in sorted(self.pair_plan.items()):
            self.comm.send(partner, values[idx], tag=71)
        for partner, idx in sorted(self.pair_plan.items()):
            other = self.comm.recv(partner, tag=71)
            out[idx] += other
        # Binary-tree (allreduce) for dofs shared by >= 3 ranks.
        if self.tree_ids.size:
            dense = np.zeros(self.tree_ids.size)
            if self.tree_local.size:
                dense[self.tree_slots] = values[self.tree_local]
            summed = self.comm.allreduce(dense, op="sum")
            if self.tree_local.size:
                out[self.tree_local] = summed[self.tree_slots]
        return out

    def average(self, values: np.ndarray) -> np.ndarray:
        """Assembled values divided by sharing multiplicity (consistent
        nodal average across ranks)."""
        return self.exchange(values) / self.multiplicity
