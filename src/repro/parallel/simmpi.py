"""simmpi: a virtual-time MPI on threads.

Rank functions execute *real Python/numpy code on real data* — messages
actually move arrays between ranks — while each rank carries two
virtual clocks priced by the machine models:

* ``wall`` — the paper's ``MPI_Wtime``: compute time plus communication
  time including waiting (idle) time;
* ``cpu``  — the paper's ``clock()``: compute time plus only the CPU
  cost of the protocol stack (TCP copy/checksum overhead on the
  Ethernet clusters, ~0 on OS-bypass networks).

The difference between the two "indicates idle CPU time, which is
associated with network inefficiency" (Section 4.2) — exactly the
CPU/wall split Tables 2-3 report.

Timing model: point-to-point messages use the Hockney model of the pair
network (buffered send: the sender pays wire occupancy, the receiver
completes at send_start + latency + bytes/bandwidth).  Collectives are
data-correct (implemented with real exchanges) but priced with the
calibrated collective cost models of :class:`NetworkModel`, applied at
the synchronisation point — this captures contention effects (Ethernet
Alltoall saturation) that uncoordinated pairwise pricing would miss.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..machines.cpu import CPUModel
from ..machines.network import NetworkModel

__all__ = ["VirtualCluster", "VirtualComm", "payload_bytes"]


def payload_bytes(obj: Any) -> int:
    """Wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, np.floating, np.integer)):
        return 8
    if isinstance(obj, (tuple, list)) and all(
        isinstance(x, (int, float, np.floating, np.integer)) for x in obj
    ):
        return 8 * len(obj)
    return len(pickle.dumps(obj))


@dataclass
class _RankState:
    wall: float = 0.0
    cpu: float = 0.0
    sent_bytes: float = 0.0
    recv_bytes: float = 0.0
    messages: int = 0
    result: Any = None
    error: BaseException | None = None


@dataclass
class _Collective:
    """Rendezvous buffer for one collective call."""

    expected: int
    arrived: int = 0
    data: dict[int, Any] = field(default_factory=dict)
    t_start: float = 0.0
    t_done: float = 0.0
    released: int = 0
    out: Any = None


class VirtualCluster:
    """A simulated machine: P ranks, a network model, an optional CPU
    model for pricing compute, and a node topology for intra/internode
    network selection."""

    def __init__(
        self,
        nprocs: int,
        network: NetworkModel,
        cpu: CPUModel | None = None,
        procs_per_node: int = 1,
        intranode: NetworkModel | None = None,
    ):
        if nprocs < 1:
            raise ValueError("need at least one rank")
        self.nprocs = nprocs
        self.network = network
        self.cpu = cpu
        self.procs_per_node = max(1, procs_per_node)
        self.intranode = intranode
        self._lock = threading.Condition()
        self._mailbox: dict[tuple[int, int, int], deque] = {}
        self._collectives: dict[tuple[str, int], _Collective] = {}
        self._coll_seq: dict[str, int] = {}
        self.ranks = [_RankState() for _ in range(nprocs)]

    # -- topology ---------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return rank // self.procs_per_node

    def pair_network(self, a: int, b: int) -> NetworkModel:
        if self.intranode is not None and self.node_of(a) == self.node_of(b):
            return self.intranode
        return self.network

    # -- execution ----------------------------------------------------------------

    def run(self, fn: Callable[["VirtualComm"], Any], *args, **kwargs) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; returns per-rank results."""
        threads = []
        for r in range(self.nprocs):
            comm = VirtualComm(self, r)

            def work(comm=comm):
                st = self.ranks[comm.rank]
                try:
                    st.result = fn(comm, *args, **kwargs)
                except BaseException as exc:  # propagate to caller
                    st.error = exc
                    with self._lock:
                        self._lock.notify_all()

            t = threading.Thread(target=work, daemon=True)
            threads.append(t)
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        errors = [st.error for st in self.ranks if st.error is not None]
        if errors:
            raise errors[0]
        return [st.result for st in self.ranks]

    @property
    def max_wall(self) -> float:
        return max(st.wall for st in self.ranks)

    @property
    def max_cpu(self) -> float:
        return max(st.cpu for st in self.ranks)


class VirtualComm:
    """Per-rank communicator handle (the MPI_COMM_WORLD analogue)."""

    def __init__(self, cluster: VirtualCluster, rank: int):
        self.cluster = cluster
        self.rank = rank
        self._st = cluster.ranks[rank]

    # -- clock ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.cluster.nprocs

    @property
    def wall(self) -> float:
        """Virtual MPI_Wtime of this rank."""
        return self._st.wall

    @property
    def cpu_time(self) -> float:
        """Virtual clock() of this rank."""
        return self._st.cpu

    def compute(self, seconds: float) -> None:
        """Charge `seconds` of pure computation."""
        if seconds < 0:
            raise ValueError("negative compute time")
        self._st.wall += seconds
        self._st.cpu += seconds

    def compute_flops(self, flops: float) -> None:
        """Charge computation priced by the cluster's CPU model."""
        if self.cluster.cpu is None:
            raise RuntimeError("cluster has no CPU model")
        self.compute(self.cluster.cpu.app_time(flops))

    # -- point-to-point ------------------------------------------------------------

    def send(self, dest: int, obj: Any, tag: int = 0) -> None:
        if not 0 <= dest < self.size or dest == self.rank:
            raise ValueError(f"bad destination {dest}")
        net = self.cluster.pair_network(self.rank, dest)
        nbytes = payload_bytes(obj)
        t_start = self._st.wall
        ready = t_start + net.send_time(nbytes)
        # Sender occupies the wire (store-and-forward into the NIC) and
        # pays the protocol stack's CPU cost.
        self._st.wall += nbytes / net.bandwidth
        overhead = net.cpu_time_for_bytes(nbytes)
        self._st.wall += overhead
        self._st.cpu += overhead
        self._st.sent_bytes += nbytes
        self._st.messages += 1
        cl = self.cluster
        with cl._lock:
            key = (self.rank, dest, tag)
            cl._mailbox.setdefault(key, deque()).append((obj, ready, nbytes))
            cl._lock.notify_all()

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size or source == self.rank:
            raise ValueError(f"bad source {source}")
        cl = self.cluster
        key = (source, self.rank, tag)
        with cl._lock:
            while not cl._mailbox.get(key):
                if any(st.error for st in cl.ranks):
                    raise RuntimeError("peer rank failed") from next(
                        st.error for st in cl.ranks if st.error
                    )
                cl._lock.wait(timeout=0.5)
            obj, ready, nbytes = cl._mailbox[key].popleft()
        net = cl.pair_network(source, self.rank)
        overhead = net.cpu_time_for_bytes(nbytes)
        waited = max(0.0, ready - self._st.wall)
        self._st.wall = max(self._st.wall, ready) + overhead
        # Busy-polling MPI stacks burn CPU while waiting (the paper's
        # near-equal CPU/wall columns on vendor MPIs and GM).
        self._st.cpu += overhead + net.busy_wait_fraction * waited
        self._st.recv_bytes += nbytes
        return obj

    def sendrecv(self, dest: int, obj: Any, source: int, tag: int = 0) -> Any:
        """Exchange with distinct partners without deadlock."""
        self.send(dest, obj, tag)
        return self.recv(source, tag)

    # -- collectives -----------------------------------------------------------------

    def _collective(self, kind: str, contribution: Any, pricing, combine):
        """Generic synchronising collective.

        pricing(t_start, all_data) -> completion wall time;
        combine(all_data) -> per-rank output (called once).
        """
        cl = self.cluster
        with cl._lock:
            seq = cl._coll_seq.get(kind, 0)
            key = (kind, seq)
            coll = cl._collectives.get(key)
            if coll is None or coll.arrived == coll.expected:
                # Start a new instance (previous one full => next round).
                if coll is not None and coll.arrived == coll.expected:
                    seq += 1
                    cl._coll_seq[kind] = seq
                    key = (kind, seq)
                coll = cl._collectives.setdefault(key, _Collective(expected=self.size))
            coll.data[self.rank] = contribution
            coll.arrived += 1
            coll.t_start = max(coll.t_start, self._st.wall)
            if coll.arrived == coll.expected:
                coll.t_done = pricing(coll.t_start, coll.data)
                coll.out = combine(coll.data)
                cl._coll_seq[kind] = seq + 1
                cl._lock.notify_all()
            else:
                while coll.arrived < coll.expected:
                    if any(st.error for st in cl.ranks):
                        raise RuntimeError("peer rank failed")
                    cl._lock.wait(timeout=0.5)
            coll.released += 1
            out, t_done = coll.out, coll.t_done
            if coll.released == coll.expected:
                del cl._collectives[(key[0], key[1])]
        waited = max(0.0, t_done - self._st.wall)
        self._st.wall = t_done
        self._st.cpu += cl.network.busy_wait_fraction * waited
        return out

    def barrier(self) -> None:
        net = self.cluster.network
        self._collective(
            "barrier",
            None,
            lambda t0, data: t0 + net.barrier_time(self.size),
            lambda data: None,
        )

    def alltoall(self, chunks: list[Any]) -> list[Any]:
        """chunks[d] goes to rank d; returns what every rank sent to us."""
        if len(chunks) != self.size:
            raise ValueError("alltoall needs one chunk per rank")
        net = self.cluster.network
        me = self.rank
        nbytes = max((payload_bytes(c) for c in chunks), default=0)
        overhead = net.cpu_time_for_bytes(2.0 * nbytes * (self.size - 1))
        self._st.cpu += overhead
        self._st.sent_bytes += nbytes * (self.size - 1)
        self._st.recv_bytes += nbytes * (self.size - 1)
        self._st.messages += self.size - 1

        def pricing(t0, data):
            sizes = [
                payload_bytes(c) for chunk in data.values() for c in chunk
            ]
            m = max(sizes) if sizes else 0
            return t0 + net.alltoall_time(self.size, m) + overhead

        out = self._collective(
            "alltoall",
            chunks,
            pricing,
            lambda data: {r: [data[s][r] for s in range(self.size)] for r in data},
        )
        return out[me]

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        net = self.cluster.network
        nbytes = payload_bytes(value)

        def pricing(t0, data):
            return t0 + net.allreduce_time(self.size, nbytes)

        def combine(data):
            vals = [data[r] for r in sorted(data)]
            if op == "sum":
                out = vals[0]
                if isinstance(out, np.ndarray):
                    out = out.copy()
                for v in vals[1:]:
                    out = out + v
                return out
            if op == "max":
                return max(vals) if not isinstance(vals[0], np.ndarray) else np.maximum.reduce(vals)
            if op == "min":
                return min(vals) if not isinstance(vals[0], np.ndarray) else np.minimum.reduce(vals)
            raise ValueError(f"unknown op {op!r}")

        return self._collective(f"allreduce-{op}", value, pricing, combine)

    def bcast(self, value: Any, root: int = 0) -> Any:
        net = self.cluster.network
        import math

        def pricing(t0, data):
            nbytes = payload_bytes(data[root])
            hops = math.ceil(math.log2(self.size)) if self.size > 1 else 0
            return t0 + hops * net.send_time(nbytes)

        return self._collective("bcast", value if self.rank == root else None, pricing, lambda data: data[root])

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        net = self.cluster.network
        nbytes = payload_bytes(value)

        def pricing(t0, data):
            return t0 + (self.size - 1) * net.send_time(nbytes)

        out = self._collective(
            "gather", value, pricing, lambda data: [data[r] for r in sorted(data)]
        )
        return out if self.rank == root else None

    def allgather(self, value: Any) -> list[Any]:
        net = self.cluster.network
        nbytes = payload_bytes(value)

        def pricing(t0, data):
            return t0 + self.cluster.network.allreduce_time(self.size, nbytes)

        _ = net
        return self._collective(
            "allgather", value, pricing, lambda data: [data[r] for r in sorted(data)]
        )
