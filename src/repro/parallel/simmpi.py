"""simmpi: a virtual-time MPI on scheduled rank continuations.

Rank functions execute *real Python/numpy code on real data* — messages
actually move arrays between ranks — while each rank carries two
virtual clocks priced by the machine models:

* ``wall`` — the paper's ``MPI_Wtime``: compute time plus communication
  time including waiting (idle) time;
* ``cpu``  — the paper's ``clock()``: compute time plus only the CPU
  cost of the protocol stack (TCP copy/checksum overhead on the
  Ethernet clusters, ~0 on OS-bypass networks).

The difference between the two "indicates idle CPU time, which is
associated with network inefficiency" (Section 4.2) — exactly the
CPU/wall split Tables 2-3 report.

Timing model: point-to-point messages use the Hockney model of the pair
network (buffered send: the sender pays wire occupancy, the receiver
completes at send_start + latency + bytes/bandwidth).  Collectives are
data-correct (implemented with real exchanges) but priced with the
calibrated collective cost models of :class:`NetworkModel`, applied at
the synchronisation point — this captures contention effects (Ethernet
Alltoall saturation) that uncoordinated pairwise pricing would miss.

Communication verification
--------------------------
With ``verify=True`` (the default) the cluster checks MPI semantics the
way a debugging MPI layer would:

* **at runtime** — a deadlock (every live rank blocked in a recv or an
  unfilled collective, none able to make progress) and cross-rank
  collective-ordering mismatches (rank 0's n-th collective is a
  ``barrier`` while rank 1's n-th is an ``allreduce``) abort the run
  immediately;
* **at finalize** — after all ranks return cleanly, unmatched sends
  (messages still sitting in a mailbox), incomplete collectives, and
  cluster-wide byte conservation (total bytes sent == total bytes
  received) are checked.

Violations raise :class:`CommVerificationError`, which carries the
structured ``problems`` list and a bounded per-rank ``rank_traces`` of
the most recent communication events on each rank.

Fault injection
---------------
A :class:`~repro.parallel.faults.FaultPlan` passed to
:class:`VirtualCluster` injects deterministic message loss (priced as
TCP retransmits on kernel-mediated networks), link degradation,
per-rank stragglers, and rank crashes.  A crashed rank stops executing;
surviving ranks observe a typed
:class:`~repro.parallel.faults.RankFailure` on their next communication
with it (pending messages it sent earlier still deliver).  With an
empty plan every fault branch is skipped, so clocks and accounting are
byte-identical to a cluster constructed without one.
"""

from __future__ import annotations

import math
import pickle
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..analysis.vocab import RUNTIME_CODES
from ..machines.cpu import CPUModel
from ..machines.network import NetworkModel
from ..obs import metrics
from ..obs import tracer as obs
from ..obs.critpath import CritPathRecorder
from .faults import CrashSpec, FaultPlan, RankFailure, RecvTimeout
from .sanitizer import DeterminismError, RaceDetector
from .scheduler import ENGINES, SchedulerDeadlock, _PeerFailure, make_engine

__all__ = [
    "CommVerificationError",
    "DeterminismError",
    "SchedulerDeadlock",
    "VirtualCluster",
    "VirtualComm",
    "payload_bytes",
]


def _code(kind: str) -> str:
    """Shared-vocabulary suffix for runtime verifier problems, e.g.
    `` [REPRO010]`` — appended so static and runtime findings about the
    same defect class cite one diagnostic code."""
    return f" [{RUNTIME_CODES[kind]}]"

_TRACE_LEN = 64
# Host-side safety net only (thread engine): every state change that
# can satisfy a wait notifies the condition, so this timeout never
# shapes virtual or host timing — it exists so a lost-wakeup bug
# degrades to a typed SchedulerDeadlock (after two stale windows)
# instead of a hang.  Tunable per cluster via ``wait_safety_net_s``.
_WAIT_SAFETY_NET_S = 5.0


class CommVerificationError(RuntimeError):
    """A communication invariant was violated.

    Raised at runtime (deadlock, collective-ordering mismatch) or at
    cluster finalize (unmatched sends, incomplete collectives, byte
    conservation).  ``problems`` is the structured list of findings;
    ``rank_traces`` maps rank -> most recent communication events.
    """

    def __init__(
        self,
        problems: str | list[str],
        rank_traces: dict[int, list[str]] | None = None,
    ):
        if isinstance(problems, str):
            problems = [problems]
        self.problems = list(problems)
        self.rank_traces = {r: list(t) for r, t in (rank_traces or {}).items()}
        lines = ["communication verification failed:"]
        lines.extend(f"  - {p}" for p in self.problems)
        if self.rank_traces:
            lines.append("per-rank trace (most recent events last):")
            for r in sorted(self.rank_traces):
                tail = ", ".join(self.rank_traces[r]) or "(no events)"
                lines.append(f"  rank {r}: {tail}")
        super().__init__("\n".join(lines))


class _InjectedCrash(BaseException):
    """Control-flow exception killing a rank per the fault plan.

    Deliberately a ``BaseException`` so application-level ``except
    Exception`` recovery code cannot resurrect a dead rank.  The worker
    loop absorbs it: an injected crash is part of the simulation, not a
    host error."""

    def __init__(self, rank: int, when: float):
        self.rank = rank
        self.when = when
        super().__init__(f"rank {rank} crashed at t={when:.6g}")


def payload_bytes(obj: Any) -> int:
    """Wire size of a message payload.

    Numpy arrays (including 0-d) and scalars are priced at their true
    ``nbytes``; ``bool`` is one byte; python ints/floats are one 8-byte
    word; sequences and dicts — homogeneous, mixed, or nested — are
    priced recursively element by element.  Anything else falls back to
    its pickled size.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, bool):  # before int: bool subclasses int
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, complex):
        return 16
    if obj is None:
        return 0
    if isinstance(obj, (tuple, list)):
        return sum(payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_bytes(k) + payload_bytes(v) for k, v in obj.items())
    return len(pickle.dumps(obj))


@dataclass
class _RankState:
    wall: float = 0.0
    cpu: float = 0.0
    sent_bytes: float = 0.0
    recv_bytes: float = 0.0
    messages: int = 0
    result: Any = None
    error: BaseException | None = None
    done: bool = False
    crashed: bool = False
    coll_kinds: list[str] = field(default_factory=list)
    trace: deque = field(default_factory=lambda: deque(maxlen=_TRACE_LEN))


@dataclass
class _Collective:
    """Rendezvous buffer for one collective call."""

    expected: int
    arrived: int = 0
    data: dict[int, Any] = field(default_factory=dict)
    # rank -> per-rank payload summary (e.g. alltoall's max chunk size),
    # recorded at arrival so pricing never has to re-walk the payloads
    # of every rank (that walk is O(P^2) in an alltoall).
    sizes: dict[int, int] = field(default_factory=dict)
    t_start: float = 0.0
    t_done: float = 0.0
    released: int = 0
    out: Any = None


class VirtualCluster:
    """A simulated machine: P ranks, a network model, an optional CPU
    model for pricing compute, and a node topology for intra/internode
    network selection."""

    def __init__(
        self,
        nprocs: int,
        network: NetworkModel,
        cpu: CPUModel | None = None,
        procs_per_node: int = 1,
        intranode: NetworkModel | None = None,
        verify: bool = True,
        trace: obs.Trace | None = None,
        faults: FaultPlan | None = None,
        sanitize: bool = False,
        engine: str = "event",
        critpath: "CritPathRecorder | None" = None,
    ):
        if nprocs < 1:
            raise ValueError("need at least one rank")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} "
                f"(valid engines: {', '.join(ENGINES)})"
            )
        self.nprocs = nprocs
        self.network = network
        self.cpu = cpu
        self.procs_per_node = max(1, procs_per_node)
        self.intranode = intranode
        self.verify = verify
        self.trace = trace
        self.faults = faults
        # Race-detector mode: piggyback vector clocks on the message
        # graph and check declared shared accesses for happens-before
        # ordering.  Charge-parity contract: the detector never touches
        # the virtual clocks, byte ledgers or the OpCounter.
        self.sanitize = sanitize
        self._sanitizer: RaceDetector | None = (
            RaceDetector(nprocs) if sanitize else None
        )
        # Critical-path recorder: a pure observer of the priced event
        # graph (repro.obs.critpath).  Same charge-parity contract as
        # the tracer and the sanitizer: never touches virtual clocks,
        # byte ledgers or the OpCounter.
        self._critpath = critpath
        # Empty plan == no plan: every fault branch keys off this being
        # None, which is what makes the fault layer provably zero-cost.
        self._plan = None if faults is None or faults.is_empty else faults
        # Execution engine: "event" (cooperative single-token scheduler,
        # the default) or "threads" (the legacy preemptive oracle kept
        # for differential testing).  Engines own all host
        # synchronisation: `_mutex` is a real Condition under the thread
        # engine and a no-op under the event engine (single token — no
        # second thread to exclude).
        self.engine = engine
        self._engine = make_engine(engine, self)
        self._mutex = self._engine.mutex
        self._mailbox: dict[tuple[int, int, int], deque] = {}
        self._collectives: dict[tuple[str, int], _Collective] = {}
        self._coll_seq: dict[str, int] = {}
        # Collective-ordering registry: entry i records (kind, rank) of
        # the first rank to enter its i-th collective, so the runtime
        # ordering check is O(1) per entry instead of an O(P) scan of
        # every rank's history.  Persistent across run() calls, like
        # coll_kinds/_coll_seq (cluster reuse accumulates history).
        self._coll_order: list[tuple[str, int]] = []
        # rank -> (description, predicate, has virtual timeout, failure
        # probe returning an exception to raise or None).
        self._waiting: dict[
            int,
            tuple[str, Callable[[], bool], bool, Callable[[], BaseException | None] | None],
        ] = {}
        self._timed_out: set[int] = set()
        self._crashed: dict[int, float] = {}  # rank -> virtual crash time
        self._deadlock: CommVerificationError | None = None
        # Fast-path flag: true once any rank recorded a host error this
        # run.  Lets the per-wait peer-failure probe skip its O(P) scan
        # of rank states in the overwhelmingly common no-error case.
        self._error_flag = False
        self.ranks = [_RankState() for _ in range(nprocs)]

    # Thread-engine safety-net window in host seconds; after two
    # consecutive windows with no cluster activity and every live rank
    # blocked, the run aborts with SchedulerDeadlock instead of
    # spinning forever.  Class attribute so tests can shrink it.
    wait_safety_net_s: float = _WAIT_SAFETY_NET_S

    # -- topology ---------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return rank // self.procs_per_node

    def pair_network(self, a: int, b: int) -> NetworkModel:
        if self.intranode is not None and self.node_of(a) == self.node_of(b):
            return self.intranode
        return self.network

    # -- verification -----------------------------------------------------------

    def rank_traces(self, ranks=None) -> dict[int, list[str]]:
        """Most recent communication events per rank, oldest first.

        Public, stable API shared by the finalize-time comm verifier
        (attached to :class:`CommVerificationError`) and the trace
        exporter (attached to each rank's thread metadata in the Chrome
        trace JSON).  Each rank keeps a bounded ring of the last
        ``_TRACE_LEN`` events; the event strings are:

        * ``"send -> D tag=T (NB)"`` — point-to-point send to rank D,
          N payload bytes;
        * ``"recv <- S tag=T (NB)"`` — completed receive from rank S;
        * ``"KIND #SEQ"`` — collective entry (``barrier``,
          ``alltoall``, ``allreduce-OP``, ``bcast``, ``gather``,
          ``allgather``), with its per-kind sequence number;
        * ``"BLOCKED: DESC"`` — appended by the deadlock detector to
          each rank blocked at abort time.
        """
        ranks = range(self.nprocs) if ranks is None else ranks
        return {r: list(self.ranks[r].trace) for r in ranks}

    def _check_deadlock(self) -> bool:
        """With the mutex held: true iff every live rank is blocked on a
        condition that cannot become true.  Records the deadlock error."""
        if self._deadlock is not None:
            return True
        if self._error_flag:
            # A real error is propagating; peer-failure handling owns
            # the wakeup, and the root cause must win over "deadlock".
            return False
        active = [
            r
            for r, st in enumerate(self.ranks)
            if not st.done and st.error is None
        ]
        if not active:
            return False
        blocked = []
        timed = []
        for r in active:
            entry = self._waiting.get(r)
            if entry is None or entry[1]():
                return False  # computing, or its wait is satisfiable
            desc, _predicate, has_timeout, failure = entry
            if failure is not None and failure() is not None:
                # The rank will wake and raise a typed failure (e.g.
                # RankFailure for a crashed peer) — not a deadlock.
                self._engine.notify_rank(r)
                return False
            if has_timeout:
                timed.append(r)
            blocked.append((r, desc))
        if timed:
            # Nothing can progress, but some waits carry virtual
            # timeouts: expire those instead of declaring deadlock.
            self._timed_out.update(timed)
            for r in timed:
                self._engine.notify_rank(r)
            return False
        problems = [f"deadlock: every live rank is blocked{_code('deadlock')}"]
        problems.extend(f"rank {r} blocked in {desc}" for r, desc in blocked)
        traces = self.rank_traces([r for r, _ in blocked])
        for r, desc in blocked:
            traces[r] = traces.get(r, []) + [f"BLOCKED: {desc}"]
        self._deadlock = CommVerificationError(problems, traces)
        self._engine.notify_all()
        return True

    def _blocking_wait(
        self,
        rank: int,
        desc: str,
        predicate,
        timed: bool = False,
        failure: Callable[[], BaseException | None] | None = None,
    ) -> bool:
        """With the lock held: wait until ``predicate()``.

        Aborts on peer failure or deadlock; raises the exception
        returned by ``failure()`` when it fires (crashed-peer probes).
        With ``timed=True`` the wait participates in stall detection as
        expirable: when every live rank is blocked and nothing can
        progress, timed waits return ``False`` (virtual timeout)
        instead of raising a deadlock.  Returns ``True`` when the
        predicate is satisfied.

        Waits are notification-driven: every state change that can
        satisfy a predicate (message enqueue, collective fill, rank
        completion, crash, timeout expiry) notifies the engine, so
        blocking host time is not quantised by a poll interval.  The
        mechanics live in the engine: the event engine parks the rank's
        continuation and hands the run token on; the thread engine
        waits on the shared condition.
        """
        return self._engine.wait(rank, desc, predicate, timed, failure)

    def verify_communication(self) -> list[str]:
        """Finalize-time checks; raises :class:`CommVerificationError`.

        Called automatically by :meth:`run` (when ``verify=True``) after
        all ranks return cleanly; callable directly for manual runs.

        When the fault plan crashed ranks mid-run, the residue a crash
        necessarily leaves behind — messages a dead rank sent (or was
        sent) that were never received, collectives it never joined,
        the shorter collective history of ranks that aborted — is
        *crash-attributed*: reported in the returned list instead of
        raised as verifier findings.  Returns the (possibly empty) list
        of crash-attributed notes.
        """
        problems: list[str] = []
        attributed: list[str] = []
        crashed = set(self._crashed)
        undelivered = 0.0
        for (src, dst, tag), q in sorted(self._mailbox.items()):
            for _obj, _ready, nbytes, _vc, _cp in q:
                undelivered += nbytes
                msg = (
                    f"rank {src} -> rank {dst} tag={tag} "
                    f"({nbytes} bytes) was never received"
                )
                if src in crashed or dst in crashed:
                    who = src if src in crashed else dst
                    attributed.append(
                        f"crash-attributed unmatched send: {msg} "
                        f"(rank {who} crashed at "
                        f"t={self._crashed[who]:.6g})"
                    )
                else:
                    problems.append(
                        f"unmatched send: {msg}{_code('unmatched_send')}"
                    )
        for (kind, seq), coll in sorted(self._collectives.items()):
            if coll.arrived < coll.expected:
                missing = sorted(set(range(self.nprocs)) - set(coll.data))
                msg = (
                    f"incomplete collective '{kind}' #{seq}: only "
                    f"{coll.arrived}/{coll.expected} ranks arrived "
                    f"(missing ranks {missing})"
                    f"{_code('incomplete_collective')}"
                )
                if crashed:
                    # A crash tears every in-flight collective: ranks
                    # die before arriving, survivors abort on the
                    # RankFailure before reaching later collectives.
                    attributed.append(f"crash-attributed {msg}")
                else:
                    problems.append(msg)
        ref = self.ranks[0].coll_kinds
        for r, st in enumerate(self.ranks[1:], start=1):
            if not crashed:
                if st.coll_kinds != ref:
                    problems.append(
                        f"collective ordering mismatch: rank 0 ran {ref} "
                        f"but rank {r} ran {st.coll_kinds}"
                        f"{_code('collective_order')}"
                    )
                    break
            else:
                # Crashed/aborted ranks legitimately ran a prefix of
                # the schedule; only a *conflicting* prefix is an error.
                n = min(len(ref), len(st.coll_kinds))
                if st.coll_kinds[:n] != ref[:n]:
                    problems.append(
                        f"collective ordering mismatch: rank 0 ran {ref} "
                        f"but rank {r} ran {st.coll_kinds}"
                        f"{_code('collective_order')}"
                    )
                    break
        sent = sum(st.sent_bytes for st in self.ranks)
        recvd = sum(st.recv_bytes for st in self.ranks)
        if crashed:
            # Byte conservation modulo undelivered crash residue.  The
            # ledger counts each message's logical bytes exactly once
            # (retransmitted copies are priced but never re-counted),
            # so sent minus what is still sitting in mailboxes must
            # equal what was received.
            if sent - undelivered != recvd:
                problems.append(
                    f"byte conservation violated after crash accounting: "
                    f"{sent:.0f} sent - {undelivered:.0f} undelivered != "
                    f"{recvd:.0f} received{_code('byte_conservation')}"
                )
        elif sent != recvd:
            per_rank = ", ".join(
                f"rank {r}: {st.sent_bytes:.0f} out / {st.recv_bytes:.0f} in"
                for r, st in enumerate(self.ranks)
            )
            problems.append(
                f"byte conservation violated: {sent:.0f} bytes sent vs "
                f"{recvd:.0f} bytes received cluster-wide ({per_rank})"
                f"{_code('byte_conservation')}"
            )
        if problems:
            raise CommVerificationError(problems, self.rank_traces())
        return attributed

    # -- execution ----------------------------------------------------------------

    def run(self, fn: Callable[["VirtualComm"], Any], *args, **kwargs) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; returns per-rank results."""
        with self._mutex:
            for st in self.ranks:
                st.done = False
                st.error = None
                st.crashed = False
            self._waiting.clear()
            self._timed_out.clear()
            self._crashed.clear()
            self._deadlock = None
            self._error_flag = False
            if self.sanitize:
                # Fresh clocks and access log per run.
                self._sanitizer = RaceDetector(self.nprocs)
        if self._critpath is not None:
            # Fresh event graph per run, anchored at the ranks' current
            # clocks (a reused cluster does not restart at zero).
            self._critpath.on_run_begin(self)
        comms = [VirtualComm(self, r) for r in range(self.nprocs)]

        def body(comm: "VirtualComm") -> None:
            st = self.ranks[comm.rank]
            tracer = (
                None
                if self.trace is None
                else self.trace.rank_tracer(comm.rank, clock=lambda: st.wall)
            )
            try:
                with obs.install(tracer):
                    st.result = fn(comm, *args, **kwargs)
            except _InjectedCrash:
                # Simulated death per the fault plan: not a host
                # error.  Peers observe it as RankFailure; the
                # result slot stays None.
                pass
            except BaseException as exc:  # propagate to caller
                st.error = exc
                self._error_flag = True

        self._engine.run_ranks(comms, body)
        if self._critpath is not None:
            # Close every rank's final compute segment (including
            # crashed ranks, frozen at their crash clocks).
            self._critpath.on_run_finish(self)
        # Host-scheduler statistics as first-class obs signals, so
        # perf_report/trace_report show them uniformly (no-ops when no
        # registry is active).  Deterministic host-side counts: they
        # never touch the virtual clocks.
        for _skey, _sval in sorted(self._engine.stats().items()):
            metrics.set_gauge(_skey, _sval)
        if self.trace is not None:
            self.trace.annotate("cluster.engine", self._engine.name)
            self.trace.annotate("cluster.engine_stats", self._engine.stats())
        errors = [st.error for st in self.ranks if st.error is not None]
        if errors:
            # Prefer the root cause over secondary peer-failure aborts.
            roots = [e for e in errors if not isinstance(e, _PeerFailure)]
            raise roots[0] if roots else errors[0]
        if self._sanitizer is not None:
            races = self._sanitizer.races()
            metrics.inc("sanitize.races", len(races))
            if self.trace is not None:
                self.trace.annotate(
                    "sanitize.vector_clocks",
                    {
                        r: list(self._sanitizer.clock(r))
                        for r in range(self.nprocs)
                    },
                )
                self.trace.annotate("sanitize.races", len(races))
            if races:
                raise DeterminismError(races)
        if self.verify:
            self.verify_communication()
        return [st.result for st in self.ranks]

    def engine_stats(self) -> dict[str, float]:
        """Host-scheduler statistics of the most recent :meth:`run`.

        Engine-specific keys: the event engine reports
        ``scheduler.switches`` (token hand-offs) and
        ``scheduler.wakeups`` (ranks readied); the thread engine
        reports ``scheduler.notifies`` (condition broadcasts).  All
        values are deterministic host-side quantities — they never
        touch the virtual clocks.
        """
        return self._engine.stats()

    @property
    def max_wall(self) -> float:
        return max(st.wall for st in self.ranks)

    @property
    def max_cpu(self) -> float:
        return max(st.cpu for st in self.ranks)


class VirtualComm:
    """Per-rank communicator handle (the MPI_COMM_WORLD analogue)."""

    def __init__(self, cluster: VirtualCluster, rank: int):
        self.cluster = cluster
        self.rank = rank
        self._st = cluster.ranks[rank]
        plan = cluster._plan
        self._send_seq = 0  # per-rank message counter (loss-draw index)
        self._a2a_seq = 0  # per-rank alltoall counter (collective loss draws)
        self._step = 0
        self._straggle = 1.0 if plan is None else plan.straggler_factor(rank)
        self._crash_spec: CrashSpec | None = (
            None if plan is None else plan.crash_for(rank)
        )

    # -- clock ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.cluster.nprocs

    @property
    def wall(self) -> float:
        """Virtual MPI_Wtime of this rank."""
        return self._st.wall

    @property
    def cpu_time(self) -> float:
        """Virtual clock() of this rank."""
        return self._st.cpu

    def compute(self, seconds: float) -> None:
        """Charge `seconds` of pure computation.

        A straggling rank (fault plan) pays proportionally more on both
        clocks; a rank whose crash time falls inside the interval
        consumes the partial compute and then dies.
        """
        if seconds < 0:
            raise ValueError("negative compute time")
        if self.cluster._plan is not None:
            seconds = seconds * self._straggle
            c = self._crash_spec
            if c is not None and c.at_time is not None:
                if self._st.wall >= c.at_time:
                    self._do_crash()
                if self._st.wall + seconds >= c.at_time:
                    part = c.at_time - self._st.wall
                    self._st.wall += part
                    self._st.cpu += part
                    self._do_crash()
        self._st.wall += seconds
        self._st.cpu += seconds

    def compute_flops(self, flops: float) -> None:
        """Charge computation priced by the cluster's CPU model."""
        if self.cluster.cpu is None:
            raise RuntimeError("cluster has no CPU model")
        self.compute(self.cluster.cpu.app_time(flops))

    # -- fault plumbing -----------------------------------------------------------

    def mark_step(self, step: int | None = None) -> int:
        """Announce the start of application timestep ``step``.

        Solvers call this once per timestep so a
        :class:`~repro.parallel.faults.CrashSpec` with ``at_step`` can
        fire at a step boundary.  ``step`` defaults to an internal
        counter; returns the step index announced.  No-op without a
        fault plan.
        """
        if step is None:
            step = self._step
        self._step = step + 1
        c = self._crash_spec
        if c is not None:
            self._maybe_crash()
            if c.at_step is not None and step >= c.at_step:
                self._do_crash()
        return step

    # -- sanitizer ------------------------------------------------------------------

    def _record_shared(self, obj: Any, op: str, label: str | None) -> None:
        det = self.cluster._sanitizer
        if det is None:
            return
        frame = sys._getframe(2)
        site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
        det.record(self.rank, obj, op, label, site)

    def shared_read(self, obj: Any, label: str | None = None) -> Any:
        """Declare a read of an object other ranks may also touch.

        Returns ``obj`` unchanged.  A no-op (zero virtual cost) unless
        the cluster runs with ``sanitize=True``, in which case the
        access joins the vector-clock race check: a cross-rank write to
        the same object with no happens-before edge to this read is
        reported as a data race at finalize.
        """
        self._record_shared(obj, "read", label)
        return obj

    def shared_write(self, obj: Any, label: str | None = None) -> Any:
        """Declare a write; see :meth:`shared_read`."""
        self._record_shared(obj, "write", label)
        return obj

    def _maybe_crash(self) -> None:
        """Die if this rank's wall clock has reached its crash time."""
        c = self._crash_spec
        if c is not None and c.at_time is not None and self._st.wall >= c.at_time:
            self._do_crash()

    def _do_crash(self) -> None:
        cl = self.cluster
        with cl._mutex:
            self._st.crashed = True
            cl._crashed[self.rank] = self._st.wall
            self._st.trace.append(f"CRASHED at t={self._st.wall:.6g}")
            # Broadcast: any rank blocked on the dead rank must wake to
            # observe the failure through its probe.
            cl._engine.notify_all()
        metrics.inc("faults.crashes")
        tracer = obs.current()
        if tracer is not None:
            tracer.emit_instant(
                "crash", "fault", {"rank": self.rank, "t": self._st.wall}
            )
        raise _InjectedCrash(self.rank, self._st.wall)

    def _check_peer_alive(self, peer: int) -> None:
        """Raise :class:`RankFailure` if ``peer`` has crashed."""
        cl = self.cluster
        if cl._plan is None:
            return
        with cl._mutex:
            when = cl._crashed.get(peer)
        if when is not None:
            raise RankFailure(peer, when)

    # -- point-to-point ------------------------------------------------------------

    def _check_endpoint(self, peer: int, tag: int, what: str) -> None:
        """Eager argument validation: fail fast with the offending
        rank/tag instead of hanging until the deadlock detector fires."""
        if not isinstance(peer, (int, np.integer)) or isinstance(peer, bool):
            raise ValueError(
                f"rank {self.rank}: {what} must be an integer rank, "
                f"got {peer!r}"
            )
        if not 0 <= peer < self.size:
            raise ValueError(
                f"rank {self.rank}: {what} {peer} out of range "
                f"(valid ranks: 0..{self.size - 1})"
            )
        if peer == self.rank:
            raise ValueError(
                f"rank {self.rank}: {what} {peer} is this rank itself"
            )
        if not isinstance(tag, (int, np.integer)) or isinstance(tag, bool) or tag < 0:
            raise ValueError(
                f"rank {self.rank}: invalid tag {tag!r} "
                f"(tags must be integers >= 0)"
            )

    def send(self, dest: int, obj: Any, tag: int = 0) -> None:
        self._check_endpoint(dest, tag, "destination")
        cl = self.cluster
        plan = cl._plan
        if plan is not None:
            self._maybe_crash()
            self._check_peer_alive(dest)
        net = cl.pair_network(self.rank, dest)
        nbytes = payload_bytes(obj)
        t_start = self._st.wall
        seq = self._send_seq
        self._send_seq = seq + 1
        if plan is None:
            ready = t_start + net.send_time(nbytes)
            # Sender occupies the wire (store-and-forward into the NIC)
            # and pays the protocol stack's CPU cost.
            self._st.wall += nbytes / net.bandwidth
            overhead = net.cpu_time_for_bytes(nbytes)
            self._st.wall += overhead
            self._st.cpu += overhead
        else:
            factor = plan.link_factor(self.rank, dest)
            nret = (
                plan.retransmits(self.rank, dest, tag, seq)
                if plan.loss_applies(net)
                else 0
            )
            delay = plan.retransmit_delay(nret)
            wire = factor * (nbytes / net.bandwidth)
            ready = t_start + delay + factor * net.send_time(nbytes)
            self._st.wall += wire
            overhead = net.cpu_time_for_bytes(nbytes)
            self._st.wall += overhead
            self._st.cpu += overhead
            if nret:
                # TCP retransmit pricing: the blocked sender sits
                # through the RTO backoff and re-occupies the wire for
                # each resend (wall); the kernel's extra copies and
                # checksums burn CPU via cpu_overhead_per_byte.
                resend_cpu = net.cpu_time_for_bytes(nret * nbytes)
                self._st.wall += delay + nret * wire + resend_cpu
                self._st.cpu += resend_cpu
                metrics.inc("faults.retransmits", nret)
                metrics.inc("faults.retransmitted_bytes", nret * nbytes)
                tracer = obs.current()
                if tracer is not None:
                    tracer.emit_span(
                        f"retransmit -> {dest}",
                        "fault",
                        t_start,
                        t_start + delay + nret * wire,
                        {"bytes": nbytes, "tag": tag, "retransmits": nret},
                    )
        # Ledger counts each message's logical bytes exactly once;
        # retransmitted copies are priced above but never re-counted,
        # so byte conservation holds under any loss rate.
        self._st.sent_bytes += nbytes
        self._st.messages += 1
        det = cl._sanitizer
        # Piggybacked vector clock: pure detector state, never priced.
        vc = None if det is None else det.on_send(self.rank)
        cp = cl._critpath
        cp_node = None
        if cp is not None:
            if plan is None:
                cp_node = cp.on_send(
                    rank=self.rank, dest=dest, tag=tag, nbytes=nbytes,
                    t_start=t_start, ready=ready,
                    wire=nbytes / net.bandwidth, overhead=overhead,
                    nret=0, delay=0.0, factor=1.0,
                )
            else:
                cp_node = cp.on_send(
                    rank=self.rank, dest=dest, tag=tag, nbytes=nbytes,
                    t_start=t_start, ready=ready,
                    wire=wire, overhead=overhead,
                    nret=nret, delay=delay, factor=factor,
                    resend_cpu=(
                        net.cpu_time_for_bytes(nret * nbytes) if nret else 0.0
                    ),
                )
        with cl._mutex:
            self._st.trace.append(f"send -> {dest} tag={tag} ({nbytes}B)")
            key = (self.rank, dest, tag)
            cl._mailbox.setdefault(key, deque()).append(
                (obj, ready, nbytes, vc, cp_node)
            )
            # Targeted wakeup: only the receiver's wait can be
            # satisfied by this enqueue (O(1) under the event engine;
            # the thread engine broadcasts regardless).
            cl._engine.notify_rank(dest)
        tracer = obs.current()
        if tracer is not None:
            tracer.emit_span(
                f"send -> {dest}",
                "comm",
                t_start,
                self._st.wall,
                {"bytes": nbytes, "tag": tag, "dest": dest},
            )
        metrics.observe("comm.message_bytes", nbytes)
        metrics.inc("comm.sends")
        metrics.inc("comm.bytes_sent", nbytes)

    def recv(
        self,
        source: int,
        tag: int = 0,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 2.0,
    ) -> Any:
        """Blocking receive, with an optional virtual-timeout API.

        With ``timeout`` set, each attempt waits at most that many
        virtual seconds for a message from ``source``; an expired
        attempt charges the timeout to the wall clock (plus the
        network's busy-wait CPU fraction) and retries up to ``retries``
        times, multiplying the timeout by ``backoff`` each retry,
        before raising :class:`~repro.parallel.faults.RecvTimeout`.
        Without ``timeout`` the behaviour (and pricing) is exactly the
        classic blocking receive.

        If ``source`` crashed, pending messages it sent still deliver;
        once the mailbox is drained the receive raises
        :class:`~repro.parallel.faults.RankFailure`.
        """
        self._check_endpoint(source, tag, "source")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"rank {self.rank}: timeout must be positive")
        if retries < 0:
            raise ValueError(f"rank {self.rank}: retries must be >= 0")
        cl = self.cluster
        plan = cl._plan
        if plan is not None:
            self._maybe_crash()
        key = (source, self.rank, tag)
        t_entry = self._st.wall

        def crash_probe():
            if plan is None:
                return None
            when = cl._crashed.get(source)
            if when is not None and not cl._mailbox.get(key):
                return RankFailure(source, when)
            return None

        desc = f"recv(source={source}, tag={tag})"
        attempts = 0
        cur_timeout = timeout
        while True:
            with cl._mutex:
                got = cl._blocking_wait(
                    self.rank,
                    desc,
                    lambda: bool(cl._mailbox.get(key)),
                    timed=timeout is not None,
                    failure=crash_probe,
                )
                if got:
                    obj, ready, nbytes, sender_vc, send_node = cl._mailbox[key][0]
                    if cur_timeout is None or ready <= self._st.wall + cur_timeout:
                        cl._mailbox[key].popleft()
                        if not cl._mailbox[key]:
                            del cl._mailbox[key]
                        self._st.trace.append(
                            f"recv <- {source} tag={tag} ({nbytes}B)"
                        )
                        if cl._sanitizer is not None and sender_vc is not None:
                            cl._sanitizer.on_recv(self.rank, sender_vc)
                        break
                    # A message exists but completes after the virtual
                    # deadline: this attempt times out; the message
                    # stays queued for a later attempt.
            # Virtual timeout: burn the deadline on the wall clock.
            assert cur_timeout is not None
            net_t = cl.pair_network(source, self.rank)
            t0 = self._st.wall
            self._st.wall += cur_timeout
            self._st.cpu += net_t.busy_wait_fraction * cur_timeout
            if cl._critpath is not None:
                cl._critpath.on_wait_burn(self.rank, cur_timeout)
            attempts += 1
            metrics.inc("faults.recv_timeouts")
            tracer = obs.current()
            if tracer is not None:
                tracer.emit_span(
                    f"timeout: recv <- {source}",
                    "fault",
                    t0,
                    self._st.wall,
                    {"tag": tag, "attempt": attempts, "timeout": cur_timeout},
                )
            if attempts > retries:
                raise RecvTimeout(
                    source, tag, self._st.wall - t_entry, attempts
                )
            cur_timeout = cur_timeout * backoff
        net = cl.pair_network(source, self.rank)
        overhead = net.cpu_time_for_bytes(nbytes)
        t_busy_end = self._st.wall  # receiver's clock before blocking binds
        waited = max(0.0, ready - self._st.wall)
        self._st.wall = max(self._st.wall, ready) + overhead
        # Busy-polling MPI stacks burn CPU while waiting (the paper's
        # near-equal CPU/wall columns on vendor MPIs and GM).
        self._st.cpu += overhead + net.busy_wait_fraction * waited
        self._st.recv_bytes += nbytes
        if cl._critpath is not None:
            cl._critpath.on_recv(
                rank=self.rank, source=source, tag=tag, nbytes=nbytes,
                t_busy_end=t_busy_end, t_after=self._st.wall,
                overhead=overhead, send_node=send_node,
            )
        tracer = obs.current()
        if tracer is not None:
            if waited > 0.0:
                tracer.emit_span(
                    f"wait: recv <- {source}",
                    "idle",
                    t_entry,
                    t_entry + waited,
                    {
                        "bytes": nbytes,
                        "source": source,
                        "busy_wait_fraction": net.busy_wait_fraction,
                    },
                )
            tracer.emit_span(
                f"recv <- {source}",
                "comm",
                t_entry,
                self._st.wall,
                {"bytes": nbytes, "tag": tag, "source": source, "waited": waited},
            )
        metrics.inc("comm.recvs")
        metrics.inc("comm.bytes_recv", nbytes)
        return obj

    def sendrecv(self, dest: int, obj: Any, source: int, tag: int = 0) -> Any:
        """Exchange with distinct partners without deadlock."""
        self.send(dest, obj, tag)
        return self.recv(source, tag)

    # -- collectives -----------------------------------------------------------------

    def _collective(
        self, kind: str, contribution: Any, pricing, combine, entry_size=None,
        breakdown=None,
    ):
        """Generic synchronising collective.

        pricing(t_start, all_data, sizes) -> completion wall time,
        where ``sizes`` maps rank -> the ``entry_size`` summary it
        passed (empty unless the collective supplies one);
        combine(all_data) -> per-rank output (called once).

        breakdown(data, sizes) -> (components, meta) decomposes the
        priced duration ``t_done - t_start`` into critical-path
        resources (must sum to it exactly); only called when a
        critical-path recorder is attached.
        """
        cl = self.cluster
        if cl._plan is not None:
            self._maybe_crash()
        t_entry = self._st.wall
        with cl._mutex:
            if cl.verify:
                # My n-th collective must be the same kind as every
                # other rank's n-th collective (MPI collective-ordering
                # rule).  The registry records (kind, rank) of the
                # first rank to enter each global collective slot, so
                # the check is O(1) per entry instead of scanning all
                # P rank histories.
                idx = len(self._st.coll_kinds)
                if idx < len(cl._coll_order):
                    okind, orank = cl._coll_order[idx]
                    if okind != kind:
                        traces = cl.rank_traces([self.rank, orank])
                        raise CommVerificationError(
                            [
                                f"collective ordering mismatch: rank "
                                f"{self.rank} enters '{kind}' as its "
                                f"collective #{idx} but rank {orank} ran "
                                f"'{okind}' there"
                                f"{_code('collective_order')}"
                            ],
                            traces,
                        )
                else:
                    cl._coll_order.append((kind, self.rank))
            self._st.coll_kinds.append(kind)
            seq = cl._coll_seq.get(kind, 0)
            key = (kind, seq)
            coll = cl._collectives.get(key)
            if coll is None or coll.arrived == coll.expected:
                # Start a new instance (previous one full => next round).
                if coll is not None and coll.arrived == coll.expected:
                    seq += 1
                    cl._coll_seq[kind] = seq
                    key = (kind, seq)
                coll = cl._collectives.setdefault(key, _Collective(expected=self.size))
            self._st.trace.append(f"{kind} #{seq}")
            coll.data[self.rank] = contribution
            if entry_size is not None:
                coll.sizes[self.rank] = entry_size
            coll.arrived += 1
            if cl._sanitizer is not None:
                cl._sanitizer.collective_arrive(key, self.rank)
            coll.t_start = max(coll.t_start, self._st.wall)
            cp = cl._critpath
            if cp is not None:
                cp.on_collective_arrive(key, self.rank, self._st.wall)
            if coll.arrived == coll.expected:
                coll.t_done = pricing(coll.t_start, coll.data, coll.sizes)
                coll.out = combine(coll.data)
                cl._coll_seq[kind] = seq + 1
                if cp is not None:
                    if breakdown is not None:
                        comps, meta = breakdown(coll.data, coll.sizes)
                    else:
                        comps = {"latency": coll.t_done - coll.t_start}
                        meta = {"kind": kind, "n": self.size}
                    cp.on_collective_complete(
                        key, coll.t_start, coll.t_done, comps, meta
                    )
                # Everyone parked at this rendezvous is now releasable.
                cl._engine.notify_all()
            else:

                def crash_probe():
                    # A collective can never complete once a rank that
                    # has not yet contributed is dead.
                    if cl._plan is None:
                        return None
                    # sorted(): which dead rank gets reported must not
                    # depend on crash-registration (thread) order.
                    for dead, when in sorted(cl._crashed.items()):
                        if dead not in coll.data:
                            return RankFailure(dead, when)
                    return None

                cl._blocking_wait(
                    self.rank,
                    f"collective '{kind}' #{seq}",
                    lambda: coll.arrived >= coll.expected,
                    failure=crash_probe,
                )
            coll.released += 1
            out, t_done = coll.out, coll.t_done
            t_sync = coll.t_start  # final: all ranks have arrived
            if cl._critpath is not None:
                cl._critpath.on_collective_release(key, self.rank)
            if cl._sanitizer is not None:
                # A completed collective orders every pre-arrival event
                # on any rank before every post-release event on all.
                cl._sanitizer.collective_release(key, self.rank)
            if coll.released == coll.expected:
                del cl._collectives[(key[0], key[1])]
        waited = max(0.0, t_done - self._st.wall)
        self._st.wall = t_done
        self._st.cpu += cl.network.busy_wait_fraction * waited
        tracer = obs.current()
        if tracer is not None:
            if t_sync > t_entry:
                # Early arrivers wait at the rendezvous for the last rank.
                tracer.emit_span(
                    f"wait: {kind}",
                    "idle",
                    t_entry,
                    t_sync,
                    {"busy_wait_fraction": cl.network.busy_wait_fraction},
                )
            tracer.emit_span(
                kind,
                "comm",
                t_entry,
                t_done,
                {"seq": seq, "waited": waited},
            )
        metrics.inc("comm.collectives")
        metrics.inc(f"comm.collective.{kind}")
        return out

    def barrier(self) -> None:
        net = self.cluster.network

        def breakdown(data, sizes):
            total = net.barrier_time(self.size)
            lat = net.allreduce_time(self.size, 0)
            return (
                {"latency": lat, "bandwidth": total - lat},
                {"kind": "barrier", "n": self.size, "nbytes": 8},
            )

        self._collective(
            "barrier",
            None,
            lambda t0, data, sizes: t0 + net.barrier_time(self.size),
            lambda data: None,
            breakdown=breakdown,
        )

    def alltoall(self, chunks: list[Any]) -> list[Any]:
        """chunks[d] goes to rank d; returns what every rank sent to us."""
        if len(chunks) != self.size:
            raise ValueError("alltoall needs one chunk per rank")
        cl = self.cluster
        net = cl.network
        me = self.rank
        nbytes = max((payload_bytes(c) for c in chunks), default=0)
        # P-1 peers each cost a send-side and a receive-side pass
        # through the protocol stack; a single rank still pays the MPI
        # self-copy (mirroring NetworkModel.alltoall_time's pricing).
        copied = 2.0 * nbytes * (self.size - 1) if self.size > 1 else float(nbytes)
        overhead = net.cpu_time_for_bytes(copied)
        self._st.cpu += overhead
        self._st.sent_bytes += nbytes * (self.size - 1)
        self._st.recv_bytes += nbytes * (self.size - 1)
        self._st.messages += self.size - 1
        metrics.observe("comm.message_bytes", nbytes)
        metrics.inc("comm.bytes_sent", nbytes * (self.size - 1))
        metrics.inc("comm.bytes_recv", nbytes * (self.size - 1))

        plan = cl._plan
        stretch = 1.0
        seq_f = 0
        if plan is not None:
            # Per-rank alltoall counter; the collective-ordering rule
            # keeps it equal across ranks, so every rank derives the
            # same deterministic loss draws for this instance.
            seq_f = self._a2a_seq
            self._a2a_seq = seq_f + 1
            if plan.degraded_links and self.size > 1:
                # The pairwise-exchange rounds are gated by the slowest
                # link in the fabric (O(|degraded_links|), not O(P^2)).
                stretch = plan.max_link_factor(self.size)
            if plan.loss_applies(net) and self.size > 1:
                # This rank's own lost segments cost kernel resend
                # copies (CPU); the shared completion delay is priced
                # inside ``pricing`` below.
                mine = sum(
                    plan.collective_retransmits("alltoall", seq_f, me, d)
                    for d in range(self.size)
                    if d != me
                )
                if mine:
                    self._st.cpu += net.cpu_time_for_bytes(mine * nbytes)
                    metrics.inc("faults.retransmits", mine)
                    metrics.inc("faults.retransmitted_bytes", mine * nbytes)

        def pricing(t0, data, sizes):
            # ``sizes`` carries each rank's max chunk size, recorded at
            # arrival — the global max is O(P) here instead of an
            # O(P^2) re-walk of every chunk of every rank.
            m = max(sizes.values()) if sizes else 0
            t = t0 + stretch * net.alltoall_time(self.size, m) + overhead
            if plan is not None and plan.loss_applies(net) and self.size > 1:
                # The synchronising exchange finishes when the slowest
                # sender clears its serialised rounds: max over sources
                # of summed RTO backoff plus resend wire occupancy.
                # Computed from the shared max chunk size so every rank
                # would price the same completion time.
                wire = m / net.bandwidth
                t += max(
                    sum(
                        plan.retransmit_delay(nr) + nr * wire
                        for d in range(self.size)
                        if d != s
                        for nr in (
                            plan.collective_retransmits(
                                "alltoall", seq_f, s, d
                            ),
                        )
                    )
                    for s in range(self.size)
                )
            return t

        def breakdown(data, sizes):
            # Mirrors ``pricing`` term by term so the components sum to
            # the priced duration: latency from a zero-byte evaluation
            # (rounds x latency, stretch included), the rest of the
            # base cost is wire occupancy, plus protocol overhead and
            # the loss surcharge split into RTO idle vs resend wire.
            m = max(sizes.values()) if sizes else 0
            base = stretch * net.alltoall_time(self.size, m)
            lat = stretch * net.alltoall_time(self.size, 0)
            comps = {"latency": lat, "bandwidth": base - lat, "overhead": overhead}
            meta = {
                "kind": "alltoall",
                "n": self.size,
                "nbytes": m,
                "stretch": stretch,
                "obytes": copied,
            }
            if plan is not None and plan.loss_applies(net) and self.size > 1:
                wire = m / net.bandwidth
                best = best_delay = 0.0
                best_res = 0
                first = True
                for s in range(self.size):
                    tot = sum(
                        plan.retransmit_delay(nr) + nr * wire
                        for d in range(self.size)
                        if d != s
                        for nr in (
                            plan.collective_retransmits("alltoall", seq_f, s, d),
                        )
                    )
                    if first or tot > best:
                        first = False
                        best = tot
                        rets = [
                            plan.collective_retransmits("alltoall", seq_f, s, d)
                            for d in range(self.size)
                            if d != s
                        ]
                        best_delay = sum(plan.retransmit_delay(nr) for nr in rets)
                        best_res = sum(rets)
                comps["idle"] = best_delay
                comps["bandwidth"] += best - best_delay
                meta["ebytes"] = best_res * m
            return comps, meta

        out = self._collective(
            "alltoall",
            chunks,
            pricing,
            lambda data: {
                r: [data[s][r] for s in range(self.size)] for r in sorted(data)
            },
            entry_size=nbytes,
            breakdown=breakdown,
        )
        return out[me]

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        net = self.cluster.network
        nbytes = payload_bytes(value)

        def pricing(t0, data, sizes):
            return t0 + net.allreduce_time(self.size, nbytes)

        def combine(data):
            vals = [data[r] for r in sorted(data)]
            if op == "sum":
                out = vals[0]
                if isinstance(out, np.ndarray):
                    out = out.copy()
                for v in vals[1:]:
                    out = out + v
                return out
            if op == "max":
                return max(vals) if not isinstance(vals[0], np.ndarray) else np.maximum.reduce(vals)
            if op == "min":
                return min(vals) if not isinstance(vals[0], np.ndarray) else np.minimum.reduce(vals)
            raise ValueError(f"unknown op {op!r}")

        def breakdown(data, sizes):
            total = net.allreduce_time(self.size, nbytes)
            lat = net.allreduce_time(self.size, 0)
            return (
                {"latency": lat, "bandwidth": total - lat},
                {"kind": "allreduce", "n": self.size, "nbytes": nbytes},
            )

        return self._collective(
            f"allreduce-{op}", value, pricing, combine, breakdown=breakdown
        )

    def bcast(self, value: Any, root: int = 0) -> Any:
        net = self.cluster.network

        def pricing(t0, data, sizes):
            nbytes = payload_bytes(data[root])
            hops = math.ceil(math.log2(self.size)) if self.size > 1 else 0
            return t0 + hops * net.send_time(nbytes)

        def breakdown(data, sizes):
            nbytes = payload_bytes(data[root])
            hops = math.ceil(math.log2(self.size)) if self.size > 1 else 0
            total = hops * net.send_time(nbytes)
            lat = hops * net.send_time(0)
            return (
                {"latency": lat, "bandwidth": total - lat},
                {"kind": "bcast", "n": self.size, "nbytes": nbytes},
            )

        return self._collective(
            "bcast",
            value if self.rank == root else None,
            pricing,
            lambda data: data[root],
            breakdown=breakdown,
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        net = self.cluster.network
        nbytes = payload_bytes(value)

        def pricing(t0, data, sizes):
            return t0 + (self.size - 1) * net.send_time(nbytes)

        def breakdown(data, sizes):
            total = (self.size - 1) * net.send_time(nbytes)
            lat = (self.size - 1) * net.send_time(0)
            return (
                {"latency": lat, "bandwidth": total - lat},
                {"kind": "gather", "n": self.size, "nbytes": nbytes},
            )

        out = self._collective(
            "gather", value, pricing,
            lambda data: [data[r] for r in sorted(data)],
            breakdown=breakdown,
        )
        return out if self.rank == root else None

    def allgather(self, value: Any) -> list[Any]:
        net = self.cluster.network
        nbytes = payload_bytes(value)

        def pricing(t0, data, sizes):
            return t0 + net.allreduce_time(self.size, nbytes)

        def breakdown(data, sizes):
            total = net.allreduce_time(self.size, nbytes)
            lat = net.allreduce_time(self.size, 0)
            return (
                {"latency": lat, "bandwidth": total - lat},
                {"kind": "allgather", "n": self.size, "nbytes": nbytes},
            )

        return self._collective(
            "allgather", value, pricing,
            lambda data: [data[r] for r in sorted(data)],
            breakdown=breakdown,
        )
