"""Parallel substrate: virtual-time MPI (simmpi) and gather-scatter."""

from .distributed import DistributedHelmholtz
from .gs import GatherScatter
from .simmpi import VirtualCluster, VirtualComm, payload_bytes

__all__ = [
    "VirtualCluster",
    "VirtualComm",
    "GatherScatter",
    "DistributedHelmholtz",
    "payload_bytes",
]
