"""Parallel substrate: virtual-time MPI (simmpi), fault injection, and
gather-scatter."""

from .distributed import DistributedHelmholtz
from .faults import CrashSpec, FaultPlan, RankFailure, RecvTimeout
from .gs import GatherScatter
from .simmpi import VirtualCluster, VirtualComm, payload_bytes

__all__ = [
    "VirtualCluster",
    "VirtualComm",
    "GatherScatter",
    "DistributedHelmholtz",
    "payload_bytes",
    "FaultPlan",
    "CrashSpec",
    "RankFailure",
    "RecvTimeout",
]
