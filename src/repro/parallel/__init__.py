"""Parallel substrate: virtual-time MPI (simmpi), fault injection,
gather-scatter, and the runtime determinism sanitizer."""

from .distributed import DistributedHelmholtz
from .faults import CrashSpec, FaultPlan, RankFailure, RecvTimeout
from .gs import GatherScatter
from .sanitizer import DeterminismError, Race, RaceDetector
from .scheduler import ENGINES, SchedulerDeadlock
from .simmpi import VirtualCluster, VirtualComm, payload_bytes

__all__ = [
    "VirtualCluster",
    "VirtualComm",
    "GatherScatter",
    "DistributedHelmholtz",
    "payload_bytes",
    "ENGINES",
    "SchedulerDeadlock",
    "FaultPlan",
    "CrashSpec",
    "RankFailure",
    "RecvTimeout",
    "DeterminismError",
    "Race",
    "RaceDetector",
]
