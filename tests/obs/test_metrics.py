import pytest

from repro.obs import metrics
from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_and_gauge():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2.5)
    reg.gauge("g").set(4.0)
    snap = reg.snapshot()
    assert snap["c"] == {"type": "counter", "value": 3.5}
    assert snap["g"] == {"type": "gauge", "value": 4.0}


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1.0)


def test_histogram_buckets_and_stats():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    for v in (0.5, 1.0, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(104.5)
    assert h.min == 0.5 and h.max == 100.0
    assert h.mean == pytest.approx(104.5 / 4)
    snap = h.snapshot()
    # 0.5 and 1.0 -> bucket <=1; 3.0 -> (2,4]; 100 -> (64,128].
    assert snap["buckets"] == {"1": 2, "4": 1, "128": 1}


def test_bucket_of_edges():
    assert Histogram.bucket_of(0.0) == 0
    assert Histogram.bucket_of(1.0) == 0
    assert Histogram.bucket_of(2.0) == 1
    assert Histogram.bucket_of(2.1) == 2
    assert Histogram.bucket_of(1024.0) == 10


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(TypeError):
        reg.gauge("m")


def test_hit_rate():
    reg = MetricsRegistry()
    assert reg.hit_rate("cache") is None
    reg.counter("cache.hits").inc(3)
    reg.counter("cache.misses").inc(1)
    assert reg.hit_rate("cache") == pytest.approx(0.75)


def test_module_helpers_noop_when_disabled():
    assert metrics.active_registry() is None
    metrics.inc("x")
    metrics.observe("y", 1.0)
    metrics.set_gauge("z", 2.0)
    assert metrics.hit_rate("x") is None
    assert metrics.active_registry() is None


def test_use_registry_activates_and_restores():
    with metrics.use_registry() as reg:
        assert metrics.active_registry() is reg
        metrics.inc("n", 2)
        metrics.observe("h", 8.0)
        metrics.set_gauge("g", 1.5)
        inner = MetricsRegistry()
        with metrics.use_registry(inner):
            assert metrics.active_registry() is inner
            metrics.inc("n")
        assert metrics.active_registry() is reg
    assert metrics.active_registry() is None
    assert reg.snapshot()["n"]["value"] == 2.0
    assert inner.snapshot()["n"]["value"] == 1.0
    assert metrics.hit_rate("anything") is None


def test_registry_reset_returns_to_birth_state():
    reg = MetricsRegistry()
    reg.counter("n").inc(3)
    reg.histogram("h").observe(2.0)
    assert reg.snapshot() != {}
    reg.reset()
    assert reg.snapshot() == {}
    # Instruments created after a reset start from zero.
    reg.counter("n").inc(1)
    assert reg.snapshot()["n"]["value"] == 1.0


def test_scoped_fresh_registry_per_scope():
    with metrics.scoped() as first:
        metrics.inc("n", 2)
        assert metrics.active_registry() is first
    with metrics.scoped() as second:
        metrics.inc("n", 5)
    assert metrics.active_registry() is None
    # Back-to-back scopes never bleed counters into each other.
    assert first is not second
    assert first.snapshot()["n"]["value"] == 2.0
    assert second.snapshot()["n"]["value"] == 5.0


def test_scoped_resets_long_lived_registry_on_entry():
    reg = MetricsRegistry()
    reg.counter("stale").inc(7)
    with metrics.scoped(reg) as active:
        # The campaign-engine pattern: same registry object, reset on
        # entry so handles held by callers keep pointing at live state.
        assert active is reg
        assert reg.snapshot() == {}
        metrics.inc("fresh")
    assert reg.snapshot() == {"fresh": {"type": "counter", "value": 1.0}}
    assert "stale" not in reg.snapshot()
