"""Critical-path profiler: hand-built graphs, real clusters, counterfactuals.

Three layers of evidence:

* **hand-built graphs** where the longest path is known by construction
  (a ring chain, a collapsed alltoall join, a planted straggler) — the
  backward walk must find exactly that path;
* **real recordings** from :class:`~repro.parallel.simmpi.VirtualCluster`
  runs — ``validate()`` must re-derive the simulator's clocks from the
  edges and the path must attribute (cover) the whole makespan;
* **counterfactual re-weighting** — zero-latency / fabric-swap /
  remove-straggler must answer without re-running, and where a re-run
  oracle exists (actually re-running on the other fabric) they must
  agree on the ordering.
"""

import numpy as np
import pytest

from repro.machines.network import NetworkModel
from repro.obs.critpath import (
    CritPathRecorder,
    Edge,
    EventGraph,
    analyze,
    critical_path,
    render_critpath_report,
    swap_network,
    whatif,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.simmpi import VirtualCluster

ETH = NetworkModel(
    "test-eth",
    latency_us=100,
    bandwidth=10e6,
    cpu_overhead_per_byte=2e-8,
    busy_wait_fraction=0.3,
    full_duplex=False,
)
MYR = NetworkModel(
    "test-myr",
    latency_us=10,
    bandwidth=100e6,
    cpu_overhead_per_byte=0.0,
    busy_wait_fraction=1.0,
)


# ----------------------------------------------------------- hand-built graphs


def test_ring_chain_longest_path():
    """A 3-rank ring of send->recv edges: the chain through all hops wins."""
    g = EventGraph(3)
    starts = [g.add_node(r, "start", "start", 0.0) for r in range(3)]
    # rank 0 computes 1s, sends to 1; rank 1 computes 0.1s then receives.
    s0 = g.add_node(0, "send", "send#0", 1.0)
    g.add_edge(s0, Edge(src=starts[0], cpu=1.0))
    r1 = g.add_node(1, "recv", "recv#0", 1.5)
    g.add_edge(r1, Edge(src=starts[1], cpu=0.1))
    g.add_edge(r1, Edge(src=s0, latency=0.2, bandwidth=0.3, kind="message"))
    s1 = g.add_node(1, "send", "send#1", 1.6)
    g.add_edge(s1, Edge(src=r1, cpu=0.1))
    r2 = g.add_node(2, "recv", "recv#1", 2.1)
    g.add_edge(r2, Edge(src=starts[2], cpu=0.05))
    g.add_edge(r2, Edge(src=s1, latency=0.2, bandwidth=0.3, kind="message"))
    g.validate()

    cp = critical_path(g)
    assert cp.makespan == pytest.approx(2.1)
    assert cp.coverage == pytest.approx(1.0)
    # The path hops 0 -> 1 -> 2, never through rank 1/2's local compute.
    assert [s.rank for s in cp.segments] == [0, 1, 1, 2]
    assert [s.kind for s in cp.segments] == [
        "local", "message", "local", "message",
    ]
    res = cp.by_resource()
    # Path cpu: rank 0's 1.0s + rank 1's 0.1s between recv and send (the
    # 0.1s before rank 1's recv is NOT on the path — the message binds).
    assert res["cpu"] == pytest.approx(1.1)
    assert res["latency"] == pytest.approx(0.4)
    assert res["bandwidth"] == pytest.approx(0.6)


def test_alltoall_join_binds_to_last_arrival():
    """Collapsed collective: release waits for the slowest arrival, and
    the path runs through that rank only."""
    g = EventGraph(4)
    starts = [g.add_node(r, "start", "start", 0.0) for r in range(4)]
    compute = [0.1, 0.7, 0.2, 0.3]
    arrives = []
    for r in range(4):
        a = g.add_node(r, "arrive", "alltoall#0", compute[r])
        g.add_edge(a, Edge(src=starts[r], cpu=compute[r]))
        arrives.append(a)
    sync = g.add_node(-1, "sync", "alltoall#0", 0.7)
    for a in arrives:
        g.add_edge(sync, Edge(src=a, kind="sync"))
    release = g.add_node(-1, "release", "alltoall#0", 0.9)
    g.add_edge(
        release,
        Edge(src=sync, latency=0.05, bandwidth=0.15, kind="alltoall", n=4),
    )
    g.validate()

    cp = critical_path(g)
    assert cp.makespan == pytest.approx(0.9)
    assert cp.coverage == pytest.approx(1.0)
    # Straggler rank 1 is on the path; the release edge inherits its rank.
    assert {s.rank for s in cp.segments} == {1}


def test_planted_straggler_path_and_counterfactual():
    """Two ranks compute then join; the path runs through the straggler
    and scaling its cpu away re-binds the join to the other rank."""
    g = EventGraph(2)
    s0 = g.add_node(0, "start", "start", 0.0)
    s1 = g.add_node(1, "start", "start", 0.0)
    a0 = g.add_node(0, "arrive", "barrier#0", 1.0)
    g.add_edge(a0, Edge(src=s0, cpu=1.0))
    a1 = g.add_node(1, "arrive", "barrier#0", 4.0)  # 4x straggler
    g.add_edge(a1, Edge(src=s1, cpu=4.0))
    sync = g.add_node(-1, "sync", "barrier#0", 4.0)
    g.add_edge(sync, Edge(src=a0, kind="sync"))
    g.add_edge(sync, Edge(src=a1, kind="sync"))
    rel = g.add_node(-1, "release", "barrier#0", 4.5)
    g.add_edge(rel, Edge(src=sync, latency=0.5, kind="barrier", n=2))
    g.validate()

    cp = critical_path(g)
    assert cp.makespan == pytest.approx(4.5)
    assert {s.rank for s in cp.segments} == {1}, "path must run through straggler"
    assert cp.by_rank() == pytest.approx({1: 4.5})

    # Removing the straggler re-binds to rank 0's 1.0s compute.
    assert whatif(g, rank_cpu_scale={1: 0.25}) == pytest.approx(1.5)
    # Generic component scalings.
    assert whatif(g, latency_scale=0.0) == pytest.approx(4.0)
    assert whatif(g, cpu_scale=0.0) == pytest.approx(0.5)


def test_topological_order_enforced():
    g = EventGraph(1)
    a = g.add_node(0, "start", "start", 0.0)
    with pytest.raises(ValueError):
        g.add_edge(a, Edge(src=a))
    with pytest.raises(ValueError):
        g.add_edge(a, Edge(src=5))


def test_validate_catches_wrong_anchor():
    g = EventGraph(1)
    s = g.add_node(0, "start", "start", 0.0)
    n = g.add_node(0, "finish", "finish", 2.0)  # anchored wrong
    g.add_edge(n, Edge(src=s, cpu=1.0))
    with pytest.raises(AssertionError):
        g.validate()


# ----------------------------------------------------------- real recordings


def _mixed_program(comm):
    data = np.arange(64, dtype=float) + comm.rank
    comm.compute(1e-4 * (1 + comm.rank % 3))
    comm.alltoall([data.copy() for _ in range(comm.size)])
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    comm.send(nxt, data, tag=7)
    got = comm.recv(prv, tag=7)
    total = comm.allreduce(float(got[0]))
    comm.barrier()
    return total


@pytest.mark.parametrize("engine", ["event", "threads"])
def test_recorded_graph_rederives_clocks(engine):
    rec = CritPathRecorder()
    cl = VirtualCluster(6, ETH, critpath=rec, engine=engine)
    cl.run(_mixed_program)
    g = rec.graph
    g.validate()
    assert g.makespan() == pytest.approx(cl.max_wall, rel=1e-9)
    cp = critical_path(g)
    assert cp.coverage == pytest.approx(1.0, abs=1e-6)
    # Every segment names a live rank.
    assert all(0 <= s.rank < 6 for s in cp.segments)


def test_recorder_off_graph_empty_run_unchanged():
    """Recorder on vs off: identical results and clocks (charge parity)."""
    rec = CritPathRecorder()
    on = VirtualCluster(4, ETH, critpath=rec)
    res_on = on.run(_mixed_program)
    off = VirtualCluster(4, ETH)
    res_off = off.run(_mixed_program)
    assert res_on == res_off
    assert [s.wall for s in on.ranks] == [s.wall for s in off.ranks]
    assert [s.cpu for s in on.ranks] == [s.cpu for s in off.ranks]
    assert len(rec.graph) > 0


def test_counterfactuals_bound_by_recorded():
    rec = CritPathRecorder()
    cl = VirtualCluster(8, ETH, critpath=rec)
    cl.run(_mixed_program)
    g = rec.graph
    mk = g.makespan()
    assert whatif(g, latency_scale=0.0) < mk
    assert whatif(g, bandwidth_scale=0.0) < mk
    assert whatif(g) == pytest.approx(mk)  # identity re-weighting


def test_swap_network_matches_rerun_ordering():
    """Counterfactual fabric swap vs actually re-running on that fabric:
    same direction, and the counterfactual lands near the true value."""
    rec = CritPathRecorder()
    cl = VirtualCluster(6, ETH, critpath=rec)
    cl.run(_mixed_program)
    predicted_myr = swap_network(rec.graph, MYR)

    truth = VirtualCluster(6, MYR)
    truth.run(_mixed_program)
    assert predicted_myr < cl.max_wall
    assert predicted_myr == pytest.approx(truth.max_wall, rel=0.05)


def test_swap_identity_is_exact():
    """Swapping to the SAME network must reproduce the recorded makespan
    (the repricing formulas cover every recorded component)."""
    rec = CritPathRecorder()
    cl = VirtualCluster(5, ETH, critpath=rec)
    cl.run(_mixed_program)
    assert swap_network(rec.graph, ETH) == pytest.approx(
        rec.graph.makespan(), rel=1e-9
    )


def test_faultplan_straggler_on_path():
    """A 4x compute straggler owns the critical path; the remove-straggler
    counterfactual strictly beats the recorded makespan."""
    plan = FaultPlan(seed=3, stragglers={2: 4.0})

    def prog(comm):
        comm.compute(2e-3)
        comm.barrier()
        return comm.wall

    rec = CritPathRecorder()
    cl = VirtualCluster(4, ETH, faults=plan, critpath=rec)
    cl.run(prog)
    rec.graph.validate()
    cp = critical_path(rec.graph)
    br = cp.by_rank()
    assert max(br, key=br.get) == 2
    removed = whatif(rec.graph, rank_cpu_scale={2: 0.25})
    assert removed < cp.makespan


def test_fault_storm_validates_and_attributes_idle():
    """Loss + stragglers + degraded link: the graph still re-derives the
    clocks exactly, and RTO idle shows up as a resource."""
    plan = FaultPlan(
        seed=1999, loss_rate=0.1, stragglers={1: 2.0},
        degraded_links={(0, 1): 3.0},
    )

    def prog(comm):
        data = np.arange(32, dtype=float)
        comm.compute(1e-4)
        comm.alltoall([data.copy() for _ in range(comm.size)])
        comm.send((comm.rank + 1) % comm.size, data, tag=1)
        comm.recv((comm.rank - 1) % comm.size, tag=1, timeout=5.0, retries=2)
        comm.barrier()
        return comm.wall

    rec = CritPathRecorder()
    cl = VirtualCluster(6, ETH, faults=plan, critpath=rec)
    cl.run(prog)
    rec.graph.validate()
    cp = critical_path(rec.graph)
    assert cp.coverage == pytest.approx(1.0, abs=1e-6)
    assert cp.by_resource()["idle"] > 0.0, "RTO backoff must be attributed"
    # Wiping the idle (the losses) strictly improves the makespan.
    assert whatif(rec.graph, idle_scale=0.0) < cp.makespan


def test_stage_attribution_via_stage_scope():
    from repro.obs import stage_scope

    def prog(comm):
        with stage_scope("2:transpose"):
            comm.alltoall(
                [np.zeros(16) for _ in range(comm.size)]
            )
        with stage_scope("5:solve"):
            # Compute is attributed at the next event node, so the
            # join must happen inside the scope (the solver's shape:
            # collectives live inside their stage spans).
            comm.compute(1e-3)
            comm.barrier()
        return comm.wall

    rec = CritPathRecorder()
    cl = VirtualCluster(3, ETH, critpath=rec)
    cl.run(prog)
    cp = critical_path(rec.graph)
    stages = cp.by_stage()
    assert "5:solve" in stages  # the 1ms compute dominates the path
    assert stages["5:solve"] > 1e-3
    assert "2:transpose" in stages


def test_analyze_and_render_shapes():
    rec = CritPathRecorder()
    cl = VirtualCluster(4, ETH, critpath=rec)
    cl.run(_mixed_program)
    a = analyze(
        rec.graph, swap_nets={"myrinet": MYR}, straggler_scale={0: 0.5}
    )
    assert a["coverage"] == pytest.approx(1.0, abs=1e-6)
    assert set(a["resource_seconds"]) == {
        "cpu", "overhead", "latency", "bandwidth", "idle",
    }
    assert sum(a["resource_pct"].values()) == pytest.approx(100.0, abs=1e-4)
    for key in ("zero_latency", "infinite_bandwidth", "swap:myrinet",
                "remove_straggler"):
        assert key in a["counterfactuals"]
    text = render_critpath_report(a)
    assert "Critical path" in text and "swap:myrinet" in text

    # JSON round-trip: the analysis must be serialisable as-is.
    import json

    assert json.loads(json.dumps(a)) == a


# ----------------------------------------------------- serialization/aggregate


def test_graph_dict_roundtrip_preserves_everything():
    """to_dict/from_dict: the campaign's persisted-graph contract.

    A rebuilt graph must re-derive identical clocks, critical path and
    counterfactual answers — search mode runs entirely on rebuilt
    graphs.
    """
    import json as _json

    rec = CritPathRecorder()
    cl = VirtualCluster(4, ETH, critpath=rec)
    cl.run(_mixed_program)
    g = rec.graph
    blob = _json.dumps(g.to_dict(), sort_keys=True)
    g2 = EventGraph.from_dict(_json.loads(blob))
    assert len(g2) == len(g) and g2.nedges == g.nedges
    g2.validate()
    assert g2.makespan() == pytest.approx(g.makespan(), rel=1e-12)
    assert analyze(g2) == analyze(g)
    assert swap_network(g2, MYR) == pytest.approx(
        swap_network(g, MYR), rel=1e-12
    )
    # Serialising the rebuilt graph is a fixed point.
    assert _json.dumps(g2.to_dict(), sort_keys=True) == blob


def test_graph_from_dict_rejects_unknown_schema():
    with pytest.raises(ValueError, match="schema"):
        EventGraph.from_dict({"schema": 99, "nprocs": 1})


def test_swap_network_cpu_scale():
    """cpu_scale prices a machine swap: faster CPU shrinks local edges."""
    rec = CritPathRecorder()
    cl = VirtualCluster(3, ETH, critpath=rec)
    cl.run(_mixed_program)
    g = rec.graph
    base = swap_network(g, MYR)
    faster = swap_network(g, MYR, cpu_scale=0.5)
    slower = swap_network(g, MYR, cpu_scale=4.0)
    assert faster < base < slower
    # Default preserves the original single-argument behaviour exactly.
    assert swap_network(g, MYR, cpu_scale=1.0) == base


def test_aggregate_analyses_sums_campaign_attribution():
    from repro.obs.critpath import RESOURCES, aggregate_analyses

    analyses = {}
    for nprocs in (2, 4):
        rec = CritPathRecorder()
        cl = VirtualCluster(nprocs, ETH, critpath=rec)
        cl.run(_mixed_program)
        analyses[f"job-p{nprocs}"] = analyze(rec.graph)
    agg = aggregate_analyses(analyses)
    assert agg["jobs"] == 2
    assert agg["total_makespan"] == pytest.approx(
        sum(a["makespan"] for a in analyses.values())
    )
    for k in RESOURCES:
        assert agg["resource_seconds"][k] == pytest.approx(
            sum(a["resource_seconds"][k] for a in analyses.values())
        )
    assert sum(agg["resource_pct"].values()) == pytest.approx(100.0, abs=1e-4)
    ranked = agg["dominant_jobs"]
    assert [e["job"] for e in ranked] == sorted(
        analyses, key=lambda j: -analyses[j]["makespan"]
    )
    assert sum(e["pct"] for e in ranked) == pytest.approx(100.0, abs=1e-6)
    # Empty aggregation is well-formed (a fully resumed campaign ran 0 jobs).
    empty = aggregate_analyses({})
    assert empty["jobs"] == 0 and empty["total_makespan"] == 0.0
