"""Run-ledger: round-trip, fingerprint stability, drift detection."""

import json
import subprocess
import sys

import pytest

from repro.obs.runlog import (
    RunLedger,
    append_bench_record,
    config_fingerprint,
    flatten_report,
    is_timing_key,
    iter_timing_drift,
    split_flat,
)

CFG = {"mesh": "bluff", "order": 8, "nz": 32, "nprocs": 8, "smoke": False}


# ------------------------------------------------------------- fingerprints


def test_fingerprint_key_order_insensitive():
    a = {"x": 1, "y": {"a": 2.5, "b": [1, 2]}}
    b = {"y": {"b": [1, 2], "a": 2.5}, "x": 1}
    assert config_fingerprint(a) == config_fingerprint(b)
    assert len(config_fingerprint(a)) == 16


def test_fingerprint_sensitive_to_values():
    assert config_fingerprint({"n": 1}) != config_fingerprint({"n": 2})
    assert config_fingerprint({"n": 1}) != config_fingerprint({"m": 1})


def test_fingerprint_stable_across_processes():
    """The ledger key must not depend on hash randomisation (PYTHONHASHSEED
    varies per process) — records from different runs must group."""
    here = config_fingerprint(CFG)
    code = (
        "import sys, json; sys.path.insert(0, 'src'); "
        "from repro.obs.runlog import config_fingerprint; "
        f"print(config_fingerprint(json.loads({json.dumps(CFG)!r})))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == here


# ------------------------------------------------------------- flatten/split


def test_flatten_report_dotted_keys():
    flat = flatten_report({"a": {"b": 1}, "c": [2, {"d": 3}], "e": None})
    assert flat == {"a.b": 1, "c.0": 2, "c.1.d": 3, "e": None}


def test_split_flat_timing_convention():
    values, timings = split_flat(
        {
            "stage2": {"fused_s": 0.5, "speedup": 2.0, "alltoalls": 4.0},
            "wall_virtual": 1.25,
            "identical": True,
        }
    )
    assert timings == {"stage2.fused_s": 0.5, "stage2.speedup": 2.0}
    assert values == {
        "stage2.alltoalls": 4.0,
        "wall_virtual": 1.25,
        "identical": True,
    }
    assert is_timing_key("x.elapsed") and not is_timing_key("bytes_total")


# ------------------------------------------------------------- ledger I/O


def test_append_and_read_roundtrip(tmp_path):
    lg = RunLedger(tmp_path / "ledger.jsonl")
    rec = lg.append(
        "scaling_bench",
        CFG,
        report={"wall_virtual": 2.0, "elapsed_s": 0.1},
        critpath={"makespan": 2.0},
        metrics={"comm.sends": 12.0},
    )
    assert rec["schema"] == 1
    assert rec["fingerprint"] == config_fingerprint(CFG)
    got = lg.records()
    assert len(got) == 1
    assert got[0]["values"] == {"wall_virtual": 2.0}
    assert got[0]["timings"] == {"elapsed_s": 0.1}
    assert got[0]["critpath"] == {"makespan": 2.0}
    assert got[0]["config"] == CFG

    # Filters.
    assert lg.records(bench="scaling_bench") == got
    assert lg.records(bench="other") == []
    assert lg.history(rec["fingerprint"]) == got
    assert lg.fingerprints() == [rec["fingerprint"]]


def test_grouping_by_fingerprint(tmp_path):
    lg = RunLedger(tmp_path / "ledger.jsonl")
    other = dict(CFG, nprocs=16)
    lg.append("b", CFG, report={"v": 1})
    lg.append("b", other, report={"v": 2})
    lg.append("b", CFG, report={"v": 3})
    groups = lg.grouped()
    assert len(groups) == 2
    fp = config_fingerprint(CFG)
    assert [r["values"]["v"] for r in groups[fp]] == [1, 3]


def test_corrupt_line_raises(tmp_path):
    path = tmp_path / "ledger.jsonl"
    lg = RunLedger(path)
    lg.append("b", CFG, report={})
    with path.open("a") as fh:
        fh.write("{not json\n")
    with pytest.raises(ValueError, match="corrupt ledger line"):
        lg.records()


def test_missing_ledger_is_empty(tmp_path):
    lg = RunLedger(tmp_path / "nope.jsonl")
    assert lg.records() == []
    assert lg.fingerprints() == []


def test_append_bench_record_convention(tmp_path):
    results = {
        "config": CFG,
        "critpath": {"makespan": 1.0},
        "sweep": {"wall_virtual": 2.0, "elapsed_s": 0.25},
    }
    rec = append_bench_record(tmp_path / "lg.jsonl", "scaling_bench", results)
    assert rec["critpath"] == {"makespan": 1.0}
    # config/critpath are NOT duplicated into the flattened report.
    assert rec["values"] == {"sweep.wall_virtual": 2.0}
    assert rec["timings"] == {"sweep.elapsed_s": 0.25}


# ------------------------------------------------------------- status / resume


def test_status_recorded_and_completion_index(tmp_path):
    lg = RunLedger(tmp_path / "lg.jsonl")
    other = dict(CFG, nprocs=16)
    lg.append("campaign", CFG, values={"v": 1})
    lg.append("campaign", other, values={}, status="failed", error="boom")
    fp_ok = config_fingerprint(CFG)
    fp_bad = config_fingerprint(other)
    assert lg.statuses(bench="campaign") == {fp_ok: "ok", fp_bad: "failed"}
    assert lg.completed(bench="campaign") == {fp_ok}
    rec = lg.records(fingerprint=fp_bad)[-1]
    assert rec["status"] == "failed" and rec["error"] == "boom"
    # A successful re-run flips the latest status: the job completes.
    lg.append("campaign", other, values={"v": 2})
    assert lg.completed(bench="campaign") == {fp_ok, fp_bad}


def test_status_validated(tmp_path):
    lg = RunLedger(tmp_path / "lg.jsonl")
    with pytest.raises(ValueError, match="status"):
        lg.append("b", CFG, values={}, status="maybe")


def test_missing_status_reads_as_ok(tmp_path):
    # Pre-campaign ledgers have no status field.
    path = tmp_path / "old.jsonl"
    rec = {"schema": 1, "bench": "b", "fingerprint": "abc", "values": {}}
    path.write_text(json.dumps(rec) + "\n")
    lg = RunLedger(path)
    assert lg.statuses() == {"abc": "ok"}
    assert lg.completed() == {"abc"}


# ------------------------------------------------------------- concurrency

_WRITER = """
import sys
sys.path.insert(0, "src")
from repro.obs.runlog import RunLedger

path, writer, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
lg = RunLedger(path)
for i in range(count):
    # Distinctive payload wide enough that an interleaved line could
    # not accidentally parse as valid JSON.
    lg.append(
        "stress",
        {"writer": writer, "i": i},
        values={"payload": "x" * 512, "writer": writer, "i": i},
    )
"""


def test_concurrent_multiprocess_appends_do_not_interleave(tmp_path):
    """Satellite bugfix: O_APPEND + single os.write keeps every line whole.

    Several *processes* hammer one ledger concurrently; every line must
    parse and every (writer, i) record must arrive exactly once.  The
    old buffered open("a") + fh.write path could flush a record in
    several chunks, interleaving lines under exactly this load.
    """
    path = tmp_path / "stress.jsonl"
    nwriters, count = 4, 25
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(path), str(w), str(count)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        for w in range(nwriters)
    ]
    for p in procs:
        _out, err = p.communicate(timeout=120)
        assert p.returncode == 0, err.decode()
    # Reading tolerates nothing: any interleaved/corrupt line raises.
    records = RunLedger(path).records(bench="stress")
    assert len(records) == nwriters * count
    seen = {(r["values"]["writer"], r["values"]["i"]) for r in records}
    assert seen == {(w, i) for w in range(nwriters) for i in range(count)}


def test_concurrent_thread_appends_do_not_interleave(tmp_path):
    """Campaign workers share one in-process ledger object."""
    import threading

    lg = RunLedger(tmp_path / "threads.jsonl")

    def writer(w):
        for i in range(50):
            lg.append("t", {"w": w, "i": i}, values={"pad": "y" * 256})

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(lg.records(bench="t")) == 8 * 50


# ------------------------------------------------------------- drift findings


def _hist(timing_runs, value_runs=None):
    hist = []
    for i, t in enumerate(timing_runs):
        vals = value_runs[i] if value_runs else {"wall_virtual": 2.0}
        hist.append({"timings": {"elapsed_s": t}, "values": vals})
    return hist


def test_drift_needs_history():
    assert iter_timing_drift(_hist([1.0])) == []


def test_timing_regression_vs_median():
    findings = iter_timing_drift(_hist([1.0, 1.1, 0.95, 2.1]))
    assert len(findings) == 1
    f = findings[0]
    assert f["severity"] == "regression" and f["kind"] == "timing"
    assert f["reference"] == pytest.approx(1.0)  # median of first three
    assert f["ratio"] == pytest.approx(2.1)


def test_timing_improvement_and_tolerance():
    assert iter_timing_drift(_hist([1.0, 1.2, 1.1])) == []
    findings = iter_timing_drift(_hist([1.0, 1.0, 0.4]))
    assert findings[0]["severity"] == "improvement"


def test_single_noisy_run_does_not_poison_reference():
    # One 10x outlier in the middle of history: median ignores it.
    assert iter_timing_drift(_hist([1.0, 10.0, 1.05, 1.1])) == []


def test_value_drift_is_hard_finding():
    hist = _hist(
        [1.0, 1.0],
        value_runs=[{"wall_virtual": 2.0}, {"wall_virtual": 2.5}],
    )
    findings = iter_timing_drift(hist)
    assert len(findings) == 1
    assert findings[0]["severity"] == "drift"
    assert findings[0]["key"] == "wall_virtual"
    # Severity order: drift sorts before timing findings; the two-run
    # history has a single-sample reference, so its timing finding is
    # downgraded to suspect-regression (nref=1 cannot gate).
    hist[-1]["timings"]["elapsed_s"] = 99.0
    findings = iter_timing_drift(hist)
    assert [f["severity"] for f in findings] == ["drift", "suspect-regression"]


def test_single_reference_sample_downgrades_severity():
    # Two-run histories compare but cannot tell a regression from a
    # noisy first run: severity carries the suspect- prefix both ways.
    up = iter_timing_drift(_hist([1.0, 3.0]))
    assert [f["severity"] for f in up] == ["suspect-regression"]
    assert up[0]["nref"] == 1
    down = iter_timing_drift(_hist([1.0, 0.3]))
    assert [f["severity"] for f in down] == ["suspect-improvement"]
    # A third run restores full severity.
    full = iter_timing_drift(_hist([1.0, 1.05, 3.0]))
    assert [f["severity"] for f in full] == ["regression"]
    assert full[0]["nref"] == 2
