import json

import pytest

from repro.obs.export import (
    idle_by_peer,
    load_chrome_trace,
    stage_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Trace


def _sample_trace() -> Trace:
    trace = Trace()
    t0 = trace.rank_tracer(0)
    t1 = trace.rank_tracer(1)
    t0.emit_span(
        "2:nonlinear", "stage", 0.0, 3.0,
        {"cpu": 2.0, "wall": 3.0, "flops": 100.0, "bytes": 400.0},
    )
    t0.emit_span("alltoall", "comm", 1.0, 2.0, {"seq": 0})
    t1.emit_span("wait: alltoall", "idle", 0.5, 1.5, {})
    t1.emit_span(
        "2:nonlinear", "stage", 0.0, 2.5, {"cpu": 2.5, "wall": 2.5}
    )
    t1.events.append(
        type(t1.events[0])("pcg", "pcg", 2.0, 0.0, 1, {"iterations": 5}, "i")
    )
    return trace


def test_to_chrome_trace_structure():
    doc = to_chrome_trace(_sample_trace(), {0: ["send -> 1 tag=0 (8B)"]})
    assert doc["displayTimeUnit"] == "ms"
    evs = doc["traceEvents"]
    meta = [e for e in evs if e["ph"] == "M"]
    names = {e["name"] for e in meta}
    assert {"process_name", "thread_name", "thread_sort_index"} <= names
    thread0 = next(
        e for e in meta if e["name"] == "thread_name" and e["tid"] == 0
    )
    assert thread0["args"]["name"] == "rank 0"
    assert thread0["args"]["recent_comm_events"] == ["send -> 1 tag=0 (8B)"]
    spans = [e for e in evs if e["ph"] == "X"]
    assert all("dur" in e for e in spans)
    stage0 = next(e for e in spans if e["tid"] == 0 and e["cat"] == "stage")
    assert stage0["ts"] == pytest.approx(0.0)
    assert stage0["dur"] == pytest.approx(3.0e6)  # seconds -> us
    instants = [e for e in evs if e["ph"] == "i"]
    assert instants and all(e["s"] == "t" for e in instants)


def test_round_trip(tmp_path):
    trace = _sample_trace()
    path = write_chrome_trace(trace, tmp_path / "trace.json")
    json.loads(path.read_text())  # valid JSON
    events = load_chrome_trace(path)
    # Metadata dropped; spans + instant survive with seconds restored.
    assert len(events) == len(trace.events())
    by_cat = {}
    for e in events:
        by_cat.setdefault(e.cat, []).append(e)
    assert set(by_cat) == {"stage", "comm", "idle", "pcg"}
    stage = [e for e in by_cat["stage"] if e.rank == 0][0]
    assert stage.dur == pytest.approx(3.0)
    assert stage.args["cpu"] == pytest.approx(2.0)
    (inst,) = by_cat["pcg"]
    assert inst.ph == "i" and inst.args["iterations"] == 5


def test_stage_breakdown_from_events(tmp_path):
    path = write_chrome_trace(_sample_trace(), tmp_path / "t.json")
    events = load_chrome_trace(path)
    merged = stage_breakdown(events)
    rec = merged.records["2:nonlinear"]
    assert rec.cpu == pytest.approx(4.5)
    assert rec.wall == pytest.approx(5.5)
    rank0 = stage_breakdown(events, rank=0)
    assert rank0.records["2:nonlinear"].cpu == pytest.approx(2.0)
    # Falls back to span duration when args are absent.
    bare = Trace()
    bare.rank_tracer(0).emit_span("s", "stage", 0.0, 2.0)
    t = stage_breakdown(bare.events())
    assert t.records["s"].cpu == pytest.approx(2.0)
    assert t.records["s"].wall == pytest.approx(2.0)


def test_idle_by_peer(tmp_path):
    path = write_chrome_trace(_sample_trace(), tmp_path / "t.json")
    idle = idle_by_peer(load_chrome_trace(path))
    assert idle == {1: pytest.approx(1.0)}
