import threading

import pytest

from repro.obs import tracer as obs
from repro.obs.tracer import Trace, TraceEvent, Tracer


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def test_no_tracer_helpers_are_noops():
    assert obs.current() is None
    with obs.span("anything", "stage"):
        pass
    obs.instant("nothing", "pcg")
    obs.emit_span("nothing", "comm", 0.0, 1.0)
    assert obs.current() is None


def test_install_and_nesting():
    a, b = Tracer(rank=0), Tracer(rank=1)
    with obs.install(a):
        assert obs.current() is a
        with obs.install(b):
            assert obs.current() is b
        assert obs.current() is a
        with obs.install(None):  # shields sub-computation
            assert obs.current() is None
        assert obs.current() is a
    assert obs.current() is None


def test_span_uses_tracer_clock():
    clock = FakeClock(10.0)
    tr = Tracer(rank=3, clock=clock)
    with obs.install(tr):
        with obs.span("work", "stage", step=1):
            clock.t = 12.5
    (ev,) = tr.events
    assert ev.name == "work"
    assert ev.cat == "stage"
    assert ev.ts == pytest.approx(10.0)
    assert ev.dur == pytest.approx(2.5)
    assert ev.rank == 3
    assert ev.args == {"step": 1}
    assert ev.ph == "X"


def test_emit_span_clamps_negative_duration():
    tr = Tracer()
    tr.emit_span("x", "comm", 5.0, 4.0)
    assert tr.events[0].dur == 0.0


def test_instant_event():
    clock = FakeClock(7.0)
    tr = Tracer(clock=clock)
    with obs.install(tr):
        obs.instant("solve", "pcg", iterations=12)
    (ev,) = tr.events
    assert ev.ph == "i"
    assert ev.ts == pytest.approx(7.0)
    assert ev.args == {"iterations": 12}


def test_kernel_sampling_aggregates_and_samples():
    tr = Tracer(sample_every=4)
    for _ in range(10):
        tr.kernel_sample(100.0, 800.0, "dgemv")
    assert tr.kernel_totals() == {"dgemv": (10, 1000.0, 8000.0)}
    # Events at calls 1, 5, 9 -> three sampled instants.
    kernel_events = [e for e in tr.events if e.cat == "kernel"]
    assert len(kernel_events) == 3
    assert kernel_events[-1].args["calls"] == 9


def test_kernel_sampling_every_call():
    tr = Tracer(sample_every=1)
    tr.kernel_sample(1.0, 2.0, "ddot")
    tr.kernel_sample(1.0, 2.0, "ddot")
    assert len([e for e in tr.events if e.cat == "kernel"]) == 2


def test_sample_every_validation():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)


def test_trace_merges_and_orders_events():
    trace = Trace()
    t0 = trace.rank_tracer(0, clock=FakeClock())
    t1 = trace.rank_tracer(1, clock=FakeClock())
    assert trace.rank_tracer(0) is t0  # create-or-get
    t1.emit_span("late", "comm", 2.0, 3.0)
    t0.emit_span("early", "stage", 0.0, 1.0)
    evs = trace.events()
    assert [e.name for e in evs] == ["early", "late"]
    assert trace.nranks == 2


def test_trace_orders_enclosing_span_first():
    trace = Trace()
    tr = trace.rank_tracer(0)
    tr.emit_span("inner", "comm", 1.0, 2.0)
    tr.emit_span("outer", "stage", 1.0, 5.0)
    assert [e.name for e in trace.events()] == ["outer", "inner"]


def test_installation_is_thread_local():
    tr = Tracer(rank=0)
    seen = {}

    def worker():
        seen["inner"] = obs.current()

    with obs.install(tr):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["inner"] is None


def test_install_hooks_kernel_sampler():
    from repro.linalg import blas, counters
    import numpy as np

    tr = Tracer(sample_every=1)
    x = np.ones(8)
    y = np.ones(8)
    with counters.OpCounter():
        with obs.install(tr):
            blas.ddot(x, y)
        blas.ddot(x, y)  # after uninstall: not sampled
    assert tr.kernel_totals()["ddot"][0] == 1


def test_trace_event_defaults():
    ev = TraceEvent("n", "c", 0.0, 1.0, 0)
    assert ev.args is None and ev.ph == "X"
