"""Tracing/metrics on vs off must leave OpCounter accounting byte-identical.

The observability layer is a read-only observer of the charge stream:
its sampler hook runs *after* the counter is charged and never calls
:func:`repro.linalg.counters.charge` or a counted kernel itself.  These
property tests run random kernel sequences with the full observability
stack enabled and disabled and require identical totals, per-label
charges, and call counts — the ISSUE's zero-drift guarantee.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import blas
from repro.linalg.counters import OpCounter, active_counter
from repro.obs import MetricsRegistry, use_registry
from repro.obs import tracer as obs
from repro.obs.tracer import Tracer

KERNELS = ("ddot", "daxpy", "dscal", "dvmul", "dnrm2")


def _run_kernels(ops: list[tuple[str, int]]) -> OpCounter:
    rng = np.random.default_rng(7)
    with OpCounter() as c:
        for name, n in ops:
            x = rng.standard_normal(n)
            y = rng.standard_normal(n)
            if name == "ddot":
                blas.ddot(x, y)
            elif name == "daxpy":
                blas.daxpy(0.5, x, y)
            elif name == "dscal":
                blas.dscal(1.1, x)
            elif name == "dvmul":
                blas.dvmul(x, y, np.empty(n))
            elif name == "dnrm2":
                blas.dnrm2(x)
    return c


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(KERNELS), st.integers(1, 64)),
        min_size=1,
        max_size=30,
    ),
    sample_every=st.sampled_from([1, 3, 64]),
)
def test_tracing_leaves_charges_byte_identical(ops, sample_every):
    plain = _run_kernels(ops)
    tracer = Tracer(rank=0, sample_every=sample_every)
    with use_registry(MetricsRegistry()), obs.install(tracer):
        traced = _run_kernels(ops)
    assert traced.flops == plain.flops
    assert traced.bytes == plain.bytes
    assert traced.calls == plain.calls
    assert traced.by_label == plain.by_label
    # And the tracer really observed the stream (not a silent no-op).
    totals = tracer.kernel_totals()
    assert sum(v[0] for v in totals.values()) == plain.calls


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(KERNELS), st.integers(1, 32)),
        min_size=1,
        max_size=10,
    )
)
def test_sampler_sees_exact_per_label_charges(ops):
    tracer = Tracer(sample_every=64)
    with obs.install(tracer):
        counted = _run_kernels(ops)
    assert tracer.kernel_totals() == {
        label: (c, f, b) for label, (f, b, c) in counted.by_label.items()
    }


def test_tracer_never_charges_ambient_counter():
    tracer = Tracer(sample_every=1)
    with OpCounter() as outer:
        with obs.install(tracer):
            assert active_counter() is outer
            with obs.span("s", "stage"):
                obs.instant("i", "pcg")
            tracer.kernel_sample(10.0, 20.0, "fake")
    assert outer.flops == 0.0
    assert outer.bytes == 0.0
    assert outer.calls == 0
