"""The critical-path recorder is a pure observer: charge parity on/off.

Mirrors :mod:`tests.obs.test_charge_parity` for the event-graph
recorder: random terminating communication programs run with and
without a :class:`~repro.obs.critpath.CritPathRecorder`, on BOTH
scheduler engines, must produce byte-identical results, virtual
clocks, byte ledgers, rank traces and sanitizer vector clocks — the
recorder never perturbs what it measures.  Each recorded graph must
also re-derive the simulator's clocks from its own edges
(``validate()``) and fully attribute the makespan.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.network import NetworkModel
from repro.obs.critpath import CritPathRecorder, critical_path
from repro.parallel.faults import FaultPlan
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel(
    "critpath-parity-net",
    latency_us=5,
    bandwidth=1e9,
    cpu_overhead_per_byte=1e-9,
    busy_wait_fraction=0.5,
)

_round = st.one_of(
    st.tuples(
        st.just("shift"), st.integers(0, 1_000_000), st.integers(1, 64)
    ),
    st.sampled_from(
        ["barrier", "allreduce", "alltoall", "bcast", "allgather", "gather"]
    ),
)

programs = st.tuples(
    st.integers(2, 16),
    st.lists(_round, min_size=1, max_size=4),
)


def _run_program(comm, program):
    acc = float(comm.rank)
    for i, op in enumerate(program):
        if isinstance(op, tuple):
            _, stride_seed, ndoubles = op
            stride = 1 + stride_seed % (comm.size - 1)
            dest = (comm.rank + stride) % comm.size
            src = (comm.rank - stride) % comm.size
            comm.send(dest, np.full(ndoubles, acc), tag=i)
            acc += float(comm.recv(src, tag=i)[0])
        elif op == "barrier":
            comm.barrier()
        elif op == "allreduce":
            acc += comm.allreduce(float(comm.rank))
        elif op == "alltoall":
            out = comm.alltoall([np.array([acc])] * comm.size)
            acc += float(sum(c[0] for c in out)) / comm.size
        elif op == "bcast":
            acc += comm.bcast(float(acc) if comm.rank == 0 else None)
        elif op == "allgather":
            acc += float(sum(comm.allgather(float(comm.rank))))
        elif op == "gather":
            got = comm.gather(float(comm.rank))
            if comm.rank == 0:
                acc += float(sum(got))
    return acc, comm.wall, comm.cpu_time


def _fingerprint(engine, nprocs, program, recorder):
    cluster = VirtualCluster(
        nprocs, NET, sanitize=True, engine=engine, critpath=recorder
    )
    results = cluster.run(_run_program, program)
    return {
        "results": results,
        "ranks": [
            (st_.wall, st_.cpu, st_.sent_bytes, st_.recv_bytes, st_.messages)
            for st_ in cluster.ranks
        ],
        "traces": cluster.rank_traces(),
        "clocks": cluster._sanitizer.clocks(),
    }, cluster


@settings(max_examples=20, deadline=None)
@given(programs)
def test_recorder_is_charge_parity_clean_both_engines(case):
    nprocs, program = case
    for engine in ("event", "threads"):
        rec = CritPathRecorder()
        on, cluster = _fingerprint(engine, nprocs, program, rec)
        off, _ = _fingerprint(engine, nprocs, program, None)
        for key in on:
            assert on[key] == off[key], (
                f"recorder perturbed {key} on the {engine} engine"
            )
        # The observer's graph re-derives the clocks it watched.
        rec.graph.validate()
        assert rec.graph.makespan() == pytest.approx(
            cluster.max_wall, rel=1e-9, abs=1e-15
        )
        cp = critical_path(rec.graph)
        assert cp.coverage == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=8, deadline=None)
@given(programs, st.integers(0, 2**31 - 1))
def test_recorder_parity_under_faults(case, seed):
    """Same contract with a lossy, degraded, straggling fault plan."""
    nprocs, program = case
    plan = FaultPlan(
        seed=seed,
        loss_rate=0.05,
        stragglers={0: 1.5},
        degraded_links={(0, 1 % nprocs): 2.0},
    )
    for engine in ("event", "threads"):
        rec = CritPathRecorder()
        cluster_on = VirtualCluster(
            nprocs, NET, faults=plan, engine=engine, critpath=rec
        )
        res_on = cluster_on.run(_run_program, program)
        cluster_off = VirtualCluster(nprocs, NET, faults=plan, engine=engine)
        res_off = cluster_off.run(_run_program, program)
        assert res_on == res_off
        assert [s.wall for s in cluster_on.ranks] == [
            s.wall for s in cluster_off.ranks
        ]
        assert [s.cpu for s in cluster_on.ranks] == [
            s.cpu for s in cluster_off.ranks
        ]
        assert cluster_on.rank_traces() == cluster_off.rank_traces()
        rec.graph.validate()
