# test package
