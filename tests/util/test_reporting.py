import pytest

from repro.reporting.tables import ascii_table, format_percentages, format_series


def test_ascii_table_basic():
    out = ascii_table(["a", "bb"], [(1, 2.5), ("x", 3.14159)], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("+")
    assert "| a |" in lines[2].replace("  ", " ")
    assert out.count("+") >= 8


def test_ascii_table_row_width_mismatch():
    with pytest.raises(ValueError):
        ascii_table(["a"], [(1, 2)])


def test_ascii_table_number_formatting():
    out = ascii_table(["v"], [(1234567.0,), (0.000123,), (0.0,)])
    assert "1.23e+06" in out
    assert "0.000123" in out


def test_format_series_structure():
    s = {"curve": ([1, 2, 3], [10.0, 20.0, 30.0])}
    out = format_series(s, "x", "y", title="demo")
    assert out.startswith("# demo")
    assert "## curve" in out
    assert out.count("\n") >= 4


def test_format_series_max_rows():
    s = {"c": (list(range(100)), list(range(100)))}
    out = format_series(s, "x", "y", max_rows=10)
    data_lines = [
        line for line in out.splitlines() if not line.startswith(("#", "##"))
    ]
    assert len(data_lines) <= 15


def test_format_percentages():
    out = format_percentages(
        {"case A": {"s1": 60.0, "s2": 40.0}, "case B": {"s1": 25.0, "s2": 75.0}}
    )
    assert "60.0%" in out
    assert "75.0%" in out
    assert "case A" in out
