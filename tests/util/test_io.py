import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.io.writers import Checkpoint, vertex_velocity_fields, write_vtk
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.ns.exact import TaylorVortex
from repro.ns.nektar2d import NavierStokes2D


def test_write_vtk_structure(tmp_path):
    mesh = rectangle_quads(2, 2)
    field = np.arange(mesh.nvertices, dtype=float)
    path = write_vtk(tmp_path / "out.vtk", mesh, {"f": field})
    text = path.read_text()
    assert text.startswith("# vtk DataFile Version 3.0")
    assert f"POINTS {mesh.nvertices} double" in text
    assert f"CELLS {mesh.nelements}" in text
    assert "SCALARS f double 1" in text
    # quad cell type 9
    assert "\n9\n" in text


def test_write_vtk_triangles(tmp_path):
    mesh = rectangle_tris(1, 1)
    path = write_vtk(tmp_path / "t.vtk", mesh)
    assert "\n5\n" in path.read_text()  # VTK_TRIANGLE


def test_write_vtk_field_shape_check(tmp_path):
    mesh = rectangle_quads(1, 1)
    with pytest.raises(ValueError):
        write_vtk(tmp_path / "bad.vtk", mesh, {"f": np.ones(3)})


def make_solver():
    tv = TaylorVortex(nu=0.05)
    mesh = rectangle_quads(2, 2, 0.0, np.pi, 0.0, np.pi)
    space = FunctionSpace(mesh, 4)
    bcs = {
        t: (
            lambda x, y, tt: float(tv.u(x, y, tt)),
            lambda x, y, tt: float(tv.v(x, y, tt)),
        )
        for t in ("left", "right", "top", "bottom")
    }
    ns = NavierStokes2D(space, 0.05, 5e-3, bcs)
    ns.set_initial(lambda x, y, t: tv.u(x, y, 0), lambda x, y, t: tv.v(x, y, 0))
    return ns


def test_checkpoint_roundtrip(tmp_path):
    ns = make_solver()
    ns.run(3)
    path = tmp_path / "state.npz"
    Checkpoint.save(path, ns)

    ns2 = make_solver()
    Checkpoint.load(path, ns2)
    np.testing.assert_array_equal(ns2.u_hat, ns.u_hat)
    np.testing.assert_array_equal(ns2.p_hat, ns.p_hat)
    assert ns2.t == ns.t
    assert ns2.step_count == 3


def test_checkpoint_restart_continues_consistently(tmp_path):
    # a 5-step run == 3 steps, checkpoint, restore, 2 more steps
    # (histories restart, so allow the small re-ramp difference).
    ns_full = make_solver()
    ns_full.run(5)

    ns = make_solver()
    ns.run(3)
    path = Checkpoint.save(tmp_path / "s.npz", ns)
    ns2 = make_solver()
    Checkpoint.load(tmp_path / "s.npz", ns2)
    ns2.run(2)
    assert ns2.step_count == 5
    u_full = ns_full.space.backward(ns_full.u_hat)
    u_rest = ns2.space.backward(ns2.u_hat)
    np.testing.assert_allclose(u_rest, u_full, atol=5e-4)
    _ = path


def test_checkpoint_shape_mismatch(tmp_path):
    ns = make_solver()
    Checkpoint.save(tmp_path / "s.npz", ns)
    mesh = rectangle_quads(1, 1)
    space = FunctionSpace(mesh, 3)
    other = NavierStokes2D(space, 0.1, 1e-2, {}, pressure_dirichlet=("left",))
    with pytest.raises(ValueError):
        Checkpoint.load(tmp_path / "s.npz", other)


def test_vertex_velocity_fields():
    ns = make_solver()
    fields = vertex_velocity_fields(ns.space, ns.u_hat, ns.v_hat)
    assert set(fields) == {"u", "v"}
    assert fields["u"].shape == (ns.space.mesh.nvertices,)
