import time

import pytest

from repro.util.timing import StageTimer, cpu_clock, wall_clock


def test_clocks_monotonic():
    c0, w0 = cpu_clock(), wall_clock()
    x = sum(i * i for i in range(10000))
    assert x > 0
    assert cpu_clock() >= c0
    assert wall_clock() >= w0


def test_stage_timer_accumulates():
    t = StageTimer()
    with t.stage("a"):
        time.sleep(0.005)
    with t.stage("a"):
        time.sleep(0.005)
    with t.stage("b"):
        pass
    assert t.records["a"].calls == 2
    assert t.records["a"].wall >= 0.008
    assert t.records["b"].calls == 1


def test_stage_timer_direct_add_and_percentages():
    t = StageTimer()
    t.add("x", cpu=3.0)
    t.add("y", cpu=1.0, wall=2.0)
    pct_cpu = t.percentages("cpu")
    assert pct_cpu["x"] == pytest.approx(75.0)
    assert pct_cpu["y"] == pytest.approx(25.0)
    pct_wall = t.percentages("wall")
    assert pct_wall["x"] == pytest.approx(60.0)
    assert pct_wall["y"] == pytest.approx(40.0)


def test_stage_timer_percentages_empty():
    t = StageTimer()
    assert t.percentages() == {}
    t.add("z", cpu=0.0)
    assert t.percentages() == {"z": 0.0}


def test_stage_timer_merge():
    a, b = StageTimer(), StageTimer()
    a.add("s", cpu=1.0)
    b.add("s", cpu=2.0)
    b.add("t", cpu=4.0)
    a.merge(b)
    assert a.records["s"].cpu == pytest.approx(3.0)
    assert a.records["t"].cpu == pytest.approx(4.0)


def test_stage_timer_reset():
    t = StageTimer()
    t.add("s", cpu=1.0)
    t.reset()
    assert t.records == {}
    assert t.total() == 0.0


def test_stage_timer_merge_wall_and_calls():
    a, b = StageTimer(), StageTimer()
    a.add("s", cpu=1.0, wall=2.0)
    b.add("s", cpu=0.5, wall=3.0)
    b.add("s", cpu=0.5, wall=1.0)
    a.merge(b)
    assert a.records["s"].cpu == pytest.approx(2.0)
    assert a.records["s"].wall == pytest.approx(6.0)
    assert a.records["s"].calls == 3
    # Merging an empty timer is a no-op.
    a.merge(StageTimer())
    assert a.records["s"].calls == 3


def test_stage_timer_percentages_wall_zero_total():
    t = StageTimer()
    t.add("x", cpu=1.0, wall=0.0)
    t.add("y", cpu=3.0, wall=0.0)
    # cpu percentages are well-defined, wall total is zero -> all 0.0.
    assert t.percentages("cpu")["y"] == pytest.approx(75.0)
    assert t.percentages(kind="wall") == {"x": 0.0, "y": 0.0}


def test_stage_timer_breakdown():
    t = StageTimer()
    t.add("2:nonlinear", cpu=2.0, wall=5.0)
    t.add("5:solve", cpu=3.0, wall=3.0)
    bd = t.breakdown()
    assert bd["2:nonlinear"] == {
        "cpu": 2.0,
        "wall": 5.0,
        "idle": 3.0,
        "calls": 1.0,
    }
    assert bd["5:solve"]["idle"] == 0.0
    # cpu > wall (host-timer jitter) clamps idle at zero.
    t2 = StageTimer()
    t2.add("s", cpu=2.0, wall=1.0)
    assert t2.breakdown()["s"]["idle"] == 0.0
    assert StageTimer().breakdown() == {}
