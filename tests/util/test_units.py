import pytest

from repro.util import units


def test_mb_per_s_uses_decimal_megabytes():
    # NetPIPE convention: 1 MB = 1e6 bytes.
    assert units.mb_per_s(1.0e6, 1.0) == pytest.approx(1.0)
    assert units.mb_per_s(2.0e6, 0.5) == pytest.approx(4.0)


def test_mflop_per_s():
    assert units.mflop_per_s(5.0e6, 2.0) == pytest.approx(2.5)


@pytest.mark.parametrize("fn", [units.mb_per_s, units.mflop_per_s])
def test_nonpositive_time_rejected(fn):
    with pytest.raises(ValueError):
        fn(1.0, 0.0)
    with pytest.raises(ValueError):
        fn(1.0, -1.0)


def test_usec():
    assert units.usec(1.5e-6) == pytest.approx(1.5)


def test_doubles():
    assert units.doubles(800) == 100
    assert units.doubles(801) == 100
    assert units.doubles(7) == 0
