# test package
