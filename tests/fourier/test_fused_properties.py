"""Property tests for the fused multi-field Fourier fast path.

Three contracts, randomised over field counts, layouts and rank counts:

* the fused (leading-field-axis) transpose is byte-identical in field
  data to the per-field loop while conserving total wire bytes and
  paying one Alltoall instead of F,
* the batched real FFT pair charges exactly the sum of the per-field
  charges and produces byte-identical modes/planes,
* the fused transpose program is engine-independent: the event
  scheduler and the thread engine produce identical results, per-rank
  ledgers, ``rank_traces()`` strings, metrics and sanitizer vector
  clocks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourier.mapping import point_chunks, transpose_to_modes, transpose_to_points
from repro.fourier.pipeline import FusedFourierPipeline
from repro.fourier.transforms import fft_z, ifft_z, mode_blocks
from repro.linalg.counters import OpCounter
from repro.machines.network import NetworkModel
from repro.obs import MetricsRegistry, Trace, use_registry
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


@given(
    st.integers(1, 4),
    st.integers(2, 4),
    st.integers(1, 4),
    st.integers(4, 9),
    st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_fused_transpose_property(nf, nprocs, ppr, nmodes, seed):
    """Fused == per-field loop: data bitwise, wire bytes conserved,
    Alltoall count divided by F — at uneven mode layouts too."""
    npoints = ppr * nprocs + (seed % 2)  # sometimes uneven points as well

    def fn(comm):
        my = mode_blocks(nmodes, comm.size)[comm.rank]
        rng = np.random.default_rng(seed + comm.rank)
        stack = rng.standard_normal(
            (nf, npoints, len(my))
        ) + 1j * rng.standard_normal((nf, npoints, len(my)))

        sent0, msgs0 = comm._st.sent_bytes, comm._st.messages
        pts = transpose_to_points(comm, stack)
        back = transpose_to_modes(comm, pts, npoints)
        fused = (comm._st.sent_bytes - sent0, comm._st.messages - msgs0)

        sent0, msgs0 = comm._st.sent_bytes, comm._st.messages
        pts_l = np.stack([transpose_to_points(comm, stack[i]) for i in range(nf)])
        back_l = np.stack(
            [transpose_to_modes(comm, pts_l[i], npoints) for i in range(nf)]
        )
        loop = (comm._st.sent_bytes - sent0, comm._st.messages - msgs0)

        assert pts.tobytes() == pts_l.tobytes()
        assert back.tobytes() == back_l.tobytes()
        np.testing.assert_array_equal(back, stack)
        assert fused[0] == loop[0], "total wire bytes must be conserved"
        assert nf * fused[1] == loop[1], "fused pays 1/F of the messages"
        return pts

    registry = MetricsRegistry()
    with use_registry(registry):
        res = VirtualCluster(nprocs, NET).run(fn)
    # All modes present exactly once across ranks.
    full = np.concatenate(res, axis=-2)
    assert full.shape == (nf, npoints, nmodes)
    # 2 fused calls vs 2*nf per-field calls, per rank.
    snap = registry.snapshot()
    assert snap["fourier.transpose.alltoalls"]["value"] == nprocs * (2 + 2 * nf)


@given(
    st.integers(1, 5),
    st.integers(1, 4),
    st.sampled_from([4, 8, 16]),
    st.integers(0, 10_000),
)
@settings(max_examples=15, deadline=None)
def test_batched_fft_property(nf, npts, nz, seed):
    """One batched rfft/irfft over a field stack: byte-identical values
    and charge ledgers to the per-field loop, in both directions."""
    rng = np.random.default_rng(seed)
    # Band-limited planes (real mode 0, no Nyquist) so the kept
    # half-spectrum round-trips exactly.
    seed_modes = rng.standard_normal(
        (nf, npts, nz // 2)
    ) + 1j * rng.standard_normal((nf, npts, nz // 2))
    seed_modes[..., 0] = seed_modes[..., 0].real
    planes = ifft_z(seed_modes, nz)
    with OpCounter() as cf:
        modes = fft_z(planes)
    with OpCounter() as cl:
        modes_l = np.stack([fft_z(planes[i]) for i in range(nf)])
    assert modes.tobytes() == modes_l.tobytes()
    assert cf.snapshot().label_charges() == cl.snapshot().label_charges()

    with OpCounter() as cf:
        back = ifft_z(modes, nz)
    with OpCounter() as cl:
        back_l = np.stack([ifft_z(modes[i], nz) for i in range(nf)])
    assert back.tobytes() == back_l.tobytes()
    assert cf.snapshot().label_charges() == cl.snapshot().label_charges()
    np.testing.assert_allclose(back, planes, atol=1e-12)


def _transpose_fingerprint(engine, nf, nprocs, nmodes, npoints, seed):
    """Full observable state of the fused-transpose program on one engine."""
    def fn(comm):
        my = mode_blocks(nmodes, comm.size)[comm.rank]
        rng = np.random.default_rng(seed + comm.rank)
        stack = rng.standard_normal(
            (nf, npoints, len(my))
        ) + 1j * rng.standard_normal((nf, npoints, len(my)))
        pts = transpose_to_points(comm, stack)
        back = transpose_to_modes(comm, pts, npoints)
        return pts.tobytes(), back.tobytes(), comm.wall, comm.cpu_time

    registry = MetricsRegistry()
    trace = Trace()
    cluster = VirtualCluster(
        nprocs, NET, sanitize=True, trace=trace, engine=engine
    )
    with use_registry(registry):
        results = cluster.run(fn)
    return {
        "results": results,
        "ranks": [
            (st.wall, st.cpu, st.sent_bytes, st.recv_bytes, st.messages)
            for st in cluster.ranks
        ],
        "rank_traces": cluster.rank_traces(),
        "metrics": sorted(
            (k, tuple(sorted(v.items())))
            for k, v in registry.snapshot().items()
            # scheduler.* gauges describe the engine itself, not the
            # simulated program, and legitimately differ per engine.
            if not k.startswith("scheduler.")
        ),
        "vector_clocks": cluster._sanitizer.clocks(),
    }


@given(
    st.integers(1, 4),
    st.integers(2, 4),
    st.sampled_from([4, 8, 16]),
    st.integers(0, 10_000),
)
@settings(max_examples=8, deadline=None)
def test_pipeline_matches_compositional_path(nf, nprocs, nz, seed):
    """The z-major workspace pipeline is bitwise the composition of
    transpose + batched FFT in both directions, with identical charge
    ledgers, wire bytes and message counts — including on the second
    pass through its persistent send buffers."""
    npoints = 3 * nprocs + (seed % 2)

    def fn(comm):
        pipe = FusedFourierPipeline()
        my = mode_blocks(nz // 2, comm.size)[comm.rank]
        mine = point_chunks(npoints, comm.size)[comm.rank]
        rng = np.random.default_rng(seed + comm.rank)
        for _ in range(2):  # round 2 reuses the workspaces
            fields = rng.standard_normal(
                (nf, len(my), npoints)
            ) + 1j * rng.standard_normal((nf, len(my), npoints))

            sent0, msgs0 = comm._st.sent_bytes, comm._st.messages
            with OpCounter() as cp:
                phys = pipe.to_physical(comm, list(fields), nz)
                back = pipe.to_modal(comm, phys, npoints, nz)
            wire_p = (comm._st.sent_bytes - sent0, comm._st.messages - msgs0)

            sent0, msgs0 = comm._st.sent_bytes, comm._st.messages
            with OpCounter() as co:
                pts = transpose_to_points(comm, fields.transpose(0, 2, 1))
                ref_phys = ifft_z(pts, nz)  # (nf, my_pts, nz)
                ref_back = transpose_to_modes(comm, fft_z(ref_phys), npoints)
            wire_o = (comm._st.sent_bytes - sent0, comm._st.messages - msgs0)

            assert len(phys) == nf
            for i in range(nf):
                assert phys[i].shape == (nz, mine.stop - mine.start)
                assert (
                    phys[i].tobytes()
                    == np.ascontiguousarray(ref_phys[i].T).tobytes()
                )
            assert (
                back.tobytes()
                == np.ascontiguousarray(ref_back.transpose(0, 2, 1)).tobytes()
            )
            assert cp.snapshot().label_charges() == co.snapshot().label_charges()
            assert wire_p == wire_o, "pipeline must conserve wire traffic"
        return True

    registry = MetricsRegistry()
    with use_registry(registry):
        VirtualCluster(nprocs, NET).run(fn)
    snap = registry.snapshot()
    # 2 rounds x (2 pipeline + 2 oracle) collectives per rank.
    assert snap["fourier.transpose.alltoalls"]["value"] == nprocs * 8


@given(
    st.integers(1, 4),
    st.integers(2, 4),
    st.integers(4, 9),
    st.integers(0, 10_000),
)
@settings(max_examples=6, deadline=None)
def test_fused_transpose_engine_parity(nf, nprocs, nmodes, seed):
    """The fused path is scheduler-independent: event vs threads agree
    on every observable, including traces and sanitizer vector clocks."""
    npoints = 2 * nprocs + 1
    event = _transpose_fingerprint("event", nf, nprocs, nmodes, npoints, seed)
    threads = _transpose_fingerprint(
        "threads", nf, nprocs, nmodes, npoints, seed
    )
    for key in event:
        assert event[key] == threads[key], f"engine mismatch in {key}"
