import numpy as np
import pytest

from repro.fourier.mapping import point_chunks, transpose_to_modes, transpose_to_points
from repro.fourier.transforms import mode_blocks
from repro.machines.network import NetworkModel
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


def test_point_chunks_cover():
    chunks = point_chunks(10, 3)
    idx = np.concatenate([np.arange(10)[sl] for sl in chunks])
    np.testing.assert_array_equal(idx, np.arange(10))


def test_transpose_roundtrip_and_layout():
    npoints, nprocs, per = 12, 3, 2  # 6 total modes

    def fn(comm):
        rng = np.random.default_rng(comm.rank)
        mine = rng.standard_normal((npoints, per)) + 1j * rng.standard_normal(
            (npoints, per)
        )
        pts = transpose_to_points(comm, mine)
        # Global layout check: column m of pts equals the owner's data.
        assert pts.shape == (point_chunks(npoints, nprocs)[comm.rank].stop
                             - point_chunks(npoints, nprocs)[comm.rank].start,
                             nprocs * per)
        back = transpose_to_modes(comm, pts, npoints)
        np.testing.assert_allclose(back, mine, atol=1e-14)
        return pts

    res = VirtualCluster(nprocs, NET).run(fn)
    # Cross-rank consistency: stacking all point chunks gives all modes.
    full = np.concatenate(res, axis=0)
    assert full.shape == (npoints, nprocs * per)


@pytest.mark.parametrize(
    "nmodes,nprocs",
    [(5, 2), (7, 3), (9, 4), (5, 5), (11, 4), (6, 4)],
)
def test_transpose_roundtrip_uneven_modes(nmodes, nprocs):
    """Awkward (nmodes, nprocs) pairs: the balanced-but-uneven layouts
    mode_blocks produces round-trip exactly through both transposes."""
    npoints = 10

    def fn(comm):
        blocks = mode_blocks(nmodes, comm.size)
        my = blocks[comm.rank]
        rng = np.random.default_rng(comm.rank)
        mine = rng.standard_normal((npoints, len(my))) + 1j * rng.standard_normal(
            (npoints, len(my))
        )
        pts = transpose_to_points(comm, mine)
        assert pts.shape[-1] == nmodes
        back = transpose_to_modes(comm, pts, npoints)
        assert back.shape == mine.shape
        np.testing.assert_array_equal(back, mine)
        return pts

    res = VirtualCluster(nprocs, NET).run(fn)
    full = np.concatenate(res, axis=0)
    assert full.shape == (npoints, nmodes)


def test_transpose_fused_field_axis_matches_per_field():
    """A leading field axis rides the same transpose: bitwise-identical
    data to the per-field loop, with one Alltoall instead of F."""
    npoints, nprocs, per, nf = 12, 3, 2, 4

    def fn(comm):
        rng = np.random.default_rng(100 + comm.rank)
        stack = rng.standard_normal((nf, npoints, per)) + 1j * rng.standard_normal(
            (nf, npoints, per)
        )
        fused = transpose_to_points(comm, stack)
        loop = np.stack(
            [transpose_to_points(comm, stack[i]) for i in range(nf)]
        )
        assert fused.tobytes() == loop.tobytes()
        back_f = transpose_to_modes(comm, fused, npoints)
        back_l = np.stack(
            [transpose_to_modes(comm, loop[i], npoints) for i in range(nf)]
        )
        assert back_f.tobytes() == back_l.tobytes()
        np.testing.assert_array_equal(back_f, stack)

    VirtualCluster(nprocs, NET).run(fn)


def test_fused_transpose_conserves_wire_bytes():
    """Fusing F fields into one Alltoall moves the same total bytes and
    F times fewer messages than F per-field calls."""
    npoints, nprocs, per, nf = 16, 4, 2, 6

    def fn(comm):
        rng = np.random.default_rng(comm.rank)
        stack = rng.standard_normal((nf, npoints, per)) + 0j
        sent0, msgs0 = comm._st.sent_bytes, comm._st.messages
        transpose_to_points(comm, stack)
        fused = (
            comm._st.sent_bytes - sent0,
            comm._st.messages - msgs0,
        )
        sent0, msgs0 = comm._st.sent_bytes, comm._st.messages
        for i in range(nf):
            transpose_to_points(comm, stack[i])
        loop = (
            comm._st.sent_bytes - sent0,
            comm._st.messages - msgs0,
        )
        assert fused[0] == loop[0]  # wire bytes conserved
        assert nf * fused[1] == loop[1]  # latency terms divided by F
        return fused

    VirtualCluster(nprocs, NET).run(fn)


def test_alltoall_message_size_matches_paper_formula():
    # Message size per pair = (Gamma/P) x (Nz/P) entries (Section 4.2.1).
    npoints, nprocs = 16, 4
    sizes = []

    def fn(comm):
        orig = comm.alltoall

        def spy(chunks):
            sizes.append(chunks[0].nbytes)
            return orig(chunks)

        comm.alltoall = spy
        mine = np.zeros((npoints, 2), dtype=complex)  # 2 modes per proc
        transpose_to_points(comm, mine)

    VirtualCluster(nprocs, NET).run(fn)
    expect = (npoints // nprocs) * 2 * 16  # complex128 = 16 bytes
    assert all(s == expect for s in sizes)
