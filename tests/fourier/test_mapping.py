import numpy as np
import pytest

from repro.fourier.mapping import point_chunks, transpose_to_modes, transpose_to_points
from repro.machines.network import NetworkModel
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


def test_point_chunks_cover():
    chunks = point_chunks(10, 3)
    idx = np.concatenate([np.arange(10)[sl] for sl in chunks])
    np.testing.assert_array_equal(idx, np.arange(10))


def test_transpose_roundtrip_and_layout():
    npoints, nprocs, per = 12, 3, 2  # 6 total modes

    def fn(comm):
        rng = np.random.default_rng(comm.rank)
        mine = rng.standard_normal((npoints, per)) + 1j * rng.standard_normal(
            (npoints, per)
        )
        pts = transpose_to_points(comm, mine)
        # Global layout check: column m of pts equals the owner's data.
        assert pts.shape == (point_chunks(npoints, nprocs)[comm.rank].stop
                             - point_chunks(npoints, nprocs)[comm.rank].start,
                             nprocs * per)
        back = transpose_to_modes(comm, pts, npoints)
        np.testing.assert_allclose(back, mine, atol=1e-14)
        return pts

    res = VirtualCluster(nprocs, NET).run(fn)
    # Cross-rank consistency: stacking all point chunks gives all modes.
    full = np.concatenate(res, axis=0)
    assert full.shape == (npoints, nprocs * per)


def test_transpose_mode_divisibility():
    def fn(comm):
        with pytest.raises(ValueError):
            transpose_to_modes(comm, np.zeros((2, 5), dtype=complex), 4)

    VirtualCluster(2, NET).run(fn)


def test_alltoall_message_size_matches_paper_formula():
    # Message size per pair = (Gamma/P) x (Nz/P) entries (Section 4.2.1).
    npoints, nprocs = 16, 4
    sizes = []

    def fn(comm):
        orig = comm.alltoall

        def spy(chunks):
            sizes.append(chunks[0].nbytes)
            return orig(chunks)

        comm.alltoall = spy
        mine = np.zeros((npoints, 2), dtype=complex)  # 2 modes per proc
        transpose_to_points(comm, mine)

    VirtualCluster(nprocs, NET).run(fn)
    expect = (npoints // nprocs) * 2 * 16  # complex128 = 16 bytes
    assert all(s == expect for s in sizes)
