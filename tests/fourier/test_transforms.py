import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourier.transforms import (
    dz_hat,
    fft_z,
    ifft_z,
    mode_blocks,
    nmodes_for,
    wavenumbers,
)


def test_nmodes_validation():
    assert nmodes_for(8) == 4
    with pytest.raises(ValueError):
        nmodes_for(7)
    with pytest.raises(ValueError):
        nmodes_for(0)


def test_wavenumbers_default_box():
    np.testing.assert_allclose(wavenumbers(8), [0, 1, 2, 3])
    np.testing.assert_allclose(wavenumbers(4, lz=np.pi), [0, 2])


@given(st.integers(1, 4), st.integers(0, 999))
@settings(max_examples=20, deadline=None)
def test_fft_roundtrip(pow2, seed):
    nz = 2 ** (pow2 + 1)
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal((3, nz))
    # Remove the Nyquist content our convention drops.
    modes = fft_z(vals)
    back = ifft_z(modes, nz)
    again = ifft_z(fft_z(back), nz)
    np.testing.assert_allclose(back, again, atol=1e-12)


def test_fft_of_pure_cosine():
    nz = 8
    z = 2 * np.pi * np.arange(nz) / nz
    vals = 3.0 * np.cos(2 * z)[None, :]
    modes = fft_z(vals)
    # cos(2z) -> mode 2 with amplitude 3/2 (two-sided convention).
    np.testing.assert_allclose(modes[0, 2], 1.5, atol=1e-12)
    modes[0, 2] = 0
    np.testing.assert_allclose(modes, 0, atol=1e-12)


def test_mode0_is_mean():
    vals = np.array([[1.0, 2.0, 3.0, 4.0]])
    assert fft_z(vals)[0, 0] == pytest.approx(2.5)


def test_spectral_derivative_exact():
    nz = 16
    z = 2 * np.pi * np.arange(nz) / nz
    vals = np.sin(3 * z)[None, :]
    d = ifft_z(dz_hat(fft_z(vals), nz), nz)
    np.testing.assert_allclose(d, 3 * np.cos(3 * z)[None, :], atol=1e-12)


def test_ifft_shape_check():
    with pytest.raises(ValueError):
        ifft_z(np.zeros((2, 3), dtype=complex), 8)


def test_mode_blocks():
    blocks = mode_blocks(8, 4)
    assert [list(b) for b in blocks] == [[0, 1], [2, 3], [4, 5], [6, 7]]
    with pytest.raises(ValueError):
        mode_blocks(6, 4)
