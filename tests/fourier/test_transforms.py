import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourier.transforms import (
    dz_hat,
    fft_z,
    ifft_z,
    mode_blocks,
    nmodes_for,
    wavenumbers,
)


def test_nmodes_validation():
    assert nmodes_for(8) == 4
    with pytest.raises(ValueError):
        nmodes_for(7)
    with pytest.raises(ValueError):
        nmodes_for(0)


def test_wavenumbers_default_box():
    np.testing.assert_allclose(wavenumbers(8), [0, 1, 2, 3])
    np.testing.assert_allclose(wavenumbers(4, lz=np.pi), [0, 2])


@given(st.integers(1, 4), st.integers(0, 999))
@settings(max_examples=20, deadline=None)
def test_fft_roundtrip(pow2, seed):
    nz = 2 ** (pow2 + 1)
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal((3, nz))
    # Remove the Nyquist content our convention drops.
    modes = fft_z(vals)
    back = ifft_z(modes, nz)
    again = ifft_z(fft_z(back), nz)
    np.testing.assert_allclose(back, again, atol=1e-12)


def test_fft_of_pure_cosine():
    nz = 8
    z = 2 * np.pi * np.arange(nz) / nz
    vals = 3.0 * np.cos(2 * z)[None, :]
    modes = fft_z(vals)
    # cos(2z) -> mode 2 with amplitude 3/2 (two-sided convention).
    np.testing.assert_allclose(modes[0, 2], 1.5, atol=1e-12)
    modes[0, 2] = 0
    np.testing.assert_allclose(modes, 0, atol=1e-12)


def test_mode0_is_mean():
    vals = np.array([[1.0, 2.0, 3.0, 4.0]])
    assert fft_z(vals)[0, 0] == pytest.approx(2.5)


def test_spectral_derivative_exact():
    nz = 16
    z = 2 * np.pi * np.arange(nz) / nz
    vals = np.sin(3 * z)[None, :]
    d = ifft_z(dz_hat(fft_z(vals), nz), nz)
    np.testing.assert_allclose(d, 3 * np.cos(3 * z)[None, :], atol=1e-12)


def test_ifft_shape_check():
    with pytest.raises(ValueError):
        ifft_z(np.zeros((2, 3), dtype=complex), 8)


def test_mode_blocks():
    blocks = mode_blocks(8, 4)
    assert [list(b) for b in blocks] == [[0, 1], [2, 3], [4, 5], [6, 7]]
    with pytest.raises(ValueError):
        mode_blocks(6, 0)


@given(st.integers(1, 64), st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_mode_blocks_balanced_uneven(nmodes, nprocs):
    """Uneven counts split into contiguous blocks differing by <= 1."""
    blocks = mode_blocks(nmodes, nprocs)
    assert len(blocks) == nprocs
    covered = [m for b in blocks for m in b]
    assert covered == list(range(nmodes))
    sizes = [len(b) for b in blocks]
    assert max(sizes) - min(sizes) <= 1


def test_fft_charges_split_by_direction():
    """rfft and irfft are priced separately: the inverse pays the extra
    spectrum scale and the zero-padded scratch traffic."""
    from repro.linalg.counters import OpCounter

    nz, nbatch = 16, 3
    vals = np.random.default_rng(0).standard_normal((nbatch, nz))
    with OpCounter() as ops:
        modes = fft_z(vals)
    fwd = ops.snapshot().label_charges()["rfft-z"]
    with OpCounter() as ops2:
        ifft_z(modes, nz)
    inv = ops2.snapshot().label_charges()["irfft-z"]
    # Golden-pinned formulas (per line of length nz = 16, nbatch = 3).
    assert fwd == (
        nbatch * (2.5 * nz * 4.0 + 2.0 * (nz // 2)),
        nbatch * (8.0 * nz + 16.0 * (nz // 2 + 1)),
    )
    assert inv == (
        nbatch * (2.5 * nz * 4.0 + 2.0 * (nz // 2 + 1)),
        nbatch * (32.0 * (nz // 2 + 1) + 8.0 * nz),
    )
    # The directions are genuinely distinct prices now.
    assert fwd != inv


def test_batched_fft_charges_equal_per_field_sum():
    """One batched call over a field stack charges exactly the sum of
    the per-field calls (linear in the batch count)."""
    from repro.linalg.counters import OpCounter

    nz, nf, npts = 8, 5, 7
    rng = np.random.default_rng(1)
    stack = rng.standard_normal((nf, npts, nz))
    with OpCounter() as ops_f:
        fused = fft_z(stack)
    with OpCounter() as ops_p:
        per = np.stack([fft_z(stack[i]) for i in range(nf)])
    assert fused.tobytes() == per.tobytes()
    assert ops_f.snapshot().label_charges() == ops_p.snapshot().label_charges()
    with OpCounter() as ops_fi:
        back_f = ifft_z(fused, nz)
    with OpCounter() as ops_pi:
        back_p = np.stack([ifft_z(per[i], nz) for i in range(nf)])
    assert back_f.tobytes() == back_p.tobytes()
    assert (
        ops_fi.snapshot().label_charges() == ops_pi.snapshot().label_charges()
    )
