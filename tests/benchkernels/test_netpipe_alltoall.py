import numpy as np
import pytest

from repro.benchkernels.alltoall import (
    figure8_series,
    message_sizes,
    simulated_alltoall,
)
from repro.benchkernels.netpipe import (
    bandwidth_series,
    latency_series,
    simulated_pingpong,
)
from repro.machines.catalog import NETWORKS, PINGPONG_FIGURE_NETWORKS


def test_latency_series_covers_all_networks():
    s = latency_series()
    assert set(s) == set(PINGPONG_FIGURE_NETWORKS)
    for name, (x, y) in s.items():
        assert np.all(np.diff(y) >= 0)  # latency grows with size


def test_bandwidth_series_saturates():
    s = bandwidth_series()
    for name, (x, y) in s.items():
        assert y[-1] == pytest.approx(NETWORKS[name].bandwidth / 1e6, rel=0.1)


def test_figure7_claims_in_series():
    lat = latency_series()
    # RoadRunner ethernet internode is the worst latency line.
    eth0 = lat["RoadRunner, eth-internode"][1][0]
    for name, (x, y) in lat.items():
        if name != "RoadRunner, eth-internode":
            assert y[0] < eth0


def test_simulated_pingpong_matches_model():
    for name in ("T3E", "Muses, LAM", "RoadRunner, myr-internode"):
        nbytes = 65536
        measured = simulated_pingpong(name, nbytes, reps=6)
        expect = NETWORKS[name].send_time(nbytes)
        assert measured == pytest.approx(expect, rel=0.2)


def test_figure8_series_shapes():
    s4 = figure8_series(4)
    s8 = figure8_series(8)
    assert "Muses, LAM" in s4
    assert "Muses, LAM" not in s8  # only 4 nodes exist
    with pytest.raises(ValueError):
        figure8_series(1)
    # T3E dominates at large message sizes.
    big_idx = -1
    t3e = s8["T3E"][1][big_idx]
    for name, (x, y) in s8.items():
        if name != "T3E":
            assert t3e > 2 * y[big_idx]


def test_figure8_ethernet_degrades_with_p():
    s4 = figure8_series(4)
    s8 = figure8_series(8)
    eth4 = s4["RoadRunner, eth-internode"][1][-1]
    eth8 = s8["RoadRunner, eth-internode"][1][-1]
    assert eth8 < eth4
    myr4 = s4["RoadRunner, myr-internode"][1][-1]
    myr8 = s8["RoadRunner, myr-internode"][1][-1]
    assert myr8 > 0.8 * myr4


def test_simulated_alltoall_matches_model():
    r = simulated_alltoall("T3E", 4, 32768, reps=3)
    expect = NETWORKS["T3E"].alltoall_time(4, 32768)
    assert r["mean_seconds"] == pytest.approx(expect, rel=0.1)
    assert r["avg_bandwidth_mb"] > 0


def test_message_sizes_span_paper_range():
    m = message_sizes()
    assert m[0] == 1
    assert m[-1] >= 6.3e6
