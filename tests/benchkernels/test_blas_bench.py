import numpy as np
import pytest

from repro.benchkernels.blas_bench import (
    FIGURES,
    figure_series,
    host_measure,
    model_curve,
    sweep_sizes,
    x_axis,
)


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_sweep_sizes_sane(figure):
    n = sweep_sizes(figure)
    assert n.size > 5
    assert np.all(n >= 2)
    assert np.all(np.diff(n) > 0)


def test_sweep_sizes_unknown_figure():
    with pytest.raises(ValueError):
        sweep_sizes(9)


def test_x_axis_bytes_except_fig6():
    n = np.array([4, 8])
    np.testing.assert_array_equal(x_axis(1, n), [32, 64])
    np.testing.assert_array_equal(x_axis(6, n), [4, 8])


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_model_curves_positive(figure):
    x, y = model_curve("Muses", figure)
    assert x.shape == y.shape
    assert np.all(y > 0)


def test_figure_series_panels():
    left = figure_series(1, "left")
    right = figure_series(1, "right")
    assert "Muses" in left and "Muses" in right
    assert "T3E" in right and "T3E" not in left
    with pytest.raises(ValueError):
        figure_series(1, "middle")


def test_fig1_dcopy_cache_cliff_in_series():
    x, y = model_curve("Muses", 1)
    in_l1 = y[x <= 8192].max()
    in_mem = y[x >= 4 * 1024 * 1024].min() if np.any(x >= 4 * 1024 * 1024) else y[-1]
    assert in_l1 > 2.5 * in_mem


def test_fig6_small_dgemm_rises_with_n():
    x, y = model_curve("Muses", 6)
    assert y[-1] > 2 * y[0]


def test_host_measure_runs():
    r = host_measure("daxpy", 1000, min_time=0.002)
    assert r["reps"] >= 1
    assert r["mflops"] > 0
    r2 = host_measure("dgemm", 16, min_time=0.002)
    assert r2["mflops"] > 0
    r3 = host_measure("dcopy", 512, min_time=0.002)
    assert r3["mb_per_s"] > 0
    assert r3["mflops"] == 0.0


def test_host_measure_unknown_routine():
    with pytest.raises(ValueError):
        host_measure("zcopy", 10)
