# test package
