"""Section 5's six conclusions, asserted against the reproduction.

"It may be concluded that: ..." — each bullet of the paper's Discussion
and Conclusions becomes an executable check against the models and
drivers, so the headline narrative cannot silently drift as the code
evolves.
"""


from repro.apps.ale_bench import step_times as ale_times
from repro.apps.nektar_f_bench import step_times as f_times
from repro.apps.serial_bluff import table1
from repro.machines.catalog import CPUS, NETWORKS


def test_1_pc_kernel_level_competitive_but_below_t3e_p2sc():
    """"The single-processor kernel-level performance of the PC is not
    as good as the high-end supercomputers, such as the T3E or the IBM
    SP2-P2SC.  It compares well, though, to the rest of the systems." """
    pc = CPUS["pentium-ii-450"]
    for routine, n in (("dgemm", 300), ("dgemv", 100)):
        assert pc.blas_rate(routine, n) < CPUS["alpha21164-450"].blas_rate(routine, n)
    # Compares well to the rest: within 2x of every mid-range machine
    # on the dominant kernels.
    for key in ("ppc604e-332", "r10000-195", "ultrasparc-300", "power2-66"):
        for routine, n in (("daxpy", 15000), ("ddot", 400)):
            assert pc.blas_rate(routine, n) > 0.5 * CPUS[key].blas_rate(routine, n)


def test_2_ethernet_not_competitive_with_supercomputer_networks():
    """"Ethernet-based networks are not competitive to supercomputer
    networks, if latency and bandwidth are considered." """
    eth = NETWORKS["Muses, LAM"]
    for name in ("T3E", "SP2-Silver, internode", "AP3000", "Onyx2", "NCSA"):
        net = NETWORKS[name]
        assert eth.latency_us > net.latency_us
        assert eth.bandwidth < 0.5 * net.bandwidth


def test_3_myrinet_competitive_at_low_to_medium_sizes():
    """"Myrinet-based networks are competitive to supercomputer networks
    at low to medium message sizes according to the kernel level tests." """
    myr = NETWORKS["RoadRunner, myr-internode"]
    for name in ("SP2-Silver, internode", "AP3000", "SP2-Thin2"):
        net = NETWORKS[name]
        # Latency-dominated regime: within ~1.15x of the SP switch and
        # ahead of AP-Net / TB2.
        assert myr.send_time(128) < 1.15 * net.send_time(128)
    # ... but it loses at large messages (the paper's caveat).
    assert myr.send_time(4 << 20) > NETWORKS["SP2-Silver, internode"].send_time(
        4 << 20
    )


def test_4_pc_serial_superior_except_t3e_p2sc():
    """"Use of PC's for serial algorithms indicate superior performance
    of the PC's to most supercomputers, apart from the T3E and IBM
    SP2-P2SC." """
    rows = {name: t for name, t, _ in table1()}
    pc = rows["Pentium II, 450MHz"]
    faster = [name for name, t in rows.items() if t < pc]
    assert set(faster) <= {"P2SC, 160MHz", "Alpha 21164A, 450MHz (T3E)"}
    slower = [name for name, t in rows.items() if t > 1.05 * pc]
    assert len(slower) >= 4  # most supercomputers


def test_5_ethernet_parallel_inefficient_above_four_procs():
    """"Parallel simulations using ethernet-based networks indicate
    inefficiency in communications above four processors.  Internal
    timings indicate that the bottle-neck is due to MPI Alltoall." """
    t4 = f_times("RoadRunner eth.", 4)
    t16 = f_times("RoadRunner eth.", 16)
    assert t16["wall"] > 2.0 * t4["wall"]
    # The bottleneck sits in stage 2 (the Alltoall stage).
    growth = {
        s: t16["stage_wall"][s] - t4["stage_wall"][s] for s in t4["stage_wall"]
    }
    assert max(growth, key=growth.get) == "2:nonlinear"


def test_6_myrinet_parallel_competitive():
    """"Parallel simulations using myrinet-based networks are
    competitive to supercomputers" (NekTar-F weak scaling and ALE
    strong scaling)."""
    for p in (4, 16, 32):
        myr = f_times("RoadRunner myr.", p)["wall"]
        silver = f_times("SP2-Silver", p)["wall"]
        assert myr < 1.1 * silver
    # ALE at 16 processors: the PC cluster leads (Table 3).
    assert (
        ale_times("RoadRunner myr.", 16)["cpu"]
        <= ale_times("NCSA", 16)["cpu"] * 1.01
    )


def test_overall_not_by_far():
    """"PC clusters are less efficient than supercomputers, yet not by
    far."  Quantified: the PC cluster stays within 2x of the best
    supercomputer on every parallel workload we model."""
    for p in (2, 4, 8, 16, 32, 64):
        myr = f_times("RoadRunner myr.", p)["wall"]
        best = min(
            f_times(s, p)["wall"]
            for s in ("NCSA", "SP2-Silver", "SP2-Thin2")
        )
        assert myr < 2.0 * best, p


def test_batching_leaves_cost_tables_unchanged():
    """Golden regression: the batched execution engine must not move the
    reproduced per-timestep cost model.  The serial bluff-body stage
    flops — which also drive the NekTar-F weak-scaling table via
    ``nektar_f_bench._per_proc_stage_flops`` — must be identical whether
    the instrumented reduced run executes batched or per-element."""
    from repro.apps.pricing import price_stages, total_time
    from repro.apps.serial_bluff import (
        TABLE1_MACHINES,
        measure_reduced,
        paper_stage_flops,
    )
    from repro.machines.catalog import MACHINES

    measured_b = measure_reduced(batched=True)
    measured_p = measure_reduced(batched=False)
    flops_b = paper_stage_flops(measured_b)
    flops_p = paper_stage_flops(measured_p)
    assert flops_b == flops_p
    # And therefore the priced Table 1 column is unchanged too.
    for mkey in TABLE1_MACHINES:
        cpu = MACHINES[mkey].cpu
        assert total_time(price_stages(cpu, flops_b)) == total_time(
            price_stages(cpu, flops_p)
        )


def test_batching_leaves_nektar_f_step_flops_unchanged():
    """Golden regression on the 3-D solver itself: a short NekTar-F run
    charges identical op totals (and produces the same solution) in
    both execution modes."""
    import numpy as np

    from repro.assembly.space import FunctionSpace
    from repro.linalg.counters import OpCounter
    from repro.machines.network import NetworkModel
    from repro.mesh.generators import rectangle_quads
    from repro.ns.nektar_f import NekTarF
    from repro.parallel.simmpi import VirtualCluster

    net = NetworkModel("t", latency_us=5, bandwidth=1e9)

    def run(batched):
        def rank_fn(comm):
            mesh = rectangle_quads(2, 2)
            space = FunctionSpace(mesh, 3, batched=batched)
            one = lambda m, x, y, t: 1.0 if m == 0 else 0.0  # noqa: E731
            zero = lambda m, x, y, t: 0.0  # noqa: E731
            bcs = {
                t: (one, zero, zero) for t in ("left", "top", "bottom")
            }
            nf = NekTarF(
                comm, space, nz=4, nu=0.02, dt=1e-3, velocity_bcs=bcs,
                pressure_dirichlet=("right",),
            )
            nf.set_initial(one, zero, zero)
            with OpCounter() as c:
                nf.run(2)
            return nf.u_hat, nf.p_hat, c.flops, c.bytes, dict(c.by_label)

        return VirtualCluster(1, net).run(rank_fn)[0]

    u_b, p_b, fl_b, by_b, lab_b = run(True)
    u_p, p_p, fl_p, by_p, lab_p = run(False)
    np.testing.assert_allclose(u_b, u_p, rtol=0.0, atol=1e-11)
    np.testing.assert_allclose(p_b, p_p, rtol=0.0, atol=1e-10)
    assert fl_b == fl_p
    assert by_b == by_p
    assert {k: v[:2] for k, v in lab_b.items()} == {
        k: v[:2] for k, v in lab_p.items()
    }
