"""Coverage for small paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.machines.catalog import MACHINES, machine, network
from repro.machines.network import NetworkModel
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


def test_machine_and_network_lookup_errors():
    with pytest.raises(KeyError):
        machine("Cray-1")
    with pytest.raises(KeyError):
        network("token-ring")
    with pytest.raises(KeyError):
        MACHINES["Muses"].network("myrinet")
    assert MACHINES["RoadRunner"].network("myrinet").bandwidth > 0


def test_machine_spec_ram_per_proc():
    spec = MACHINES["SP2-Silver"]
    assert spec.ram_per_proc == pytest.approx(spec.ram_per_node / 4)


def test_cluster_aggregate_clocks():
    def fn(comm):
        comm.compute(0.1 * (comm.rank + 1))
        return None

    cl = VirtualCluster(3, NET)
    cl.run(fn)
    assert cl.max_wall == pytest.approx(0.3)
    assert cl.max_cpu == pytest.approx(0.3)


def test_sendrecv_exchange():
    def fn(comm):
        partner = 1 - comm.rank
        got = comm.sendrecv(partner, np.full(4, float(comm.rank)), partner)
        return float(got[0])

    res = VirtualCluster(2, NET).run(fn)
    assert res == [1.0, 0.0]


def test_repro_all_entry(capsys):
    from repro.__main__ import main

    assert main(["all"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out and "Table 3" in out


def test_stats_of_rank_traffic():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, np.zeros(100))
        else:
            comm.recv(0)

    cl = VirtualCluster(2, NET)
    cl.run(fn)
    assert cl.ranks[0].sent_bytes == 800
    assert cl.ranks[1].recv_bytes == 800
    assert cl.ranks[0].messages == 1


def test_solvers_expose_bandwidth_and_lambda():
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads
    from repro.solvers.helmholtz import HelmholtzDirect

    space = FunctionSpace(rectangle_quads(2, 2), 4)
    solver = HelmholtzDirect(space, 2.5, ("left",))
    assert solver.lam == 2.5
    assert solver.op.bandwidth >= 0
    # bc_values for a function.
    vals = solver.bc_values(lambda x, y: x + 2 * y)
    assert vals is not None and vals.size == solver.dirichlet_dofs.size


def test_group_ale_missing_stage_keys():
    from repro.ns.stages import group_ale

    groups = group_ale({"5:pressure-solve": 40.0, "7:viscous-solve": 60.0})
    assert groups["a"] == 0.0
    assert groups["b"] == 40.0
    assert groups["c"] == 60.0


def test_elemental_operator_error_branches():
    from repro.assembly.operators import (
        elemental_helmholtz,
        elemental_helmholtz_batched,
        elemental_load,
    )
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads

    space = FunctionSpace(rectangle_quads(1, 1), 3)
    exp = space.dofmap.expansion(0)
    gf = space.geom[0]
    with pytest.raises(ValueError, match="quadrature points"):
        elemental_load(exp, gf, np.zeros(gf.nq + 1))
    with pytest.raises(ValueError, match="Helmholtz constant"):
        elemental_helmholtz(exp, gf, -1.0)
    b = space.batches()[0]
    with pytest.raises(ValueError, match="Helmholtz constant"):
        elemental_helmholtz_batched(b.exp, b.jw, b.dxi, -1.0)
    with pytest.raises(ValueError, match="unknown elemental operator"):
        space.elemental_matrices("advection")


def test_space_batched_shape_validation():
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads

    space = FunctionSpace(rectangle_quads(2, 1), 3)
    good = np.zeros((space.nelem, space.nq))
    with pytest.raises(ValueError, match="quadrature points"):
        space.load_vector(np.zeros((space.nelem, space.nq + 1)))
    with pytest.raises(ValueError, match="quadrature points"):
        space.grad_load_vector(good, np.zeros((space.nelem + 1, space.nq)))


@pytest.mark.parametrize("batched", [True, False])
def test_condensation_error_branches(batched):
    from repro.assembly.condensation import CondensedOperator
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads

    space = FunctionSpace(rectangle_quads(2, 2), 4, batched=batched)
    mats = space.elemental_matrices("helmholtz", 1.0)
    # Dirichlet dofs must live on the boundary system.
    with pytest.raises(ValueError, match="boundary"):
        CondensedOperator(space, mats, [space.ndof - 1])
    op = CondensedOperator(space, mats)
    with pytest.raises(ValueError, match="global dofs"):
        op.solve(np.zeros(space.ndof - 1))
    # A singular interior block must fail loudly in either mode
    # (scipy re-exports numpy's LinAlgError, so one type covers both).
    bad = [m.copy() for m in mats]
    nb = len(space.dofmap.expansion(0).boundary_modes)
    bad[0][nb:, nb:] = 0.0
    with pytest.raises(np.linalg.LinAlgError):
        CondensedOperator(space, bad)


@pytest.mark.parametrize("batched", [True, False])
def test_condensation_rejects_interior_first_ordering(batched, monkeypatch):
    from repro.assembly.condensation import CondensedOperator
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads

    space = FunctionSpace(rectangle_quads(1, 1), 3, batched=batched)
    mats = space.elemental_matrices("mass")
    exp = space.dofmap.expansion(0)
    bad_order = list(reversed(exp.boundary_modes))
    monkeypatch.setattr(
        type(exp), "boundary_modes", property(lambda self: bad_order)
    )
    with pytest.raises(ValueError, match="boundary modes first"):
        CondensedOperator(space, mats)
