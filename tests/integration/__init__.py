# test package
