"""End-to-end integration tests tying multiple subsystems together."""

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.machines.catalog import CPUS, NETWORKS
from repro.mesh.generators import bluff_body_mesh, rectangle_quads
from repro.ns.nektar2d import NavierStokes2D
from repro.ns.nektar_f import NekTarF
from repro.parallel.simmpi import VirtualCluster


def test_bluff_body_physics_sanity():
    """Mesh generator -> space -> NS solver: wake physics holds."""
    mesh = bluff_body_mesh(m=3, nr=1)
    space = FunctionSpace(mesh, 4)
    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    ns = NavierStokes2D(
        space,
        nu=0.02,
        dt=2e-2,
        velocity_bcs={"inflow": (one, zero), "wall": (zero, zero)},
        pressure_dirichlet=("outflow",),
    )
    ns.set_initial(one, zero)
    ns.run(15)
    u, v = ns.velocity()
    xq, yq = space.coords()
    # No-slip: velocity in the boundary layer (delta ~ sqrt(nu t) ~ 0.08)
    # is far below the free stream.  (Quadrature points are interior to
    # the elements, so the closest samples sit slightly off the wall.)
    near_wall = np.hypot(xq, yq) < 0.56
    assert near_wall.any()
    assert np.abs(u[near_wall]).max() < 0.55
    # Wake deficit: streamwise velocity right behind the body is below
    # the free stream.
    wake = (np.abs(yq) < 0.3) & (xq > 0.6) & (xq < 2.0)
    assert u[wake].mean() < 0.75
    # Far field is still ~free stream.
    far = np.abs(yq) > 4.0
    np.testing.assert_allclose(u[far].mean(), 1.0, atol=0.05)
    # Incompressibility under control (coarse mesh, impulsive start).
    assert ns.divergence_norm() < 0.08 * np.sqrt(space.integrate(u * u))


def test_poiseuille_channel_with_body_force():
    """Force-driven channel flow stays on the exact parabolic profile."""
    H, G, nu = 1.0, 1.0, 0.2
    mesh = rectangle_quads(2, 2, 0.0, 2.0, 0.0, H)
    space = FunctionSpace(mesh, 5)
    exact = lambda y: G / (2 * nu) * y * (H - y)  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    ns = NavierStokes2D(
        space,
        nu=nu,
        dt=5e-3,
        velocity_bcs={
            "top": (zero, zero),
            "bottom": (zero, zero),
            "left": (lambda x, y, t: float(exact(y)), zero),
        },
        pressure_dirichlet=("right",),
        force=(lambda x, y, t: G, lambda x, y, t: 0.0),
    )
    ns.set_initial(lambda x, y, t: exact(y), lambda x, y, t: 0.0)
    ns.run(40)
    u, v = ns.velocity()
    xq, yq = space.coords()
    assert space.norm_l2(u - exact(yq)) < 2e-3
    assert space.norm_l2(v) < 2e-3


def test_nektar_f_network_choice_changes_wall_not_results():
    """The same NekTar-F run on Ethernet vs Myrinet: identical numerics,
    different virtual wall clock (the whole point of the paper)."""
    mesh = rectangle_quads(2, 1, 0.0, 2 * np.pi, 0.0, np.pi)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 4)
        bcs = {
            "left": (
                lambda m, x, y, t: 1.0 if m == 0 else 0.0,
                lambda m, x, y, t: 0.0,
                lambda m, x, y, t: 0.0,
            )
        }
        nf = NekTarF(
            comm, space, nz=4, nu=0.1, dt=5e-3, velocity_bcs=bcs,
            pressure_dirichlet=("right",), charge_compute=True,
        )
        nf.set_initial(
            lambda m, x, y, t: 1.0 if m == 0 else 0.0,
            lambda m, x, y, t: 0.0,
            lambda m, x, y, t: 0.0,
        )
        nf.run(2)
        return nf.u_hat.copy(), comm.wall, comm.cpu_time

    results = {}
    for name in ("RoadRunner, eth-internode", "RoadRunner, myr-internode"):
        cl = VirtualCluster(2, NETWORKS[name], cpu=CPUS["pentium-ii-450"])
        results[name] = cl.run(rank_fn)

    eth, myr = results["RoadRunner, eth-internode"], results["RoadRunner, myr-internode"]
    # Identical numerics...
    np.testing.assert_allclose(eth[0][0], myr[0][0], atol=1e-13)
    # ...but the Ethernet wall clock is slower.
    assert eth[0][1] > myr[0][1]
    # And the Ethernet CPU-vs-wall gap is wider (TCP sleeps, GM spins).
    eth_gap = eth[0][1] - eth[0][2]
    myr_gap = myr[0][1] - myr[0][2]
    assert eth_gap > myr_gap


def test_partitioner_feeds_distributed_solver():
    """METIS-style partition -> gather-scatter -> distributed CG on the
    actual bluff-body mesh partitions."""
    from repro.mesh.partition import edge_cut, partition_mesh
    from repro.parallel.distributed import DistributedHelmholtz
    from repro.solvers.helmholtz import HelmholtzCG

    mesh = bluff_body_mesh(m=3, nr=1)
    parts = partition_mesh(mesh, 4, method="multilevel")
    g = mesh.dual_graph()
    assert edge_cut(g, parts) < g.number_of_edges() / 2

    def rank_fn(comm):
        space = FunctionSpace(mesh, 3)
        dh = DistributedHelmholtz(comm, space, parts, 1.0, ("inflow",), tol=1e-10)
        xq, yq = space.coords()
        rhs = dh.assemble_rhs(np.exp(-0.5 * (xq**2 + yq**2)))
        x = dh.solve(rhs)
        return dh.local_dofs, x

    net = NETWORKS["RoadRunner, myr-internode"]
    res = VirtualCluster(4, net).run(rank_fn)
    space = FunctionSpace(mesh, 3)
    serial = HelmholtzCG(space, 1.0, ("inflow",), tol=1e-10)
    xq, yq = space.coords()
    u_ref = serial.solve(np.exp(-0.5 * (xq**2 + yq**2)))
    for dofs, x in res:
        np.testing.assert_allclose(x, u_ref[dofs], atol=1e-6)


def test_table_drivers_consistent_with_catalog():
    """The app drivers consume the same catalog objects the kernel
    figures use — ensure names stay linked."""
    from repro.apps.ale_bench import TABLE3_SYSTEMS
    from repro.apps.nektar_f_bench import TABLE2_SYSTEMS
    from repro.machines.catalog import MACHINES

    for label, (mkey, nkind) in {**TABLE2_SYSTEMS, **TABLE3_SYSTEMS}.items():
        spec = MACHINES[mkey]
        assert spec.network(nkind) is not None
