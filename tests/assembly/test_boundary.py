import numpy as np
import pytest

from repro.assembly.boundary import build_edge_quadrature
from repro.assembly.space import FunctionSpace
from repro.mesh.generators import bluff_body_mesh, rectangle_quads, rectangle_tris


def test_edge_lengths_unit_square():
    space = FunctionSpace(rectangle_quads(1, 1, 0, 2, 0, 3), 3)
    quads = build_edge_quadrature(space, space.mesh.boundary_sides())
    total = sum(eq.jw.sum() for eq in quads)
    assert total == pytest.approx(2 * (2 + 3))


def test_outward_normals_unit_square():
    space = FunctionSpace(rectangle_quads(1, 1), 3)
    for tag, (nx, ny) in {
        "bottom": (0, -1),
        "right": (1, 0),
        "top": (0, 1),
        "left": (-1, 0),
    }.items():
        (eq,) = build_edge_quadrature(space, space.mesh.boundary_sides(tag))
        np.testing.assert_allclose(eq.nx, nx, atol=1e-13)
        np.testing.assert_allclose(eq.ny, ny, atol=1e-13)
        # unit normals
        np.testing.assert_allclose(np.hypot(eq.nx, eq.ny), 1.0)


def test_outward_normals_triangles():
    space = FunctionSpace(rectangle_tris(1, 1), 3)
    quads = build_edge_quadrature(space, space.mesh.boundary_sides())
    # All normals point away from the square's centre (0, 0).
    for eq in quads:
        dots = eq.nx * eq.x + eq.ny * eq.y
        assert np.all(dots > 0)


def test_normals_on_cylinder_wall():
    space = FunctionSpace(bluff_body_mesh(m=3, nr=1), 3)
    quads = build_edge_quadrature(space, space.mesh.boundary_sides("wall"))
    for eq in quads:
        # Outward from the fluid = towards the cylinder centre.
        dots = eq.nx * eq.x + eq.ny * eq.y
        assert np.all(dots < 0)
    # Total wall length approximates the circle perimeter (polygonal).
    total = sum(eq.jw.sum() for eq in quads)
    assert total == pytest.approx(2 * np.pi * 0.5, rel=0.03)


def test_divergence_theorem():
    # int_domain div F = oint F . n for F = (x, y) (div = 2).
    mesh = rectangle_quads(2, 2, 0, 1, 0, 1)
    space = FunctionSpace(mesh, 4)
    quads = build_edge_quadrature(space, space.mesh.boundary_sides())
    surface = sum(
        eq.integrate(eq.x * eq.nx + eq.y * eq.ny) for eq in quads
    )
    area = space.integrate(np.ones((space.nelem, space.nq)))
    assert surface == pytest.approx(2.0 * area, rel=1e-12)


def test_edge_basis_matches_volume_tabulation():
    # phi at edge points must agree with eval_basis of the expansion.
    space = FunctionSpace(rectangle_tris(1, 1), 4)
    quads = build_edge_quadrature(space, space.mesh.boundary_sides())
    for eq in quads:
        exp = space.dofmap.expansion(eq.elem)
        assert eq.phi.shape == (exp.nmodes, eq.npts)
        # trace of the constant (sum of vertex modes) is 1 on the edge.
        ones = sum(eq.phi[i] for i in exp.vertex_modes)
        np.testing.assert_allclose(ones, 1.0, atol=1e-12)


def test_edge_load_constant():
    space = FunctionSpace(rectangle_quads(1, 1), 3)
    (eq,) = build_edge_quadrature(space, space.mesh.boundary_sides("bottom"))
    load = eq.load(np.ones(eq.npts))
    exp = space.dofmap.expansion(eq.elem)
    # Vertex-mode entries sum to the edge length.
    assert sum(load[i] for i in exp.vertex_modes) == pytest.approx(2.0)


def test_dphi_tables_match_fd_along_edge():
    space = FunctionSpace(rectangle_quads(1, 1), 3)
    (eq,) = build_edge_quadrature(space, space.mesh.boundary_sides("left"))
    exp = space.dofmap.expansion(eq.elem)
    # For the identity-mapped reference square, physical == reference.
    h = 1e-6
    xi2 = eq.y  # left edge: xi1 = -1, param = xi2 (mesh is [-1,1]^2)
    f1 = exp.eval_basis(np.full_like(xi2, -1.0) + h, xi2)
    f0 = exp.eval_basis(np.full_like(xi2, -1.0), xi2)
    fd = (f1 - f0) / h
    np.testing.assert_allclose(eq.dphi_x, fd, atol=1e-4, rtol=1e-3)
