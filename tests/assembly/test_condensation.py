import numpy as np
import pytest

from repro.assembly.condensation import CondensedOperator
from repro.assembly.global_system import AssembledOperator, project_dirichlet
from repro.assembly.operators import elemental_helmholtz
from repro.assembly.space import FunctionSpace
from repro.linalg.counters import OpCounter
from repro.mesh.generators import bluff_body_mesh, rectangle_quads, rectangle_tris


def build(mesh, order, lam, tags):
    space = FunctionSpace(mesh, order)
    mats = [
        elemental_helmholtz(space.dofmap.expansion(e), space.geom[e], lam)
        for e in range(space.nelem)
    ]
    dofs, _ = (
        project_dirichlet(space, tags, lambda x, y: 0.0)
        if tags
        else (np.array([], dtype=np.int64), None)
    )
    return space, mats, dofs


@pytest.mark.parametrize(
    "mesh_fn,order",
    [
        (lambda: rectangle_quads(3, 2), 4),
        (lambda: rectangle_tris(2, 2), 5),
        (lambda: bluff_body_mesh(m=3, nr=1), 3),
    ],
)
def test_condensed_matches_full_banded(mesh_fn, order):
    mesh = mesh_fn()
    tags = (
        ("left",) if "left" in mesh.boundary_tags else ("inflow", "wall")
    )
    space, mats, dofs = build(mesh, order, 1.5, tags)
    full = AssembledOperator(space, mats, dofs)
    cond = CondensedOperator(space, mats, dofs)
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(space.ndof)
    g = rng.standard_normal(dofs.size)
    np.testing.assert_allclose(
        cond.solve(rhs, g), full.solve(rhs, g), rtol=1e-8, atol=1e-8
    )


def test_condensed_without_dirichlet():
    space, mats, _ = build(rectangle_quads(2, 2), 3, 2.0, ())
    cond = CondensedOperator(space, mats)
    full = AssembledOperator(space, mats)
    rhs = np.random.default_rng(1).standard_normal(space.ndof)
    np.testing.assert_allclose(cond.solve(rhs), full.solve(rhs), rtol=1e-8)


def test_condensed_boundary_bandwidth_smaller():
    mesh = bluff_body_mesh(m=4, nr=2)
    space, mats, dofs = build(mesh, 5, 1.0, ("inflow",))
    cond = CondensedOperator(space, mats, dofs)
    full = AssembledOperator(space, mats, dofs)
    assert cond.bandwidth < full.bandwidth
    # And the condensed system itself is much smaller.
    assert space.dofmap.nboundary < space.ndof


def test_interior_dirichlet_rejected():
    space, mats, _ = build(rectangle_quads(2, 2), 4, 1.0, ())
    interior_dof = space.dofmap.interior_offset
    with pytest.raises(ValueError):
        CondensedOperator(space, mats, [interior_dof])


def test_rhs_shape_check():
    space, mats, _ = build(rectangle_quads(1, 1), 3, 1.0, ())
    cond = CondensedOperator(space, mats)
    with pytest.raises(ValueError):
        cond.solve(np.ones(3))


def test_all_boundary_dirichlet_degenerate_case():
    # 1x1 mesh with every side Dirichlet: no free boundary dofs remain.
    space, mats, dofs = build(
        rectangle_quads(1, 1), 3, 1.0, ("left", "right", "top", "bottom")
    )
    cond = CondensedOperator(space, mats, dofs)
    assert cond.solver is None
    rhs = np.random.default_rng(2).standard_normal(space.ndof)
    g = np.zeros(dofs.size)
    full = AssembledOperator(space, mats, dofs)
    np.testing.assert_allclose(cond.solve(rhs, g), full.solve(rhs, g), rtol=1e-9)


def test_solve_charges_small_dense_ops():
    # The condensed solve's per-element work shows up as small dgemv and
    # Cholesky charges — the paper's "small n" regime.
    space, mats, dofs = build(rectangle_quads(3, 3), 6, 1.0, ("left",))
    cond = CondensedOperator(space, mats, dofs)
    with OpCounter() as c:
        cond.solve(np.ones(space.ndof), np.zeros(dofs.size))
    assert "sc-chol" in c.by_label
    assert "dgemv" in c.by_label
    assert "dpbtrs" in c.by_label  # the boundary banded sweep
