# test package
