import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.mesh.mesh2d import Mesh2D


def mixed_mesh():
    """One quad and two triangles sharing edges (tests tri/quad conformity)."""
    verts = np.array(
        [[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [2, 1]], dtype=float
    )
    elems = [(0, 1, 2, 3), (1, 4, 2), (4, 5, 2)]
    return Mesh2D(verts, elems)


def test_space_shapes():
    space = FunctionSpace(rectangle_quads(2, 2), 4)
    assert space.nelem == 4
    assert space.nq == 36  # (P+2)^2
    xq, yq = space.coords()
    assert xq.shape == (4, 36)


def test_integrate_constant_is_area():
    for mesh, area in [
        (rectangle_quads(3, 2, 0, 3, 0, 2), 6.0),
        (rectangle_tris(2, 2, 0, 1, 0, 1), 1.0),
        (mixed_mesh(), 2.0),
    ]:
        space = FunctionSpace(mesh, 3)
        assert space.integrate(np.ones((space.nelem, space.nq))) == pytest.approx(area)


def test_forward_backward_roundtrip_polynomial():
    space = FunctionSpace(mixed_mesh(), 4)
    xq, yq = space.coords()
    f = 2.0 + xq - 3.0 * yq + xq * yq + xq**2
    u_hat = space.forward(f)
    np.testing.assert_allclose(space.backward(u_hat), f, atol=1e-9)


def test_forward_continuous_result():
    # Projection of a continuous function yields one value per vertex dof.
    space = FunctionSpace(rectangle_quads(2, 2), 3)
    xq, yq = space.coords()
    u_hat = space.forward(np.sin(xq) * np.cos(yq))
    verts = space.mesh.vertices
    vals = space.eval_at_vertices(u_hat)
    # Vertex coefficients approximate nodal values of a smooth function.
    np.testing.assert_allclose(
        vals, np.sin(verts[:, 0]) * np.cos(verts[:, 1]), atol=1e-3
    )


def test_gradient_of_linear_field():
    space = FunctionSpace(mixed_mesh(), 3)
    xq, yq = space.coords()
    u_hat = space.forward(3.0 * xq - 2.0 * yq + 1.0)
    dudx, dudy = space.gradient(u_hat)
    np.testing.assert_allclose(dudx, 3.0, atol=1e-9)
    np.testing.assert_allclose(dudy, -2.0, atol=1e-9)


def test_gradient_of_values_smooth():
    space = FunctionSpace(rectangle_quads(2, 2), 6)
    xq, yq = space.coords()
    f = np.sin(xq) * yq
    dudx, dudy = space.gradient_of_values(f)
    np.testing.assert_allclose(dudx, np.cos(xq) * yq, atol=1e-5)
    np.testing.assert_allclose(dudy, np.sin(xq), atol=1e-5)


def test_load_vector_against_integral():
    space = FunctionSpace(rectangle_quads(2, 1), 3)
    ones = np.ones((space.nelem, space.nq))
    rhs = space.load_vector(ones)
    # sum_i (1, phi_i) over vertex modes only = integral of the vertex
    # partition of unity = area.
    assert rhs[: space.mesh.nvertices].sum() == pytest.approx(
        2.0 * 2.0, rel=1e-12
    )


def test_norm_l2():
    space = FunctionSpace(rectangle_quads(1, 1, 0, 1, 0, 1), 3)
    vals = 2.0 * np.ones((space.nelem, space.nq))
    assert space.norm_l2(vals) == pytest.approx(2.0)


def test_assemble_symmetry_with_sign_flips():
    verts = np.array([[0, 0], [1, 0], [2, 0], [0, 1], [1, 1], [2, 1]], dtype=float)
    elems = [(0, 1, 4, 3), (5, 4, 1, 2)]  # second is rotated: edge flip
    space = FunctionSpace(Mesh2D(verts, elems), 4)
    from repro.assembly.operators import elemental_laplacian

    mats = [
        elemental_laplacian(space.dofmap.expansion(e), space.geom[e])
        for e in range(2)
    ]
    a = space.assemble(mats).toarray()
    np.testing.assert_allclose(a, a.T, atol=1e-11)
    # Constant vector (vertex dofs 1, rest 0) in the null space.
    c = np.zeros(space.ndof)
    c[: space.mesh.nvertices] = 1.0
    np.testing.assert_allclose(a @ c, 0.0, atol=1e-10)


def test_assembled_diagonal_matches_assemble():
    space = FunctionSpace(mixed_mesh(), 3)
    from repro.assembly.operators import elemental_helmholtz

    mats = [
        elemental_helmholtz(space.dofmap.expansion(e), space.geom[e], 1.0)
        for e in range(space.nelem)
    ]
    a = space.assemble(mats)
    np.testing.assert_allclose(
        space.assembled_diagonal(mats), np.asarray(a.diagonal()), rtol=1e-12
    )
