"""Property tests: condensed vs full solves on randomised problems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.condensation import CondensedOperator
from repro.assembly.global_system import AssembledOperator
from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads, rectangle_tris


@given(
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(2, 5),
    st.floats(0.0, 10.0),
    st.booleans(),
    st.integers(0, 1000),
)
@settings(max_examples=25, deadline=None)
def test_condensed_equals_full_random(nx, ny, order, lam, tris, seed):
    from repro.assembly.operators import elemental_helmholtz

    mesh = rectangle_tris(nx, ny) if tris else rectangle_quads(nx, ny)
    space = FunctionSpace(mesh, order)
    mats = [
        elemental_helmholtz(space.dofmap.expansion(e), space.geom[e], lam)
        for e in range(space.nelem)
    ]
    rng = np.random.default_rng(seed)
    # Random boundary Dirichlet subset.
    bnd = space.dofmap.boundary_dofs()
    take = rng.random(bnd.size) < 0.4
    dofs = bnd[take]
    if lam < 1e-8 and not (dofs < space.dofmap.n_vertex_dofs).any():
        # Pinning only edge modes leaves the pure-Neumann null space
        # intact (the constant has zero edge-mode coefficients), so the
        # operator is only SPD (to working precision — tiny lam is as
        # singular as lam == 0) if at least one vertex dof is pinned.
        vertex_bnd = bnd[bnd < space.dofmap.n_vertex_dofs]
        dofs = np.unique(np.append(dofs, vertex_bnd[:1]))
    g = rng.standard_normal(dofs.size)
    rhs = rng.standard_normal(space.ndof)
    full = AssembledOperator(space, mats, dofs).solve(rhs, g)
    cond = CondensedOperator(space, mats, dofs).solve(rhs, g)
    np.testing.assert_allclose(cond, full, rtol=1e-6, atol=1e-6)


@given(st.integers(2, 6), st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_condensed_solve_is_exact_inverse(order, seed):
    """A u = rhs: apply the assembled operator to the condensed solution
    and recover the rhs (free dofs)."""
    from repro.assembly.operators import elemental_helmholtz

    mesh = rectangle_quads(2, 2)
    space = FunctionSpace(mesh, order)
    mats = [
        elemental_helmholtz(space.dofmap.expansion(e), space.geom[e], 1.0)
        for e in range(space.nelem)
    ]
    rng = np.random.default_rng(seed)
    rhs = rng.standard_normal(space.ndof)
    cond = CondensedOperator(space, mats)
    u = cond.solve(rhs)
    a = space.assemble(mats)
    np.testing.assert_allclose(a @ u, rhs, rtol=1e-7, atol=1e-7)
