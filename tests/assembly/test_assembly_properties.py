"""Property-based tests of the assembly layer: random element
orientations and mixed meshes must never break C0 continuity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.operators import elemental_laplacian, elemental_mass
from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads
from repro.mesh.mesh2d import Mesh2D


def rotated_mesh(nx, ny, rotations):
    """Structured quad mesh with each element's vertex cycle rotated by
    a per-element amount (preserves CCW orientation, scrambles edge
    directions)."""
    base = rectangle_quads(nx, ny)
    elems = []
    for i, e in enumerate(base.elements):
        r = rotations[i % len(rotations)] % 4
        v = e.vertices
        elems.append(tuple(v[(j + r) % 4] for j in range(4)))
    return Mesh2D(base.vertices, elems)


@given(
    st.integers(1, 3),
    st.integers(1, 3),
    st.lists(st.integers(0, 3), min_size=1, max_size=9),
    st.integers(2, 5),
)
@settings(max_examples=20, deadline=None)
def test_rotated_elements_preserve_assembly(nx, ny, rotations, order):
    mesh = rotated_mesh(nx, ny, rotations)
    space = FunctionSpace(mesh, order)
    mats = [
        elemental_laplacian(space.dofmap.expansion(e), space.geom[e])
        for e in range(space.nelem)
    ]
    a = space.assemble(mats).toarray()
    # Symmetric, PSD, constants in the null space — whatever the
    # element rotations did to edge directions.
    np.testing.assert_allclose(a, a.T, atol=1e-10)
    c = np.zeros(space.ndof)
    c[: mesh.nvertices] = 1.0
    np.testing.assert_allclose(a @ c, 0.0, atol=1e-9)


@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=4),
    st.integers(2, 5),
)
@settings(max_examples=20, deadline=None)
def test_rotated_elements_projection_continuous(rotations, order):
    """Projection of a smooth function through rotated elements gives a
    single-valued (C0) field: evaluate on both sides of each interior
    edge and compare."""
    mesh = rotated_mesh(2, 2, rotations)
    space = FunctionSpace(mesh, order)
    xq, yq = space.coords()
    f = xq**2 - xq * yq + 2.0 * yq
    u_hat = space.forward(f)
    np.testing.assert_allclose(space.backward(u_hat), f, atol=1e-9)


@given(st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_mass_matrix_row_sums_are_areas(order):
    # sum_j M_ij c_j with c = 1-representation: M @ c = (phi_i, 1);
    # summing over vertex modes gives the domain area.
    mesh = rectangle_quads(2, 1, 0.0, 3.0, 0.0, 1.0)
    space = FunctionSpace(mesh, order)
    mats = [
        elemental_mass(space.dofmap.expansion(e), space.geom[e])
        for e in range(space.nelem)
    ]
    m = space.assemble(mats)
    c = np.zeros(space.ndof)
    c[: mesh.nvertices] = 1.0
    v = m @ c
    assert v[: mesh.nvertices].sum() + 0.0 == pytest.approx(
        (m @ c) @ c, rel=1e-12
    )
    assert (m @ c) @ c == pytest.approx(3.0, rel=1e-12)  # area
