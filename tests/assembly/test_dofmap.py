import numpy as np
import pytest

from repro.assembly.dofmap import DofMap
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.mesh.mesh2d import Mesh2D


def rotated_two_quads():
    """Two unit quads; the second uses a rotated vertex cycle so the
    shared edge's intrinsic direction is reversed."""
    verts = np.array([[0, 0], [1, 0], [2, 0], [0, 1], [1, 1], [2, 1]], dtype=float)
    elems = [(0, 1, 4, 3), (5, 4, 1, 2)]
    return Mesh2D(verts, elems)


def test_dof_counts_quads():
    mesh = rectangle_quads(3, 2)
    P = 4
    dm = DofMap(mesh, P)
    expect = mesh.nvertices + (P - 1) * mesh.nedges + (P - 1) ** 2 * mesh.nelements
    assert dm.ndof == expect
    assert dm.nboundary == mesh.nvertices + (P - 1) * mesh.nedges


def test_dof_counts_tris():
    mesh = rectangle_tris(2, 2)
    P = 5
    dm = DofMap(mesh, P)
    nint = (P - 1) * (P - 2) // 2
    assert dm.ndof == mesh.nvertices + (P - 1) * mesh.nedges + nint * mesh.nelements


def test_order_one_rejected():
    with pytest.raises(ValueError):
        DofMap(rectangle_quads(1, 1), 1)


def test_shared_edge_same_global_dofs():
    mesh = rotated_two_quads()
    dm = DofMap(mesh, 4)
    shared = [e for e in mesh.edges if len(e.elements) == 2][0]
    (e0, le0), (e1, le1) = shared.elements
    exp0, exp1 = dm.expansion(e0), dm.expansion(e1)
    d0 = dm.elem_dofs[e0][exp0.edge_modes(le0)]
    d1 = dm.elem_dofs[e1][exp1.edge_modes(le1)]
    np.testing.assert_array_equal(d0, d1)


def test_reversed_edge_sign_flip():
    mesh = rotated_two_quads()
    dm = DofMap(mesh, 4)
    shared = [e for e in mesh.edges if len(e.elements) == 2][0]
    (e0, le0), (e1, le1) = shared.elements
    o0 = mesh.edge_orientation(e0, le0)
    o1 = mesh.edge_orientation(e1, le1)
    assert o0 != o1  # the rotated numbering reverses one side
    flipped = e0 if o0 < 0 else e1
    le = le0 if o0 < 0 else le1
    exp = dm.expansion(flipped)
    signs = dm.elem_signs[flipped][exp.edge_modes(le)]
    np.testing.assert_array_equal(signs, [1.0, -1.0, 1.0])  # (-1)^k


def test_interior_dofs_unique():
    mesh = rectangle_quads(2, 2)
    dm = DofMap(mesh, 3)
    ints = np.concatenate(
        [dm.elem_dofs[e][dm.expansion(e).interior_modes] for e in range(4)]
    )
    assert len(set(ints.tolist())) == ints.size
    assert ints.min() == dm.interior_offset


def test_gather_scatter_roundtrip():
    mesh = rotated_two_quads()
    dm = DofMap(mesh, 4)
    rng = np.random.default_rng(0)
    ug = rng.standard_normal(dm.ndof)
    # scatter(gather) accumulates multiplicity on shared dofs.
    acc = np.zeros(dm.ndof)
    for e in range(mesh.nelements):
        dm.scatter_add(e, dm.gather(e, ug), acc)
    np.testing.assert_allclose(acc, dm.multiplicity() * ug, rtol=1e-13)


def test_multiplicity_structure():
    mesh = rectangle_quads(2, 1)
    dm = DofMap(mesh, 3)
    mult = dm.multiplicity()
    # Interior dofs belong to exactly one element.
    assert np.all(mult[dm.interior_offset :] == 1.0)
    # The two middle vertices are shared by two elements.
    assert sorted(mult[: mesh.nvertices].tolist()).count(2.0) == 2


def test_boundary_dofs_all_and_tagged():
    mesh = rectangle_quads(2, 2)
    P = 3
    dm = DofMap(mesh, P)
    all_bnd = dm.boundary_dofs()
    # 8 boundary edges, 8 boundary vertices at 2x2.
    assert all_bnd.size == 8 + 8 * (P - 1)
    left = dm.boundary_dofs(["left"])
    assert left.size == 3 + 2 * (P - 1)
    # Tagged subset is contained in the full set.
    assert set(left.tolist()) <= set(all_bnd.tolist())


def test_edge_dofs_contiguous():
    mesh = rectangle_quads(1, 1)
    dm = DofMap(mesh, 5)
    d0 = dm.edge_dofs(0)
    assert d0.size == 4
    np.testing.assert_array_equal(np.diff(d0), 1)
