"""Property tests: batched execution == per-element execution.

The batched engine must be a pure wall-clock optimisation — on randomised
mixed tri/quad meshes across orders 2..8, every FunctionSpace operation
must match the per-element reference path to 1e-12 and charge
byte-for-byte identical OpCounter flop/byte totals (total and per
label; call counts legitimately differ).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.condensation import CondensedOperator
from repro.assembly.space import FunctionSpace
from repro.linalg.counters import OpCounter
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.mesh.mesh2d import Mesh2D


def mixed_mesh() -> Mesh2D:
    """One quad + two tris sharing edges (and so edge-sign flips)."""
    verts = np.array(
        [[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [2, 1]], dtype=np.float64
    )
    return Mesh2D(verts, [(0, 1, 2, 3), (1, 4, 2), (4, 5, 2)])


def make_mesh(kind: int, nx: int, ny: int) -> Mesh2D:
    if kind == 0:
        return rectangle_quads(nx, ny)
    if kind == 1:
        return rectangle_tris(nx, ny)
    return mixed_mesh()


def space_pair(mesh, order, sumfact=False):
    return (
        FunctionSpace(mesh, order, sumfact=sumfact, batched=True),
        FunctionSpace(mesh, order, sumfact=sumfact, batched=False),
    )


def assert_same_charges(cb: OpCounter, cp: OpCounter) -> None:
    """Batched and per-element totals must be byte-for-byte identical."""
    assert cb.flops == cp.flops
    assert cb.bytes == cp.bytes
    assert set(cb.by_label) == set(cp.by_label)
    for label, (fp, bp, _) in cp.by_label.items():
        fb, bb, _ = cb.by_label[label]
        assert fb == fp, (label, fb, fp)
        assert bb == bp, (label, bb, bp)


@given(
    st.integers(0, 2),
    st.integers(1, 3),
    st.integers(1, 2),
    st.integers(2, 8),
    st.booleans(),
    st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_transforms_match_per_element(kind, nx, ny, order, sumfact, seed):
    mesh = make_mesh(kind, nx, ny)
    sp_b, sp_p = space_pair(mesh, order, sumfact=sumfact)
    rng = np.random.default_rng(seed)
    u = rng.standard_normal(sp_b.ndof)
    with OpCounter() as cb:
        vb = sp_b.backward(u)
        gxb, gyb = sp_b.gradient(u)
        lb = sp_b.load_vector(vb)
        glb = sp_b.grad_load_vector(gxb, gyb)
        ib = sp_b.integrate(vb)
    with OpCounter() as cp:
        vp = sp_p.backward(u)
        gxp, gyp = sp_p.gradient(u)
        lp = sp_p.load_vector(vp)
        glp = sp_p.grad_load_vector(gxp, gyp)
        ip = sp_p.integrate(vp)
    np.testing.assert_allclose(vb, vp, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(gxb, gxp, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(gyb, gyp, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(lb, lp, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(glb, glp, rtol=0.0, atol=1e-12)
    assert abs(ib - ip) <= 1e-12 * max(1.0, abs(ip))
    assert_same_charges(cb, cp)


@given(
    st.integers(0, 2),
    st.integers(2, 8),
    st.floats(0.0, 10.0),
    st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_operator_setup_matches_per_element(kind, order, lam, seed):
    mesh = make_mesh(kind, 2, 2)
    sp_b, sp_p = space_pair(mesh, order)
    with OpCounter() as cb:
        mats_b = sp_b.elemental_matrices("helmholtz", lam)
    with OpCounter() as cp:
        mats_p = sp_p.elemental_matrices("helmholtz", lam)
    for mb, mp in zip(mats_b, mats_p):
        np.testing.assert_allclose(mb, mp, rtol=0.0, atol=1e-12)
    assert_same_charges(cb, cp)


@given(
    st.integers(0, 2),
    st.integers(2, 8),
    st.floats(0.0, 5.0),
    st.integers(0, 10_000),
)
@settings(max_examples=15, deadline=None)
def test_condensation_matches_per_element(kind, order, lam, seed):
    mesh = make_mesh(kind, 2, 2)
    sp_b, sp_p = space_pair(mesh, order)
    mats = sp_p.elemental_matrices("helmholtz", lam)
    rng = np.random.default_rng(seed)
    bnd = sp_b.dofmap.boundary_dofs()
    dofs = bnd[: max(1, bnd.size // 3)]
    g = rng.standard_normal(dofs.size)
    rhs = rng.standard_normal(sp_b.ndof)
    with OpCounter() as cb:
        ub = CondensedOperator(sp_b, mats, dofs).solve(rhs, g)
    with OpCounter() as cp:
        up = CondensedOperator(sp_p, mats, dofs).solve(rhs, g)
    scale = float(np.max(np.abs(up))) or 1.0
    np.testing.assert_allclose(ub, up, rtol=0.0, atol=1e-12 * max(1.0, scale))
    assert_same_charges(cb, cp)


@given(st.integers(2, 6), st.integers(1, 3), st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_multi_field_matches_single_field(order, nfields, seed):
    """Leading batch axes give exactly the stacked single-field results."""
    sp_b, sp_p = space_pair(mixed_mesh(), order)
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((nfields, sp_b.ndof))
    vals = sp_b.backward(u)
    assert vals.shape == (nfields, sp_b.nelem, sp_b.nq)
    for i in range(nfields):
        np.testing.assert_allclose(
            vals[i], sp_p.backward(u[i]), rtol=0.0, atol=1e-12
        )
    gx, gy = sp_b.gradient(u)
    rhs = sp_b.load_vector(vals)
    grhs = sp_b.grad_load_vector(gx, gy)
    fwd = sp_b.forward(vals)
    for i in range(nfields):
        gxi, gyi = sp_p.gradient(u[i])
        np.testing.assert_allclose(gx[i], gxi, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(gy[i], gyi, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(
            rhs[i], sp_p.load_vector(vals[i]), rtol=0.0, atol=1e-12
        )
        np.testing.assert_allclose(
            grhs[i], sp_p.grad_load_vector(gx[i], gy[i]), rtol=0.0, atol=1e-12
        )
        np.testing.assert_allclose(fwd[i], sp_p.forward(vals[i]), atol=1e-10)


def test_forward_projection_matches_per_element():
    sp_b, sp_p = space_pair(mixed_mesh(), 5)
    rng = np.random.default_rng(3)
    vals = rng.standard_normal((sp_b.nelem, sp_b.nq))
    with OpCounter() as cb:
        fb = sp_b.forward(vals)
    with OpCounter() as cp:
        fp = sp_p.forward(vals)
    np.testing.assert_allclose(fb, fp, rtol=0.0, atol=1e-10)
    assert_same_charges(cb, cp)
