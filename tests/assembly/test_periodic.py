"""Periodic boundary conditions: identified dofs across tag pairs."""

import numpy as np
import pytest

from repro.assembly.dofmap import DofMap
from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads
from repro.solvers.helmholtz import HelmholtzDirect


def test_nonperiodic_unchanged():
    mesh = rectangle_quads(2, 2)
    a = DofMap(mesh, 4)
    b = DofMap(mesh, 4, periodic=())
    for e in range(mesh.nelements):
        np.testing.assert_array_equal(a.elem_dofs[e], b.elem_dofs[e])


def test_periodic_dof_counts():
    mesh = rectangle_quads(3, 2, 0.0, 1.0, 0.0, 1.0)
    P = 3
    plain = DofMap(mesh, P)
    per = DofMap(mesh, P, periodic=[("left", "right")])
    # 3 vertex pairs merged, 2 edge pairs merged.
    assert per.n_vertex_dofs == mesh.nvertices - 3
    assert per.n_edges == plain.n_edges - 2 if hasattr(plain, "n_edges") else True
    assert per.ndof == plain.ndof - 3 - 2 * (P - 1)


def test_doubly_periodic_dof_counts():
    mesh = rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0)
    P = 3
    per = DofMap(
        mesh, P, periodic=[("left", "right"), ("bottom", "top")]
    )
    # Torus: vertices = nx*ny, edges = 2*nx*ny.
    assert per.n_vertex_dofs == 4
    assert per.n_edges == 8


def test_matched_sides_share_dofs():
    mesh = rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0)
    dm = DofMap(mesh, 4, periodic=[("left", "right")])
    left = dm.boundary_dofs(["left"])
    right = dm.boundary_dofs(["right"])
    np.testing.assert_array_equal(left, right)


def test_unequal_sides_rejected():
    mesh = rectangle_quads(2, 2)
    with pytest.raises(ValueError):
        DofMap(mesh, 3, periodic=[("left", "bottom")])  # fine counts but...
    # left/bottom have equal counts on a square mesh; mismatch comes from
    # geometry: vertices don't map under one translation.


def test_periodic_poisson_manufactured():
    # -lap u = f, periodic in x, Dirichlet top/bottom.
    mesh = rectangle_quads(3, 2, 0.0, 1.0, 0.0, 1.0)
    u_exact = lambda x, y: np.sin(2 * np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    f = lambda x, y: 5 * np.pi**2 * u_exact(x, y)  # noqa: E731
    errs = []
    for P in (3, 5, 7):
        space = FunctionSpace(mesh, P, periodic=[("left", "right")])
        solver = HelmholtzDirect(space, 0.0, ("top", "bottom"))
        u_hat = solver.solve(f)
        xq, yq = space.coords()
        errs.append(space.norm_l2(space.backward(u_hat) - u_exact(xq, yq)))
    assert errs[1] < errs[0] / 5
    assert errs[2] < errs[1] / 5
    assert errs[2] < 1e-5


def test_periodic_solution_continuous_across_seam():
    mesh = rectangle_quads(3, 2, 0.0, 1.0, 0.0, 1.0)
    space = FunctionSpace(mesh, 5, periodic=[("left", "right")])
    solver = HelmholtzDirect(space, 1.0)
    u_hat = solver.solve(lambda x, y: np.cos(2 * np.pi * x) * (1 + y))
    vals = space.backward(u_hat)
    xq, yq = space.coords()
    # Compare values near x=0 and x=1 at matching y: the field is
    # single-valued across the seam by construction; check x-periodicity
    # of the solution against a dense evaluation.
    left_pts = np.argsort(xq.ravel())[: space.nq // 2]
    assert np.isfinite(vals).all()
    # u at the two shared seam dofs is literally the same dof: verify
    # boundary dof identity instead of interpolation.
    dm = space.dofmap
    np.testing.assert_array_equal(
        dm.boundary_dofs(["left"]), dm.boundary_dofs(["right"])
    )
    _ = left_pts


def test_fully_periodic_taylor_green():
    """The paper's 'box code' workload: doubly periodic Taylor-Green
    decay with no Dirichlet data at all (pressure pinned)."""
    from repro.ns.exact import TaylorVortex
    from repro.ns.nektar2d import NavierStokes2D

    tv = TaylorVortex(nu=0.05)
    mesh = rectangle_quads(2, 2, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    space = FunctionSpace(
        mesh, 6, periodic=[("left", "right"), ("bottom", "top")]
    )
    ns = NavierStokes2D(space, nu=0.05, dt=5e-3, velocity_bcs={})
    ns.set_initial(
        lambda x, y, t: tv.u(x, y, 0.0), lambda x, y, t: tv.v(x, y, 0.0)
    )
    e0 = ns.kinetic_energy()
    ns.run(20)
    expect = e0 * np.exp(-4 * 0.05 * ns.t)
    assert ns.kinetic_energy() == pytest.approx(expect, rel=5e-3)
    xq, yq = space.coords()
    u, _ = ns.velocity()
    assert space.norm_l2(u - tv.u(xq, yq, ns.t)) < 5e-3
