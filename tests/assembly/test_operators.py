import numpy as np
import pytest

from repro.assembly.operators import (
    elemental_helmholtz,
    elemental_laplacian,
    elemental_load,
    elemental_mass,
)
from repro.mesh.mapping import GeomFactors
from repro.spectral.expansions import QuadExpansion, TriExpansion

TRI = np.array([[0.0, 0.0], [1.2, 0.1], [0.3, 1.0]])
QUAD = np.array([[0.0, 0.0], [1.0, 0.0], [1.1, 1.2], [-0.1, 1.0]])


def cases(P=4):
    return [
        (TriExpansion(P), GeomFactors.compute(TriExpansion(P), TRI)),
        (QuadExpansion(P), GeomFactors.compute(QuadExpansion(P), QUAD)),
    ]


def test_mass_spd_and_measures_area():
    for exp, gf in cases():
        m = elemental_mass(exp, gf)
        np.testing.assert_allclose(m, m.T, atol=1e-12)
        assert np.linalg.eigvalsh(m).min() > 0
        # 1 = sum of vertex modes, so 1^T M 1 over vertex block = area.
        c = np.zeros(exp.nmodes)
        for i in exp.vertex_modes:
            c[i] = 1.0
        assert c @ m @ c == pytest.approx(gf.jw.sum(), rel=1e-12)


def test_laplacian_symmetric_psd_constant_nullspace():
    for exp, gf in cases():
        L = elemental_laplacian(exp, gf)
        np.testing.assert_allclose(L, L.T, atol=1e-11)
        assert np.linalg.eigvalsh(L).min() > -1e-10
        c = np.zeros(exp.nmodes)
        for i in exp.vertex_modes:
            c[i] = 1.0
        np.testing.assert_allclose(L @ c, 0.0, atol=1e-10)


def test_figure10_interior_interior_block_banded():
    # The paper notes "the banded structure of the interior-interior
    # matrix" — interior modes with q-fastest ordering couple only within
    # a narrow band for the quad tensor basis.
    P = 6
    exp = QuadExpansion(P)
    gf = GeomFactors.compute(exp, np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]]))
    L = elemental_laplacian(exp, gf)
    nb = len(exp.boundary_modes)
    ii = L[nb:, nb:]
    n = ii.shape[0]
    full_bw = n - 1
    rows, cols = np.nonzero(np.abs(ii) > 1e-10 * np.abs(ii).max())
    bw = np.abs(rows - cols).max()
    assert bw < full_bw  # strictly banded, not dense


def test_helmholtz_combination():
    for exp, gf in cases():
        L = elemental_laplacian(exp, gf)
        M = elemental_mass(exp, gf)
        H = elemental_helmholtz(exp, gf, 2.5)
        np.testing.assert_allclose(H, L + 2.5 * M, rtol=1e-12)
        np.testing.assert_allclose(elemental_helmholtz(exp, gf, 0.0), L, rtol=1e-12)


def test_helmholtz_negative_lambda_rejected():
    exp, gf = cases()[0]
    with pytest.raises(ValueError):
        elemental_helmholtz(exp, gf, -1.0)


def test_load_vector_constant():
    for exp, gf in cases():
        f = elemental_load(exp, gf, np.ones(gf.nq))
        # sum over vertex modes of (1, phi_v) = integral of 1 = area
        total = sum(f[i] for i in exp.vertex_modes)
        # plus edge/interior contributions integrate the same function:
        # instead verify against direct quadrature mode by mode.
        for i in range(exp.nmodes):
            assert f[i] == pytest.approx(float(np.dot(gf.jw, exp.phi[i])), abs=1e-13)
        assert np.isfinite(total)


def test_load_vector_shape_check():
    exp, gf = cases()[0]
    with pytest.raises(ValueError):
        elemental_load(exp, gf, np.ones(3))
