# test package
