"""Catalog invariants: the machine/network registry stays coherent."""

import pytest

from repro.benchkernels.netpipe import simulated_pingpong
from repro.machines.catalog import (
    ALLTOALL_FIGURE_NETWORKS,
    BLAS_FIGURE_MACHINES,
    CPUS,
    MACHINES,
    NETWORKS,
    PINGPONG_FIGURE_NETWORKS,
)


def test_every_machine_has_default_network():
    for spec in MACHINES.values():
        assert spec.network("default") is not None
        assert spec.procs_per_node >= 1
        assert spec.max_procs >= 1
        assert spec.ram_per_node > 0


def test_cpu_names_unique_and_bandwidths_decreasing():
    names = [c.name for c in CPUS.values()]
    assert len(set(names)) == len(names)
    for cpu in CPUS.values():
        bw = cpu.bandwidths
        assert all(a >= b for a, b in zip(bw, bw[1:])), cpu.name


def test_figure_lineups_reference_existing_entries():
    for panel in BLAS_FIGURE_MACHINES.values():
        for key in panel:
            assert key in MACHINES
    for name in PINGPONG_FIGURE_NETWORKS + ALLTOALL_FIGURE_NETWORKS:
        assert name in NETWORKS


def test_paper_machine_count():
    # Section 2 compares ten systems.
    assert len(MACHINES) == 10
    # Figure 7 shows twelve network configurations.
    assert len(PINGPONG_FIGURE_NETWORKS) == 12


def test_roadrunner_uses_pii_cpu():
    assert MACHINES["RoadRunner"].cpu is CPUS["pentium-ii-450"]
    assert MACHINES["Muses"].cpu is CPUS["pentium-ii-450"]


@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_simulated_pingpong_consistent_with_every_model(name):
    """simmpi execution agrees with the analytic Hockney model on every
    catalogued network, at eager and rendezvous sizes.  On the TCP
    networks the simulated wall additionally carries the protocol
    stack's per-byte CPU cost on each side of the transfer."""
    net = NETWORKS[name]
    for nbytes in (512, 262144):
        measured = simulated_pingpong(name, nbytes, reps=4)
        expect = net.send_time(nbytes) + 2.0 * net.cpu_time_for_bytes(nbytes)
        assert measured == pytest.approx(expect, rel=0.25), (name, nbytes)


def test_clock_rates_match_section2():
    assert CPUS["pentium-ii-450"].clock_mhz == 450
    assert CPUS["power2-66"].clock_mhz == 66
    assert CPUS["p2sc-160"].clock_mhz == 160
    assert CPUS["ppc604e-332"].clock_mhz == 332
    assert CPUS["r10000-195"].clock_mhz == 195
    assert CPUS["r10000-250"].clock_mhz == 250
    assert CPUS["ultrasparc-300"].clock_mhz == 300
    assert CPUS["alpha21164-450"].clock_mhz == 450
